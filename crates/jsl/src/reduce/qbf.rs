//! The Proposition 7 lower bound: QBF (3CNF) → JSL satisfiability.
//!
//! Following the appendix construction, a quantified boolean formula
//! `Q₁x₁ … Qₙxₙ φ` becomes `φ_tree ∧ φ_clauses`, whose models are trees of
//! height `2n` alternating `X`-edges with `T`/`F`-edges: existential
//! variables choose one branch, universal variables carry both. A clause is
//! checked by forbidding (`¬`) every root-to-leaf path that falsifies it.

use jsondata::Json;

use crate::ast::Jsl;
use crate::recursive::RecursiveJsl;
use crate::sat::{sat_recursive, JslSatResult, SatConfig};

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// ∃
    Exists,
    /// ∀
    Forall,
}

/// A quantified 3CNF formula: prefix over variables `0..n`, then clauses of
/// signed literals `(var, positive)`.
#[derive(Debug, Clone)]
pub struct Qbf {
    /// Quantifier prefix (index = variable).
    pub prefix: Vec<Quant>,
    /// 3CNF matrix.
    pub clauses: Vec<Vec<(usize, bool)>>,
}

impl Qbf {
    /// Brute-force truth (reference oracle; exponential).
    pub fn brute_force(&self) -> bool {
        fn go(q: &Qbf, i: usize, assignment: &mut Vec<bool>) -> bool {
            if i == q.prefix.len() {
                return q
                    .clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, pos)| assignment[v] == pos));
            }
            match q.prefix[i] {
                Quant::Exists => [true, false].into_iter().any(|b| {
                    assignment[i] = b;
                    go(q, i + 1, assignment)
                }),
                Quant::Forall => [true, false].into_iter().all(|b| {
                    assignment[i] = b;
                    go(q, i + 1, assignment)
                }),
            }
        }
        let mut a = vec![false; self.prefix.len()];
        go(self, 0, &mut a)
    }

    /// The appendix's JSL encoding: satisfiable iff the QBF is true.
    pub fn to_jsl(&self) -> Jsl {
        let n = self.prefix.len();
        let mut parts: Vec<Jsl> = Vec::new();

        // φ_tree: level 2k is an object with a single X child; level 2k+1
        // branches on T/F according to the quantifier.
        for (k, q) in self.prefix.iter().enumerate() {
            // After 2k edges: the node has exactly the X child.
            let at_level = |phi: Jsl, depth: usize| {
                let mut acc = phi;
                for _ in 0..depth {
                    acc = Jsl::box_any_key(acc);
                }
                acc
            };
            let chooser = match q {
                Quant::Exists => Jsl::or(vec![
                    Jsl::and(vec![
                        Jsl::diamond_key("T", Jsl::True),
                        Jsl::not(Jsl::diamond_key("F", Jsl::True)),
                    ]),
                    Jsl::and(vec![
                        Jsl::not(Jsl::diamond_key("T", Jsl::True)),
                        Jsl::diamond_key("F", Jsl::True),
                    ]),
                ]),
                Quant::Forall => Jsl::and(vec![
                    Jsl::diamond_key("T", Jsl::True),
                    Jsl::diamond_key("F", Jsl::True),
                ]),
            };
            parts.push(at_level(
                Jsl::and(vec![Jsl::diamond_key("X", chooser)]),
                2 * k,
            ));
            // Below T/F (if not the last level) an X child follows.
            if k + 1 < n {
                parts.push(at_level(
                    Jsl::box_key(
                        "X",
                        Jsl::and(vec![
                            Jsl::box_key("T", Jsl::diamond_key("X", Jsl::True)),
                            Jsl::box_key("F", Jsl::diamond_key("X", Jsl::True)),
                        ]),
                    ),
                    2 * k,
                ));
            }
        }

        // φ_clauses: for each clause C, no path realises the falsifying
        // assignment of C. A path falsifies C when, for each literal, it
        // takes the branch opposite to the literal's sign.
        for clause in &self.clauses {
            let mut lits: Vec<(usize, bool)> = clause.clone();
            lits.sort_by_key(|&(v, _)| v);
            lits.dedup();
            // A clause containing both polarities of a variable is a
            // tautology: no path can falsify it, so it adds no constraint.
            let tautological = lits
                .windows(2)
                .any(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1);
            if tautological {
                continue;
            }
            // Build the ◇-chain describing a falsifying path, innermost
            // literal outwards.
            let mut formula = Jsl::True;
            let max_v = lits.last().map(|&(v, _)| v).unwrap_or(0);
            for v in (0..=max_v).rev() {
                // At variable v's level: X edge, then T or F edge.
                let branch = lits.iter().find(|&&(lv, _)| lv == v).map(|&(_, pos)| {
                    // Falsifying branch: opposite of the literal sign.
                    if pos {
                        "F"
                    } else {
                        "T"
                    }
                });
                formula = match branch {
                    Some(b) => Jsl::diamond_key("X", Jsl::diamond_key(b, formula)),
                    None => Jsl::diamond_key("X", Jsl::diamond_any_key(formula)),
                };
            }
            parts.push(Jsl::not(formula));
        }

        Jsl::and(parts)
    }

    /// Decides the QBF through JSL satisfiability.
    pub fn solve_via_jsl(&self) -> Option<bool> {
        let phi = self.to_jsl();
        match sat_recursive(
            &RecursiveJsl::plain(phi),
            SatConfig {
                branch_budget: 2_000_000,
                ..Default::default()
            },
        ) {
            JslSatResult::Sat(_) => Some(true),
            JslSatResult::Unsat => Some(false),
            JslSatResult::Unknown(_) => None,
        }
    }

    /// Builds the canonical model tree for a true QBF (used in tests).
    pub fn model_tree(&self) -> Json {
        fn go(q: &Qbf, i: usize, assignment: &mut Vec<bool>) -> Option<Json> {
            if i == q.prefix.len() {
                let ok = q
                    .clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, pos)| assignment[v] == pos));
                return ok.then(Json::empty_object);
            }
            let branch = |q: &Qbf, i: usize, assignment: &mut Vec<bool>, b: bool| {
                assignment[i] = b;
                go(q, i + 1, assignment)
            };
            let pairs = match q.prefix[i] {
                Quant::Exists => {
                    let (b, sub) = if let Some(s) = branch(q, i, assignment, true) {
                        (true, s)
                    } else {
                        (false, branch(q, i, assignment, false)?)
                    };
                    vec![(if b { "T" } else { "F" }.to_owned(), sub)]
                }
                Quant::Forall => {
                    let t = branch(q, i, assignment, true)?;
                    let f = branch(q, i, assignment, false)?;
                    vec![("T".to_owned(), t), ("F".to_owned(), f)]
                }
            };
            Some(
                Json::object(vec![(
                    "X".to_owned(),
                    Json::object(pairs).expect("distinct"),
                )])
                .expect("single key"),
            )
        }
        let mut a = vec![false; self.prefix.len()];
        go(self, 0, &mut a).expect("call only on true QBFs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::JsonTree;

    #[test]
    fn example_from_paper_shape() {
        // ∃x₁∀x₂∀x₃ (x₁ ∧ x₂ ∧ x₃) — false; (x₁) alone — true.
        let q = Qbf {
            prefix: vec![Quant::Exists],
            clauses: vec![vec![(0, true)]],
        };
        assert!(q.brute_force());
        let model = q.model_tree();
        let t = JsonTree::build(&model);
        assert!(
            crate::eval::check_root(&t, &q.to_jsl()),
            "canonical model satisfies encoding"
        );
    }

    #[test]
    fn canonical_models_satisfy_encoding() {
        let cases = vec![
            Qbf {
                prefix: vec![Quant::Exists, Quant::Forall],
                clauses: vec![vec![(0, true), (1, true)], vec![(0, true), (1, false)]],
            },
            Qbf {
                prefix: vec![Quant::Forall, Quant::Exists],
                clauses: vec![vec![(0, true), (1, true)], vec![(0, false), (1, false)]],
            },
        ];
        for q in cases {
            assert!(q.brute_force());
            let t = JsonTree::build(&q.model_tree());
            assert!(crate::eval::check_root(&t, &q.to_jsl()), "{q:?}");
        }
    }

    #[test]
    fn falsifying_paths_are_rejected() {
        // ∀x₁ (x₁): false — every candidate tree must violate the encoding.
        let q = Qbf {
            prefix: vec![Quant::Forall],
            clauses: vec![vec![(0, true)]],
        };
        assert!(!q.brute_force());
        let full = Json::object(vec![(
            "X".to_owned(),
            Json::object(vec![
                ("T".to_owned(), Json::empty_object()),
                ("F".to_owned(), Json::empty_object()),
            ])
            .unwrap(),
        )])
        .unwrap();
        let t = JsonTree::build(&full);
        assert!(!crate::eval::check_root(&t, &q.to_jsl()));
    }

    #[test]
    fn solver_decides_small_qbfs() {
        let cases = vec![
            (
                Qbf {
                    prefix: vec![Quant::Exists],
                    clauses: vec![vec![(0, true)]],
                },
                true,
            ),
            (
                Qbf {
                    prefix: vec![Quant::Forall],
                    clauses: vec![vec![(0, true)]],
                },
                false,
            ),
            (
                Qbf {
                    prefix: vec![Quant::Exists, Quant::Forall],
                    clauses: vec![vec![(0, true), (1, true)], vec![(0, true), (1, false)]],
                },
                true,
            ),
            (
                Qbf {
                    prefix: vec![Quant::Forall, Quant::Exists],
                    clauses: vec![vec![(0, true), (1, true)], vec![(0, false), (1, false)]],
                },
                true,
            ),
            (
                Qbf {
                    prefix: vec![Quant::Forall, Quant::Forall],
                    clauses: vec![vec![(0, true), (1, true)]],
                },
                false,
            ),
        ];
        for (q, expected) in cases {
            assert_eq!(q.brute_force(), expected, "oracle {q:?}");
            match q.solve_via_jsl() {
                Some(got) => assert_eq!(got, expected, "solver vs oracle on {q:?}"),
                None => panic!("solver gave up on {q:?}"),
            }
        }
    }
}
