//! JSONPath navigation (§4.1's second surveyed system) over the classic
//! bookstore document, with the compiled JNL shown for each query.
//!
//! ```sh
//! cargo run --example path_explorer
//! ```

use json_foundations::path::JsonPath;
use jsondata::parse;

fn main() {
    let store = parse(
        r#"{"store": {
            "book": [
                {"title": "Sayings of the Century", "price": 8,
                 "author": "Nigel Rees", "tags": ["quotes"]},
                {"title": "Sword of Honour", "price": 12,
                 "author": "Evelyn Waugh", "tags": []},
                {"title": "Moby Dick", "price": 9,
                 "author": "Herman Melville", "tags": ["classic", "sea"]},
                {"title": "The Lord of the Rings", "price": 22,
                 "author": "J. R. R. Tolkien", "tags": ["classic"]}
            ],
            "bicycle": {"color": "red", "price": 19}
        }}"#,
    )
    .expect("bookstore parses");

    let queries = [
        "$.store.book[*].author",
        "$.store.book[2].title",
        "$.store.book[-1].title",
        "$.store.book[0:2].price",
        "$..price",
        "$..tags[*]",
        "$.store.*",
    ];
    for q in queries {
        let path = JsonPath::parse(q).expect("valid JSONPath");
        let hits = path.select(&store);
        println!("{q}");
        let branches = path.to_jnl_branches();
        for b in &branches {
            println!("   JNL: {b}");
        }
        for h in &hits {
            let text = h.to_string();
            let short = if text.len() > 64 {
                format!("{}…", &text[..63])
            } else {
                text
            };
            println!("   → {short}");
        }
        println!();
    }
}
