//! Pipeline surface syntax → typed stage IR.
//!
//! A pipeline is a JSON array of single-operator stage documents, exactly
//! the MongoDB shape the Botoeva–Corman–Townsend report ("Towards a
//! Standard for JSON Document Databases") formalises:
//!
//! ```json
//! [
//!   {"$match":  {"age": {"$gte": 30}}},
//!   {"$unwind": "$hobbies"},
//!   {"$group":  {"_id": "$hobbies", "n": {"$count": {}}}},
//!   {"$sort":   {"n": 0, "_id": 1}}
//! ]
//! ```
//!
//! Parsing lowers each stage to a typed [`Stage`] once, up front — the
//! executors ([`crate::exec`] on trees, [`crate::reference`] on values)
//! never re-inspect surface JSON. Deviations from MongoDB forced by the
//! paper's §2 fragment (numbers are ℕ; there is no `null`) are documented
//! on the relevant constructs: sort directions are `1` (ascending) and `0`
//! (descending, since `-1` is unrepresentable), and accumulators over an
//! empty observation set omit their field instead of producing `null`.

use std::fmt;

use jsondata::Json;
use mongofind::{Filter, Path};

/// Pipeline-parsing and execution errors.
#[derive(Debug, Clone, PartialEq)]
pub struct AggError(pub String);

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pipeline: {}", self.0)
    }
}

impl std::error::Error for AggError {}

fn err<T>(msg: impl Into<String>) -> Result<T, AggError> {
    Err(AggError(msg.into()))
}

/// A parsed aggregation pipeline: the stage sequence applied left to right.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The stages, in application order.
    pub stages: Vec<Stage>,
}

/// One typed pipeline stage (the IR the executors run).
#[derive(Debug, Clone)]
pub enum Stage {
    /// `{"$match": filter}` — the report's selection operator; the filter
    /// language is exactly [`mongofind::Filter`].
    Match(Filter),
    /// `{"$project": {path: 1 | "$path" | {"$literal": v}, …}}` —
    /// projection; output fields are assembled in spec order.
    Project(Vec<(Path, ProjectField)>),
    /// `{"$unwind": "$path"}` — the unnest operator.
    Unwind(Path),
    /// `{"$group": {"_id": expr, name: {accumulator}, …}}`.
    Group(GroupSpec),
    /// `{"$sort": {path: 1 (asc) | 0 (desc), …}}` — stable, missing keys
    /// first.
    Sort(Vec<(Path, SortOrder)>),
    /// `{"$skip": n}`.
    Skip(u64),
    /// `{"$limit": n}`.
    Limit(u64),
    /// `{"$count": "label"}` — one `{label: n}` document (none on empty
    /// input, following MongoDB).
    Count(String),
}

/// One `$project` output field.
#[derive(Debug, Clone)]
pub enum ProjectField {
    /// `path: 1` — keep the input value at `path`.
    Include,
    /// `path: "$src"` or `path: {"$literal": v}` — computed value.
    Expr(ValueExpr),
}

/// A value expression: a field reference (`"$a.b"`) or a constant
/// (any other literal; `{"$literal": v}` escapes `$`-strings).
#[derive(Debug, Clone)]
pub enum ValueExpr {
    /// `"$a.b"` — resolve the dotted path against the current document.
    Field(Path),
    /// A constant value.
    Const(Json),
}

/// Ascending (`1`) or descending (`0` — the fragment has no `-1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

/// A parsed `$group` stage.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// The grouping key expression (`"_id"`).
    pub id: IdExpr,
    /// Named accumulators, in output order. Names are plain (no `$`, no
    /// dots) and pairwise distinct (JSON object keys).
    pub accs: Vec<(String, Accumulator)>,
}

/// The `_id` expression of a `$group` stage.
#[derive(Debug, Clone)]
pub enum IdExpr {
    /// A constant key: every document lands in one group.
    Const(Json),
    /// `"$a.b"` — group by the value at the path. Documents where the path
    /// is **missing** form their own group whose output omits `_id` (the
    /// fragment has no `null`).
    Field(Path),
    /// `{"k1": expr, "k2": expr, …}` — a compound key document; missing
    /// subfields are omitted from the synthesized key.
    Doc(Vec<(String, ValueExpr)>),
}

/// An accumulator operator. Observation rules (shared by both executors and
/// pinned by the differential suite): a [`ValueExpr::Field`] whose path is
/// missing contributes nothing; `$sum`/`$avg` additionally skip non-numeric
/// values. Sums saturate at `u64::MAX`; `$avg` is the floor average (ℕ has
/// no fractions).
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// Saturating sum of observed numbers (`0` when none).
    Sum(ValueExpr),
    /// Floor average of observed numbers; field omitted when none.
    Avg(ValueExpr),
    /// Least observed value under [`Json::total_cmp`]; omitted when none.
    Min(ValueExpr),
    /// Greatest observed value under [`Json::total_cmp`]; omitted when none.
    Max(ValueExpr),
    /// `{"$count": {}}` — number of documents in the group.
    Count,
    /// Array of observed values in input order (`[]` when none).
    Push(ValueExpr),
    /// First observed value; omitted when none.
    First(ValueExpr),
    /// Last observed value; omitted when none.
    Last(ValueExpr),
}

impl Pipeline {
    /// Parses a pipeline from its JSON document.
    pub fn parse(doc: &Json) -> Result<Pipeline, AggError> {
        let Some(stages) = doc.as_array() else {
            return err("pipeline must be a JSON array of stages");
        };
        Ok(Pipeline {
            stages: stages.iter().map(parse_stage).collect::<Result<_, _>>()?,
        })
    }

    /// Parses a pipeline from text.
    pub fn parse_str(src: &str) -> Result<Pipeline, AggError> {
        let doc = jsondata::parse(src).map_err(|e| AggError(e.to_string()))?;
        Pipeline::parse(&doc)
    }
}

fn parse_stage(v: &Json) -> Result<Stage, AggError> {
    let Some(obj) = v.as_object() else {
        return err("each stage must be a single-operator object");
    };
    if obj.len() != 1 {
        return err(format!(
            "each stage must hold exactly one operator, got {}",
            obj.len()
        ));
    }
    let (op, operand) = obj.iter().next().expect("len checked");
    match op {
        "$match" => Ok(Stage::Match(
            Filter::parse(operand).map_err(|e| AggError(format!("$match: {e}")))?,
        )),
        "$project" => parse_project(operand),
        "$unwind" => Ok(Stage::Unwind(parse_field_ref(operand).ok_or_else(
            || AggError("$unwind expects a \"$path\" field reference".into()),
        )?)),
        "$group" => parse_group(operand),
        "$sort" => parse_sort(operand),
        "$skip" | "$limit" => {
            let Some(n) = operand.as_num() else {
                return err(format!("{op} expects a number"));
            };
            Ok(if op == "$skip" {
                Stage::Skip(n)
            } else {
                Stage::Limit(n)
            })
        }
        "$count" => match operand.as_str() {
            Some(label) if !label.is_empty() && !label.starts_with('$') && !label.contains('.') => {
                Ok(Stage::Count(label.to_owned()))
            }
            _ => err("$count expects a plain, nonempty field name"),
        },
        other => err(format!("unknown stage operator {other}")),
    }
}

/// `"$a.b"` → the path `a.b`; anything else → `None`.
fn parse_field_ref(v: &Json) -> Option<Path> {
    match v.as_str() {
        Some(s) if s.len() > 1 && s.starts_with('$') => Some(Path::parse(&s[1..])),
        _ => None,
    }
}

fn parse_value_expr(v: &Json) -> Result<ValueExpr, AggError> {
    if let Some(p) = parse_field_ref(v) {
        return Ok(ValueExpr::Field(p));
    }
    if let Some(s) = v.as_str() {
        if s.starts_with('$') {
            return err(format!("malformed field reference {s:?}"));
        }
    }
    if let Some(obj) = v.as_object() {
        if obj.len() == 1 {
            if let Some(lit) = obj.get("$literal") {
                return Ok(ValueExpr::Const(lit.clone()));
            }
        }
        if obj.iter().any(|(k, _)| k.starts_with('$')) {
            return err("operator expressions other than $literal are not supported");
        }
    }
    Ok(ValueExpr::Const(v.clone()))
}

fn parse_project(v: &Json) -> Result<Stage, AggError> {
    let Some(obj) = v.as_object() else {
        return err("$project expects an object");
    };
    if obj.is_empty() {
        return err("$project expects at least one field");
    }
    let mut fields = Vec::new();
    for (k, spec) in obj.iter() {
        if k.starts_with('$') {
            return err(format!("$project field {k:?} must not start with $"));
        }
        let field = match spec {
            Json::Num(1) => ProjectField::Include,
            Json::Num(_) => return err("$project supports 1 (include) only; exclusion ($project: 0) is not part of the fragment"),
            other => ProjectField::Expr(parse_value_expr(other).map_err(|e| AggError(format!("$project {k:?}: {}", e.0)))?),
        };
        fields.push((Path::parse(k), field));
    }
    Ok(Stage::Project(fields))
}

fn parse_group(v: &Json) -> Result<Stage, AggError> {
    let Some(obj) = v.as_object() else {
        return err("$group expects an object");
    };
    let Some(id_spec) = obj.get("_id") else {
        return err("$group requires an _id expression");
    };
    let id = parse_id_expr(id_spec)?;
    let mut accs = Vec::new();
    for (k, spec) in obj.iter() {
        if k == "_id" {
            continue;
        }
        if k.starts_with('$') || k.contains('.') {
            return err(format!(
                "accumulator name {k:?} must be plain (no $, no dots)"
            ));
        }
        accs.push((k.to_owned(), parse_accumulator(k, spec)?));
    }
    Ok(Stage::Group(GroupSpec { id, accs }))
}

fn parse_id_expr(v: &Json) -> Result<IdExpr, AggError> {
    if let Some(p) = parse_field_ref(v) {
        return Ok(IdExpr::Field(p));
    }
    if let Some(obj) = v.as_object() {
        if obj.len() == 1 {
            if let Some(lit) = obj.get("$literal") {
                return Ok(IdExpr::Const(lit.clone()));
            }
        }
        if obj.iter().any(|(k, _)| k.starts_with('$')) {
            return err("unsupported operator expression in $group _id");
        }
        if !obj.is_empty() {
            let mut fields = Vec::new();
            for (k, spec) in obj.iter() {
                if k.contains('.') {
                    return err(format!("compound _id field {k:?} must not contain dots"));
                }
                fields.push((
                    k.to_owned(),
                    parse_value_expr(spec).map_err(|e| AggError(format!("_id {k:?}: {}", e.0)))?,
                ));
            }
            return Ok(IdExpr::Doc(fields));
        }
    }
    Ok(IdExpr::Const(v.clone()))
}

fn parse_accumulator(name: &str, v: &Json) -> Result<Accumulator, AggError> {
    let Some(obj) = v.as_object() else {
        return err(format!("accumulator {name:?} expects {{$op: expr}}"));
    };
    if obj.len() != 1 {
        return err(format!("accumulator {name:?} expects exactly one $op"));
    }
    let (op, operand) = obj.iter().next().expect("len checked");
    let expr =
        || parse_value_expr(operand).map_err(|e| AggError(format!("{op} {name:?}: {}", e.0)));
    Ok(match op {
        "$sum" => Accumulator::Sum(expr()?),
        "$avg" => Accumulator::Avg(expr()?),
        "$min" => Accumulator::Min(expr()?),
        "$max" => Accumulator::Max(expr()?),
        "$push" => Accumulator::Push(expr()?),
        "$first" => Accumulator::First(expr()?),
        "$last" => Accumulator::Last(expr()?),
        "$count" => {
            if !operand.as_object().is_some_and(|o| o.is_empty()) {
                return err(format!("accumulator {name:?}: $count expects {{}}"));
            }
            Accumulator::Count
        }
        other => return err(format!("unknown accumulator {other}")),
    })
}

fn parse_sort(v: &Json) -> Result<Stage, AggError> {
    let Some(obj) = v.as_object() else {
        return err("$sort expects an object");
    };
    if obj.is_empty() {
        return err("$sort expects at least one key");
    }
    let mut keys = Vec::new();
    for (k, dir) in obj.iter() {
        let order = match dir.as_num() {
            Some(1) => SortOrder::Asc,
            // The fragment's numbers are ℕ, so MongoDB's -1 is
            // unrepresentable; 0 takes its place.
            Some(0) => SortOrder::Desc,
            _ => {
                return err(format!(
                    "$sort {k:?}: direction must be 1 (asc) or 0 (desc)"
                ))
            }
        };
        keys.push((Path::parse(k), order));
    }
    Ok(Stage::Sort(keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mongofind::insert_path;

    #[test]
    fn parses_every_stage() {
        let p = Pipeline::parse_str(
            r#"[
                {"$match": {"age": {"$gte": 30}}},
                {"$unwind": "$hobbies"},
                {"$project": {"h": "$hobbies", "age": 1, "tag": {"$literal": "x"}}},
                {"$group": {"_id": "$h",
                            "n": {"$count": {}},
                            "total": {"$sum": "$age"},
                            "avg": {"$avg": "$age"},
                            "lo": {"$min": "$age"},
                            "hi": {"$max": "$age"},
                            "all": {"$push": "$age"},
                            "head": {"$first": "$age"},
                            "tail": {"$last": "$age"}}},
                {"$sort": {"n": 0, "_id": 1}},
                {"$skip": 1},
                {"$limit": 10},
                {"$count": "kinds"}
            ]"#,
        )
        .unwrap();
        assert_eq!(p.stages.len(), 8);
        assert!(matches!(p.stages[0], Stage::Match(_)));
        assert!(matches!(p.stages[1], Stage::Unwind(_)));
        let Stage::Group(g) = &p.stages[3] else {
            panic!("expected $group")
        };
        assert!(matches!(g.id, IdExpr::Field(_)));
        assert_eq!(g.accs.len(), 8);
        assert!(matches!(p.stages[7], Stage::Count(_)));
    }

    #[test]
    fn id_expression_forms() {
        let parse_id = |src: &str| {
            let Stage::Group(g) = parse_stage(&jsondata::parse(src).unwrap()).unwrap() else {
                panic!("expected $group")
            };
            g.id
        };
        assert!(matches!(
            parse_id(r#"{"$group": {"_id": "$a.b"}}"#),
            IdExpr::Field(_)
        ));
        assert!(matches!(
            parse_id(r#"{"$group": {"_id": 7}}"#),
            IdExpr::Const(Json::Num(7))
        ));
        assert!(matches!(
            parse_id(r#"{"$group": {"_id": "plain"}}"#),
            IdExpr::Const(Json::Str(_))
        ));
        assert!(matches!(
            parse_id(r#"{"$group": {"_id": {}}}"#),
            IdExpr::Const(_)
        ));
        assert!(matches!(
            parse_id(r#"{"$group": {"_id": {"$literal": "$raw"}}}"#),
            IdExpr::Const(Json::Str(_))
        ));
        let IdExpr::Doc(fields) = parse_id(r#"{"$group": {"_id": {"a": "$x", "b": 3}}}"#) else {
            panic!("expected compound _id")
        };
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn rejects_malformed_stages() {
        for src in [
            r#"{"$match": 1}"#,
            r#"{"$bogus": {}}"#,
            r#"{"$unwind": "hobbies"}"#,
            r#"{"$unwind": "$"}"#,
            r#"{"$project": {}}"#,
            r#"{"$project": {"a": 0}}"#,
            r#"{"$project": {"a": 2}}"#,
            r#"{"$project": {"$a": 1}}"#,
            r#"{"$project": {"a": "$"}}"#,
            r#"{"$group": {}}"#,
            r#"{"$group": {"_id": {"$add": [1, 2]}}}"#,
            r#"{"$group": {"_id": 1, "x.y": {"$count": {}}}}"#,
            r#"{"$group": {"_id": 1, "n": {"$count": 1}}}"#,
            r#"{"$group": {"_id": 1, "n": {"$frob": "$a"}}}"#,
            r#"{"$group": {"_id": 1, "n": {"$sum": "$a", "$min": "$a"}}}"#,
            r#"{"$sort": {}}"#,
            r#"{"$sort": {"a": 2}}"#,
            r#"{"$skip": "x"}"#,
            r#"{"$count": ""}"#,
            r#"{"$count": "$n"}"#,
            r#"{"$match": {"a": 1}, "$limit": 2}"#,
        ] {
            let doc = jsondata::parse(src).unwrap();
            assert!(parse_stage(&doc).is_err(), "should reject {src}");
        }
        assert!(Pipeline::parse_str(r#"{"$match": {}}"#).is_err());
        assert!(Pipeline::parse_str("[1]").is_err());
    }

    #[test]
    fn insert_path_nests_and_first_wins() {
        let mut pairs = Vec::new();
        insert_path(&mut pairs, &["a".into(), "b".into()], Json::Num(1));
        insert_path(&mut pairs, &["a".into(), "c".into()], Json::Num(2));
        insert_path(&mut pairs, &["a".into(), "b".into()], Json::Num(9));
        insert_path(&mut pairs, &["d".into()], Json::Num(3));
        let out = Json::object(pairs).unwrap();
        assert_eq!(
            out,
            jsondata::parse(r#"{"a": {"b": 1, "c": 2}, "d": 3}"#).unwrap()
        );
    }
}
