//! Per-symbol memoisation of anchored regex membership.
//!
//! The logic engines test edge keys and string atoms against regular
//! expressions. With keys interned to dense `u32` symbols (see
//! `jsondata::intern`), each regex needs to run **once per distinct
//! symbol** rather than once per node: a [`KeyMatchMemo`] caches the
//! verdict in a dense tri-state table indexed by symbol.
//!
//! This replaces the previous per-regex `Vec<bool>` over *all nodes* —
//! `O(distinct keys)` regex runs instead of `O(nodes)`.

use std::collections::HashMap;

use crate::nfa::CompiledRegex;
use crate::Regex;

const UNKNOWN: u8 = 0;
const NO: u8 = 1;
const YES: u8 = 2;

/// A compiled regex plus a dense per-symbol verdict cache.
pub struct KeyMatchMemo {
    compiled: CompiledRegex,
    verdicts: Vec<u8>,
}

impl KeyMatchMemo {
    /// Wraps a compiled regex with an empty cache.
    pub fn new(compiled: CompiledRegex) -> KeyMatchMemo {
        KeyMatchMemo {
            compiled,
            verdicts: Vec::new(),
        }
    }

    /// Unmemoised membership test on a resolved string.
    pub fn is_match(&self, s: &str) -> bool {
        self.compiled.is_match(s)
    }

    /// Memoised membership: the string `s` behind symbol index `sym` is run
    /// through the regex at most once per distinct symbol; later calls are a
    /// table load. Symbols denote one string by contract, so the cached
    /// verdict wins regardless of the `s` passed on later calls.
    pub fn matches_str(&mut self, sym: usize, s: &str) -> bool {
        if sym >= self.verdicts.len() {
            self.verdicts.resize(sym + 1, UNKNOWN);
        }
        match self.verdicts[sym] {
            YES => true,
            NO => false,
            _ => {
                let hit = self.compiled.is_match(s);
                self.verdicts[sym] = if hit { YES } else { NO };
                hit
            }
        }
    }

    /// Number of symbols with a cached verdict (for tests/diagnostics).
    pub fn cached(&self) -> usize {
        self.verdicts.iter().filter(|&&v| v != UNKNOWN).count()
    }
}

/// A per-regex collection of [`KeyMatchMemo`]s, shared by the evaluation
/// contexts of the logic crates so the probe/insert logic lives in one
/// place. [`RegexMemoTable::memo`] probes before inserting — `entry` would
/// deep-clone the regex AST on every call, including cache hits.
///
/// Callers iterating many symbols against one regex should fetch the memo
/// **once** and reuse it inside the loop; the table probe hashes the full
/// regex AST each time.
#[derive(Default)]
pub struct RegexMemoTable {
    memos: HashMap<Regex, KeyMatchMemo>,
}

impl RegexMemoTable {
    /// An empty table.
    pub fn new() -> RegexMemoTable {
        RegexMemoTable::default()
    }

    /// The memo for `e`, compiling the regex on first sight.
    pub fn memo(&mut self, e: &Regex) -> &mut KeyMatchMemo {
        if !self.memos.contains_key(e) {
            self.memos.insert(e.clone(), KeyMatchMemo::new(e.compile()));
        }
        self.memos.get_mut(e).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    #[test]
    fn memoises_per_symbol() {
        let mut memo = KeyMatchMemo::new(Regex::parse("a(b|c)a").unwrap().compile());
        for _ in 0..5 {
            assert!(memo.matches_str(0, "aba"));
            assert!(!memo.matches_str(7, "nope"));
        }
        assert_eq!(memo.cached(), 2, "only the two distinct symbols resolved");
    }

    #[test]
    fn matches_str_agrees_with_direct() {
        let mut memo = KeyMatchMemo::new(Regex::parse("x+").unwrap().compile());
        assert!(memo.matches_str(3, "xxx"));
        // Cached verdict wins even if a different string is passed for the
        // same symbol (symbols denote one string by contract).
        assert!(memo.matches_str(3, "zzz"));
        assert!(!memo.matches_str(4, "zzz"));
    }
}
