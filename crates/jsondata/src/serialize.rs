//! JSON serialization: compact and pretty writers with RFC 8259 escaping.

use std::fmt::Write as _;

use crate::value::Json;

/// Serializes a value compactly (no insignificant whitespace).
///
/// ```
/// use jsondata::{parse, serialize::to_string};
/// let j = parse(r#"{ "a" : [ 1, 2 ] }"#).unwrap();
/// assert_eq!(to_string(&j), r#"{"a":[1,2]}"#);
/// ```
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write_compact(&mut out, value);
    out
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty(value: &Json) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}

/// Escapes a string body per RFC 8259 and wraps it in quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_quoted(&mut out, s);
    out
}

fn write_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, value: &Json) {
    match value {
        Json::Num(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => write_quoted(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, v);
            }
            out.push(']');
        }
        Json::Object(o) => {
            out.push('{');
            for (i, (k, v)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_quoted(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Json, indent: usize) {
    const STEP: usize = 2;
    match value {
        Json::Num(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => write_quoted(out, s),
        Json::Array(items) if items.is_empty() => out.push_str("[]"),
        Json::Array(items) => {
            out.push_str("[\n");
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + STEP {
                    out.push(' ');
                }
                write_pretty(out, v, indent + STEP);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push(']');
        }
        Json::Object(o) if o.is_empty() => out.push_str("{}"),
        Json::Object(o) => {
            out.push_str("{\n");
            for (i, (k, v)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + STEP {
                    out.push(' ');
                }
                write_quoted(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + STEP);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}"#;
        let j = parse(src).unwrap();
        assert_eq!(to_string(&j), src);
        assert_eq!(parse(&to_string(&j)).unwrap(), j);
    }

    #[test]
    fn escapes_in_output() {
        let j = Json::str("a\"b\\c\nd\u{0001}");
        let s = to_string(&j);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&s).unwrap(), j);
    }

    #[test]
    fn pretty_round_trip() {
        let j = parse(r#"{"a":[1,{"b":[]}],"c":{}}"#).unwrap();
        let p = to_string_pretty(&j);
        assert!(p.contains("\n"));
        assert_eq!(parse(&p).unwrap(), j);
    }

    #[test]
    fn pretty_empty_containers_inline() {
        assert_eq!(to_string_pretty(&Json::empty_object()), "{}");
        assert_eq!(to_string_pretty(&Json::array([])), "[]");
    }

    #[test]
    fn quote_is_parseable() {
        let q = quote("weird \u{7} \\ \" chars");
        let back = parse(&q).unwrap();
        assert_eq!(back, Json::str("weird \u{7} \\ \" chars"));
    }
}
