//! # jsonpath — a JSONPath dialect over recursive, non-deterministic JNL
//!
//! §4.1 cites JSONPath [Gössner & Frank] as the community's XPath-style
//! answer to JSON querying — the system that motivates JNL's
//! non-deterministic (`X_e`, `X_{i:j}`) and recursive (`(α)*`) extensions.
//! This crate implements the navigational core of the dialect:
//!
//! | Syntax | Meaning | JNL compilation |
//! |---|---|---|
//! | `$` | root | `ε` |
//! | `.key` / `['key']` | child by key | `X_key` |
//! | `[3]` | array element | `X_3` |
//! | `[-1]` | last element | `X_{-1}` |
//! | `[1:4]` | slice (end exclusive) | `X_{1:3}` |
//! | `[1:]` | open slice | `X_{1:∞}` |
//! | `.*` / `[*]` | any child | `X_{Σ*} ∪ X_{0:∞}` |
//! | `..` | recursive descent | `(X_{Σ*} ∪ X_{0:∞})*` |
//!
//! Selection runs two ways: compiled to JNL binary formulas and evaluated
//! by the Prop 3 engine, or directly (the differential oracle).
//!
//! ```
//! use jsondata::parse;
//! use jsonpath::JsonPath;
//!
//! let store = parse(r#"{"store": {"book": [
//!     {"title": "Sayings", "price": 8},
//!     {"title": "Moby Dick", "price": 9}
//! ]}}"#).unwrap();
//!
//! let path = JsonPath::parse("$.store.book[*].title").unwrap();
//! let titles = path.select(&store);
//! assert_eq!(titles.len(), 2);
//! ```

use std::fmt;

use jnl::ast::{Binary, Unary};
use jsondata::{Json, JsonTree, NodeId};

/// One JSONPath step.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// `.key` or `['key']`.
    Key(String),
    /// `[i]`, possibly negative.
    Index(i64),
    /// `[i:j]` with exclusive end; `None` = open.
    Slice(u64, Option<u64>),
    /// `.*` or `[*]` — all children (object and array).
    Wildcard,
    /// `..` — zero or more descents.
    RecursiveDescent,
}

/// A parsed JSONPath.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonPath {
    steps: Vec<PathStep>,
}

/// JSONPath syntax errors.
#[derive(Debug, Clone, PartialEq)]
pub struct PathError {
    /// Byte offset.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSONPath error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for PathError {}

impl JsonPath {
    /// Parses a JSONPath expression.
    pub fn parse(src: &str) -> Result<JsonPath, PathError> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let err = |pos: usize, m: &str| PathError {
            offset: pos,
            message: m.to_owned(),
        };
        if !src.starts_with('$') {
            return Err(err(0, "a JSONPath starts with $"));
        }
        pos += 1;
        let mut steps = Vec::new();
        while pos < bytes.len() {
            match bytes[pos] {
                b'.' => {
                    if bytes.get(pos + 1) == Some(&b'.') {
                        steps.push(PathStep::RecursiveDescent);
                        pos += 2;
                        // `..` must be followed by a selector; `..key` and
                        // `..[...]` both work. A bare trailing `..` is an
                        // error.
                        if pos >= bytes.len() {
                            return Err(err(pos, "trailing `..`"));
                        }
                        if bytes[pos] == b'[' {
                            continue;
                        }
                        let (name, next) = take_name(src, pos)
                            .ok_or_else(|| err(pos, "expected a name after `..`"))?;
                        steps.push(if name == "*" {
                            PathStep::Wildcard
                        } else {
                            PathStep::Key(name)
                        });
                        pos = next;
                    } else {
                        pos += 1;
                        let (name, next) = take_name(src, pos)
                            .ok_or_else(|| err(pos, "expected a name after `.`"))?;
                        steps.push(if name == "*" {
                            PathStep::Wildcard
                        } else {
                            PathStep::Key(name)
                        });
                        pos = next;
                    }
                }
                b'[' => {
                    let close = src[pos..]
                        .find(']')
                        .map(|i| pos + i)
                        .ok_or_else(|| err(pos, "unterminated `[`"))?;
                    let body = src[pos + 1..close].trim();
                    if body == "*" {
                        steps.push(PathStep::Wildcard);
                    } else if let Some(q) = body.strip_prefix('\'') {
                        let name = q
                            .strip_suffix('\'')
                            .ok_or_else(|| err(pos, "unterminated quoted name"))?;
                        steps.push(PathStep::Key(name.to_owned()));
                    } else if let Some(colon) = body.find(':') {
                        let start: u64 = if body[..colon].trim().is_empty() {
                            0
                        } else {
                            body[..colon]
                                .trim()
                                .parse()
                                .map_err(|_| err(pos, "bad slice start"))?
                        };
                        let end_txt = body[colon + 1..].trim();
                        let end: Option<u64> = if end_txt.is_empty() {
                            None
                        } else {
                            Some(end_txt.parse().map_err(|_| err(pos, "bad slice end"))?)
                        };
                        if let Some(e) = end {
                            if e <= start {
                                return Err(err(pos, "empty slice"));
                            }
                        }
                        steps.push(PathStep::Slice(start, end));
                    } else {
                        let i: i64 = body.parse().map_err(|_| err(pos, "bad index"))?;
                        steps.push(PathStep::Index(i));
                    }
                    pos = close + 1;
                }
                _ => return Err(err(pos, "expected `.` or `[`")),
            }
        }
        Ok(JsonPath { steps })
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Compiles into JNL binary formulas. JNL has no union of binary
    /// formulas (Definition 1), so each `*` wildcard — which selects one
    /// child along *either* the object or the array axis — distributes into
    /// two branches; the result is a disjunction of pure-JNL paths
    /// (`2^#wildcards` of them). Recursive descent needs no expansion:
    /// `(A ∪ B)* = (A* ∘ B*)*` keeps `..` a single formula.
    pub fn to_jnl_branches(&self) -> Vec<Binary> {
        let mut branches: Vec<Vec<Binary>> = vec![Vec::new()];
        for s in &self.steps {
            match s {
                PathStep::Key(k) => {
                    for b in &mut branches {
                        b.push(Binary::Key(k.clone()));
                    }
                }
                PathStep::Index(i) => {
                    for b in &mut branches {
                        b.push(Binary::Index(*i));
                    }
                }
                PathStep::Slice(i, j) => {
                    for b in &mut branches {
                        b.push(Binary::Range(*i, j.map(|j| j.saturating_sub(1))));
                    }
                }
                PathStep::Wildcard => {
                    let mut doubled = Vec::with_capacity(branches.len() * 2);
                    for b in branches {
                        let mut via_key = b.clone();
                        via_key.push(Binary::any_key());
                        let mut via_idx = b;
                        via_idx.push(Binary::any_index());
                        doubled.push(via_key);
                        doubled.push(via_idx);
                    }
                    branches = doubled;
                }
                PathStep::RecursiveDescent => {
                    for b in &mut branches {
                        b.push(descendant_or_self());
                    }
                }
            }
        }
        branches.into_iter().map(Binary::compose).collect()
    }

    /// The selection condition as a unary JNL formula: "this node can make
    /// a compiled path move" — used for fragment analysis and engines.
    pub fn to_jnl_unary(&self) -> Unary {
        Unary::or(
            self.to_jnl_branches()
                .into_iter()
                .map(Unary::exists)
                .collect(),
        )
    }

    /// Selects matching values by evaluating the JNL compilation with the
    /// Proposition 3 engine.
    pub fn select(&self, doc: &Json) -> Vec<Json> {
        let tree = JsonTree::build(doc);
        let nodes = self.select_nodes(&tree);
        let _ = doc;
        nodes.into_iter().map(|n| tree.json_at(n)).collect()
    }

    /// Selects matching tree nodes.
    pub fn select_nodes(&self, tree: &JsonTree) -> Vec<NodeId> {
        // Direct navigation over the node sets; the JNL compilation is the
        // differential twin (see tests).
        let mut current: Vec<NodeId> = vec![tree.root()];
        for s in &self.steps {
            let mut next: Vec<NodeId> = Vec::new();
            let push = |n: NodeId, out: &mut Vec<NodeId>| {
                if !out.contains(&n) {
                    out.push(n);
                }
            };
            for &n in &current {
                match s {
                    PathStep::Key(k) => {
                        if let Some(c) = tree.child_by_key(n, k) {
                            push(c, &mut next);
                        }
                    }
                    PathStep::Index(i) => {
                        if let Some(c) = tree.child_by_signed_index(n, *i) {
                            push(c, &mut next);
                        }
                    }
                    PathStep::Slice(i, j) => {
                        for (pos, c) in tree.arr_children(n).iter().enumerate() {
                            let pos = pos as u64;
                            if pos >= *i && j.is_none_or(|j| pos < j) {
                                push(*c, &mut next);
                            }
                        }
                    }
                    PathStep::Wildcard => {
                        for (_, c) in tree.children(n) {
                            push(c, &mut next);
                        }
                    }
                    PathStep::RecursiveDescent => {
                        // Self plus all descendants, in document order.
                        let lo = n.index();
                        let hi = lo + tree.subtree_size(n);
                        for i in lo..hi {
                            push(NodeId::from_index(i), &mut next);
                        }
                    }
                }
            }
            current = next;
        }
        current
    }

    /// Selection through the JNL compilation: forward images of the
    /// branch formulas from the root — used to validate `to_jnl_branches`
    /// against the direct evaluator.
    pub fn select_nodes_via_jnl(&self, tree: &JsonTree) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        let mut matchers = relex::SymMatcherTable::new();
        for alpha in self.to_jnl_branches() {
            for n in step_sets(tree, &alpha, vec![tree.root()], &mut matchers) {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }
}

/// The descendant-or-self relation in pure JNL: object and array axes have
/// no binary union in Definition 1, but closures compose —
/// `(X_{Σ*} ∪ X_{0:∞})* = ((X_{Σ*})* ∘ (X_{0:∞})*)*`.
fn descendant_or_self() -> Binary {
    Binary::star(Binary::compose(vec![
        Binary::star(Binary::any_key()),
        Binary::star(Binary::any_index()),
    ]))
}

/// Direct set-stepping evaluation of a binary formula from a source set —
/// the forward image `{m | ∃n ∈ from: (n, m) ∈ JαK}`.
fn step_sets(
    tree: &JsonTree,
    alpha: &Binary,
    from: Vec<NodeId>,
    matchers: &mut relex::SymMatcherTable,
) -> Vec<NodeId> {
    match alpha {
        Binary::Epsilon => from,
        Binary::Key(w) => from
            .into_iter()
            .filter_map(|n| tree.child_by_key(n, w))
            .collect(),
        Binary::Index(i) => from
            .into_iter()
            .filter_map(|n| tree.child_by_signed_index(n, *i))
            .collect(),
        Binary::KeyRegex(e) => {
            // Compiled once through the threaded matcher table: a regex
            // under `(α)*` keeps its precomputed symbol bitset (or warm
            // memo) across fixpoint rounds instead of recompiling every
            // iteration.
            let matcher = matchers.matcher(e, || tree.interner().iter().map(|(_, s)| s));
            let mut out = Vec::new();
            for n in from {
                for (k, c) in tree.obj_entries(n) {
                    if matcher.matches_sym(k.index(), || tree.resolve(k)) && !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
            out
        }
        Binary::Range(i, j) => {
            let mut out = Vec::new();
            for n in from {
                for (pos, c) in tree.arr_children(n).iter().enumerate() {
                    let pos = pos as u64;
                    if pos >= *i && j.is_none_or(|j| pos <= j) && !out.contains(c) {
                        out.push(*c);
                    }
                }
            }
            out
        }
        Binary::Test(phi) => {
            let sets = jnl::eval::evaluate(tree, phi);
            from.into_iter().filter(|n| sets[n.index()]).collect()
        }
        Binary::Compose(parts) => parts
            .iter()
            .fold(from, |acc, p| step_sets(tree, p, acc, matchers)),
        Binary::Star(inner) => {
            let mut acc = from;
            loop {
                let next = step_sets(tree, inner, acc.clone(), matchers);
                let mut changed = false;
                let mut merged = acc.clone();
                for n in next {
                    if !merged.contains(&n) {
                        merged.push(n);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
                acc = merged;
            }
            acc
        }
    }
}

fn take_name(src: &str, pos: usize) -> Option<(String, usize)> {
    let rest = &src[pos..];
    if rest.starts_with('*') {
        return Some(("*".to_owned(), pos + 1));
    }
    let end = rest.find(['.', '[']).unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some((rest[..end].to_owned(), pos + end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;

    fn store() -> Json {
        parse(
            r#"{"store": {
                "book": [
                    {"title": "Sayings of the Century", "price": 8, "tags": ["old"]},
                    {"title": "Moby Dick", "price": 9, "tags": []},
                    {"title": "The Lord of the Rings", "price": 22, "tags": ["long", "old"]}
                ],
                "bicycle": {"color": "red", "price": 19}
            }}"#,
        )
        .unwrap()
    }

    #[test]
    fn basic_selection() {
        let doc = store();
        assert_eq!(
            JsonPath::parse("$.store.book[0].title")
                .unwrap()
                .select(&doc),
            vec![Json::str("Sayings of the Century")]
        );
        assert_eq!(
            JsonPath::parse("$.store.book[-1].price")
                .unwrap()
                .select(&doc),
            vec![Json::Num(22)]
        );
        assert_eq!(
            JsonPath::parse("$['store']['bicycle']['color']")
                .unwrap()
                .select(&doc),
            vec![Json::str("red")]
        );
    }

    #[test]
    fn wildcard_and_slices() {
        let doc = store();
        let titles = JsonPath::parse("$.store.book[*].title")
            .unwrap()
            .select(&doc);
        assert_eq!(titles.len(), 3);
        let slice = JsonPath::parse("$.store.book[0:2].price")
            .unwrap()
            .select(&doc);
        assert_eq!(slice, vec![Json::Num(8), Json::Num(9)]);
        let open = JsonPath::parse("$.store.book[1:].price")
            .unwrap()
            .select(&doc);
        assert_eq!(open, vec![Json::Num(9), Json::Num(22)]);
        let all = JsonPath::parse("$.store.*").unwrap().select(&doc);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn recursive_descent() {
        let doc = store();
        let prices = JsonPath::parse("$..price").unwrap().select(&doc);
        assert_eq!(prices.len(), 4);
        let mut sorted: Vec<u64> = prices.iter().filter_map(Json::as_num).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![8, 9, 19, 22]);
        let tags = JsonPath::parse("$..tags[*]").unwrap().select(&doc);
        assert_eq!(tags.len(), 3);
    }

    #[test]
    fn direct_and_jnl_selection_agree() {
        let doc = store();
        let tree = JsonTree::build(&doc);
        for src in [
            "$.store.book[0].title",
            "$.store.book[*].title",
            "$.store.book[0:2]",
            "$.store.*",
            "$..price",
            "$..book[*].tags",
            "$.store.book[1:].tags[*]",
            "$..tags",
        ] {
            let p = JsonPath::parse(src).unwrap();
            let mut direct = p.select_nodes(&tree);
            let mut via_jnl = p.select_nodes_via_jnl(&tree);
            direct.sort();
            via_jnl.sort();
            assert_eq!(direct, via_jnl, "path {src}");
        }
    }

    #[test]
    fn compiled_formulas_are_in_the_extended_fragment() {
        let p = JsonPath::parse("$..book[*].title").unwrap();
        let phi = p.to_jnl_unary();
        let frag = phi.fragment();
        assert!(frag.nondeterministic && frag.recursive && !frag.eq_pair);
    }

    #[test]
    fn parse_errors() {
        for bad in ["store", "$.", "$[", "$[1:1]", "$[x]", "$..", "$['unclosed]"] {
            assert!(JsonPath::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn root_only() {
        let doc = store();
        let r = JsonPath::parse("$").unwrap().select(&doc);
        assert_eq!(r, vec![doc]);
    }
}
