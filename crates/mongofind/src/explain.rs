//! `EXPLAIN` / `EXPLAIN ANALYZE` for the `find` dialect.
//!
//! [`Collection::explain`] describes — without executing anything — the
//! route the governed executor would take for a filter, mirroring the
//! routing order of [`Collection::find_refs_routed_with_ctx`] (which is
//! also the order the `jagg` leading-`$match` fast path uses):
//!
//! 1. **index** — [`Collection::index_answerable`]: at least one conjunct
//!    probes a declared secondary index; the plan lists every probe and
//!    the residual predicate evaluated on bitmap survivors.
//! 2. **jnl** — [`Filter::jnl_exact`]: the filter compiles exactly into
//!    the deterministic JNL fragment and one evaluation per segment
//!    answers every document of that segment at once.
//! 3. **scan** — the chunk-parallel document scan.
//!
//! [`Collection::explain_analyze`] executes the *same* routed path under
//! a fresh [`QueryMetrics`] sink and annotates the plan with what
//! actually happened: row count, wall time, and the full counter
//! snapshot. Because the plan and the execution share one routing
//! function, the claimed route and the recorded counters cannot drift —
//! the `s10` bench gate asserts exactly this agreement (an index route
//! records probes and zero scanned documents; a scan route records
//! scanned documents and zero probes; a JNL route records visited
//! segments and neither of the others).
//!
//! Both plans render two ways: [`FindExplain::to_json`] (machine-stable,
//! natural-number wall time in microseconds — the value space is ℕ) and
//! [`FindExplain::render_text`] (one node per line, pinned by snapshot
//! tests in the bench crate).

use std::sync::Arc;
use std::time::Instant;

use jguard::{QueryCtx, QueryError};
use jsondata::Json;
use jtrace::{QueryMetrics, Snapshot, SpanKind, ALL_COUNTERS};

use crate::index::Probe;
use crate::{expect_ungoverned, Collection, DocRef, Filter};

/// The execution route chosen for a filter, in fallback order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Index probes + residual on survivors.
    Index,
    /// Whole-segment JNL evaluation (the Prop 1 engine).
    Jnl,
    /// Chunk-parallel document scan.
    Scan,
}

impl Route {
    /// Stable lowercase name (`"index"` / `"jnl"` / `"scan"`).
    pub fn name(self) -> &'static str {
        match self {
            Route::Index => "index",
            Route::Jnl => "jnl",
            Route::Scan => "scan",
        }
    }
}

/// One planned index probe, rendered for humans and JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeDesc {
    /// The declared index path the probe runs against.
    pub path: String,
    /// Probe kind: `"eq"`, `"in"`, or `"range"`.
    pub kind: &'static str,
    /// The conjunct, rendered (`age >= 30`).
    pub condition: String,
}

/// The `EXPLAIN` plan of one `find`: the route the governed executor
/// would take and, for the index route, the probe/residual split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindExplain {
    /// The filter, rendered ([`Filter`]'s `Display`).
    pub filter: String,
    /// Chosen route (mirrors the executor's routing order exactly).
    pub route: Route,
    /// Documents in the collection at plan time.
    pub docs: usize,
    /// Segments of the tree column at plan time.
    pub segments: usize,
    /// Declared index paths, in declaration order.
    pub indexed_paths: Vec<String>,
    /// Index probes, in execution order (empty off the index route).
    pub probes: Vec<ProbeDesc>,
    /// Residual conjunction evaluated on bitmap survivors, rendered;
    /// `None` when the probes are exact (or off the index route).
    pub residual: Option<String>,
}

impl FindExplain {
    /// Machine-stable JSON rendering of the plan.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("query".into(), Json::str("find")),
            ("filter".into(), Json::str(&self.filter)),
            ("route".into(), Json::str(self.route.name())),
            ("docs".into(), Json::Num(self.docs as u64)),
            ("segments".into(), Json::Num(self.segments as u64)),
            (
                "indexes".into(),
                Json::array(self.indexed_paths.iter().map(Json::str)),
            ),
            (
                "probes".into(),
                Json::array(self.probes.iter().map(|p| {
                    Json::object(vec![
                        ("path".into(), Json::str(&p.path)),
                        ("kind".into(), Json::str(p.kind)),
                        ("condition".into(), Json::str(&p.condition)),
                    ])
                    .expect("distinct literal keys")
                })),
            ),
        ];
        if let Some(residual) = &self.residual {
            pairs.push(("residual".into(), Json::str(residual)));
        }
        Json::object(pairs).expect("distinct literal keys")
    }

    /// Human-readable rendering, one plan node per line (pinned by the
    /// explain snapshot tests).
    pub fn render_text(&self) -> String {
        let mut out = format!("find {}\n", self.filter);
        out.push_str(&format!(
            "  route: {}  [docs={}, segments={}]\n",
            self.route.name(),
            self.docs,
            self.segments
        ));
        if !self.indexed_paths.is_empty() {
            out.push_str(&format!("  indexes: [{}]\n", self.indexed_paths.join(", ")));
        }
        for (i, p) in self.probes.iter().enumerate() {
            out.push_str(&format!("  probe[{i}] {}: {}\n", p.kind, p.condition));
        }
        if let Some(residual) = &self.residual {
            out.push_str(&format!("  residual: {residual}\n"));
        }
        out
    }
}

/// Span-ring capacity for `EXPLAIN ANALYZE` sinks. A find touches a
/// handful of spans per segment; 4096 slots hold any realistic single
/// query, and the `spans_dropped` honesty counter reports overflow when
/// one doesn't fit.
pub const ANALYZE_SPAN_CAPACITY: usize = 4096;

/// The `EXPLAIN ANALYZE` result: the plan plus what execution recorded.
#[derive(Debug, Clone)]
pub struct FindAnalyze {
    /// The plan, as [`Collection::explain`] would have produced it.
    pub plan: FindExplain,
    /// Matching documents the routed execution returned.
    pub rows: usize,
    /// Wall time of the routed execution, in microseconds.
    pub wall_us: u64,
    /// Counter snapshot of the execution's private metrics sink.
    pub counters: Snapshot,
    /// Span events the execution recorded into its ring.
    pub spans_recorded: u64,
    /// Span events lost to ring wrap-around — the honesty counter: a
    /// nonzero value means the trace is a suffix, not the whole story.
    pub spans_dropped: u64,
}

impl FindAnalyze {
    /// Machine-stable JSON rendering: the plan annotated with actuals.
    /// Counters appear under `"counters"` with every counter present
    /// (zeros included) so the schema is layout-independent.
    pub fn to_json(&self) -> Json {
        let Json::Object(plan) = self.plan.to_json() else {
            unreachable!("plans render to objects")
        };
        let mut pairs: Vec<(String, Json)> = plan
            .pairs()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        pairs.push(("rows".into(), Json::Num(self.rows as u64)));
        pairs.push(("wall_us".into(), Json::Num(self.wall_us)));
        let counters: Vec<(String, Json)> = ALL_COUNTERS
            .iter()
            .map(|&c| (c.name().to_owned(), Json::Num(self.counters.get(c))))
            .collect();
        pairs.push((
            "counters".into(),
            Json::object(counters).expect("counter names are distinct"),
        ));
        pairs.push((
            "spans".into(),
            Json::object(vec![
                ("recorded".into(), Json::Num(self.spans_recorded)),
                ("dropped".into(), Json::Num(self.spans_dropped)),
            ])
            .expect("distinct literal keys"),
        ));
        Json::object(pairs).expect("annotation keys disjoint from plan keys")
    }

    /// Human-readable rendering: the plan text plus `actual:`,
    /// `counters:` (nonzero counters only), and `spans:` lines.
    pub fn render_text(&self) -> String {
        let mut out = self.plan.render_text();
        out.push_str(&format!(
            "  actual: rows={}, wall_us={}\n",
            self.rows, self.wall_us
        ));
        let nz = self.counters.nonzero();
        if !nz.is_empty() {
            let parts: Vec<String> = nz.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("  counters: {}\n", parts.join(", ")));
        }
        out.push_str(&format!(
            "  spans: recorded={}, dropped={}\n",
            self.spans_recorded, self.spans_dropped
        ));
        out
    }
}

fn describe_probe(path: &str, probe: &Probe<'_>) -> ProbeDesc {
    let (kind, condition) = match probe {
        Probe::Eq(v) => ("eq", format!("{path} = {v}")),
        Probe::In(items) => {
            let vals: Vec<String> = items.iter().map(|v| v.to_string()).collect();
            ("in", format!("{path} in [{}]", vals.join(", ")))
        }
        Probe::Range(cmp, v) => ("range", format!("{path} {cmp} {v}")),
    };
    ProbeDesc {
        path: path.to_owned(),
        kind,
        condition,
    }
}

impl Collection {
    /// The route [`Collection::find_refs_routed_with_ctx`] (and the
    /// `jagg` leading-`$match` fast path) takes for `filter` — the single
    /// routing function `EXPLAIN` and execution share.
    pub fn route_of(&self, filter: &Filter) -> Route {
        if self.index_answerable(filter) {
            Route::Index
        } else if filter.jnl_exact() {
            Route::Jnl
        } else {
            Route::Scan
        }
    }

    /// `EXPLAIN`: the plan for `filter`, without executing anything.
    pub fn explain(&self, filter: &Filter) -> FindExplain {
        let route = self.route_of(filter);
        let mut probes = Vec::new();
        let mut residual = None;
        if route == Route::Index {
            let plan = self
                .indexes
                .plan(filter)
                .expect("index route implies a plan");
            probes = plan
                .probes
                .iter()
                .map(|(pi, probe)| describe_probe(self.indexes.path_name(*pi), probe))
                .collect();
            if !plan.residual.is_empty() {
                let parts: Vec<String> = plan.residual.iter().map(|f| f.to_string()).collect();
                residual = Some(parts.join(" && "));
            }
        }
        FindExplain {
            filter: filter.to_string(),
            route,
            docs: self.len(),
            segments: self.segments.len(),
            indexed_paths: self.indexes.declared().map(str::to_owned).collect(),
            probes,
            residual,
        }
    }

    /// [`Collection::find_refs`] through the same routing `EXPLAIN`
    /// describes: index probe when answerable, whole-segment JNL when the
    /// filter sits in the exact fragment, scan otherwise.
    pub fn find_refs_routed(&self, filter: &Filter) -> Vec<DocRef> {
        expect_ungoverned(self.find_refs_routed_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_refs_routed`] under a [`QueryCtx`]. The route
    /// decision runs inside a `plan` span when the context carries a
    /// span-recording sink.
    pub fn find_refs_routed_with_ctx(
        &self,
        filter: &Filter,
        ctx: &QueryCtx,
    ) -> Result<Vec<DocRef>, QueryError> {
        ctx.span_open(SpanKind::Plan, 0);
        let route = self.route_of(filter);
        ctx.span_close(SpanKind::Plan, 0);
        match route {
            Route::Index => self.find_refs_indexed_with_ctx(filter, ctx),
            Route::Jnl => self.find_refs_via_jnl_with_ctx(filter, ctx),
            Route::Scan => self.find_refs_with_ctx(filter, ctx),
        }
    }

    /// `EXPLAIN ANALYZE`: plans, then executes the routed path under a
    /// fresh private span-recording [`QueryMetrics`] sink, and returns
    /// the plan annotated with actual rows, wall time, counters, and the
    /// span ring's recorded/dropped tallies.
    pub fn explain_analyze(&self, filter: &Filter) -> Result<FindAnalyze, QueryError> {
        let plan = self.explain(filter);
        let sink = Arc::new(QueryMetrics::with_spans(ANALYZE_SPAN_CAPACITY));
        let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
        let start = Instant::now();
        let refs = self.find_refs_routed_with_ctx(filter, &ctx)?;
        let wall_us = start.elapsed().as_micros() as u64;
        let spans = sink.spans().expect("sink was built with a span ring");
        Ok(FindAnalyze {
            plan,
            rows: refs.len(),
            wall_us,
            counters: sink.snapshot(),
            spans_recorded: spans.recorded(),
            spans_dropped: spans.dropped(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;
    use jtrace::Counter;

    fn people() -> Collection {
        Collection::from_array(
            &parse(
                r#"[
                {"name": {"first": "Sue", "last": "Kim"}, "age": 28, "hobbies": ["yoga", "chess"]},
                {"name": {"first": "John", "last": "Doe"}, "age": 32, "hobbies": ["golf"]},
                {"name": {"first": "Ada", "last": "Kim"}, "age": 41, "hobbies": []}
            ]"#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn explain_routes_match_execution_counters() {
        let mut coll = people();
        coll.create_index("age");

        // Index route: probes recorded, no docs scanned, no segments.
        let f = Filter::parse_str(r#"{"age": {"$gte": 30}}"#).unwrap();
        let ex = coll.explain(&f);
        assert_eq!(ex.route, Route::Index);
        assert_eq!(ex.probes.len(), 1);
        assert_eq!(ex.probes[0].kind, "range");
        let an = coll.explain_analyze(&f).unwrap();
        assert_eq!(an.rows, 2);
        assert!(an.counters.get(Counter::IndexProbes) > 0);
        assert_eq!(an.counters.get(Counter::DocsScanned), 0);
        assert_eq!(an.counters.get(Counter::SegmentsVisited), 0);

        // JNL route: unindexed exact-fragment filter.
        let f = Filter::parse_str(r#"{"name.last": "Kim"}"#).unwrap();
        let ex = coll.explain(&f);
        assert_eq!(ex.route, Route::Jnl);
        let an = coll.explain_analyze(&f).unwrap();
        assert_eq!(an.rows, 2);
        assert!(an.counters.get(Counter::SegmentsVisited) > 0);
        assert_eq!(an.counters.get(Counter::IndexProbes), 0);
        assert_eq!(an.counters.get(Counter::DocsScanned), 0);

        // Scan route: order comparison on an unindexed path.
        let f = Filter::parse_str(r#"{"name.last": {"$gt": "K"}}"#).unwrap();
        let ex = coll.explain(&f);
        assert_eq!(ex.route, Route::Scan);
        let an = coll.explain_analyze(&f).unwrap();
        assert_eq!(an.counters.get(Counter::DocsScanned), coll.len() as u64);
        assert_eq!(an.counters.get(Counter::IndexProbes), 0);
        assert_eq!(an.counters.get(Counter::SegmentsVisited), 0);
    }

    #[test]
    fn routed_results_agree_with_scan_oracle() {
        let mut coll = people();
        coll.create_index("age");
        for src in [
            r#"{"age": {"$gte": 30}}"#,
            r#"{"name.last": "Kim"}"#,
            r#"{"name.last": {"$gt": "K"}}"#,
            r#"{"age": {"$gte": 30}, "name.last": "Kim"}"#,
        ] {
            let f = Filter::parse_str(src).unwrap();
            assert_eq!(coll.find_refs_routed(&f), coll.find_refs(&f), "{src}");
        }
    }

    #[test]
    fn explain_renders_probes_and_residual() {
        let mut coll = people();
        coll.create_index("age");
        let f = Filter::parse_str(
            r#"{"age": {"$gte": 30}, "name.last": "Kim", "hobbies": {"$size": 0}}"#,
        )
        .unwrap();
        let ex = coll.explain(&f);
        assert_eq!(ex.route, Route::Index);
        let text = ex.render_text();
        assert!(text.contains("route: index"), "{text}");
        assert!(text.contains("age >= 30"), "{text}");
        assert!(text.contains("residual:"), "{text}");
        assert!(text.contains("size(hobbies) = 0"), "{text}");
        let json = ex.to_json().to_string();
        assert!(json.contains("\"route\":\"index\""), "{json}");
        assert!(json.contains("\"kind\":\"range\""), "{json}");
    }

    #[test]
    fn analyze_json_carries_every_counter() {
        let coll = people();
        let f = Filter::parse_str(r#"{"age": {"$gte": 30}}"#).unwrap();
        let an = coll.explain_analyze(&f).unwrap();
        let json = an.to_json();
        let counters = json
            .as_object()
            .and_then(|o| o.get("counters"))
            .and_then(Json::as_object)
            .expect("counters object");
        assert_eq!(counters.len(), ALL_COUNTERS.len());
    }

    #[test]
    fn analyze_reports_span_honesty() {
        let coll = people();
        let f = Filter::parse_str(r#"{"age": {"$gte": 30}}"#).unwrap();
        let an = coll.explain_analyze(&f).unwrap();
        // The routed path always opens at least the plan span, and a
        // single small query never overflows the analyze ring.
        assert!(an.spans_recorded > 0);
        assert_eq!(an.spans_dropped, 0);
        let text = an.render_text();
        assert!(
            text.contains(&format!("spans: recorded={}, dropped=0", an.spans_recorded)),
            "{text}"
        );
        let json = an.to_json();
        let spans = json
            .as_object()
            .and_then(|o| o.get("spans"))
            .and_then(Json::as_object)
            .expect("spans object");
        assert_eq!(spans.get("recorded"), Some(&Json::Num(an.spans_recorded)));
        assert_eq!(spans.get("dropped"), Some(&Json::Num(0)));
    }
}
