//! The JSON value type of the paper's §2 fragment.
//!
//! The full JSON specification defines seven kinds of values (objects,
//! arrays, strings, numbers, `true`, `false`, `null`). Following §2 of the
//! paper, this crate abstracts from encoding details and works with the
//! four-kind fragment: **objects**, **arrays**, **strings** and **natural
//! numbers**. The parser reports the excluded literals with targeted errors
//! so that real-world inputs fail loudly rather than silently.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::JsonError;

/// A JSON value in the paper's fragment.
///
/// Invariants:
/// * Object keys are pairwise distinct ([`Json::object`] and
///   [`ObjectBuilder`] enforce this; the `Object` payload is not publicly
///   constructible in a way that violates it).
/// * Object key order is preserved for serialization, but **equality and
///   hashing are unordered**: `{"a":1,"b":2} == {"b":2,"a":1}`. This mirrors
///   the paper's "each JSON dictionary is unordered".
#[derive(Clone)]
pub enum Json {
    /// An object: a set of key–value pairs with pairwise distinct keys.
    Object(ObjectRepr),
    /// An array: an ordered sequence of JSON values with positional access.
    Array(Vec<Json>),
    /// A string value over the unicode alphabet Σ.
    Str(String),
    /// A natural number (the paper restricts numbers to ℕ).
    Num(u64),
}

/// Internal object representation: insertion-ordered pairs with a uniqueness
/// invariant maintained by construction, plus a key-sorted index giving
/// `O(log n)` lookups (`get` sits on the `jschema` required-key loop and the
/// `mongofind` path-traversal hot paths).
#[derive(Clone, Default)]
pub struct ObjectRepr {
    pairs: Vec<(String, Json)>,
    /// Indices into `pairs`, sorted by key.
    by_key: Vec<u32>,
}

impl ObjectRepr {
    /// Builds the representation, rejecting duplicate keys. The sorted index
    /// doubles as the duplicate detector (adjacent equal keys).
    fn new(pairs: Vec<(String, Json)>) -> Result<ObjectRepr, JsonError> {
        let mut by_key: Vec<u32> = (0..pairs.len() as u32).collect();
        by_key.sort_unstable_by(|&a, &b| pairs[a as usize].0.cmp(&pairs[b as usize].0));
        for w in by_key.windows(2) {
            if pairs[w[0] as usize].0 == pairs[w[1] as usize].0 {
                return Err(JsonError::DuplicateKey(pairs[w[1] as usize].0.clone()));
            }
        }
        Ok(ObjectRepr { pairs, by_key })
    }

    /// The key–value pairs in insertion order.
    pub fn pairs(&self) -> &[(String, Json)] {
        &self.pairs
    }

    /// Looks up the value under `key`, if present (`O(log n)` via the
    /// sorted key index).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.by_key
            .binary_search_by(|&i| self.pairs[i as usize].0.as_str().cmp(key))
            .ok()
            .map(|pos| &self.pairs[self.by_key[pos] as usize].1)
    }

    /// Mutable [`ObjectRepr::get`]. Only the *value* is exposed — keys stay
    /// immutable, so the distinctness invariant and the sorted index cannot
    /// be broken through this accessor.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        self.by_key
            .binary_search_by(|&i| self.pairs[i as usize].0.as_str().cmp(key))
            .ok()
            .map(|pos| &mut self.pairs[self.by_key[pos] as usize].1)
    }

    /// Number of key–value pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the object is empty (`{}`).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates `(key, value)` pairs in **key order** (reuses the sorted
    /// index) — the canonical order [`Json::total_cmp`] compares objects in,
    /// exposed so tree-backed evaluators can mirror that comparison without
    /// materialising a [`Json`].
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.by_key.iter().map(|&i| {
            let (k, v) = &self.pairs[i as usize];
            (k.as_str(), v)
        })
    }
}

impl Json {
    /// Builds an object from key–value pairs, rejecting duplicate keys.
    ///
    /// ```
    /// use jsondata::Json;
    /// let ok = Json::object(vec![("a".into(), Json::Num(1))]).unwrap();
    /// assert!(ok.is_object());
    /// let dup = Json::object(vec![
    ///     ("a".into(), Json::Num(1)),
    ///     ("a".into(), Json::Num(2)),
    /// ]);
    /// assert!(dup.is_err());
    /// ```
    pub fn object(pairs: Vec<(String, Json)>) -> Result<Json, JsonError> {
        Ok(Json::Object(ObjectRepr::new(pairs)?))
    }

    /// The empty object `{}`.
    pub fn empty_object() -> Json {
        Json::Object(ObjectRepr::default())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience array constructor.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Whether this value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Json::Object(_))
    }

    /// Whether this value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Json::Array(_))
    }

    /// Whether this value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Json::Str(_))
    }

    /// Whether this value is a (natural) number.
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Num(_))
    }

    /// Object accessor.
    pub fn as_object(&self) -> Option<&ObjectRepr> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value under `key`, if this is an object containing it.
    /// This is the navigation instruction `J[key]` of §2.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// The `i`-th array element, if this is an array of length > `i`.
    /// This is the navigation instruction `J[i]` of §2.
    pub fn index(&self, i: usize) -> Option<&Json> {
        self.as_array().and_then(|a| a.get(i))
    }

    /// Mutable [`Json::get`]: the value under `key` if this is an object
    /// containing it (keys themselves stay immutable, preserving the
    /// distinctness invariant). Used for in-place subvalue replacement,
    /// e.g. `$unwind` re-binding a path of an owned aggregation row.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Object(o) => o.get_mut(key),
            _ => None,
        }
    }

    /// Mutable [`Json::index`]: the `i`-th element if this is an array of
    /// length > `i`.
    pub fn index_mut(&mut self, i: usize) -> Option<&mut Json> {
        match self {
            Json::Array(a) => a.get_mut(i),
            _ => None,
        }
    }

    /// Total number of JSON values in this document (i.e. nodes of its tree),
    /// counting the document itself. Iterative: safe on very deep documents.
    pub fn node_count(&self) -> usize {
        let mut count = 0usize;
        let mut work: Vec<&Json> = vec![self];
        while let Some(v) = work.pop() {
            count += 1;
            match v {
                Json::Object(o) => work.extend(o.iter().map(|(_, c)| c)),
                Json::Array(a) => work.extend(a.iter()),
                _ => {}
            }
        }
        count
    }

    /// Height of the value's tree: leaves (strings, numbers, empty
    /// containers) have height 0. Iterative: safe on very deep documents.
    pub fn height(&self) -> usize {
        let mut best = 0usize;
        let mut work: Vec<(&Json, usize)> = vec![(self, 0)];
        while let Some((v, d)) = work.pop() {
            best = best.max(d);
            match v {
                Json::Object(o) => work.extend(o.iter().map(|(_, c)| (c, d + 1))),
                Json::Array(a) => work.extend(a.iter().map(|c| (c, d + 1))),
                _ => {}
            }
        }
        best
    }

    /// A total order on JSON values, used for normalisation (e.g. sorting
    /// `enum` members) and as the comparison MongoDB-style operators use.
    ///
    /// Order: numbers < strings < arrays < objects; numbers numerically,
    /// strings lexicographically, arrays lexicographically element-wise,
    /// objects as sorted key→value maps.
    pub fn total_cmp(&self, other: &Json) -> Ordering {
        fn rank(j: &Json) -> u8 {
            match j {
                Json::Num(_) => 0,
                Json::Str(_) => 1,
                Json::Array(_) => 2,
                Json::Object(_) => 3,
            }
        }
        match (self, other) {
            (Json::Num(a), Json::Num(b)) => a.cmp(b),
            (Json::Str(a), Json::Str(b)) => a.cmp(b),
            (Json::Array(a), Json::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Json::Object(a), Json::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter_sorted().zip(b.iter_sorted()) {
                    let c = ka.cmp(kb);
                    if c != Ordering::Equal {
                        return c;
                    }
                    let c = va.total_cmp(vb);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Json {
    /// Structural equality with **unordered** objects:
    /// `{"a":1,"b":2} == {"b":2,"a":1}`. Iterative, so equality of very deep
    /// documents does not overflow the stack.
    fn eq(&self, other: &Json) -> bool {
        let mut work: Vec<(&Json, &Json)> = vec![(self, other)];
        while let Some((a, b)) = work.pop() {
            match (a, b) {
                (Json::Num(x), Json::Num(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Json::Str(x), Json::Str(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Json::Array(x), Json::Array(y)) => {
                    if x.len() != y.len() {
                        return false;
                    }
                    work.extend(x.iter().zip(y.iter()));
                }
                (Json::Object(x), Json::Object(y)) => {
                    // Same cardinality and (keys distinct) every pair of `x`
                    // present in `y`.
                    if x.len() != y.len() {
                        return false;
                    }
                    for (k, v) in x.iter() {
                        match y.get(k) {
                            Some(w) => work.push((v, w)),
                            None => return false,
                        }
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

impl Eq for Json {}

impl Hash for Json {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Json::Num(n) => {
                0u8.hash(state);
                n.hash(state);
            }
            Json::Str(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Json::Array(a) => {
                2u8.hash(state);
                a.len().hash(state);
                for v in a {
                    v.hash(state);
                }
            }
            Json::Object(o) => {
                3u8.hash(state);
                o.len().hash(state);
                // Order-independent: hash sorted pairs.
                for (k, v) in o.iter_sorted() {
                    k.hash(state);
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Debug for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::serialize::to_string(self))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::serialize::to_string(self))
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Incremental object construction with duplicate-key detection.
///
/// ```
/// use jsondata::{Json, ObjectBuilder};
/// let person = ObjectBuilder::new()
///     .insert("name", Json::str("Sue"))
///     .insert("age", Json::Num(28))
///     .build()
///     .unwrap();
/// assert_eq!(person.get("age"), Some(&Json::Num(28)));
/// ```
#[derive(Default)]
pub struct ObjectBuilder {
    pairs: Vec<(String, Json)>,
}

impl ObjectBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a key–value pair. Duplicates are reported by [`build`].
    ///
    /// [`build`]: ObjectBuilder::build
    #[must_use]
    pub fn insert(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.pairs.push((key.into(), value.into()));
        self
    }

    /// Finishes construction, rejecting duplicate keys.
    pub fn build(self) -> Result<Json, JsonError> {
        Json::object(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(j: &Json) -> u64 {
        let mut s = DefaultHasher::new();
        j.hash(&mut s);
        s.finish()
    }

    #[test]
    fn object_equality_is_unordered() {
        let a = Json::object(vec![("x".into(), Json::Num(1)), ("y".into(), Json::Num(2))]).unwrap();
        let b = Json::object(vec![("y".into(), Json::Num(2)), ("x".into(), Json::Num(1))]).unwrap();
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn array_equality_is_ordered() {
        let a = Json::array([Json::Num(1), Json::Num(2)]);
        let b = Json::array([Json::Num(2), Json::Num(1)]);
        assert_ne!(a, b);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err =
            Json::object(vec![("k".into(), Json::Num(1)), ("k".into(), Json::Num(1))]).unwrap_err();
        assert!(matches!(err, JsonError::DuplicateKey(k) if k == "k"));
    }

    #[test]
    fn nested_unordered_equality() {
        let a = Json::object(vec![(
            "o".into(),
            Json::object(vec![
                ("p".into(), Json::str("v")),
                ("q".into(), Json::Num(3)),
            ])
            .unwrap(),
        )])
        .unwrap();
        let b = Json::object(vec![(
            "o".into(),
            Json::object(vec![
                ("q".into(), Json::Num(3)),
                ("p".into(), Json::str("v")),
            ])
            .unwrap(),
        )])
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn node_count_counts_all_json_values() {
        // The paper's §3 example: 5 JSON values inside the document.
        let j = Json::object(vec![
            (
                "name".into(),
                Json::object(vec![
                    ("first".into(), Json::str("John")),
                    ("last".into(), Json::str("Doe")),
                ])
                .unwrap(),
            ),
            ("age".into(), Json::Num(32)),
        ])
        .unwrap();
        assert_eq!(j.node_count(), 5);
        assert_eq!(j.height(), 2);
    }

    #[test]
    fn total_order_ranks_types() {
        let n = Json::Num(0);
        let s = Json::str("");
        let a = Json::array([]);
        let o = Json::empty_object();
        assert!(n.total_cmp(&s).is_lt());
        assert!(s.total_cmp(&a).is_lt());
        assert!(a.total_cmp(&o).is_lt());
        assert!(o.total_cmp(&o).is_eq());
    }

    #[test]
    fn total_order_objects_sorted_by_key() {
        let a = Json::object(vec![("a".into(), Json::Num(1))]).unwrap();
        let b = Json::object(vec![("b".into(), Json::Num(0))]).unwrap();
        assert!(a.total_cmp(&b).is_lt());
    }

    #[test]
    fn accessors() {
        let j = Json::object(vec![("arr".into(), Json::array([Json::Num(7)]))]).unwrap();
        assert_eq!(j.get("arr").unwrap().index(0), Some(&Json::Num(7)));
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.get("arr").unwrap().index(3), None);
        assert!(j.get("arr").unwrap().is_array());
    }

    #[test]
    fn height_of_leaves_is_zero() {
        assert_eq!(Json::Num(1).height(), 0);
        assert_eq!(Json::str("x").height(), 0);
        assert_eq!(Json::empty_object().height(), 0);
        assert_eq!(Json::array([]).height(), 0);
    }
}
