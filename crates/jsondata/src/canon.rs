//! Canonical subtree labels: the "online subtree equality" engine.
//!
//! The operators `EQ(α, A)`, `EQ(α, β)` (JNL), `∼(A)` and `Unique` (JSL)
//! compare *entire subtrees*. Naively each comparison costs `O(|J|)`, and
//! pre-computing all pairs costs `O(|J|²)` — the quadratic baseline the paper
//! mentions in the proof of Proposition 1. This module implements the
//! refinement: a single bottom-up pass assigns every node an integer *class
//! id* such that
//!
//! > `class(n) == class(m)`  ⇔  `json(n) == json(m)`,
//!
//! after which every subtree equality test is `O(1)`. Class ids are computed
//! by hash-consing node signatures (kind + value + child class list; object
//! children keyed and sorted so the unordered object semantics is honoured).
//!
//! Signatures carry interned [`Sym`]s — never owned strings — so hashing a
//! node costs a few `u64` mixes regardless of key/string lengths, and an
//! external value whose keys or atoms were never interned is known to be
//! absent before any tree node is visited.

use crate::fxhash::FxHashMap;
use crate::intern::Sym;
use crate::tree::{JsonTree, NodeId, NodeKind};
use crate::value::Json;

/// A canonical-label table for one [`JsonTree`].
pub struct CanonTable {
    class: Vec<u32>,
    interner: FxHashMap<Sig, u32>,
}

/// The hash-consed signature of a node: its kind/value plus the classes of
/// its children. Two nodes share a signature iff their subtrees are equal.
#[derive(PartialEq, Eq, Hash)]
enum Sig {
    Int(u64),
    Str(Sym),
    Arr(Vec<u32>),
    /// Symbol-sorted `(key, class)` pairs — object equality is unordered but
    /// the tree already stores children symbol-sorted.
    Obj(Vec<(Sym, u32)>),
}

impl CanonTable {
    /// Builds the table in `O(|J|)` hash operations (one pass, children
    /// before parents).
    pub fn build(tree: &JsonTree) -> CanonTable {
        let mut class = vec![0u32; tree.node_count()];
        let mut interner: FxHashMap<Sig, u32> = FxHashMap::default();
        for n in tree.bottom_up() {
            let sig = Self::signature_of_node(tree, &class, n);
            let next = interner.len() as u32;
            let id = *interner.entry(sig).or_insert(next);
            class[n.index()] = id;
        }
        CanonTable { class, interner }
    }

    fn signature_of_node(tree: &JsonTree, class: &[u32], n: NodeId) -> Sig {
        match tree.kind(n) {
            NodeKind::Int => Sig::Int(tree.num_value(n).expect("Int node has value")),
            NodeKind::Str => Sig::Str(tree.str_sym(n).expect("Str node has value")),
            NodeKind::Arr => Sig::Arr(
                tree.arr_children(n)
                    .iter()
                    .map(|c| class[c.index()])
                    .collect(),
            ),
            NodeKind::Obj => Sig::Obj(
                tree.obj_entries(n)
                    .map(|(k, c)| (k, class[c.index()]))
                    .collect(),
            ),
        }
    }

    /// The class id of node `n`.
    pub fn class_of(&self, n: NodeId) -> u32 {
        self.class[n.index()]
    }

    /// The full class vector, indexed by node id. Class ids are assigned
    /// deterministically (bottom-up, first-seen order), so two structurally
    /// identical trees — e.g. the fused and two-pass parse of one document —
    /// must yield byte-identical vectors; the differential tests assert it.
    pub fn classes(&self) -> &[u32] {
        &self.class
    }

    /// `O(1)` subtree equality: `json(a) == json(b)`.
    pub fn equal(&self, a: NodeId, b: NodeId) -> bool {
        self.class_of(a) == self.class_of(b)
    }

    /// Number of distinct subtree values in the tree.
    pub fn class_count(&self) -> usize {
        self.interner.len()
    }

    /// The class id an *external* JSON value would have in `tree` (the tree
    /// this table was built from), or `None` if the value does not occur as
    /// a subtree anywhere in the tree.
    ///
    /// Used by `EQ(α, A)` / `∼(A)`: a node `n` satisfies `json(n) == A` iff
    /// `class_of(n) == class_of_json(tree, A)`. Keys and string atoms are
    /// resolved through `tree`'s interner first; a probe miss proves absence
    /// immediately.
    pub fn class_of_json(&self, tree: &JsonTree, value: &Json) -> Option<u32> {
        // Iterative bottom-up over the external value, mirroring `build` but
        // lookup-only: any unseen signature proves the value is absent.
        enum Frame<'a> {
            Enter(&'a Json),
            ExitArr(usize),
            ExitObj(Vec<Sym>),
        }
        let mut work = vec![Frame::Enter(value)];
        let mut results: Vec<u32> = Vec::new();
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => match v {
                    Json::Num(n) => {
                        results.push(*self.interner.get(&Sig::Int(*n))?);
                    }
                    Json::Str(s) => {
                        let sym = tree.sym(s)?;
                        results.push(*self.interner.get(&Sig::Str(sym))?);
                    }
                    Json::Array(items) => {
                        work.push(Frame::ExitArr(items.len()));
                        for item in items.iter().rev() {
                            work.push(Frame::Enter(item));
                        }
                    }
                    Json::Object(o) => {
                        // Keys must all be interned in the tree, and the
                        // signature orders pairs by symbol (matching the
                        // tree's storage order).
                        let mut entries: Vec<(Sym, &Json)> = o
                            .iter()
                            .map(|(k, child)| tree.sym(k).map(|s| (s, child)))
                            .collect::<Option<_>>()?;
                        entries.sort_unstable_by_key(|(s, _)| *s);
                        work.push(Frame::ExitObj(entries.iter().map(|(s, _)| *s).collect()));
                        for (_, child) in entries.iter().rev() {
                            work.push(Frame::Enter(child));
                        }
                    }
                },
                Frame::ExitArr(len) => {
                    let classes = results.split_off(results.len() - len);
                    results.push(*self.interner.get(&Sig::Arr(classes))?);
                }
                Frame::ExitObj(syms) => {
                    let classes = results.split_off(results.len() - syms.len());
                    let sig = Sig::Obj(syms.into_iter().zip(classes).collect());
                    results.push(*self.interner.get(&sig)?);
                }
            }
        }
        debug_assert_eq!(results.len(), 1);
        results.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn table(src: &str) -> (JsonTree, CanonTable) {
        let t = JsonTree::build(&parse(src).unwrap());
        let c = CanonTable::build(&t);
        (t, c)
    }

    #[test]
    fn equal_subtrees_share_class() {
        let (t, c) = table(r#"{"a": {"x": 1, "y": [2]}, "b": {"y": [2], "x": 1}}"#);
        let a = t.child_by_key(t.root(), "a").unwrap();
        let b = t.child_by_key(t.root(), "b").unwrap();
        assert!(c.equal(a, b), "unordered-equal objects must share a class");
        assert_ne!(c.class_of(t.root()), c.class_of(a));
    }

    #[test]
    fn class_equality_matches_json_equality_exhaustively() {
        let (t, c) = table(r#"{"p": [1, [1], "1", {"k": 1}, {"k": 1}, [1, 1]], "q": 1, "r": "1"}"#);
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(
                    c.equal(a, b),
                    t.json_at(a) == t.json_at(b),
                    "canon must agree with structural equality at {a:?},{b:?}"
                );
            }
        }
    }

    #[test]
    fn distinguishes_types_with_same_surface() {
        let (t, c) = table(r#"[1, "1", [], {}]"#);
        let ids: Vec<NodeId> = t.arr_children(t.root()).to_vec();
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                assert_eq!(c.equal(ids[i], ids[j]), i == j);
            }
        }
    }

    #[test]
    fn class_of_external_json() {
        let (t, c) = table(r#"{"name": {"first": "John"}, "other": {"first": "John"}}"#);
        let external = parse(r#"{"first": "John"}"#).unwrap();
        let class = c
            .class_of_json(&t, &external)
            .expect("value occurs in tree");
        let name = t.child_by_key(t.root(), "name").unwrap();
        assert_eq!(class, c.class_of(name));
        // Absent values yield None.
        assert_eq!(
            c.class_of_json(&t, &parse(r#"{"first":"Jane"}"#).unwrap()),
            None
        );
        assert_eq!(c.class_of_json(&t, &Json::Num(99)), None);
        // Un-interned keys prove absence before any signature is hashed.
        assert_eq!(
            c.class_of_json(&t, &parse(r#"{"ghost": 1}"#).unwrap()),
            None
        );
    }

    #[test]
    fn class_of_external_nested_absent_child() {
        let (t, c) = table(r#"{"a": [1, 2]}"#);
        // `3` never occurs, so neither can `[3]`.
        assert_eq!(c.class_of_json(&t, &parse("[3]").unwrap()), None);
        assert!(c.class_of_json(&t, &parse("[1,2]").unwrap()).is_some());
    }

    #[test]
    fn class_count_counts_distinct_values() {
        // Values: the array, 1 (twice), 2 → 3 distinct.
        let (_, c) = table(r#"[1, 1, 2]"#);
        assert_eq!(c.class_count(), 3);
    }

    #[test]
    fn empty_object_vs_empty_array() {
        let (t, c) = table(r#"[{}, [], {}, []]"#);
        let cs = t.arr_children(t.root());
        assert!(c.equal(cs[0], cs[2]));
        assert!(c.equal(cs[1], cs[3]));
        assert!(!c.equal(cs[0], cs[1]));
    }

    #[test]
    fn large_repeated_structure_dedups() {
        // 64 copies of the same subtree: classes collapse.
        let leaf = parse(r#"{"v": [1, 2, 3]}"#).unwrap();
        let doc = Json::Array(vec![leaf; 64]);
        let t = JsonTree::build(&doc);
        let c = CanonTable::build(&t);
        // distinct values: root array, object, inner array, 1, 2, 3 = 6
        assert_eq!(c.class_count(), 6);
    }

    #[test]
    fn external_probe_with_unordered_keys() {
        // External objects may list keys in any order; the symbol sort
        // canonicalises them exactly like the tree's own storage.
        let (t, c) = table(r#"{"a": {"x": 1, "y": 2}}"#);
        let fwd = parse(r#"{"x": 1, "y": 2}"#).unwrap();
        let rev = parse(r#"{"y": 2, "x": 1}"#).unwrap();
        assert_eq!(c.class_of_json(&t, &fwd), c.class_of_json(&t, &rev));
        assert!(c.class_of_json(&t, &fwd).is_some());
    }
}
