//! S1 (§4.1): the surveyed systems — MongoDB-style find and JSONPath —
//! both directly and through their JNL compilations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsondata::JsonTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("s1_dialects");
    g.sample_size(10);
    for n in [1_000usize, 10_000] {
        let people = jsondata::gen::person_records(n, 7);
        let coll = mongofind::Collection::from_array(&people).unwrap();
        let filter = mongofind::Filter::parse_str(r#"{"name.first": {"$eq": "Sue"}}"#).unwrap();
        g.bench_with_input(BenchmarkId::new("mongo_find_direct", n), &coll, |b, c| {
            b.iter(|| c.find(&filter).len())
        });
        g.bench_with_input(BenchmarkId::new("mongo_find_via_jnl", n), &coll, |b, c| {
            b.iter(|| c.find_via_jnl(&filter).len())
        });
    }
    let store = bench::scaling_doc(5_000, 11);
    let tree = JsonTree::build(&store);
    for path in ["$..a", "$.*"] {
        let p = jsonpath::JsonPath::parse(path).unwrap();
        g.bench_with_input(BenchmarkId::new("jsonpath_direct", path), &p, |b, p| {
            b.iter(|| p.select_nodes(&tree).len())
        });
        g.bench_with_input(BenchmarkId::new("jsonpath_via_jnl", path), &p, |b, p| {
            b.iter(|| p.select_nodes_via_jnl(&tree).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
