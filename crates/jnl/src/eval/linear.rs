//! The Proposition 1 engine: deterministic JNL in `O(|J|·|φ|)`.
//!
//! In the deterministic fragment every binary formula denotes a *partial
//! function* on nodes (each key/index step has at most one successor — the
//! determinism of JSON trees, §3.2). Evaluation therefore proceeds
//! bottom-up over unary subformulas; for each `[α]`, `EQ(α,A)`, `EQ(α,β)`
//! the path is *walked* from every node in `O(|α|)` steps. Subtree
//! equalities are resolved "online" through the canonical labels of
//! [`jsondata::CanonTable`] in `O(1)` per comparison — the refinement the
//! paper's proof obtains via its monadic-datalog translation (the naive
//! alternative, pre-comparing all node pairs, is the quadratic baseline
//! measured in experiment E1).

use jsondata::{JsonTree, NodeId, Sym};

use crate::ast::{Binary, Unary};
use crate::eval::{EvalContext, EvalError, NodeSet};

/// Evaluates a deterministic JNL formula; errors on non-deterministic or
/// recursive constructs.
pub fn eval(tree: &JsonTree, phi: &Unary) -> Result<NodeSet, EvalError> {
    let mut ctx = EvalContext::new(tree);
    eval_unary(&mut ctx, phi)
}

/// [`eval`] under a governance context: the per-node walk loops poll
/// `guard` and stop with [`EvalError::Interrupted`] when it fails.
pub fn eval_with_guard(
    tree: &JsonTree,
    phi: &Unary,
    guard: jguard::QueryCtx,
) -> Result<NodeSet, EvalError> {
    let mut ctx = EvalContext::with_guard(tree, guard);
    eval_unary(&mut ctx, phi)
}

/// One step of a compiled deterministic path. Key steps carry the tree's
/// interned symbol — resolved once at compile time, so the walk itself does
/// pure `u32` binary searches. `Key(None)` records a key the tree never
/// interned: no edge anywhere can match, and the walk fails immediately.
enum Step {
    Key(Option<Sym>),
    Index(i64),
    /// `⟨φ⟩`: proceed only if the current node is in the set.
    Test(NodeSet),
}

fn eval_unary(ctx: &mut EvalContext<'_>, phi: &Unary) -> Result<NodeSet, EvalError> {
    let n = ctx.tree.node_count();
    Ok(match phi {
        Unary::True => vec![true; n],
        Unary::Not(p) => {
            let mut s = eval_unary(ctx, p)?;
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Unary::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let s = eval_unary(ctx, p)?;
                for (a, b) in acc.iter_mut().zip(s) {
                    *a &= b;
                }
            }
            acc
        }
        Unary::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let s = eval_unary(ctx, p)?;
                for (a, b) in acc.iter_mut().zip(s) {
                    *a |= b;
                }
            }
            acc
        }
        Unary::Exists(alpha) => {
            let steps = compile(ctx, alpha)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                ctx.poll_at(i)?;
                out.push(walk(ctx.tree, &steps, NodeId::from_index(i)).is_some());
            }
            out
        }
        Unary::EqDoc(alpha, doc) => {
            let steps = compile(ctx, alpha)?;
            let target = ctx.class_of_doc(doc);
            let Some(target) = target else {
                // The document does not occur in the tree at all.
                return Ok(vec![false; n]);
            };
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                ctx.poll_at(i)?;
                out.push(
                    walk(ctx.tree, &steps, NodeId::from_index(i))
                        .is_some_and(|m| ctx.canon.class_of(m) == target),
                );
            }
            out
        }
        Unary::EqPair(alpha, beta) => {
            let sa = compile(ctx, alpha)?;
            let sb = compile(ctx, beta)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                ctx.poll_at(i)?;
                let from = NodeId::from_index(i);
                out.push(
                    match (walk(ctx.tree, &sa, from), walk(ctx.tree, &sb, from)) {
                        (Some(x), Some(y)) => ctx.canon.equal(x, y),
                        _ => false,
                    },
                );
            }
            out
        }
    })
}

/// Flattens a deterministic binary formula into a step list, evaluating
/// embedded tests eagerly (each test set is computed once).
fn compile(ctx: &mut EvalContext<'_>, alpha: &Binary) -> Result<Vec<Step>, EvalError> {
    let mut steps = Vec::new();
    flatten(ctx, alpha, &mut steps)?;
    Ok(steps)
}

fn flatten(
    ctx: &mut EvalContext<'_>,
    alpha: &Binary,
    out: &mut Vec<Step>,
) -> Result<(), EvalError> {
    match alpha {
        Binary::Epsilon => {}
        Binary::Key(w) => out.push(Step::Key(ctx.tree.sym(w))),
        Binary::Index(i) => out.push(Step::Index(*i)),
        Binary::Test(phi) => out.push(Step::Test(eval_unary(ctx, phi)?)),
        Binary::Compose(parts) => {
            for p in parts {
                flatten(ctx, p, out)?;
            }
        }
        Binary::KeyRegex(e) => {
            // A singleton regex is deterministic in effect; accept it.
            match e.as_single_word() {
                Some(w) => out.push(Step::Key(ctx.tree.sym(&w))),
                None => return Err(EvalError::NotDeterministic("X_e (regex key step)")),
            }
        }
        Binary::Range(i, Some(j)) if i == j => out.push(Step::Index(*i as i64)),
        Binary::Range(_, _) => return Err(EvalError::NotDeterministic("X_{i:j} (range step)")),
        Binary::Star(_) => return Err(EvalError::NotDeterministic("(α)* (recursion)")),
    }
    Ok(())
}

fn walk(tree: &JsonTree, steps: &[Step], from: NodeId) -> Option<NodeId> {
    let mut cur = from;
    for s in steps {
        match s {
            Step::Key(sym) => cur = tree.child_by_sym(cur, (*sym)?)?,
            Step::Index(i) => cur = tree.child_by_signed_index(cur, *i)?,
            Step::Test(set) => {
                if !set[cur.index()] {
                    return None;
                }
            }
        }
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Binary as B, Unary as U};
    use jsondata::parse;

    fn tree(src: &str) -> JsonTree {
        JsonTree::build(&parse(src).unwrap())
    }

    #[test]
    fn agrees_with_naive_on_deterministic_formulas() {
        let docs = [
            r#"{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}"#,
            r#"{"a":{"b":{"a":{"b":1}}},"c":[{"a":1},{"a":2}]}"#,
            r#"[[1,2],[1,2],[2,1]]"#,
            r#"{}"#,
        ];
        let phis = vec![
            U::exists(B::compose(vec![B::key("name"), B::key("first")])),
            U::eq_doc(B::key("age"), parse("32").unwrap()),
            U::not(U::exists(B::key("age"))),
            U::eq_pair(B::index(0), B::index(1)),
            U::eq_pair(B::index(0), B::index(2)),
            U::and(vec![
                U::exists(B::key("a")),
                U::or(vec![U::exists(B::key("c")), U::exists(B::index(-1))]),
            ]),
            U::exists(B::compose(vec![
                B::test(U::exists(B::key("a"))),
                B::key("a"),
                B::key("b"),
            ])),
            U::eq_doc(
                B::compose(vec![B::key("hobbies"), B::index(-1)]),
                parse("\"yoga\"").unwrap(),
            ),
        ];
        for src in docs {
            let t = tree(src);
            for phi in &phis {
                let fast = eval(&t, phi).unwrap();
                let slow = crate::eval::naive::eval(&t, phi);
                assert_eq!(fast, slow, "doc {src}, formula {phi}");
            }
        }
    }

    #[test]
    fn rejects_nondeterministic_constructs() {
        let t = tree("{}");
        assert!(matches!(
            eval(&t, &U::exists(B::any_key())),
            Err(EvalError::NotDeterministic(_))
        ));
        assert!(matches!(
            eval(&t, &U::exists(B::star(B::key("a")))),
            Err(EvalError::NotDeterministic(_))
        ));
        assert!(matches!(
            eval(&t, &U::exists(B::range(0, None))),
            Err(EvalError::NotDeterministic(_))
        ));
    }

    #[test]
    fn accepts_effectively_deterministic_sugar() {
        // Singleton regex and i:i ranges are deterministic in effect.
        let t = tree(r#"{"k": [5, 6]}"#);
        let phi = U::eq_doc(
            B::compose(vec![
                B::key_regex(relex::Regex::literal("k")),
                B::range(1, Some(1)),
            ]),
            parse("6").unwrap(),
        );
        assert!(eval(&t, &phi).unwrap()[0]);
    }

    #[test]
    fn eq_doc_absent_document_is_false_everywhere() {
        let t = tree(r#"{"a": 1}"#);
        let phi = U::eq_doc(B::key("a"), parse("2").unwrap());
        assert!(eval(&t, &phi).unwrap().iter().all(|b| !b));
    }

    #[test]
    fn deep_equality_is_constant_time_per_node() {
        // Both branches carry an identical large subtree: the walk compares
        // one class id, not the whole subtree.
        let big = r#"{"x":[1,2,3,{"y":[4,5,{"z":"deep"}]}]}"#;
        let doc = format!(r#"{{"l":{big},"r":{big}}}"#);
        let t = tree(&doc);
        let phi = U::eq_pair(B::key("l"), B::key("r"));
        assert!(eval(&t, &phi).unwrap()[0]);
    }
}
