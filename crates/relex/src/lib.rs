//! # relex — a self-contained regular-expression engine over Σ
//!
//! The paper's logics use regular expressions in three distinct roles:
//!
//! 1. **Membership** — `X_e` (JNL), `◇_e`/`□_e` (JSL) and the JSON Schema
//!    keywords `pattern`/`patternProperties` test whether a key or string
//!    value belongs to `L(e)`.
//! 2. **Language algebra** — the Theorem 1 translation needs the *complement
//!    intersection* `C` of all `properties`/`patternProperties` keys for
//!    `additionalProperties`, and the satisfiability engines partition the
//!    key space into Venn regions of the mentioned expressions, requiring
//!    intersection, complement, emptiness and universality.
//! 3. **Witness synthesis** — satisfiability proofs must produce concrete
//!    keys/strings, requiring shortest-example extraction from a language.
//!
//! None of the offline crates provide (2) and (3), so this crate implements
//! the classical pipeline from scratch: parsed AST → Thompson NFA → symbolic
//! subset-construction DFA over unicode scalar-value ranges, with product
//! and complement constructions on DFAs.
//!
//! For role (1) on *interned* trees the crate provides a two-tier matching
//! layer keyed by dense symbol indexes (see `jsondata::intern`):
//!
//! * [`bitset`] — the default tier. Each distinct regex is compiled to a
//!   [`Dfa`] once per (query, tree) and evaluated over the whole symbol
//!   table in one pass, yielding a [`SymBitset`] (one bit per symbol);
//!   every edge test in an evaluation inner loop is then a single bit
//!   load, with no string resolution and no automaton run.
//! * [`memo`] — the lazy fallback tier. Regexes whose determinisation
//!   exceeds [`bitset::MAX_EDGE_DFA_STATES`] keep the tri-state
//!   [`KeyMatchMemo`] that runs the NFA once per first-seen symbol.
//!
//! [`SymMatcher`] packages the per-regex choice (made once, at compile
//! time) and [`SymMatcherTable`] the per-context collection.
//!
//! Semantics note: all matching is **anchored** (full-word membership in
//! `L(e)`), exactly as the paper defines (`val(n) ∈ L(e)`). Unanchored
//! "search" behaviour can be recovered with explicit `.*` padding.
//!
//! ```
//! use relex::Regex;
//!
//! let e = Regex::parse("a(b|c)a").unwrap();
//! let c = e.compile();
//! assert!(c.is_match("aba"));
//! assert!(!c.is_match("aa"));
//!
//! // Language algebra: do two expressions overlap?
//! let f = Regex::parse("ab*a").unwrap();
//! let both = e.to_dfa().intersect(&f.to_dfa());
//! assert_eq!(both.example(), Some("aba".to_string()));
//! ```

pub mod ast;
pub mod bitset;
pub mod classes;
pub mod dfa;
pub mod memo;
pub mod nfa;
pub mod parse;

pub use ast::Regex;
pub use bitset::{EdgeStrategy, MatcherId, SymBitset, SymMatcher, SymMatcherTable};
pub use classes::CharClass;
pub use dfa::Dfa;
pub use memo::{KeyMatchMemo, RegexMemoTable};
pub use nfa::{CompiledRegex, Nfa};
pub use parse::RegexError;
