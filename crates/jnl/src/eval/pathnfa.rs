//! Compilation of binary (path) formulas into *path NFAs*.
//!
//! A binary formula is a regular expression over the edge alphabet of the
//! tree (key steps, index steps, tests). The Proposition 3 proof evaluates
//! recursive non-deterministic formulas with PDL-style model checking; the
//! clean way to implement it is to compile `α` into an NFA whose
//! transitions are labelled with tree moves, then compute reachability over
//! the product of the tree and the NFA ([`crate::eval::pdl`]).

use jsondata::Sym;
use relex::MatcherId;

use crate::ast::{Binary, Unary};
use crate::eval::{EvalContext, EvalError, NodeSet};

/// A transition label of a path NFA.
#[derive(Debug, Clone)]
pub enum PathLabel {
    /// Spontaneous move (stay at the same tree node).
    Eps,
    /// `⟨φ⟩`: stay, but only where the referenced test set holds.
    Test(usize),
    /// `X_w`: move to the object child under exactly this key, resolved to
    /// the tree's interned symbol at compile time (`None` when the tree
    /// never interned the key — such a transition can never fire).
    Word(Option<Sym>),
    /// `X_e`: move to any object child whose key matches. The regex is
    /// resolved to a context matcher id at compile time, so the product BFS
    /// fetches its (bitset or memo) matcher by vector index — no AST
    /// hashing on the inner loop.
    Re(MatcherId),
    /// `X_i`: move to the array child at this (possibly negative) position.
    Index(i64),
    /// `X_{i:j}`: move to any array child at a position in the range.
    Range(u64, Option<u64>),
}

/// An NFA over [`PathLabel`]s with one start and one accept state.
#[derive(Debug)]
pub struct PathNfa {
    /// Transition triples `(from, label, to)`.
    pub trans: Vec<(usize, PathLabel, usize)>,
    /// Start state.
    pub start: usize,
    /// Accept state.
    pub accept: usize,
    /// Total number of states.
    pub n_states: usize,
}

impl PathNfa {
    /// Compiles `α`, evaluating each embedded `⟨φ⟩` once through `eval_test`
    /// and storing its node set in the returned table.
    pub fn compile(
        ctx: &mut EvalContext<'_>,
        alpha: &Binary,
        eval_test: &mut dyn FnMut(&mut EvalContext<'_>, &Unary) -> Result<NodeSet, EvalError>,
    ) -> Result<(PathNfa, Vec<NodeSet>), EvalError> {
        let mut b = Builder {
            trans: Vec::new(),
            n_states: 0,
            tests: Vec::new(),
        };
        let start = b.state();
        let accept = b.state();
        b.build(ctx, alpha, start, accept, eval_test)?;
        Ok((
            PathNfa {
                trans: b.trans,
                start,
                accept,
                n_states: b.n_states,
            },
            b.tests,
        ))
    }

    /// Reverse adjacency: for each state, incoming `(from, label)` pairs.
    pub fn reverse_adjacency(&self) -> Vec<Vec<(usize, &PathLabel)>> {
        let mut rev: Vec<Vec<(usize, &PathLabel)>> = vec![Vec::new(); self.n_states];
        for (from, label, to) in &self.trans {
            rev[*to].push((*from, label));
        }
        rev
    }
}

struct Builder {
    trans: Vec<(usize, PathLabel, usize)>,
    n_states: usize,
    tests: Vec<NodeSet>,
}

impl Builder {
    fn state(&mut self) -> usize {
        self.n_states += 1;
        self.n_states - 1
    }

    fn build(
        &mut self,
        ctx: &mut EvalContext<'_>,
        alpha: &Binary,
        from: usize,
        to: usize,
        eval_test: &mut dyn FnMut(&mut EvalContext<'_>, &Unary) -> Result<NodeSet, EvalError>,
    ) -> Result<(), EvalError> {
        match alpha {
            Binary::Epsilon => self.trans.push((from, PathLabel::Eps, to)),
            Binary::Key(w) => self
                .trans
                .push((from, PathLabel::Word(ctx.tree.sym(w)), to)),
            Binary::Index(i) => self.trans.push((from, PathLabel::Index(*i), to)),
            Binary::KeyRegex(e) => {
                let id = ctx.matcher_id(e);
                self.trans.push((from, PathLabel::Re(id), to));
            }
            Binary::Range(i, j) => self.trans.push((from, PathLabel::Range(*i, *j), to)),
            Binary::Test(phi) => {
                let set = eval_test(ctx, phi)?;
                let idx = self.tests.len();
                self.tests.push(set);
                self.trans.push((from, PathLabel::Test(idx), to));
            }
            Binary::Compose(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.state()
                    };
                    self.build(ctx, p, cur, next, eval_test)?;
                    cur = next;
                }
                if parts.is_empty() {
                    self.trans.push((from, PathLabel::Eps, to));
                }
            }
            Binary::Star(inner) => {
                let hub = self.state();
                self.trans.push((from, PathLabel::Eps, hub));
                self.trans.push((hub, PathLabel::Eps, to));
                let body = self.state();
                self.trans.push((hub, PathLabel::Eps, body));
                self.build(ctx, inner, body, hub, eval_test)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Binary as B;
    use jsondata::{parse, JsonTree};

    #[test]
    fn state_count_is_linear_in_formula() {
        let t = JsonTree::build(&parse("{}").unwrap());
        let mut ctx = EvalContext::new(&t);
        let alpha = B::compose(vec![
            B::star(B::any_key()),
            B::key("a"),
            B::range(0, None),
            B::test(crate::ast::Unary::True),
        ]);
        let (nfa, tests) = PathNfa::compile(&mut ctx, &alpha, &mut |_, _| Ok(vec![true])).unwrap();
        assert!(nfa.n_states <= 2 * alpha.size());
        assert_eq!(tests.len(), 1);
        // Every state is an endpoint of some transition or start/accept.
        let rev = nfa.reverse_adjacency();
        assert_eq!(rev.len(), nfa.n_states);
    }
}
