//! A direct JSON Schema validator for the Table 1 fragment, written
//! independently of the JSL machinery so that Theorem 1 can be tested as a
//! genuine differential property: `validate(S, J) ⇔ J |= ψ_S`.

use std::fmt;

use jsondata::{Json, JsonPointer};
use relex::CompiledRegex;

use crate::ir::{Schema, SchemaError, SchemaType};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of the offending value inside the instance.
    pub instance_path: String,
    /// The keyword that failed.
    pub keyword: &'static str,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}",
            self.instance_path, self.keyword, self.message
        )
    }
}

/// Validates `instance` against `schema` (resolving `$ref` against
/// `schema`'s own `definitions`); returns every violation found.
pub fn validate(schema: &Schema, instance: &Json) -> Result<Vec<Violation>, SchemaError> {
    let root = schema;
    let mut out = Vec::new();
    check(schema, root, instance, "$", &mut out)?;
    Ok(out)
}

/// Boolean form of [`validate`].
pub fn is_valid(schema: &Schema, instance: &Json) -> Result<bool, SchemaError> {
    Ok(validate(schema, instance)?.is_empty())
}

fn fail(out: &mut Vec<Violation>, path: &str, keyword: &'static str, message: String) {
    out.push(Violation {
        instance_path: path.to_owned(),
        keyword,
        message,
    });
}

/// Resolves a `$ref` against the root schema document.
fn resolve<'a>(root: &'a Schema, reference: &str) -> Result<&'a Schema, SchemaError> {
    // Only intra-document `#/definitions/...` references exist in the
    // fragment (the paper's §5.3 restriction).
    let ptr: JsonPointer = reference.parse().map_err(|_| SchemaError {
        at: reference.to_owned(),
        message: "unsupported $ref (only #/definitions/<name> is in the fragment)".into(),
    })?;
    let tokens = ptr.tokens();
    if tokens.len() == 2 && tokens[0] == "definitions" {
        for (name, s) in &root.definitions {
            if *name == tokens[1] {
                return Ok(s);
            }
        }
    }
    Err(SchemaError {
        at: reference.to_owned(),
        message: "reference does not resolve to a definition".into(),
    })
}

fn check(
    schema: &Schema,
    root: &Schema,
    value: &Json,
    path: &str,
    out: &mut Vec<Violation>,
) -> Result<(), SchemaError> {
    // $ref: delegate entirely (other keywords on the same schema still
    // apply, matching the conjunction reading of the paper).
    if let Some(r) = &schema.reference {
        let target = resolve(root, r)?;
        check(target, root, value, path, out)?;
    }

    if let Some(t) = schema.ty {
        let ok = match t {
            SchemaType::String => value.is_string(),
            SchemaType::Number => value.is_number(),
            SchemaType::Object => value.is_object(),
            SchemaType::Array => value.is_array(),
        };
        if !ok {
            fail(out, path, "type", format!("expected {t}"));
        }
    }

    // --- string keywords (vacuous on other kinds) ---
    if let (Some((src, re)), Some(s)) = (&schema.pattern, value.as_str()) {
        let compiled: CompiledRegex = re.compile();
        if !compiled.is_match(s) {
            fail(out, path, "pattern", format!("{s:?} ∉ L({src})"));
        }
    }

    // --- number keywords ---
    if let Some(v) = value.as_num() {
        if let Some(m) = schema.minimum {
            if v < m {
                fail(out, path, "minimum", format!("{v} < {m}"));
            }
        }
        if let Some(m) = schema.maximum {
            if v > m {
                fail(out, path, "maximum", format!("{v} > {m}"));
            }
        }
        if let Some(m) = schema.multiple_of {
            if v % m != 0 {
                fail(
                    out,
                    path,
                    "multipleOf",
                    format!("{v} is not a multiple of {m}"),
                );
            }
        }
    }

    // --- object keywords ---
    if let Some(obj) = value.as_object() {
        if let Some(m) = schema.min_properties {
            if (obj.len() as u64) < m {
                fail(out, path, "minProperties", format!("{} < {m}", obj.len()));
            }
        }
        if let Some(m) = schema.max_properties {
            if (obj.len() as u64) > m {
                fail(out, path, "maxProperties", format!("{} > {m}", obj.len()));
            }
        }
        for k in &schema.required {
            if obj.get(k).is_none() {
                fail(out, path, "required", format!("missing key {k:?}"));
            }
        }
        // properties / patternProperties / additionalProperties.
        let compiled_pp: Vec<(&String, CompiledRegex, &Schema)> = schema
            .pattern_properties
            .iter()
            .map(|(src, re, s)| (src, re.compile(), s))
            .collect();
        for (k, v) in obj.iter() {
            let child_path = format!("{path}.{k}");
            let mut covered = false;
            for (pk, ps) in &schema.properties {
                if pk == k {
                    covered = true;
                    check(ps, root, v, &child_path, out)?;
                }
            }
            for (_, compiled, ps) in &compiled_pp {
                if compiled.is_match(k) {
                    covered = true;
                    check(ps, root, v, &child_path, out)?;
                }
            }
            if !covered {
                if let Some(ap) = &schema.additional_properties {
                    check(ap, root, v, &child_path, out)?;
                }
            }
        }
    }

    // --- array keywords ---
    if let Some(items) = value.as_array() {
        for (i, v) in items.iter().enumerate() {
            let child_path = format!("{path}[{i}]");
            if let Some(s) = schema.items.get(i) {
                check(s, root, v, &child_path, out)?;
            } else if !schema.items.is_empty() || schema.additional_items.is_some() {
                // Beyond the positional list: additionalItems governs; per
                // the paper's reading, items without additionalItems bounds
                // the length.
                match &schema.additional_items {
                    Some(ai) => check(ai, root, v, &child_path, out)?,
                    None => {
                        if !schema.items.is_empty() {
                            fail(
                                out,
                                &child_path,
                                "items",
                                format!(
                                    "array longer than the {} positional schemas",
                                    schema.items.len()
                                ),
                            );
                        }
                    }
                }
            }
        }
        if schema.unique_items {
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    if items[i] == items[j] {
                        fail(
                            out,
                            path,
                            "uniqueItems",
                            format!("elements {i} and {j} are equal"),
                        );
                    }
                }
            }
        }
    }

    // --- boolean combinations ---
    for (i, s) in schema.all_of.iter().enumerate() {
        let mut sub = Vec::new();
        check(s, root, value, path, &mut sub)?;
        if !sub.is_empty() {
            fail(
                out,
                path,
                "allOf",
                format!("branch {i} failed ({})", sub[0]),
            );
        }
    }
    if !schema.any_of.is_empty() {
        let mut any = false;
        for s in &schema.any_of {
            let mut sub = Vec::new();
            check(s, root, value, path, &mut sub)?;
            if sub.is_empty() {
                any = true;
                break;
            }
        }
        if !any {
            fail(out, path, "anyOf", "no branch matched".into());
        }
    }
    if let Some(s) = &schema.not {
        let mut sub = Vec::new();
        check(s, root, value, path, &mut sub)?;
        if sub.is_empty() {
            fail(out, path, "not", "inner schema matched".into());
        }
    }
    if !schema.enumeration.is_empty() && !schema.enumeration.contains(value) {
        fail(out, path, "enum", "value not in enumeration".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;

    fn ok(schema: &str, instance: &str) -> bool {
        let s = Schema::parse_str(schema).unwrap();
        is_valid(&s, &parse(instance).unwrap()).unwrap()
    }

    #[test]
    fn paper_string_schemas() {
        assert!(ok(r#"{"type": "string"}"#, r#""anything""#));
        assert!(!ok(r#"{"type": "string"}"#, "5"));
        assert!(ok(
            r#"{"type": "string", "pattern": "(0|1)+"}"#,
            r#""0101""#
        ));
        assert!(!ok(
            r#"{"type": "string", "pattern": "(0|1)+"}"#,
            r#""012""#
        ));
    }

    #[test]
    fn paper_number_schema() {
        // {"type":"number","maximum":12,"multipleOf":4} ⇒ {0,4,8,12}.
        let s = r#"{"type": "number", "maximum": 12, "multipleOf": 4}"#;
        for v in ["0", "4", "8", "12"] {
            assert!(ok(s, v), "{v}");
        }
        for v in ["2", "16", "\"4\""] {
            assert!(!ok(s, v), "{v}");
        }
    }

    #[test]
    fn paper_object_schema() {
        let s = r#"{
            "type": "object",
            "properties": {"name": {"type": "string"}},
            "patternProperties": {"a(b|c)a": {"type": "number", "multipleOf": 2}},
            "additionalProperties": {"type": "number", "minimum": 1, "maximum": 1}
        }"#;
        assert!(ok(s, r#"{"name": "x", "aba": 4, "other": 1}"#));
        assert!(!ok(s, r#"{"name": 3}"#), "name must be a string");
        assert!(!ok(s, r#"{"aca": 3}"#), "abc-keys must be even");
        assert!(!ok(s, r#"{"other": 2}"#), "additional keys must equal 1");
    }

    #[test]
    fn paper_array_schema() {
        let s = r#"{
            "type": "array",
            "items": [{"type": "string"}, {"type": "string"}],
            "additionalItems": {"type": "number"},
            "uniqueItems": "true"
        }"#;
        assert!(ok(s, r#"["a", "b"]"#));
        assert!(ok(s, r#"["a", "b", 1, 2]"#));
        assert!(!ok(s, r#"["a", "b", "c"]"#), "extras must be numbers");
        assert!(!ok(s, r#"["a", "a"]"#), "uniqueItems");
        assert!(!ok(s, r#"[1, "b"]"#));
    }

    #[test]
    fn items_without_additional_bounds_length() {
        let s = r#"{"type": "array", "items": [{"type": "number"}]}"#;
        assert!(ok(s, "[1]"));
        assert!(ok(s, "[]"), "fewer elements are fine");
        assert!(!ok(s, "[1, 2]"), "paper reading: no extra elements");
    }

    #[test]
    fn boolean_combinators() {
        // "not":{"type":"number","multipleOf":2} — any odd number or
        // non-number (the paper's example).
        let s = r#"{"not": {"type": "number", "multipleOf": 2}}"#;
        assert!(ok(s, "3"));
        assert!(ok(s, r#""str""#));
        assert!(!ok(s, "4"));
        let s = r#"{"anyOf": [{"type": "string"}, {"minimum": 5, "type": "number"}]}"#;
        assert!(ok(s, r#""x""#));
        assert!(ok(s, "7"));
        assert!(!ok(s, "3"));
        let s = r#"{"allOf": [{"minimum": 5}, {"maximum": 10}], "type": "number"}"#;
        assert!(ok(s, "7"));
        assert!(!ok(s, "11"));
        let s = r#"{"enum": [1, "a", {"k": [2]}]}"#;
        assert!(ok(s, "1"));
        assert!(ok(s, r#"{"k": [2]}"#));
        assert!(!ok(s, "2"));
    }

    #[test]
    fn refs_resolve_against_definitions() {
        // The paper's §5.3 example: not-an-email.
        let s = r##"{
            "definitions": {"email": {"type": "string", "pattern": "[A-z]*@ciws\\.cl"}},
            "not": {"$ref": "#/definitions/email"}
        }"##;
        assert!(!ok(s, r#""juan@ciws.cl""#));
        assert!(ok(s, r#""juan@example.org""#));
        assert!(ok(s, "42"));
    }

    #[test]
    fn unresolved_ref_is_an_error() {
        let s = Schema::parse_str(r##"{"$ref": "#/definitions/ghost"}"##).unwrap();
        assert!(is_valid(&s, &parse("1").unwrap()).is_err());
    }

    #[test]
    fn violations_carry_paths() {
        let s = Schema::parse_str(
            r#"{"type": "object", "properties": {"a": {"type": "array", "items": [{"type": "number"}]}}}"#,
        )
        .unwrap();
        let vs = validate(&s, &parse(r#"{"a": ["x"]}"#).unwrap()).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].instance_path, "$.a[0]");
        assert_eq!(vs[0].keyword, "type");
    }

    #[test]
    fn empty_schema_accepts_everything() {
        for v in ["1", "\"x\"", "{}", "[]", r#"{"a": [1, {"b": "c"}]}"#] {
            assert!(ok("{}", v), "{v}");
        }
    }
}
