//! The shared writer for the harness's machine-readable `BENCH_*.json`
//! artifacts.
//!
//! Every `s*` experiment ends by dumping a small JSON report; the early
//! modes each hand-rolled theirs out of one giant `format!` string, which
//! made the escaping rules implicit and the nesting unreadable. [`Val`] is
//! the tree those reports actually need — numbers (pre-formatted, so
//! float precision stays a call-site decision), strings, booleans,
//! arrays, objects, and pre-rendered raw JSON for embedding plans that
//! already serialize themselves (e.g. `EXPLAIN` output) — and
//! [`write()`] pretty-prints it with the 2-space indentation the existing
//! artifacts use.
//!
//! The writer is deliberately *not* built on `jsondata::Json`: the
//! measurement reports carry fractional milliseconds and booleans, both
//! of which sit outside the paper's §2 value space (ℕ only) that
//! `jsondata` enforces.

/// One JSON value of a benchmark report.
pub enum Val {
    /// A pre-formatted number literal (int or float), emitted verbatim.
    Num(String),
    /// A string, escaped on output.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
    /// Pre-rendered JSON embedded verbatim (e.g. an `EXPLAIN` plan's
    /// machine rendering). The caller guarantees it is valid JSON.
    Raw(String),
    /// An array, one element per line.
    Arr(Vec<Val>),
    /// An object, one key per line, keys emitted in insertion order.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// An integer number.
    pub fn int(n: impl Into<u128>) -> Val {
        Val::Num(n.into().to_string())
    }

    /// A float with fixed `prec` digits after the point (the precision
    /// conventions of the hand-rolled reports: 2–4 depending on scale).
    pub fn float(x: f64, prec: usize) -> Val {
        Val::Num(format!("{x:.prec$}"))
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Val {
        Val::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Val)>) -> Val {
        Val::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON at `indent` levels.
    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Val::Num(n) | Val::Raw(n) => out.push_str(n),
            Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Val::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Val::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Val::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Renders the value as a complete pretty-printed document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

/// Writes `root` to `path` and prints the `wrote {path}` confirmation
/// line every harness mode ends with.
pub fn write(path: &str, root: &Val) {
    std::fs::write(path, root.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report_shape() {
        let root = Val::obj(vec![
            ("experiment", Val::str("demo")),
            ("ok", Val::Bool(true)),
            ("ms", Val::float(1.23456, 3)),
            (
                "rows",
                Val::Arr(vec![
                    Val::obj(vec![("n", Val::int(7u64))]),
                    Val::Raw("{\"inline\":1}".into()),
                ]),
            ),
            ("empty", Val::Arr(Vec::new())),
        ]);
        let text = root.render();
        assert!(text.contains("\"experiment\": \"demo\""), "{text}");
        assert!(text.contains("\"ms\": 1.235"), "{text}");
        assert!(text.contains("\"n\": 7"), "{text}");
        assert!(text.contains("{\"inline\":1}"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
    }

    #[test]
    fn escapes_strings() {
        let v = Val::str("a\"b\\c\nd");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }
}
