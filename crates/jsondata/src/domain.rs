//! The formal presentation of JSON trees (§3.1, Definition of JSON tree):
//! `J = (D, Obj, Arr, Str, Int, A, O, val)` over a tree domain `D ⊆ ℕ*`.
//!
//! [`FormalJson`] is a *relational* encoding that can represent arbitrary
//! candidate structures — including ill-formed ones — so that the five
//! well-formedness conditions of the definition become executable checks
//! ([`FormalJson::validate`]). [`FormalJson::from_tree`] and
//! [`FormalJson::to_json`] connect it to the efficient arena representation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::tree::JsonTree;
use crate::value::Json;

/// A word in ℕ* addressing a node of the tree domain; the root is `ε = []`.
pub type Word = Vec<usize>;

/// Atomic values carried by `val`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomValue {
    /// A string in Σ*.
    Str(String),
    /// A natural number.
    Num(u64),
}

/// The relational JSON-tree structure of §3.1.
#[derive(Debug, Clone, Default)]
pub struct FormalJson {
    /// The tree domain `D`.
    pub domain: BTreeSet<Word>,
    /// The `Obj` partition.
    pub obj: BTreeSet<Word>,
    /// The `Arr` partition.
    pub arr: BTreeSet<Word>,
    /// The `Str` partition.
    pub str_: BTreeSet<Word>,
    /// The `Int` partition.
    pub int: BTreeSet<Word>,
    /// The object-child relation `O ⊆ Obj × Σ* × D`.
    pub o_rel: BTreeSet<(Word, String, Word)>,
    /// The array-child relation `A ⊆ Arr × ℕ × D`.
    pub a_rel: BTreeSet<(Word, usize, Word)>,
    /// The value function `val : Str ∪ Int → Σ* ∪ ℕ`.
    pub val: BTreeMap<Word, AtomValue>,
}

/// A violation of one of the well-formedness conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelViolation {
    /// `D` is not prefix-closed at this word.
    NotPrefixClosed(Word),
    /// `n·i ∈ D` but some `n·j`, `j < i`, is missing.
    MissingSibling(Word, usize),
    /// A word is in none (or several) of the four partitions.
    BadPartition(Word),
    /// Condition 1: an object child without an `O` triple.
    ObjectChildUnlabelled(Word, Word),
    /// Condition 2: the same key labels two different children.
    DuplicateKeyEdge(Word, String),
    /// Condition 3: an array child whose `A` triple has the wrong index.
    ArrayChildMisindexed(Word, usize),
    /// Condition 4: a string/number node with children.
    LeafWithChildren(Word),
    /// Condition 5: a `Str`/`Int` node without a (type-correct) value.
    MissingOrWrongValue(Word),
    /// An `O`/`A` triple whose endpoints are not parent/child in `D`, or
    /// whose source has the wrong partition.
    DanglingRelation(Word, Word),
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn w(word: &Word) -> String {
            if word.is_empty() {
                "ε".to_owned()
            } else {
                word.iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(".")
            }
        }
        match self {
            ModelViolation::NotPrefixClosed(n) => {
                write!(f, "domain not prefix-closed at {}", w(n))
            }
            ModelViolation::MissingSibling(n, i) => {
                write!(f, "domain misses sibling {}·{i}", w(n))
            }
            ModelViolation::BadPartition(n) => {
                write!(f, "node {} is not in exactly one partition", w(n))
            }
            ModelViolation::ObjectChildUnlabelled(p, c) => {
                write!(f, "object child {} of {} has no O-label", w(c), w(p))
            }
            ModelViolation::DuplicateKeyEdge(p, k) => {
                write!(f, "object {} has two edges labelled {k:?}", w(p))
            }
            ModelViolation::ArrayChildMisindexed(p, i) => {
                write!(f, "array {} child {i} has a wrong A-index", w(p))
            }
            ModelViolation::LeafWithChildren(n) => {
                write!(f, "string/number node {} has children", w(n))
            }
            ModelViolation::MissingOrWrongValue(n) => {
                write!(f, "node {} lacks a type-correct value", w(n))
            }
            ModelViolation::DanglingRelation(p, c) => {
                write!(
                    f,
                    "relation edge {} → {} is not a parent/child pair",
                    w(p),
                    w(c)
                )
            }
        }
    }
}

impl FormalJson {
    /// Extracts the formal structure from an arena tree.
    pub fn from_tree(tree: &JsonTree) -> FormalJson {
        let mut out = FormalJson::default();
        for n in tree.node_ids() {
            let word = tree.domain_word(n);
            out.domain.insert(word.clone());
            match tree.kind(n) {
                crate::tree::NodeKind::Obj => {
                    out.obj.insert(word.clone());
                    for (i, (k, c)) in tree.obj_children(n).enumerate() {
                        let mut cw = word.clone();
                        cw.push(i);
                        debug_assert_eq!(cw, tree.domain_word(c));
                        out.o_rel.insert((word.clone(), k.to_owned(), cw));
                    }
                }
                crate::tree::NodeKind::Arr => {
                    out.arr.insert(word.clone());
                    for (i, c) in tree.arr_children(n).iter().enumerate() {
                        let mut cw = word.clone();
                        cw.push(i);
                        debug_assert_eq!(cw, tree.domain_word(*c));
                        out.a_rel.insert((word.clone(), i, cw));
                    }
                }
                crate::tree::NodeKind::Str => {
                    out.str_.insert(word.clone());
                    out.val.insert(
                        word.clone(),
                        AtomValue::Str(tree.str_value(n).expect("Str value").to_owned()),
                    );
                }
                crate::tree::NodeKind::Int => {
                    out.int.insert(word.clone());
                    out.val.insert(
                        word.clone(),
                        AtomValue::Num(tree.num_value(n).expect("Int value")),
                    );
                }
            }
        }
        out
    }

    /// Checks the tree-domain laws and the five conditions of §3.1,
    /// returning every violation found.
    pub fn validate(&self) -> Vec<ModelViolation> {
        let mut out = Vec::new();

        // Tree-domain laws: prefix closure + smaller-sibling closure.
        for wrd in &self.domain {
            if let Some((_, head)) = wrd.split_last() {
                if !self.domain.contains(head) {
                    out.push(ModelViolation::NotPrefixClosed(wrd.clone()));
                }
            }
            if let Some((&last, head)) = wrd.split_last() {
                for j in 0..last {
                    let mut sib = head.to_vec();
                    sib.push(j);
                    if !self.domain.contains(&sib) {
                        out.push(ModelViolation::MissingSibling(head.to_vec(), j));
                    }
                }
            }
        }

        // Partition: each node in exactly one of Obj/Arr/Str/Int.
        for wrd in &self.domain {
            let count = [&self.obj, &self.arr, &self.str_, &self.int]
                .iter()
                .filter(|s| s.contains(wrd))
                .count();
            if count != 1 {
                out.push(ModelViolation::BadPartition(wrd.clone()));
            }
        }
        // ... and nothing outside the domain is in a partition.
        for part in [&self.obj, &self.arr, &self.str_, &self.int] {
            for wrd in part {
                if !self.domain.contains(wrd) {
                    out.push(ModelViolation::BadPartition(wrd.clone()));
                }
            }
        }

        let children = |n: &Word| -> Vec<Word> {
            let mut v = Vec::new();
            let mut i = 0usize;
            loop {
                let mut c = n.clone();
                c.push(i);
                if self.domain.contains(&c) {
                    v.push(c);
                    i += 1;
                } else {
                    break;
                }
            }
            v
        };

        // Condition 1: every object child has exactly one O triple; and key
        // uniqueness (condition 2).
        for n in &self.obj {
            let mut keys_seen: BTreeMap<&str, &Word> = BTreeMap::new();
            for (p, k, c) in self.o_rel.iter().filter(|(p, _, _)| p == n) {
                let _ = p;
                if let Some(prev) = keys_seen.insert(k.as_str(), c) {
                    if prev != c {
                        out.push(ModelViolation::DuplicateKeyEdge(n.clone(), k.clone()));
                    }
                }
            }
            for c in children(n) {
                let labelled = self.o_rel.iter().any(|(p, _, cc)| p == n && *cc == c);
                if !labelled {
                    out.push(ModelViolation::ObjectChildUnlabelled(n.clone(), c));
                }
            }
        }

        // Condition 3: array children indexed by their position.
        for n in &self.arr {
            for (i, c) in children(n).iter().enumerate() {
                if !self.a_rel.contains(&(n.clone(), i, c.clone())) {
                    out.push(ModelViolation::ArrayChildMisindexed(n.clone(), i));
                }
            }
        }

        // Condition 4: strings and numbers are leaves.
        for n in self.str_.iter().chain(self.int.iter()) {
            if !children(n).is_empty() {
                out.push(ModelViolation::LeafWithChildren(n.clone()));
            }
        }

        // Condition 5: values present and type-correct.
        for n in &self.str_ {
            match self.val.get(n) {
                Some(AtomValue::Str(_)) => {}
                _ => out.push(ModelViolation::MissingOrWrongValue(n.clone())),
            }
        }
        for n in &self.int {
            match self.val.get(n) {
                Some(AtomValue::Num(_)) => {}
                _ => out.push(ModelViolation::MissingOrWrongValue(n.clone())),
            }
        }

        // Relations connect true parent/child pairs with correctly-typed
        // sources.
        for (p, _, c) in &self.o_rel {
            let ok = self.obj.contains(p)
                && self.domain.contains(c)
                && c.len() == p.len() + 1
                && c.starts_with(p);
            if !ok {
                out.push(ModelViolation::DanglingRelation(p.clone(), c.clone()));
            }
        }
        for (p, i, c) in &self.a_rel {
            let ok = self.arr.contains(p)
                && self.domain.contains(c)
                && c.len() == p.len() + 1
                && c.starts_with(p)
                && c.last() == Some(i);
            if !ok {
                out.push(ModelViolation::DanglingRelation(p.clone(), c.clone()));
            }
        }

        out
    }

    /// Rebuilds the JSON value, provided the structure validates.
    pub fn to_json(&self) -> Result<Json, Vec<ModelViolation>> {
        let violations = self.validate();
        if !violations.is_empty() {
            return Err(violations);
        }
        Ok(self.build_value(&Vec::new()))
    }

    fn build_value(&self, n: &Word) -> Json {
        if self.int.contains(n) {
            match &self.val[n] {
                AtomValue::Num(v) => Json::Num(*v),
                AtomValue::Str(_) => unreachable!("validated"),
            }
        } else if self.str_.contains(n) {
            match &self.val[n] {
                AtomValue::Str(s) => Json::Str(s.clone()),
                AtomValue::Num(_) => unreachable!("validated"),
            }
        } else if self.arr.contains(n) {
            let mut items = Vec::new();
            let mut i = 0usize;
            loop {
                let mut c = n.clone();
                c.push(i);
                if self.domain.contains(&c) {
                    items.push(self.build_value(&c));
                    i += 1;
                } else {
                    break;
                }
            }
            Json::Array(items)
        } else {
            let mut pairs = Vec::new();
            for (p, k, c) in &self.o_rel {
                if p == n {
                    pairs.push((k.clone(), self.build_value(c)));
                }
            }
            Json::object(pairs).expect("validated keys are distinct")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn formal(src: &str) -> FormalJson {
        FormalJson::from_tree(&JsonTree::build(&parse(src).unwrap()))
    }

    #[test]
    fn well_formed_documents_validate() {
        for src in [
            "0",
            "\"s\"",
            "{}",
            "[]",
            r#"{"a": [1, {"b": "c"}], "d": {}}"#,
            r#"{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}"#,
        ] {
            let f = formal(src);
            assert!(f.validate().is_empty(), "{src} should validate");
            assert_eq!(f.to_json().unwrap(), parse(src).unwrap());
        }
    }

    #[test]
    fn detects_duplicate_key_edges() {
        let mut f = formal(r#"{"a": 1, "b": 2}"#);
        // Relabel the edge to child 1 with the key of child 0.
        let edges: Vec<_> = f.o_rel.iter().cloned().collect();
        let (p, _, c) = edges
            .iter()
            .find(|(_, _, c)| c == &vec![1])
            .unwrap()
            .clone();
        f.o_rel.retain(|(_, _, cc)| cc != &c);
        f.o_rel.insert((p, "a".into(), c));
        assert!(f
            .validate()
            .iter()
            .any(|v| matches!(v, ModelViolation::DuplicateKeyEdge(_, k) if k == "a")));
    }

    #[test]
    fn detects_prefix_violation() {
        let mut f = formal(r#"[1, 2]"#);
        // [7,0] breaks prefix closure ([7] absent); [5] breaks sibling
        // completeness (siblings 2..5 absent).
        f.domain.insert(vec![7, 0]);
        f.int.insert(vec![7, 0]);
        f.val.insert(vec![7, 0], AtomValue::Num(9));
        f.domain.insert(vec![5]);
        f.int.insert(vec![5]);
        f.val.insert(vec![5], AtomValue::Num(9));
        let vs = f.validate();
        assert!(vs
            .iter()
            .any(|v| matches!(v, ModelViolation::NotPrefixClosed(_))));
        assert!(vs
            .iter()
            .any(|v| matches!(v, ModelViolation::MissingSibling(_, _))));
    }

    #[test]
    fn detects_leaf_with_children() {
        let mut f = formal(r#"{"a": 7}"#);
        // Reclassify the root object as a number.
        f.obj.remove(&vec![]);
        f.int.insert(vec![]);
        f.val.insert(vec![], AtomValue::Num(0));
        let vs = f.validate();
        assert!(vs
            .iter()
            .any(|v| matches!(v, ModelViolation::LeafWithChildren(_))));
    }

    #[test]
    fn detects_missing_value() {
        let mut f = formal("42");
        f.val.clear();
        assert!(f
            .validate()
            .iter()
            .any(|v| matches!(v, ModelViolation::MissingOrWrongValue(_))));
    }

    #[test]
    fn detects_wrongly_typed_value() {
        let mut f = formal("42");
        f.val.insert(vec![], AtomValue::Str("not a number".into()));
        assert!(f
            .validate()
            .iter()
            .any(|v| matches!(v, ModelViolation::MissingOrWrongValue(_))));
    }

    #[test]
    fn detects_bad_partition() {
        let mut f = formal("42");
        f.str_.insert(vec![]); // now in both Int and Str
        assert!(f
            .validate()
            .iter()
            .any(|v| matches!(v, ModelViolation::BadPartition(_))));
    }

    #[test]
    fn detects_misindexed_array_child() {
        let mut f = formal("[7, 8]");
        let edges: Vec<_> = f.a_rel.iter().cloned().collect();
        let (p, i, c) = edges[0].clone();
        f.a_rel.remove(&(p.clone(), i, c.clone()));
        f.a_rel.insert((p, i + 10, c));
        let vs = f.validate();
        assert!(vs.iter().any(|v| matches!(
            v,
            ModelViolation::ArrayChildMisindexed(_, _) | ModelViolation::DanglingRelation(_, _)
        )));
    }

    #[test]
    fn round_trip_preserves_value() {
        let src = r#"{"x":[{"y":[0,1,{}]},"s"],"z":3}"#;
        let f = formal(src);
        assert_eq!(f.to_json().unwrap(), parse(src).unwrap());
    }
}
