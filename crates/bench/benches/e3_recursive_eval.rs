//! E3 (Prop 3): recursive/non-deterministic evaluation — PDL engine
//! (eq-free, linear claim) vs cubic engine (with `EQ(α,β)`).

use bench::{e3_formula_eqfree, e3_formula_eqpair, scaling_doc};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsondata::JsonTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_recursive_eval");
    g.sample_size(10);
    let eqfree = e3_formula_eqfree();
    let eqpair = e3_formula_eqpair();
    for exp in [8u32, 10, 12] {
        let doc = scaling_doc(1 << exp, 3);
        let tree = JsonTree::build(&doc);
        g.bench_with_input(
            BenchmarkId::new("pdl_eqfree", tree.node_count()),
            &tree,
            |b, t| b.iter(|| jnl::eval::pdl::eval(t, &eqfree).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("cubic_eqpair", tree.node_count()),
            &tree,
            |b, t| b.iter(|| jnl::eval::cubic::eval(t, &eqpair)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
