//! Abstract syntax of the JSON Schema Logic (Definition 2 of the paper).
//!
//! ```text
//! φ, ψ ::= ⊤ | ¬φ | φ∧ψ | φ∨ψ | τ (∈ NodeTests)
//!        | ◇_e φ | ◇_{i:j} φ | □_e φ | □_{i:j} φ
//! ```
//!
//! plus, for *recursive* JSL (§5.3), formula variables `γ` that reference
//! definitions. The deterministic restriction (only `◇_w`/`□_w` and
//! `◇_i`/`□_i`) is recognised by [`Jsl::is_deterministic`].

use std::fmt;

use jsondata::Json;
use relex::Regex;

/// The atomic node tests of §5.2.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// `Arr` — the node is an array.
    Arr,
    /// `Obj` — the node is an object.
    Obj,
    /// `Str` — the node is a string.
    Str,
    /// `Int` — the node is a number.
    Int,
    /// `Unique` — an array whose elements are pairwise distinct JSON values.
    Unique,
    /// `Pattern(e)` — a string value in `L(e)`.
    Pattern(Regex),
    /// `Min(i)` — a number `≥ i`. (The paper's prose says "greater than";
    /// we follow the JSON Schema semantics `≥` that Theorem 1 needs — see
    /// DESIGN.md.)
    Min(u64),
    /// `Max(i)` — a number `≤ i` (same remark as [`NodeTest::Min`]).
    Max(u64),
    /// `MultOf(i)` — a number divisible by `i`.
    MultOf(u64),
    /// `MinCh(i)` — the node has at least `i` children.
    MinCh(u64),
    /// `MaxCh(i)` — the node has at most `i` children.
    MaxCh(u64),
    /// `∼(A)` — the subtree equals the document `A`.
    EqDoc(Json),
}

/// A JSL formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Jsl {
    /// `⊤`.
    True,
    /// `¬φ`.
    Not(Box<Jsl>),
    /// `φ ∧ ψ ∧ …`.
    And(Vec<Jsl>),
    /// `φ ∨ ψ ∨ …`.
    Or(Vec<Jsl>),
    /// An atomic node test.
    Test(NodeTest),
    /// `◇_e φ` — some object child under a key in `L(e)` satisfies `φ`.
    DiamondKey(Regex, Box<Jsl>),
    /// `◇_{i:j} φ` — some array child at a position in `[i, j]` satisfies
    /// `φ` (`None` = `+∞`).
    DiamondRange(u64, Option<u64>, Box<Jsl>),
    /// `□_e φ` — every object child under a key in `L(e)` satisfies `φ`.
    BoxKey(Regex, Box<Jsl>),
    /// `□_{i:j} φ` — every array child at a position in `[i, j]` satisfies
    /// `φ`.
    BoxRange(u64, Option<u64>, Box<Jsl>),
    /// A formula variable `γ` (meaningful only inside
    /// [`crate::recursive::RecursiveJsl`]).
    Var(String),
}

impl Jsl {
    /// `⊥` as `¬⊤`.
    pub fn falsity() -> Jsl {
        Jsl::Not(Box::new(Jsl::True))
    }

    /// `¬φ`, collapsing double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(phi: Jsl) -> Jsl {
        match phi {
            Jsl::Not(inner) => *inner,
            other => Jsl::Not(Box::new(other)),
        }
    }

    /// Flattened conjunction.
    pub fn and(parts: Vec<Jsl>) -> Jsl {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Jsl::And(inner) => flat.extend(inner),
                Jsl::True => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Jsl::True,
            1 => flat.into_iter().next().expect("one element"),
            _ => Jsl::And(flat),
        }
    }

    /// Flattened disjunction.
    pub fn or(parts: Vec<Jsl>) -> Jsl {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Jsl::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Jsl::falsity(),
            1 => flat.into_iter().next().expect("one element"),
            _ => Jsl::Or(flat),
        }
    }

    /// `◇_w φ` for a literal key (deterministic form).
    pub fn diamond_key(w: &str, phi: Jsl) -> Jsl {
        Jsl::DiamondKey(Regex::literal(w), Box::new(phi))
    }

    /// `□_w φ` for a literal key.
    pub fn box_key(w: &str, phi: Jsl) -> Jsl {
        Jsl::BoxKey(Regex::literal(w), Box::new(phi))
    }

    /// `◇_{i} φ` (deterministic array form).
    pub fn diamond_index(i: u64, phi: Jsl) -> Jsl {
        Jsl::DiamondRange(i, Some(i), Box::new(phi))
    }

    /// `◇_{Σ*} φ` — some object child satisfies φ.
    pub fn diamond_any_key(phi: Jsl) -> Jsl {
        Jsl::DiamondKey(Regex::sigma_star(), Box::new(phi))
    }

    /// `□_{Σ*} φ` — all object children satisfy φ.
    pub fn box_any_key(phi: Jsl) -> Jsl {
        Jsl::BoxKey(Regex::sigma_star(), Box::new(phi))
    }

    /// Formula size (counting embedded regexes and documents).
    pub fn size(&self) -> usize {
        match self {
            Jsl::True | Jsl::Var(_) => 1,
            Jsl::Not(p) => 1 + p.size(),
            Jsl::And(ps) | Jsl::Or(ps) => 1 + ps.iter().map(Jsl::size).sum::<usize>(),
            Jsl::Test(t) => match t {
                NodeTest::Pattern(e) => 1 + e.size(),
                NodeTest::EqDoc(d) => 1 + d.node_count(),
                _ => 1,
            },
            Jsl::DiamondKey(e, p) | Jsl::BoxKey(e, p) => 1 + e.size() + p.size(),
            Jsl::DiamondRange(_, _, p) | Jsl::BoxRange(_, _, p) => 1 + p.size(),
        }
    }

    /// Modal depth (bounds model height for non-recursive satisfiability).
    pub fn modal_depth(&self) -> usize {
        match self {
            Jsl::True | Jsl::Test(_) | Jsl::Var(_) => 0,
            Jsl::Not(p) => p.modal_depth(),
            Jsl::And(ps) | Jsl::Or(ps) => ps.iter().map(Jsl::modal_depth).max().unwrap_or(0),
            Jsl::DiamondKey(_, p)
            | Jsl::BoxKey(_, p)
            | Jsl::DiamondRange(_, _, p)
            | Jsl::BoxRange(_, _, p) => 1 + p.modal_depth(),
        }
    }

    /// Whether the formula uses only the deterministic modalities `◇_w`,
    /// `□_w`, `◇_i`, `□_i` (§5.2's deterministic JSL).
    pub fn is_deterministic(&self) -> bool {
        match self {
            Jsl::True | Jsl::Test(_) | Jsl::Var(_) => true,
            Jsl::Not(p) => p.is_deterministic(),
            Jsl::And(ps) | Jsl::Or(ps) => ps.iter().all(Jsl::is_deterministic),
            Jsl::DiamondKey(e, p) | Jsl::BoxKey(e, p) => {
                e.as_single_word().is_some() && p.is_deterministic()
            }
            Jsl::DiamondRange(i, Some(j), p) | Jsl::BoxRange(i, Some(j), p) => {
                i == j && p.is_deterministic()
            }
            Jsl::DiamondRange(_, _, _) | Jsl::BoxRange(_, _, _) => false,
        }
    }

    /// Whether `Unique` appears anywhere (the Prop 6/7/10 complexity split).
    pub fn uses_unique(&self) -> bool {
        match self {
            Jsl::Test(NodeTest::Unique) => true,
            Jsl::True | Jsl::Test(_) | Jsl::Var(_) => false,
            Jsl::Not(p) => p.uses_unique(),
            Jsl::And(ps) | Jsl::Or(ps) => ps.iter().any(Jsl::uses_unique),
            Jsl::DiamondKey(_, p)
            | Jsl::BoxKey(_, p)
            | Jsl::DiamondRange(_, _, p)
            | Jsl::BoxRange(_, _, p) => p.uses_unique(),
        }
    }

    /// Free formula variables.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Jsl::Var(v) => out.push(v),
            Jsl::True | Jsl::Test(_) => {}
            Jsl::Not(p) => p.collect_vars(out),
            Jsl::And(ps) | Jsl::Or(ps) => ps.iter().for_each(|p| p.collect_vars(out)),
            Jsl::DiamondKey(_, p)
            | Jsl::BoxKey(_, p)
            | Jsl::DiamondRange(_, _, p)
            | Jsl::BoxRange(_, _, p) => p.collect_vars(out),
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Arr => write!(f, "Arr"),
            NodeTest::Obj => write!(f, "Obj"),
            NodeTest::Str => write!(f, "Str"),
            NodeTest::Int => write!(f, "Int"),
            NodeTest::Unique => write!(f, "Unique"),
            NodeTest::Pattern(e) => write!(f, "Pattern({e})"),
            NodeTest::Min(i) => write!(f, "Min({i})"),
            NodeTest::Max(i) => write!(f, "Max({i})"),
            NodeTest::MultOf(i) => write!(f, "MultOf({i})"),
            NodeTest::MinCh(i) => write!(f, "MinCh({i})"),
            NodeTest::MaxCh(i) => write!(f, "MaxCh({i})"),
            NodeTest::EqDoc(d) => write!(f, "~({d})"),
        }
    }
}

impl fmt::Display for Jsl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn range(i: u64, j: &Option<u64>) -> String {
            match j {
                Some(j) => format!("{i}:{j}"),
                None => format!("{i}:inf"),
            }
        }
        match self {
            Jsl::True => write!(f, "T"),
            Jsl::Not(p) => write!(f, "!({p})"),
            Jsl::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Jsl::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Jsl::Test(t) => write!(f, "{t}"),
            Jsl::DiamondKey(e, p) => write!(f, "<{e}>({p})"),
            Jsl::DiamondRange(i, j, p) => write!(f, "<{}>({p})", range(*i, j)),
            Jsl::BoxKey(e, p) => write!(f, "[{e}]({p})"),
            Jsl::BoxRange(i, j, p) => write!(f, "[{}]({p})", range(*i, j)),
            Jsl::Var(v) => write!(f, "${v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalise() {
        assert_eq!(Jsl::and(vec![]), Jsl::True);
        assert_eq!(
            Jsl::and(vec![Jsl::True, Jsl::Test(NodeTest::Obj)]),
            Jsl::Test(NodeTest::Obj)
        );
        assert_eq!(Jsl::or(vec![]), Jsl::falsity());
        assert_eq!(Jsl::not(Jsl::not(Jsl::True)), Jsl::True);
    }

    #[test]
    fn deterministic_detection() {
        let det = Jsl::diamond_key("name", Jsl::box_key("x", Jsl::diamond_index(3, Jsl::True)));
        assert!(det.is_deterministic());
        let nondet = Jsl::diamond_any_key(Jsl::True);
        assert!(!nondet.is_deterministic());
        let range = Jsl::DiamondRange(0, None, Box::new(Jsl::True));
        assert!(!range.is_deterministic());
    }

    #[test]
    fn modal_depth_and_size() {
        let phi = Jsl::box_any_key(Jsl::and(vec![
            Jsl::diamond_any_key(Jsl::True),
            Jsl::Test(NodeTest::MinCh(1)),
        ]));
        assert_eq!(phi.modal_depth(), 2);
        assert!(phi.size() > 4);
    }

    #[test]
    fn unique_detection_and_vars() {
        let phi = Jsl::and(vec![
            Jsl::Test(NodeTest::Unique),
            Jsl::box_any_key(Jsl::Var("g".into())),
        ]);
        assert!(phi.uses_unique());
        assert_eq!(phi.vars(), vec!["g"]);
    }
}
