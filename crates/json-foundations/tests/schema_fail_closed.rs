//! Fail-closed handling of ill-formed schemas, end to end.
//!
//! A JSON Schema document whose `$ref` points at a definition that does
//! not exist parses fine (`jschema::Schema::parse_str`) and bridges to a
//! [`RecursiveJsl`] with a dangling [`Jsl::Var`] — an expression that is
//! not well-formed. The robustness contract (docs/robustness.md) says no
//! such input may panic across a governed boundary: every consumer must
//! return a structured verdict instead. Pinned here for each consumer:
//!
//! * [`Collection::set_schema`] — rejects with
//!   [`WellFormednessError::UndefinedSymbol`] (the regression: it used
//!   to attach silently and the *next* evaluation panicked);
//! * [`jstat::analyze_schema`] — reports an advisory, no panic;
//! * [`jsl::sat_recursive`] — `Unknown`, never a panic, even when the
//!   dangling name is only reachable through the tableau's `Var` arm;
//! * [`RecursiveJsl::try_check_root`] / `try_evaluate` — structured
//!   `Err` for direct evaluation.

use json_foundations::mongo::Collection;
use json_foundations::schema::{schema_to_jsl, Schema};
use json_foundations::schema_logic::{
    sat_recursive, JslSatResult, RecursiveJsl, SatConfig, WellFormednessError,
};
use json_foundations::stat::analyze_schema;
use jsondata::JsonTree;

/// The dangling-`$ref` schema: `wanted` references `#/definitions/ghost`
/// but only `real` is defined.
fn dangling_schema() -> RecursiveJsl {
    let schema = Schema::parse_str(
        r##"{
            "definitions": {
                "real": {"type": "number"}
            },
            "properties": {
                "payload": {"$ref": "#/definitions/ghost"}
            },
            "required": ["payload"]
        }"##,
    )
    .expect("the document itself is valid schema syntax");
    schema_to_jsl(&schema).expect("bridges to JSL with a dangling Var")
}

#[test]
fn set_schema_rejects_dangling_ref_with_structured_error() {
    let mut coll = Collection::parse_str(r#"[{"payload": 1}]"#).unwrap();
    match coll.set_schema(dangling_schema()) {
        Err(WellFormednessError::UndefinedSymbol(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UndefinedSymbol(\"ghost\"), got {other:?}"),
    }
    // The rejection is fail-closed: nothing was attached.
    assert!(coll.schema().is_none());
    // The collection stays fully queryable.
    assert_eq!(coll.len(), 1);
}

#[test]
fn analyze_schema_reports_ill_formed_instead_of_panicking() {
    let report = analyze_schema(&dangling_schema());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("ill-formed")),
        "expected an ill-formed advisory, got {:?}",
        report.diagnostics
    );
}

#[test]
fn sat_recursive_returns_unknown_on_dangling_ref() {
    match sat_recursive(&dangling_schema(), SatConfig::default()) {
        JslSatResult::Unknown(why) => {
            assert!(why.contains("ill-formed"), "uninformative reason: {why}")
        }
        other => panic!("expected Unknown, got {other:?}"),
    }
}

#[test]
fn try_evaluation_surfaces_the_undefined_name() {
    let delta = dangling_schema();
    let tree = JsonTree::build(&jsondata::parse(r#"{"payload": 1}"#).unwrap());
    match delta.try_check_root(&tree) {
        Err(WellFormednessError::UndefinedSymbol(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UndefinedSymbol(\"ghost\"), got {other:?}"),
    }
    assert!(delta.try_evaluate(&tree).is_err());
}
