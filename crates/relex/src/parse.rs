//! Regular-expression parser.
//!
//! Grammar (a pragmatic subset of POSIX/ECMA syntax, matching what JSON
//! Schema patterns and the paper's examples use):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//! atom   := literal-char | '.' | '\' escape | '(' alt ')' | class
//! class  := '[' '^'? item+ ']'     item := c | c '-' c | '\' escape
//! ```
//!
//! Escapes: `\d` `\D` `\w` `\W` `\s` `\S`, `\n` `\r` `\t`, `\uXXXX`, and any
//! punctuation escaping itself. Anchors `^`/`$` are rejected: the engine is
//! anchored by construction (the paper's `L(e)` membership semantics).

use std::fmt;

use crate::ast::Regex;
use crate::classes::CharClass;

/// Bounded-repetition guard: `{m,n}` with n above this is refused rather
/// than silently exploding the AST.
const MAX_BOUNDED_REPEAT: u32 = 256;

/// A regex syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Parses a pattern into a [`Regex`].
pub fn parse(src: &str) -> Result<Regex, RegexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut p = P { chars, pos: 0 };
    let r = p.alt()?;
    if p.pos < p.chars.len() {
        return Err(p.err("unexpected trailing content (unbalanced ')'?)"));
    }
    Ok(r)
}

struct P {
    chars: Vec<char>,
    pos: usize,
}

impl P {
    fn err(&self, msg: &str) -> RegexError {
        RegexError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn alt(&mut self) -> Result<Regex, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(Regex::alt(branches))
    }

    fn concat(&mut self) -> Result<Regex, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(Regex::concat(parts))
    }

    fn repeat(&mut self) -> Result<Regex, RegexError> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    r = Regex::Star(Box::new(r));
                }
                Some('+') => {
                    self.bump();
                    r = Regex::plus(r);
                }
                Some('?') => {
                    self.bump();
                    r = Regex::opt(r);
                }
                Some('{') => {
                    let save = self.pos;
                    match self.bounded() {
                        Ok((m, n)) => r = expand_bounded(r, m, n),
                        Err(e) => {
                            // `{` not followed by a valid bound is an error:
                            // silently treating it as a literal hides typos.
                            self.pos = save;
                            return Err(e);
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(r)
    }

    /// Parses `{m}`, `{m,}` or `{m,n}` after the opening brace.
    fn bounded(&mut self) -> Result<(u32, Option<u32>), RegexError> {
        debug_assert_eq!(self.peek(), Some('{'));
        self.bump();
        let m = self.number()?;
        match self.peek() {
            Some('}') => {
                self.bump();
                Ok((m, Some(m)))
            }
            Some(',') => {
                self.bump();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((m, None));
                }
                let n = self.number()?;
                if self.peek() != Some('}') {
                    return Err(self.err("expected '}' after bounded repetition"));
                }
                self.bump();
                if n < m {
                    return Err(self.err("bounded repetition with n < m"));
                }
                if n > MAX_BOUNDED_REPEAT {
                    return Err(self.err("bounded repetition too large"));
                }
                Ok((m, Some(n)))
            }
            _ => Err(self.err("expected '}' or ',' in bounded repetition")),
        }
    }

    fn number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let v: u32 = text
            .parse()
            .map_err(|_| self.err("repetition count too large"))?;
        if v > MAX_BOUNDED_REPEAT {
            return Err(self.err("bounded repetition too large"));
        }
        Ok(v)
    }

    fn atom(&mut self) -> Result<Regex, RegexError> {
        match self.peek() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                self.bump();
                // Non-capturing group marker is tolerated.
                if self.peek() == Some('?') {
                    let save = self.pos;
                    self.bump();
                    if self.peek() == Some(':') {
                        self.bump();
                    } else {
                        self.pos = save;
                        return Err(self.err("unsupported (?...) group"));
                    }
                }
                let inner = self.alt()?;
                if self.peek() != Some(')') {
                    return Err(self.err("expected ')'"));
                }
                self.bump();
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => {
                self.bump();
                Ok(Regex::Class(CharClass::any()))
            }
            Some('\\') => {
                self.bump();
                Ok(Regex::Class(self.escape()?))
            }
            Some('^') | Some('$') => Err(self.err(
                "anchors are not supported: matching is anchored by definition (L(e) membership)",
            )),
            Some(c @ ('*' | '+' | '?' | '{' | '}' | ')' | '|')) => Err(RegexError {
                offset: self.pos,
                message: format!("misplaced metacharacter '{c}'"),
            }),
            Some(c) => {
                self.bump();
                Ok(Regex::Class(CharClass::single(c)))
            }
        }
    }

    fn escape(&mut self) -> Result<CharClass, RegexError> {
        let Some(c) = self.bump() else {
            return Err(self.err("dangling escape"));
        };
        Ok(match c {
            'd' => CharClass::range('0', '9'),
            'D' => CharClass::range('0', '9').negate(),
            'w' => word_class(),
            'W' => word_class().negate(),
            's' => space_class(),
            'S' => space_class().negate(),
            'n' => CharClass::single('\n'),
            'r' => CharClass::single('\r'),
            't' => CharClass::single('\t'),
            'u' => {
                let mut v = 0u32;
                for _ in 0..4 {
                    let Some(h) = self.bump() else {
                        return Err(self.err("truncated \\uXXXX escape"));
                    };
                    let d = h
                        .to_digit(16)
                        .ok_or_else(|| self.err("bad hex in \\uXXXX"))?;
                    v = v * 16 + d;
                }
                let ch = char::from_u32(v)
                    .ok_or_else(|| self.err("\\uXXXX escape is a surrogate code point"))?;
                CharClass::single(ch)
            }
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError {
                    offset: self.pos,
                    message: format!("unknown escape \\{c}"),
                })
            }
            c => CharClass::single(c),
        })
    }

    fn class(&mut self) -> Result<Regex, RegexError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.bump();
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut acc = CharClass::empty();
        let mut first = true;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            first = false;
            let item = self.class_item()?;
            // Range `x-y` only when the item is a single char and '-' is not
            // last.
            if let Some(lo) = single_of(&item) {
                if self.peek() == Some('-')
                    && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                {
                    self.bump(); // '-'
                    let hi_item = self.class_item()?;
                    let Some(hi) = single_of(&hi_item) else {
                        return Err(self.err("invalid range endpoint"));
                    };
                    if (hi as u32) < (lo as u32) {
                        return Err(self.err("reversed character range"));
                    }
                    acc = acc.union(&CharClass::range(lo, hi));
                    continue;
                }
            }
            acc = acc.union(&item);
        }
        let cc = if negated { acc.negate() } else { acc };
        Ok(Regex::Class(cc))
    }

    fn class_item(&mut self) -> Result<CharClass, RegexError> {
        match self.bump() {
            None => Err(self.err("unterminated character class")),
            Some('\\') => self.escape(),
            Some(c) => Ok(CharClass::single(c)),
        }
    }
}

fn single_of(cc: &CharClass) -> Option<char> {
    if cc.len() == 1 {
        cc.example()
    } else {
        None
    }
}

fn word_class() -> CharClass {
    CharClass::range('a', 'z')
        .union(&CharClass::range('A', 'Z'))
        .union(&CharClass::range('0', '9'))
        .union(&CharClass::single('_'))
}

fn space_class() -> CharClass {
    CharClass::from_ranges([(0x09, 0x0D), (0x20, 0x20)])
}

fn expand_bounded(r: Regex, m: u32, n: Option<u32>) -> Regex {
    let mut parts: Vec<Regex> = Vec::new();
    for _ in 0..m {
        parts.push(r.clone());
    }
    match n {
        None => parts.push(Regex::Star(Box::new(r))),
        Some(n) => {
            for _ in m..n {
                parts.push(Regex::opt(r.clone()));
            }
        }
    }
    Regex::concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::parse(pat).unwrap().compile().is_match(s)
    }

    #[test]
    fn paper_examples() {
        // §5.1: "(01)+" — strings built from 0 or 1 (per the schema example)
        assert!(m("(0|1)+", "0110"));
        assert!(!m("(0|1)+", ""));
        assert!(!m("(0|1)+", "012"));
        // §5.1: "a(b|c)a" patternProperties key
        assert!(m("a(b|c)a", "aba"));
        assert!(m("a(b|c)a", "aca"));
        assert!(!m("a(b|c)a", "ada"));
        // §5.3: "[A-z]*@ciws.cl" email pattern
        assert!(m("[A-z]*@ciws\\.cl", "juan@ciws.cl"));
        assert!(!m("[A-z]*@ciws\\.cl", "juan@example.org"));
    }

    #[test]
    fn repetition_operators() {
        assert!(m("ab*a", "aa"));
        assert!(m("ab*a", "abbba"));
        assert!(m("ab+a", "aba"));
        assert!(!m("ab+a", "aa"));
        assert!(m("ab?a", "aa"));
        assert!(m("ab?a", "aba"));
        assert!(!m("ab?a", "abba"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(m("a{3}", "aaa"));
        assert!(!m("a{3}", "aa"));
        assert!(m("a{2,4}", "aaa"));
        assert!(!m("a{2,4}", "aaaaa"));
        assert!(m("a{2,}", "aaaaaaa"));
        assert!(!m("a{2,}", "a"));
        assert!(Regex::parse("a{4,2}").is_err());
        assert!(Regex::parse("a{1000}").is_err());
        assert!(Regex::parse("a{").is_err());
    }

    #[test]
    fn classes() {
        assert!(m("[abc]+", "cab"));
        assert!(!m("[abc]+", "cad"));
        assert!(m("[a-z0-9]*", "q7x"));
        assert!(m("[^a-z]", "A"));
        assert!(!m("[^a-z]", "a"));
        assert!(m("[-a]", "-"));
        assert!(m("[]a]", "]")); // ']' first in class is literal
        assert!(m("\\d{2}", "42"));
        assert!(m("\\w+", "snake_case9"));
        assert!(!m("\\w+", "no spaces"));
        assert!(m("\\s", " "));
        assert!(m("[\\d]", "5"));
    }

    #[test]
    fn dot_and_escapes() {
        assert!(m(".", "x"));
        assert!(m(".", "✓"));
        assert!(!m(".", "xy"));
        assert!(m("a\\.b", "a.b"));
        assert!(!m("a\\.b", "axb"));
        assert!(m("\\u0041", "A"));
        assert!(Regex::parse("\\q").is_err());
        assert!(Regex::parse("\\u12").is_err());
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("(ab|cd)+", "abcdab"));
        assert!(!m("(ab|cd)+", "abc"));
        assert!(m("(?:ab)*", ""));
        assert!(Regex::parse("(ab").is_err());
        assert!(Regex::parse("ab)").is_err());
        assert!(Regex::parse("(?=x)").is_err());
    }

    #[test]
    fn anchors_rejected() {
        assert!(Regex::parse("^abc$").is_err());
        assert!(Regex::parse("a$").is_err());
    }

    #[test]
    fn misplaced_metacharacters() {
        assert!(Regex::parse("*a").is_err());
        assert!(Regex::parse("+").is_err());
        assert!(Regex::parse("a**").is_ok()); // (a*)* is fine
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        assert!(m("", ""));
        assert!(!m("", "a"));
    }
}
