//! The tree-backed pipeline executor.
//!
//! ## Row representation
//!
//! A pipeline row is **not** an owned document. It is a cursor into the
//! collection's persistent tree column plus overlay bindings:
//!
//! * [`Base::Node`] — a `(segment, node)` cursor ([`DocRef`]) into the
//!   collection's CSR trees. This is every row at pipeline entry, and stays
//!   the representation through `$match`, `$unwind`, `$sort`, `$skip`,
//!   `$limit`.
//! * Overlay bindings `path ↦ (segment, node)` record `$unwind`
//!   substitutions without copying the document: the row *means* "the base
//!   subtree with the value at `path` replaced by the bound subtree".
//!   Bindings are applied in list order (a later binding resolves through —
//!   and therefore nests inside or shadows — earlier ones).
//! * [`Base::Owned`] — an owned [`Json`], produced only at a `$group` or
//!   `$project` boundary, which must synthesize values that exist in no
//!   tree.
//!
//! Documents are materialised to [`Json`] exactly once, at pipeline output
//! — or earlier only where a stage genuinely observes a synthesized value
//! (a `$group` key, a projected field, a sort key, an accumulator
//! observation, or the rare merged view of a subtree that contains a
//! binding).
//!
//! ## Fast paths
//!
//! * A leading `$match` whose filter is in the exactly-compilable JNL
//!   fragment ([`Filter::jnl_exact`]) is answered by **one** whole-tree JNL
//!   evaluation per segment (the Proposition 1 engine), not a per-document
//!   walk; outside the fragment it runs [`Filter::matches_at`] per
//!   document — no materialisation either way.
//! * `$group` keys that resolve to tree nodes are hashed by their
//!   [`CanonTable`] class (built once per segment, lazily): two key nodes
//!   with equal subtrees share a class, so the common case never
//!   materialises or hashes a key value at all. Classes from different
//!   segments — and synthesized keys — unify through one [`Json`]-keyed
//!   table that each class materialises into at most once.

use std::cmp::Ordering;

use jsondata::fxhash::FxHashMap;
use jsondata::{CanonTable, Json, JsonTree, NodeKind};
use mongofind::{
    cmp_node_json, insert_path, json_kind, resolve_node_step, type_matches_kind, Collection,
    DocRef, Filter, Path,
};

use crate::pipeline::{
    Accumulator, GroupSpec, IdExpr, Pipeline, ProjectField, SortOrder, Stage, ValueExpr,
};

/// Runs an aggregation pipeline over a collection's tree column, returning
/// the output documents. Agrees exactly with
/// [`crate::reference::aggregate`] over [`Collection::docs`] (differentially
/// tested and CI-gated).
pub fn aggregate(coll: &Collection, pipeline: &Pipeline) -> Vec<Json> {
    Engine::new(coll).run(&pipeline.stages)
}

/// The base value of a row.
#[derive(Clone)]
enum Base {
    /// A cursor into the collection's tree column.
    Node(DocRef),
    /// An owned document synthesized by `$group`/`$project`.
    Owned(Json),
}

/// One pipeline row: a base document plus `$unwind` overlay bindings
/// (only ever non-empty on [`Base::Node`] rows — owned documents are
/// rebound in place).
#[derive(Clone)]
struct Row {
    base: Base,
    binds: Vec<(Path, DocRef)>,
}

impl Row {
    fn node(d: DocRef) -> Row {
        Row {
            base: Base::Node(d),
            binds: Vec::new(),
        }
    }

    fn owned(j: Json) -> Row {
        Row {
            base: Base::Owned(j),
            binds: Vec::new(),
        }
    }
}

/// The value a path resolves to on a row.
enum Resolved<'a> {
    /// A pure tree subtree (no binding beneath it).
    Node(DocRef),
    /// A borrowed owned value (row base is [`Base::Owned`]).
    Owned(&'a Json),
    /// A synthesized merged view: the subtree contained overlay bindings.
    Merged(Json),
}

struct Engine<'c> {
    coll: &'c Collection,
    /// Lazily built canonical-label tables, one slot per segment (the
    /// `$group` key fast path).
    canon: Vec<Option<CanonTable>>,
}

impl<'c> Engine<'c> {
    fn new(coll: &'c Collection) -> Engine<'c> {
        Engine {
            coll,
            canon: (0..coll.segments().len()).map(|_| None).collect(),
        }
    }

    fn tree(&self, seg: u32) -> &'c JsonTree {
        &self.coll.segments()[seg as usize]
    }

    fn json_of(&self, d: DocRef) -> Json {
        self.tree(d.seg).json_at(d.node)
    }

    fn canon(&mut self, seg: u32) -> &CanonTable {
        let slot = &mut self.canon[seg as usize];
        if slot.is_none() {
            *slot = Some(CanonTable::build(&self.coll.segments()[seg as usize]));
        }
        slot.as_ref().expect("just built")
    }

    fn run(&mut self, stages: &[Stage]) -> Vec<Json> {
        let mut rows: Vec<Row>;
        let rest = match stages.first() {
            // Leading-$match fast path: the filter runs over the tree
            // column before any row struct is even built.
            Some(Stage::Match(f)) => {
                rows = self.leading_match(f);
                &stages[1..]
            }
            _ => {
                rows = self
                    .coll
                    .doc_refs()
                    .iter()
                    .copied()
                    .map(Row::node)
                    .collect();
                stages
            }
        };
        for stage in rest {
            rows = self.step(rows, stage);
        }
        rows.into_iter().map(|r| self.materialize(r)).collect()
    }

    /// The first `$match` of a pipeline, straight off the collection:
    /// one whole-tree JNL evaluation per segment when the filter compiles
    /// exactly (Proposition 1 answers every document of a segment at
    /// once), [`Filter::matches_at`] per document otherwise.
    fn leading_match(&self, f: &Filter) -> Vec<Row> {
        let refs = if f.jnl_exact() {
            self.coll.find_refs_via_jnl(f)
        } else {
            self.coll.find_refs(f)
        };
        refs.into_iter().map(Row::node).collect()
    }

    fn step(&mut self, mut rows: Vec<Row>, stage: &Stage) -> Vec<Row> {
        match stage {
            Stage::Match(f) => {
                rows.retain(|r| self.row_matches(r, f));
                rows
            }
            Stage::Project(spec) => rows
                .into_iter()
                .map(|r| {
                    let projected = self.project(&r, spec);
                    Row::owned(projected)
                })
                .collect(),
            Stage::Unwind(path) => self.unwind(rows, path),
            Stage::Group(spec) => self.group(rows, spec),
            Stage::Sort(spec) => self.sort(rows, spec),
            Stage::Skip(n) => {
                let n = clamp_len(*n).min(rows.len());
                rows.drain(..n);
                rows
            }
            Stage::Limit(n) => {
                rows.truncate(clamp_len(*n));
                rows
            }
            Stage::Count(label) => {
                // MongoDB emits no document at all for an empty input.
                if rows.is_empty() {
                    Vec::new()
                } else {
                    let doc = Json::object(vec![(label.clone(), Json::Num(rows.len() as u64))])
                        .expect("single key");
                    vec![Row::owned(doc)]
                }
            }
        }
    }

    // ---- path resolution over rows ----------------------------------

    /// Resolves a dotted path on a row, honouring overlay bindings. At each
    /// step, a binding whose (remaining) path is empty substitutes the
    /// current cursor — the **last** such binding wins, and bindings
    /// recorded before it are stale (they addressed the subtree it
    /// replaced; the executor only ever appends a binding at or below the
    /// resolution frontier of earlier ones, so this drop is exact). If
    /// bindings survive below the final cursor, the subtree is synthesized
    /// as a merged view.
    fn resolve<'r>(&self, row: &'r Row, path: &Path) -> Option<Resolved<'r>> {
        match &row.base {
            Base::Owned(j) => path.resolve(j).map(Resolved::Owned),
            Base::Node(d) => {
                let mut cur = *d;
                let mut active: Vec<(&[String], DocRef)> = row
                    .binds
                    .iter()
                    .map(|(p, v)| (p.0.as_slice(), *v))
                    .collect();
                for seg in &path.0 {
                    substitute(&mut cur, &mut active);
                    let t = self.tree(cur.seg);
                    cur = DocRef {
                        seg: cur.seg,
                        node: resolve_node_step(t, cur.node, seg)?,
                    };
                    active = active
                        .into_iter()
                        .filter_map(|(p, v)| {
                            p.split_first()
                                .and_then(|(head, rest)| (head == seg).then_some((rest, v)))
                        })
                        .collect();
                }
                substitute(&mut cur, &mut active);
                if active.is_empty() {
                    Some(Resolved::Node(cur))
                } else {
                    Some(Resolved::Merged(self.merge(cur, &active)))
                }
            }
        }
    }

    /// Materialises `cur` with the surviving bindings written in, in order.
    fn merge(&self, cur: DocRef, binds: &[(&[String], DocRef)]) -> Json {
        let mut j = self.json_of(cur);
        for (p, v) in binds {
            set_at(&mut j, p, self.json_of(*v));
        }
        j
    }

    /// Materialises a whole row (pipeline output, or an owned rebase).
    fn materialize(&self, row: Row) -> Json {
        match row.base {
            Base::Owned(j) => j,
            Base::Node(d) => {
                let mut j = self.json_of(d);
                for (p, v) in &row.binds {
                    set_at(&mut j, &p.0, self.json_of(*v));
                }
                j
            }
        }
    }

    fn materialize_resolved(&self, r: Resolved<'_>) -> Json {
        match r {
            Resolved::Node(d) => self.json_of(d),
            Resolved::Owned(j) => j.clone(),
            Resolved::Merged(j) => j,
        }
    }

    /// Evaluates a value expression on a row, materialising the result
    /// (accumulator observations, compound `_id` fields, projected values).
    fn eval_expr(&self, row: &Row, e: &ValueExpr) -> Option<Json> {
        match e {
            ValueExpr::Const(c) => Some(c.clone()),
            ValueExpr::Field(p) => self.resolve(row, p).map(|r| self.materialize_resolved(r)),
        }
    }

    /// Evaluates a value expression as a number (`$sum`/`$avg`
    /// observations) without materialising non-numeric values.
    fn eval_num(&self, row: &Row, e: &ValueExpr) -> Option<u64> {
        match e {
            ValueExpr::Const(c) => c.as_num(),
            ValueExpr::Field(p) => match self.resolve(row, p)? {
                Resolved::Node(d) => self.tree(d.seg).num_value(d.node),
                Resolved::Owned(j) => j.as_num(),
                Resolved::Merged(j) => j.as_num(),
            },
        }
    }

    // ---- $match ------------------------------------------------------

    fn row_matches(&self, row: &Row, f: &Filter) -> bool {
        match &row.base {
            Base::Node(d) if row.binds.is_empty() => f.matches_at(self.tree(d.seg), d.node),
            Base::Owned(j) => f.matches(j),
            Base::Node(_) => self.matches_overlay(row, f),
        }
    }

    /// [`Filter::matches`] semantics on a row with overlay bindings.
    fn matches_overlay(&self, row: &Row, f: &Filter) -> bool {
        match f {
            Filter::And(fs) => fs.iter().all(|f| self.matches_overlay(row, f)),
            Filter::Or(fs) => fs.iter().any(|f| self.matches_overlay(row, f)),
            Filter::Not(f) => !self.matches_overlay(row, f),
            Filter::Compare(p, cmp, v) => match self.resolve(row, p) {
                Some(r) => {
                    let ord = self.cmp_resolved(&r, v);
                    match cmp {
                        mongofind::Cmp::Eq => ord.is_eq(),
                        mongofind::Cmp::Ne => !ord.is_eq(),
                        mongofind::Cmp::Gt => ord.is_gt(),
                        mongofind::Cmp::Gte => ord.is_ge(),
                        mongofind::Cmp::Lt => ord.is_lt(),
                        mongofind::Cmp::Lte => ord.is_le(),
                    }
                }
                None => false,
            },
            Filter::In(p, items, pos) => match self.resolve(row, p) {
                Some(r) => items.iter().any(|v| self.cmp_resolved(&r, v).is_eq()) == *pos,
                None => false,
            },
            Filter::Exists(p, flag) => self.resolve(row, p).is_some() == *flag,
            Filter::Size(p, n) => self
                .resolve(row, p)
                .and_then(|r| self.resolved_arr_len(&r))
                .is_some_and(|len| len as u64 == *n),
            Filter::Type(p, ty) => self
                .resolve(row, p)
                .is_some_and(|r| self.resolved_type_is(&r, ty)),
        }
    }

    fn cmp_resolved(&self, r: &Resolved<'_>, v: &Json) -> Ordering {
        match r {
            Resolved::Node(d) => cmp_node_json(self.tree(d.seg), d.node, v),
            Resolved::Owned(j) => j.total_cmp(v),
            Resolved::Merged(j) => j.total_cmp(v),
        }
    }

    fn resolved_arr_len(&self, r: &Resolved<'_>) -> Option<usize> {
        match r {
            Resolved::Node(d) => {
                let t = self.tree(d.seg);
                (t.kind(d.node) == NodeKind::Arr).then(|| t.child_count(d.node))
            }
            Resolved::Owned(j) => j.as_array().map(<[Json]>::len),
            Resolved::Merged(j) => j.as_array().map(<[Json]>::len),
        }
    }

    fn resolved_type_is(&self, r: &Resolved<'_>, ty: &str) -> bool {
        let kind = match r {
            Resolved::Node(d) => self.tree(d.seg).kind(d.node),
            Resolved::Owned(j) => json_kind(j),
            Resolved::Merged(j) => json_kind(j),
        };
        type_matches_kind(ty, kind)
    }

    // ---- $project ----------------------------------------------------

    fn project(&self, row: &Row, spec: &[(Path, ProjectField)]) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for (path, field) in spec {
            let value = match field {
                ProjectField::Include => self
                    .resolve(row, path)
                    .map(|r| self.materialize_resolved(r)),
                ProjectField::Expr(e) => self.eval_expr(row, e),
            };
            if let Some(v) = value {
                insert_path(&mut pairs, &path.0, v);
            }
        }
        Json::object(pairs).expect("insert_path keeps keys distinct")
    }

    // ---- $unwind -----------------------------------------------------

    fn unwind(&self, rows: Vec<Row>, path: &Path) -> Vec<Row> {
        enum Plan {
            Keep,
            Drop,
            /// Bind each child of this array node over the existing row.
            BindElems(DocRef),
            /// Rebase the materialised row once per element.
            OwnedElems(Vec<Json>),
        }
        let mut out = Vec::new();
        for row in rows {
            let plan = match self.resolve(&row, path) {
                None => Plan::Drop,
                Some(Resolved::Node(d)) => {
                    if self.tree(d.seg).kind(d.node) == NodeKind::Arr {
                        Plan::BindElems(d)
                    } else {
                        // MongoDB treats a non-array value as the
                        // single-element case: the row passes unchanged.
                        Plan::Keep
                    }
                }
                Some(Resolved::Owned(j)) => match j.as_array() {
                    Some(items) => Plan::OwnedElems(items.to_vec()),
                    None => Plan::Keep,
                },
                Some(Resolved::Merged(j)) => match j {
                    Json::Array(items) => Plan::OwnedElems(items),
                    _ => Plan::Keep,
                },
            };
            match plan {
                Plan::Drop => {}
                Plan::Keep => out.push(row),
                Plan::BindElems(arr) => {
                    let t = self.tree(arr.seg);
                    for &node in t.arr_children(arr.node) {
                        let mut unwound = row.clone();
                        unwound
                            .binds
                            .push((path.clone(), DocRef { seg: arr.seg, node }));
                        out.push(unwound);
                    }
                }
                Plan::OwnedElems(items) => {
                    // The resolve borrow has ended, so the row materialises
                    // by move — an owned base is reused, not re-cloned.
                    let base = self.materialize(row);
                    for elem in items {
                        let mut doc = base.clone();
                        set_at(&mut doc, &path.0, elem);
                        out.push(Row::owned(doc));
                    }
                }
            }
        }
        out
    }

    // ---- $group ------------------------------------------------------

    fn group(&mut self, rows: Vec<Row>, spec: &GroupSpec) -> Vec<Row> {
        // Group keys: canonical-class fast path for tree-node keys, one
        // shared Json-keyed table for everything (classes materialise into
        // it at most once, synthesized keys go straight in). `None` is the
        // missing-key group.
        let mut by_json: FxHashMap<Option<Json>, usize> = FxHashMap::default();
        let mut by_class: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        let mut groups: Vec<(Option<Json>, Vec<AccState>)> = Vec::new();

        for row in rows {
            // Field keys resolve exactly once: pure nodes go through the
            // class table, synthesized/owned/missing resolutions fall back
            // to the Json table directly.
            let gi = match &spec.id {
                IdExpr::Field(p) => match self.resolve(&row, p) {
                    Some(Resolved::Node(d)) => {
                        let ck = (d.seg, self.canon(d.seg).class_of(d.node));
                        match by_class.get(&ck) {
                            Some(&gi) => gi,
                            None => {
                                let key = Some(self.json_of(d));
                                let gi = Self::group_slot(&mut by_json, &mut groups, key, spec);
                                by_class.insert(ck, gi);
                                gi
                            }
                        }
                    }
                    resolved => {
                        let key = resolved.map(|r| self.materialize_resolved(r));
                        Self::group_slot(&mut by_json, &mut groups, key, spec)
                    }
                },
                id => {
                    let key = self.group_key(&row, id);
                    Self::group_slot(&mut by_json, &mut groups, key, spec)
                }
            };
            for (state, (_, acc)) in groups[gi].1.iter_mut().zip(&spec.accs) {
                self.accumulate_into(state, acc, &row);
            }
        }

        // Deterministic output order: missing key first, then total order.
        groups.sort_by(|a, b| cmp_opt_json(&a.0, &b.0));
        groups
            .into_iter()
            .map(|(id, states)| {
                let mut pairs: Vec<(String, Json)> = Vec::new();
                if let Some(idj) = id {
                    pairs.push(("_id".into(), idj));
                }
                for ((name, _), state) in spec.accs.iter().zip(states) {
                    if let Some(v) = state.finish() {
                        pairs.push((name.clone(), v));
                    }
                }
                Row::owned(Json::object(pairs).expect("parser validated distinct names"))
            })
            .collect()
    }

    fn group_slot(
        by_json: &mut FxHashMap<Option<Json>, usize>,
        groups: &mut Vec<(Option<Json>, Vec<AccState>)>,
        key: Option<Json>,
        spec: &GroupSpec,
    ) -> usize {
        if let Some(&gi) = by_json.get(&key) {
            return gi;
        }
        let gi = groups.len();
        let states = spec.accs.iter().map(|(_, a)| AccState::new(a)).collect();
        groups.push((key.clone(), states));
        by_json.insert(key, gi);
        gi
    }

    /// The group key of a row (`Field` ids are resolved inline by
    /// [`Engine::group`] so the class fast path shares the resolution).
    fn group_key(&self, row: &Row, id: &IdExpr) -> Option<Json> {
        match id {
            IdExpr::Const(c) => Some(c.clone()),
            IdExpr::Field(_) => unreachable!("Field ids are resolved inline by group()"),
            IdExpr::Doc(fields) => {
                let mut pairs: Vec<(String, Json)> = Vec::new();
                for (name, e) in fields {
                    if let Some(v) = self.eval_expr(row, e) {
                        pairs.push((name.clone(), v));
                    }
                }
                Some(Json::object(pairs).expect("parser validated distinct names"))
            }
        }
    }

    fn accumulate_into(&self, state: &mut AccState, acc: &Accumulator, row: &Row) {
        match (state, acc) {
            (AccState::Sum(total), Accumulator::Sum(e)) => {
                if let Some(n) = self.eval_num(row, e) {
                    *total += n as u128;
                }
            }
            (AccState::Avg { sum, count }, Accumulator::Avg(e)) => {
                if let Some(n) = self.eval_num(row, e) {
                    *sum += n as u128;
                    *count += 1;
                }
            }
            (AccState::Min(best), Accumulator::Min(e)) => {
                if let Some(v) = self.observe_cmp(row, e, best, Ordering::Less) {
                    *best = Some(v);
                }
            }
            (AccState::Max(best), Accumulator::Max(e)) => {
                if let Some(v) = self.observe_cmp(row, e, best, Ordering::Greater) {
                    *best = Some(v);
                }
            }
            (AccState::Count(n), Accumulator::Count) => *n += 1,
            (AccState::Push(items), Accumulator::Push(e)) => {
                if let Some(v) = self.eval_expr(row, e) {
                    items.push(v);
                }
            }
            (AccState::First(slot), Accumulator::First(e)) => {
                if slot.is_none() {
                    *slot = self.eval_expr(row, e);
                }
            }
            (AccState::Last(slot), Accumulator::Last(e)) => {
                if let Some(v) = self.eval_expr(row, e) {
                    *slot = Some(v);
                }
            }
            _ => unreachable!("state shape fixed by AccState::new"),
        }
    }

    /// Observes a `$min`/`$max` candidate, materialising it **only** when
    /// it displaces the current best (tree-node candidates are compared in
    /// place via [`cmp_node_json`]).
    fn observe_cmp(
        &self,
        row: &Row,
        e: &ValueExpr,
        best: &Option<Json>,
        want: Ordering,
    ) -> Option<Json> {
        match e {
            ValueExpr::Const(c) => match best {
                None => Some(c.clone()),
                Some(b) => (c.total_cmp(b) == want).then(|| c.clone()),
            },
            ValueExpr::Field(p) => {
                let r = self.resolve(row, p)?;
                match best {
                    None => Some(self.materialize_resolved(r)),
                    Some(b) => {
                        (self.cmp_resolved(&r, b) == want).then(|| self.materialize_resolved(r))
                    }
                }
            }
        }
    }

    // ---- $sort -------------------------------------------------------

    fn sort(&self, rows: Vec<Row>, spec: &[(Path, SortOrder)]) -> Vec<Row> {
        // Sort keys are resolved on the tree and materialised once per row
        // (they are typically scalars); the rows themselves stay cursors.
        let mut keyed: Vec<(Vec<Option<Json>>, Row)> = rows
            .into_iter()
            .map(|row| {
                let keys = spec
                    .iter()
                    .map(|(p, _)| self.resolve(&row, p).map(|r| self.materialize_resolved(r)))
                    .collect();
                (keys, row)
            })
            .collect();
        // Stable, so equal-key rows keep their input order.
        keyed.sort_by(|(ka, _), (kb, _)| cmp_sort_keys(spec, ka, kb));
        keyed.into_iter().map(|(_, row)| row).collect()
    }
}

/// Accumulator state (one per `(group, accumulator)` pair).
enum AccState {
    Sum(u128),
    Avg { sum: u128, count: u64 },
    Min(Option<Json>),
    Max(Option<Json>),
    Count(u64),
    Push(Vec<Json>),
    First(Option<Json>),
    Last(Option<Json>),
}

impl AccState {
    fn new(acc: &Accumulator) -> AccState {
        match acc {
            Accumulator::Sum(_) => AccState::Sum(0),
            Accumulator::Avg(_) => AccState::Avg { sum: 0, count: 0 },
            Accumulator::Min(_) => AccState::Min(None),
            Accumulator::Max(_) => AccState::Max(None),
            Accumulator::Count => AccState::Count(0),
            Accumulator::Push(_) => AccState::Push(Vec::new()),
            Accumulator::First(_) => AccState::First(None),
            Accumulator::Last(_) => AccState::Last(None),
        }
    }

    /// The output value, or `None` for empty-observation accumulators
    /// whose field is omitted (the fragment has no `null`).
    fn finish(self) -> Option<Json> {
        match self {
            AccState::Sum(total) => Some(Json::Num(saturate(total))),
            AccState::Avg { count: 0, .. } => None,
            AccState::Avg { sum, count } => Some(Json::Num(saturate(sum / count as u128))),
            AccState::Min(v) | AccState::Max(v) | AccState::First(v) | AccState::Last(v) => v,
            AccState::Count(n) => Some(Json::Num(n)),
            AccState::Push(items) => Some(Json::Array(items)),
        }
    }
}

/// Clamps a `u128` accumulator total into the fragment's `u64` numbers.
pub(crate) fn saturate(n: u128) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Clamps a `$skip`/`$limit` operand into `usize` without wrapping (a
/// 32-bit target must treat an oversized operand as "everything", not as
/// its truncated low bits).
pub(crate) fn clamp_len(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// The `$sort` comparator over per-row key vectors: first inequality under
/// [`cmp_opt_json`] decides, honouring each key's direction. Shared by both
/// executors (pure plumbing over already-resolved keys).
pub(crate) fn cmp_sort_keys(
    spec: &[(Path, SortOrder)],
    ka: &[Option<Json>],
    kb: &[Option<Json>],
) -> Ordering {
    for (i, (_, order)) in spec.iter().enumerate() {
        let ord = cmp_opt_json(&ka[i], &kb[i]);
        let ord = match order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// `None` (missing) sorts before every present value; present values
/// compare under [`Json::total_cmp`].
pub(crate) fn cmp_opt_json(a: &Option<Json>, b: &Option<Json>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.total_cmp(y),
    }
}

/// Applies the pending exact-match binding (the last one wins; entries
/// before it addressed the subtree it replaced and are dropped).
fn substitute(cur: &mut DocRef, active: &mut Vec<(&[String], DocRef)>) {
    if let Some(i) = active.iter().rposition(|(p, _)| p.is_empty()) {
        *cur = active[i].1;
        active.drain(..=i);
    }
}

/// Replaces the value at an existing dotted path inside an owned document
/// (resolution mirrors [`Path::resolve`]; a path that does not resolve is
/// a no-op). Shared with the value-based reference executor — it is pure
/// plumbing on already-evaluated values.
pub(crate) fn set_at(root: &mut Json, path: &[String], value: Json) {
    if path.is_empty() {
        *root = value;
        return;
    }
    let mut cur = root;
    for seg in &path[..path.len() - 1] {
        let next = match seg.parse::<usize>() {
            Ok(i) if cur.is_array() => cur.index_mut(i),
            _ => cur.get_mut(seg),
        };
        match next {
            Some(n) => cur = n,
            None => return,
        }
    }
    let leaf = &path[path.len() - 1];
    let slot = match leaf.parse::<usize>() {
        Ok(i) if cur.is_array() => cur.index_mut(i),
        _ => cur.get_mut(leaf),
    };
    if let Some(s) = slot {
        *s = value;
    }
}
