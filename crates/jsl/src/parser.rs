//! A concrete syntax for JSL formulas, matching the `Display`
//! implementation in [`crate::ast`]:
//!
//! ```text
//! phi  := or                         atom := 'T'
//! or   := and ('|' and)*                   | '!' atom
//! and  := atom ('&' atom)*                 | '(' phi ')'
//!                                          | '$' name            (variable)
//! test := 'Arr' | 'Obj' | 'Str' | 'Int' | 'Unique'
//!       | 'Pattern(' regex ')' | 'Min(' n ')' | 'Max(' n ')'
//!       | 'MultOf(' n ')' | 'MinCh(' n ')' | 'MaxCh(' n ')'
//!       | '~(' json ')'
//! modal := '<' sel '>' '(' phi ')'   (diamond)
//!        | '[' sel ']' '(' phi ')'   (box)
//! sel   := regex | i ':' (j | 'inf')
//! ```
//!
//! ```
//! use jsl::parse_jsl;
//! let phi = parse_jsl(r#"Obj & <age>(Min(18)) & [a(b|c)a](MultOf(2))"#).unwrap();
//! assert_eq!(phi.modal_depth(), 1);
//! ```

use std::fmt;

use jsondata::Json;
use relex::Regex;

use crate::ast::{Jsl, NodeTest};

/// A JSL syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JslParseError {
    /// Byte offset into the source.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for JslParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSL syntax error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JslParseError {}

/// Parses a JSL formula.
pub fn parse_jsl(src: &str) -> Result<Jsl, JslParseError> {
    let mut p = P { src, pos: 0 };
    p.ws();
    let phi = p.or()?;
    p.ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing content"));
    }
    Ok(phi)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> JslParseError {
        JslParseError {
            offset: self.pos,
            message: m.to_owned(),
        }
    }

    fn ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.src[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), JslParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{tok}`")))
        }
    }

    fn or(&mut self) -> Result<Jsl, JslParseError> {
        let mut parts = vec![self.and()?];
        loop {
            self.ws();
            if self.eat("|") {
                self.ws();
                parts.push(self.and()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Jsl::Or(parts)
        })
    }

    fn and(&mut self) -> Result<Jsl, JslParseError> {
        let mut parts = vec![self.atom()?];
        loop {
            self.ws();
            if self.eat("&") {
                self.ws();
                parts.push(self.atom()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            Jsl::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Jsl, JslParseError> {
        self.ws();
        if self.eat("!") {
            self.ws();
            return Ok(Jsl::not(self.atom()?));
        }
        if self.eat("(") {
            let phi = self.or()?;
            self.ws();
            self.expect(")")?;
            return Ok(phi);
        }
        if self.eat("$") {
            let name = self.ident()?;
            return Ok(Jsl::Var(name));
        }
        if self.eat("<") {
            return self.modal(true);
        }
        if self.eat("[") {
            return self.modal(false);
        }
        // Keyword tests. Order matters for prefixes (MinCh before Min).
        for (kw, build) in KEYWORDS {
            if self.src[self.pos..].starts_with(kw) {
                self.pos += kw.len();
                return build(self);
            }
        }
        Err(self.err("expected a JSL formula"))
    }

    fn modal(&mut self, diamond: bool) -> Result<Jsl, JslParseError> {
        let close = if diamond { '>' } else { ']' };
        let start = self.pos;
        let rest = &self.src[self.pos..];
        let end = rest
            .find(close)
            .ok_or_else(|| self.err(&format!("unterminated `{close}` selector")))?;
        let sel = &rest[..end];
        self.pos = start + end + 1;
        self.ws();
        self.expect("(")?;
        let body = self.or()?;
        self.ws();
        self.expect(")")?;
        // Range selector `i:j` / `i:inf`, else a key regex.
        if let Some(colon) = sel.find(':') {
            let (lo_txt, hi_txt) = (sel[..colon].trim(), sel[colon + 1..].trim());
            if let Ok(lo) = lo_txt.parse::<u64>() {
                let hi = if hi_txt == "inf" || hi_txt == "*" {
                    None
                } else {
                    Some(
                        hi_txt
                            .parse::<u64>()
                            .map_err(|_| self.err("bad range end"))?,
                    )
                };
                if let Some(h) = hi {
                    if h < lo {
                        return Err(self.err("range with j < i"));
                    }
                }
                return Ok(if diamond {
                    Jsl::DiamondRange(lo, hi, Box::new(body))
                } else {
                    Jsl::BoxRange(lo, hi, Box::new(body))
                });
            }
        }
        let re = Regex::parse(sel).map_err(|e| JslParseError {
            offset: start,
            message: format!("bad key regex: {e}"),
        })?;
        Ok(if diamond {
            Jsl::DiamondKey(re, Box::new(body))
        } else {
            Jsl::BoxKey(re, Box::new(body))
        })
    }

    fn ident(&mut self) -> Result<String, JslParseError> {
        let rest = &self.src[self.pos..];
        let end = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected an identifier"));
        }
        let name = rest[..end].to_owned();
        self.pos += end;
        Ok(name)
    }

    fn nat_arg(&mut self) -> Result<u64, JslParseError> {
        self.expect("(")?;
        self.ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let v: u64 = rest[..end]
            .parse()
            .map_err(|_| self.err("number too large"))?;
        self.pos += end;
        self.ws();
        self.expect(")")?;
        Ok(v)
    }

    fn regex_arg(&mut self) -> Result<Regex, JslParseError> {
        self.expect("(")?;
        let rest = &self.src[self.pos..];
        // The pattern runs to the matching close paren (nesting-aware).
        let mut depth = 1usize;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| self.err("unterminated Pattern(...)"))?;
        let src = &rest[..end];
        let re = Regex::parse(src).map_err(|e| JslParseError {
            offset: self.pos,
            message: e.to_string(),
        })?;
        self.pos += end + 1;
        Ok(re)
    }

    fn json_arg(&mut self) -> Result<Json, JslParseError> {
        self.expect("(")?;
        let rest = &self.src[self.pos..];
        // Balanced scan over the JSON extent (string-aware).
        let mut depth = 1i64;
        let mut in_str = false;
        let mut escaped = false;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '(' | '[' | '{' => depth += 1,
                ')' if depth == 1 => {
                    end = Some(i);
                    break;
                }
                ')' | ']' | '}' => depth -= 1,
                _ => {}
            }
        }
        let end = end.ok_or_else(|| self.err("unterminated ~(...)"))?;
        let doc = jsondata::parse(rest[..end].trim()).map_err(|e| JslParseError {
            offset: self.pos,
            message: e.to_string(),
        })?;
        self.pos += end + 1;
        Ok(doc)
    }
}

type Builder = fn(&mut P<'_>) -> Result<Jsl, JslParseError>;

/// Keyword table; longest-prefix entries first.
const KEYWORDS: &[(&str, Builder)] = &[
    ("T", |_| Ok(Jsl::True)),
    ("Arr", |_| Ok(Jsl::Test(NodeTest::Arr))),
    ("Obj", |_| Ok(Jsl::Test(NodeTest::Obj))),
    ("Str", |_| Ok(Jsl::Test(NodeTest::Str))),
    ("Int", |_| Ok(Jsl::Test(NodeTest::Int))),
    ("Unique", |_| Ok(Jsl::Test(NodeTest::Unique))),
    ("Pattern", |p| {
        Ok(Jsl::Test(NodeTest::Pattern(p.regex_arg()?)))
    }),
    ("MinCh", |p| Ok(Jsl::Test(NodeTest::MinCh(p.nat_arg()?)))),
    ("MaxCh", |p| Ok(Jsl::Test(NodeTest::MaxCh(p.nat_arg()?)))),
    ("MultOf", |p| Ok(Jsl::Test(NodeTest::MultOf(p.nat_arg()?)))),
    ("Min", |p| Ok(Jsl::Test(NodeTest::Min(p.nat_arg()?)))),
    ("Max", |p| Ok(Jsl::Test(NodeTest::Max(p.nat_arg()?)))),
    ("~", |p| Ok(Jsl::Test(NodeTest::EqDoc(p.json_arg()?)))),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Jsl as J;
    use crate::ast::NodeTest as T;

    #[test]
    fn parses_node_tests() {
        assert_eq!(parse_jsl("T").unwrap(), J::True);
        assert_eq!(parse_jsl("Obj").unwrap(), J::Test(T::Obj));
        assert_eq!(parse_jsl("Min(5)").unwrap(), J::Test(T::Min(5)));
        assert_eq!(parse_jsl("MinCh(2)").unwrap(), J::Test(T::MinCh(2)));
        assert_eq!(parse_jsl("MultOf(4)").unwrap(), J::Test(T::MultOf(4)));
        assert_eq!(parse_jsl("Unique").unwrap(), J::Test(T::Unique));
        assert_eq!(
            parse_jsl("~({\"k\": [1, 2]})").unwrap(),
            J::Test(T::EqDoc(jsondata::parse(r#"{"k":[1,2]}"#).unwrap()))
        );
        assert!(matches!(
            parse_jsl("Pattern((0|1)+)").unwrap(),
            J::Test(T::Pattern(_))
        ));
    }

    #[test]
    fn parses_modalities_and_booleans() {
        let phi = parse_jsl("Obj & <age>(Min(18)) & [a(b|c)a](MultOf(2))").unwrap();
        assert_eq!(phi.modal_depth(), 1);
        let phi = parse_jsl("<0:2>(Int) | ![1:inf](Str)").unwrap();
        match phi {
            J::Or(ps) => {
                assert!(matches!(ps[0], J::DiamondRange(0, Some(2), _)));
                assert!(matches!(ps[1], J::Not(_)));
            }
            other => panic!("unexpected {other}"),
        }
        let phi = parse_jsl("$g1 & !$g2").unwrap();
        assert_eq!(phi.vars().len(), 2);
    }

    #[test]
    fn display_parse_round_trip() {
        let phis = vec![
            J::and(vec![
                J::Test(T::Obj),
                J::diamond_key("age", J::Test(T::Min(18))),
                J::not(J::box_any_key(J::Test(T::Int))),
            ]),
            J::or(vec![
                J::DiamondRange(1, None, Box::new(J::True)),
                J::Test(T::EqDoc(jsondata::parse(r#"[1,{"a":"b"}]"#).unwrap())),
            ]),
            J::Var("g".into()),
            J::BoxRange(2, Some(5), Box::new(J::Test(T::Unique))),
        ];
        for phi in phis {
            let shown = phi.to_string();
            let back =
                parse_jsl(&shown).unwrap_or_else(|e| panic!("reparse of `{shown}` failed: {e}"));
            assert_eq!(phi, back, "source `{shown}`");
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "Min()",
            "Min(x)",
            "<age>(",
            "[0:]()",
            "Frob",
            "T T",
            "~(null)",
            "<0:-1>(T)",
        ] {
            assert!(parse_jsl(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn parsed_formulas_evaluate() {
        let phi =
            parse_jsl(r#"Obj & <name>(Pattern([A-Z][a-z]+)) & <age>(Min(18) & Max(99))"#).unwrap();
        let doc = jsondata::parse(r#"{"name": "Sue", "age": 28}"#).unwrap();
        let tree = jsondata::JsonTree::build(&doc);
        assert!(crate::eval::check_root(&tree, &phi));
        let bad = jsondata::parse(r#"{"name": "sue", "age": 28}"#).unwrap();
        assert!(!crate::eval::check_root(
            &jsondata::JsonTree::build(&bad),
            &phi
        ));
    }
}
