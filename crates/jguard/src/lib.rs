//! # jguard — per-query resource governance
//!
//! A multi-tenant serving layer cannot let one query take the process
//! down (a panicking worker), starve its neighbours (an adversarial
//! filter that runs forever), or exhaust memory (an unbounded `$push`
//! group). This crate is the workspace-wide answer: a cheap, clonable
//! [`QueryCtx`] carrying a deadline, a cancellation flag, and byte/row
//! budgets, threaded through every long-running path — `jpar` pool
//! dispatch, per-node JNL evaluation, `jagg` stage loops, and the
//! `mongofind` find/aggregate entry points — plus the structured
//! [`QueryError`] those paths return instead of panicking or spinning.
//!
//! ## Error taxonomy
//!
//! | Variant | Raised when |
//! |---|---|
//! | [`QueryError::Deadline`] | the context's deadline passed during a poll |
//! | [`QueryError::BudgetExceeded`] | a byte or row charge overdrew its budget |
//! | [`QueryError::Cancelled`] | [`QueryCtx::cancel`] was called on a clone |
//! | [`QueryError::WorkerPanicked`] | a pool worker panicked; the panic was contained |
//! | [`QueryError::ParseLimit`] | ingestion rejected a document via [`jsondata::ParseLimits`] |
//! | [`QueryError::Overloaded`] | an admission queue shed the request before it ran |
//! | [`QueryError::BadQuery`] | the request text failed to parse as a filter/pipeline |
//!
//! [`QueryError::is_retryable`] classifies every variant for callers
//! that want to retry: only [`QueryError::Overloaded`] is transient (the
//! request never ran and nothing was consumed); everything else is
//! either deterministic (`BadQuery`, `ParseLimit`, `BudgetExceeded`), an
//! explicit decision (`Cancelled`, `Deadline`), or evidence of a bug
//! (`WorkerPanicked`). [`retry_with_backoff`] is the matching bounded
//! retry loop with jittered exponential backoff used by the `jserve`
//! admission path.
//!
//! ## Poll granularity and overhead contract
//!
//! Deadlines and cancellation are observed *cooperatively*: workers
//! check the context between chunks, and per-row loops poll through a
//! [`Poller`], which performs the real check (an `Instant::now()` and
//! two atomic loads) only once every [`POLL_STRIDE`] ticks. A tick on
//! an unlimited context is a single branch on an `Option` discriminant.
//! The contract, enforced by `harness s7`, is that an expired or
//! cancelled query returns its error within a bounded grace window
//! (one chunk plus one poll stride of work) and that the uncontended
//! poll cost on the parallel workloads stays within 2%.
//!
//! Budgets are *charged*, not polled: producers call
//! [`QueryCtx::charge_bytes`] / [`QueryCtx::charge_rows`] as they
//! materialise output, and the first charge that overdraws returns
//! [`QueryError::BudgetExceeded`]. Charging on an unlimited context is
//! free (no traversal is done to size a value unless a byte budget is
//! actually present — see [`QueryCtx::charge_json`]).
//!
//! ## Panic-free guarantees
//!
//! `jpar`'s fallible entry points (`try_map`, `try_map_chunks`,
//! `try_flat_map_chunks`) contain worker panics with `catch_unwind`
//! and convert them to [`QueryError::WorkerPanicked`], joining the
//! remaining workers; the pool and any shared immutable state stay
//! reusable. Every `mongofind`/`jagg` `*_with_ctx` API inherits this:
//! they return `Err(WorkerPanicked)` rather than unwinding, as long as
//! the panic originates inside the dispatched closure. The legacy
//! (ctx-free) APIs re-raise the contained panic on the calling thread
//! to preserve their documented behaviour.
//!
//! ## Observability
//!
//! A [`jtrace::QueryMetrics`] sink can ride the context
//! ([`QueryCtx::with_metrics`]): the governance primitives record into it
//! (polls, bytes charged, rows emitted) and every `*_with_ctx` query path
//! in the workspace records its own counters and spans through
//! [`QueryCtx::record`] / [`QueryCtx::span_open`]. Without a sink each
//! record site costs a single branch, the same null-cost contract as the
//! unlimited context (gated by `harness s10`). See `docs/observability.md`.
//!
//! ## Fault injection
//!
//! [`Fault`] rides the context: the s7 harness plants
//! `Fault::PanicAtPoll(k)` or `Fault::SleepAtPoll` to prove, from the
//! outside, that panics are contained and deadlines are enforced at
//! every poll site. Production contexts leave it at `Fault::None`,
//! which skips the poll counter entirely.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jsondata::{Json, ParseError};
use jtrace::{Counter, QueryMetrics, SpanKind};

/// How many [`Poller::tick`]s elapse between two real context checks.
///
/// Per-row loops tick once per item; a stride of 1024 keeps the
/// amortised cost of `Instant::now()` far below the per-item work while
/// bounding the reaction latency to ~1024 items of compute.
pub const POLL_STRIDE: u32 = 1024;

/// Which budget a [`QueryError::BudgetExceeded`] overdrew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The approximate-byte budget charged by materialisation paths.
    Bytes,
    /// The result-row budget charged by find/unwind/group outputs.
    Rows,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Bytes => write!(f, "byte"),
            Resource::Rows => write!(f, "row"),
        }
    }
}

/// A structured, per-query failure. See the crate docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The context's deadline passed while the query was running.
    Deadline,
    /// A byte or row charge overdrew the context's budget.
    BudgetExceeded {
        /// Which budget was overdrawn.
        resource: Resource,
    },
    /// [`QueryCtx::cancel`] was observed by a poll.
    Cancelled,
    /// A pool worker panicked; the panic was contained at the pool
    /// boundary instead of unwinding through the caller.
    WorkerPanicked {
        /// The item range of the chunk whose closure panicked
        /// (empty when the panic happened outside any chunk).
        chunk: Range<usize>,
        /// The panic payload, when it was a string (the common case);
        /// a placeholder otherwise.
        payload: String,
    },
    /// Ingestion rejected a document against its [`jsondata::ParseLimits`].
    ParseLimit(ParseError),
    /// An admission queue shed the request before it ran (the queue was
    /// full or the request timed out waiting for a slot). Nothing was
    /// executed; the request is safe to retry.
    Overloaded,
    /// The request text itself was malformed (filter/pipeline/projection
    /// failed to parse). Deterministic: retrying cannot help.
    BadQuery(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Deadline => write!(f, "query deadline exceeded"),
            QueryError::BudgetExceeded { resource } => {
                write!(f, "query {resource} budget exceeded")
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::WorkerPanicked { chunk, payload } => write!(
                f,
                "worker panicked on chunk {}..{}: {payload}",
                chunk.start, chunk.end
            ),
            QueryError::ParseLimit(e) => write!(f, "document rejected at ingestion: {e}"),
            QueryError::Overloaded => write!(f, "server overloaded, request shed"),
            QueryError::BadQuery(msg) => write!(f, "bad query: {msg}"),
        }
    }
}

impl QueryError {
    /// Whether a retry of the same request can plausibly succeed.
    ///
    /// Only [`QueryError::Overloaded`] qualifies: the request was shed
    /// *before* any work ran, so a retry after backoff races a different
    /// load level. Every other variant is deterministic for the same
    /// request ([`QueryError::BadQuery`], [`QueryError::ParseLimit`],
    /// [`QueryError::BudgetExceeded`]), reflects an explicit decision
    /// that a retry must not override ([`QueryError::Cancelled`],
    /// [`QueryError::Deadline`] — the tenant's time is already spent),
    /// or is evidence of a bug where blind retry would just panic a
    /// second worker ([`QueryError::WorkerPanicked`]).
    pub fn is_retryable(&self) -> bool {
        match self {
            QueryError::Overloaded => true,
            QueryError::Deadline
            | QueryError::BudgetExceeded { .. }
            | QueryError::Cancelled
            | QueryError::WorkerPanicked { .. }
            | QueryError::ParseLimit(_)
            | QueryError::BadQuery(_) => false,
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> QueryError {
        QueryError::ParseLimit(e)
    }
}

/// A fault planted on a context by the s7 harness and the containment
/// tests. Triggers on the Nth real poll (1-based, counted across all
/// clones of the context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault — the poll counter is not even incremented.
    #[default]
    None,
    /// Panic inside the Nth poll, wherever it happens to run.
    PanicAtPoll(u64),
    /// Sleep `millis` inside the Nth poll — a synthetic slow node.
    SleepAtPoll {
        /// Which poll (1-based) stalls.
        at: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// The message injected panics carry, so tests can tell them from real bugs.
pub const INJECTED_PANIC_MSG: &str = "jguard: injected fault panic";

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    bytes_left: Option<AtomicI64>,
    rows_left: Option<AtomicI64>,
    polls: AtomicU64,
    fault: Fault,
    metrics: Option<Arc<QueryMetrics>>,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            deadline: None,
            cancelled: AtomicBool::new(false),
            bytes_left: None,
            rows_left: None,
            polls: AtomicU64::new(0),
            fault: Fault::None,
            metrics: None,
        }
    }
}

/// A cheap, clonable per-query governance handle.
///
/// [`QueryCtx::unlimited`] carries no state at all — checks and charges
/// on it compile down to one branch, which is what the legacy
/// (ctx-free) APIs delegate with. Any builder method allocates the
/// shared state; clones of a built context observe the same
/// cancellation flag, budgets, and poll counter.
///
/// Builder methods (`with_*`) must be applied **before** the context is
/// cloned — they mutate through [`Arc::get_mut`] and panic if clones
/// already exist.
#[derive(Debug, Clone, Default)]
pub struct QueryCtx {
    inner: Option<Arc<Inner>>,
}

impl QueryCtx {
    /// A context with no limits and no shared state. Checks are free;
    /// [`QueryCtx::cancel`] on it is a no-op.
    pub fn unlimited() -> QueryCtx {
        QueryCtx { inner: None }
    }

    /// A context with allocated shared state but no limits — cancellable
    /// from another thread via a clone, otherwise unconstrained.
    pub fn new() -> QueryCtx {
        QueryCtx {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    fn make_mut(&mut self) -> &mut Inner {
        let arc = self.inner.get_or_insert_with(|| Arc::new(Inner::default()));
        Arc::get_mut(arc).expect("QueryCtx builder methods must run before the ctx is cloned")
    }

    /// Sets the deadline to `now + timeout`.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryCtx {
        self.make_mut().deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryCtx {
        self.make_mut().deadline = Some(deadline);
        self
    }

    /// Caps the approximate bytes the query may materialise.
    pub fn with_byte_budget(mut self, bytes: u64) -> QueryCtx {
        self.make_mut().bytes_left = Some(AtomicI64::new(i64::try_from(bytes).unwrap_or(i64::MAX)));
        self
    }

    /// Caps the result rows the query may produce.
    pub fn with_row_budget(mut self, rows: u64) -> QueryCtx {
        self.make_mut().rows_left = Some(AtomicI64::new(i64::try_from(rows).unwrap_or(i64::MAX)));
        self
    }

    /// Plants an injected fault (testing/harness only).
    pub fn with_fault(mut self, fault: Fault) -> QueryCtx {
        self.make_mut().fault = fault;
        self
    }

    /// Attaches a [`jtrace::QueryMetrics`] sink: every `*_with_ctx` path
    /// the context flows through records its counters (and spans, if the
    /// sink carries a ring) into it. Like the budgets, the sink is shared
    /// by all clones; without one, every record site costs one branch.
    pub fn with_metrics(mut self, sink: Arc<QueryMetrics>) -> QueryCtx {
        self.make_mut().metrics = Some(sink);
        self
    }

    /// The attached metrics sink, if any.
    pub fn metrics(&self) -> Option<&Arc<QueryMetrics>> {
        self.inner.as_deref().and_then(|i| i.metrics.as_ref())
    }

    /// Adds `n` to `counter` on the attached sink (no-op without one).
    #[inline]
    pub fn record(&self, counter: Counter, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            if let Some(m) = &inner.metrics {
                m.add(counter, n);
            }
        }
    }

    /// Appends a contained-panic audit event to the attached sink
    /// (no-op without one). `chunk` is `usize::MAX` when the panic was
    /// contained outside any identifiable chunk.
    pub fn record_panic(&self, chunk: usize, payload: &str) {
        if let Some(m) = self.metrics() {
            m.record_panic(chunk, payload);
        }
    }

    /// Records a span-open event on the attached sink's ring (no-op
    /// without a sink or without a ring).
    #[inline]
    pub fn span_open(&self, kind: SpanKind, arg: u32) {
        if let Some(inner) = self.inner.as_deref() {
            if let Some(m) = &inner.metrics {
                m.span_open(kind, arg);
            }
        }
    }

    /// Records a span-close event (see [`QueryCtx::span_open`]).
    #[inline]
    pub fn span_close(&self, kind: SpanKind, arg: u32) {
        if let Some(inner) = self.inner.as_deref() {
            if let Some(m) = &inner.metrics {
                m.span_close(kind, arg);
            }
        }
    }

    /// Whether this is the zero-state unlimited context.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Requests cancellation; every clone observes it at its next poll.
    /// A no-op on [`QueryCtx::unlimited`] (there is no shared flag).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether a byte budget is present (lets producers skip sizing
    /// work entirely when it is not).
    #[inline]
    pub fn has_byte_budget(&self) -> bool {
        self.inner
            .as_deref()
            .is_some_and(|i| i.bytes_left.is_some())
    }

    /// The full check: fault hook, cancellation flag, deadline.
    /// Budgets are charged separately, not polled.
    pub fn check(&self) -> Result<(), QueryError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        if let Some(m) = &inner.metrics {
            m.add(Counter::Polls, 1);
        }
        if inner.fault != Fault::None {
            let n = inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
            match inner.fault {
                Fault::PanicAtPoll(at) if n == at => panic!("{INJECTED_PANIC_MSG} (poll {at})"),
                Fault::SleepAtPoll { at, millis } if n == at => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(QueryError::Cancelled);
        }
        if let Some(d) = inner.deadline {
            if Instant::now() >= d {
                return Err(QueryError::Deadline);
            }
        }
        Ok(())
    }

    /// Charges `n` approximate bytes against the budget, if one is set.
    #[inline]
    pub fn charge_bytes(&self, n: u64) -> Result<(), QueryError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        if let Some(m) = &inner.metrics {
            m.add(Counter::BytesCharged, n);
        }
        let Some(left) = &inner.bytes_left else {
            return Ok(());
        };
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        if left.fetch_sub(n, Ordering::Relaxed) < n {
            return Err(QueryError::BudgetExceeded {
                resource: Resource::Bytes,
            });
        }
        Ok(())
    }

    /// Charges `n` result rows against the budget, if one is set.
    #[inline]
    pub fn charge_rows(&self, n: u64) -> Result<(), QueryError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        if let Some(m) = &inner.metrics {
            m.add(Counter::RowsEmitted, n);
        }
        let Some(left) = &inner.rows_left else {
            return Ok(());
        };
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        if left.fetch_sub(n, Ordering::Relaxed) < n {
            return Err(QueryError::BudgetExceeded {
                resource: Resource::Rows,
            });
        }
        Ok(())
    }

    /// Charges a materialised value's approximate size — but only
    /// traverses the value when a byte budget is actually present, so
    /// unbudgeted queries pay nothing for the call.
    #[inline]
    pub fn charge_json(&self, value: &Json) -> Result<(), QueryError> {
        if !self.has_byte_budget() {
            return Ok(());
        }
        self.charge_bytes(approx_json_bytes(value))
    }

    /// A per-loop poller bound to this context.
    pub fn poller(&self) -> Poller<'_> {
        Poller::new(self)
    }
}

/// Amortises [`QueryCtx::check`] for per-item loops: the real check
/// runs once every [`POLL_STRIDE`] ticks; the other ticks are a counter
/// decrement. On an unlimited context a tick is a single branch.
pub struct Poller<'c> {
    ctx: &'c QueryCtx,
    left: u32,
}

impl<'c> Poller<'c> {
    /// A fresh poller; its first [`Poller::tick`] performs a real check
    /// so an already-expired context fails before any work happens.
    pub fn new(ctx: &'c QueryCtx) -> Poller<'c> {
        Poller { ctx, left: 0 }
    }

    /// Call once per item. Cheap between strides; see [`POLL_STRIDE`].
    #[inline]
    pub fn tick(&mut self) -> Result<(), QueryError> {
        if self.ctx.inner.is_none() {
            return Ok(());
        }
        if self.left > 0 {
            self.left -= 1;
            return Ok(());
        }
        self.left = POLL_STRIDE;
        self.ctx.check()
    }
}

/// A cheap structural size estimate used for byte-budget charging:
/// container/string headers plus payload lengths. It deliberately
/// over-approximates small values (every node costs at least a
/// pointer-ish constant) so budgets bound allocation, not undershoot it.
pub fn approx_json_bytes(value: &Json) -> u64 {
    match value {
        Json::Num(_) => 16,
        Json::Str(s) => 24 + s.len() as u64,
        Json::Array(items) => 24 + items.iter().map(approx_json_bytes).sum::<u64>(),
        Json::Object(o) => {
            let mut total = 24u64;
            for (k, v) in o.iter() {
                total += 24 + k.len() as u64 + approx_json_bytes(v);
            }
            total
        }
    }
}

/// Bounds for [`retry_with_backoff`]: how many attempts to make and how
/// the sleep between them grows.
///
/// The delay before retry `i` (1-based) is drawn uniformly from
/// `0..=min(cap, base << (i-1))` — "full jitter", which decorrelates
/// clients that were all shed by the same overload spike. `base = 0`
/// disables sleeping entirely (useful in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub attempts: u32,
    /// Backoff base; doubles per retry before jitter.
    pub base: Duration,
    /// Upper bound on any single pre-jitter backoff step.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
        }
    }
}

/// Runs `f` until it succeeds, fails with a non-retryable error, or
/// exhausts `policy.attempts`. Sleeps a jittered, exponentially growing
/// delay between attempts (see [`RetryPolicy`]).
///
/// Only errors with [`QueryError::is_retryable`]` == true` are retried —
/// in practice [`QueryError::Overloaded`] from an admission queue. The
/// last error is returned verbatim when attempts run out.
pub fn retry_with_backoff<T>(
    policy: RetryPolicy,
    mut f: impl FnMut() -> Result<T, QueryError>,
) -> Result<T, QueryError> {
    // Cheap decorrelation seed: a process-wide counter mixed with the
    // monotonic clock, fed through splitmix64. Not cryptographic; it
    // only has to spread concurrent retriers across the backoff window.
    static SALT: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    let mut rng = SALT
        .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
        .wrapping_add(clock);
    let mut next_u64 = move || {
        rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.base;
    for attempt in 1..=attempts {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < attempts && e.is_retryable() => {
                let step = backoff.min(policy.cap);
                if !step.is_zero() {
                    let nanos = step.as_nanos().min(u128::from(u64::MAX)) as u64;
                    std::thread::sleep(Duration::from_nanos(next_u64() % (nanos + 1)));
                }
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on the final attempt")
}

/// Runs `f` with the global panic hook silenced, restoring it after.
/// Used by the fault-injection harness and the containment tests so a
/// thousand *intentional* panics do not flood stderr. The hook is
/// process-global: concurrent tests may briefly lose their panic
/// message, but the unwind (and thus the test failure) still happens.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_free_and_infallible() {
        let ctx = QueryCtx::unlimited();
        assert!(ctx.is_unlimited());
        assert_eq!(ctx.check(), Ok(()));
        assert_eq!(ctx.charge_bytes(u64::MAX), Ok(()));
        assert_eq!(ctx.charge_rows(u64::MAX), Ok(()));
        ctx.cancel(); // no-op
        assert_eq!(ctx.check(), Ok(()));
    }

    #[test]
    fn cancellation_is_seen_by_clones() {
        let ctx = QueryCtx::new();
        let worker = ctx.clone();
        assert_eq!(worker.check(), Ok(()));
        ctx.cancel();
        assert_eq!(worker.check(), Err(QueryError::Cancelled));
    }

    #[test]
    fn expired_deadline_fails_check() {
        let ctx = QueryCtx::unlimited().with_timeout(Duration::from_secs(0));
        assert_eq!(ctx.check(), Err(QueryError::Deadline));
        let far = QueryCtx::unlimited().with_timeout(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
    }

    #[test]
    fn byte_budget_overdraws_once() {
        let ctx = QueryCtx::unlimited().with_byte_budget(100);
        assert_eq!(ctx.charge_bytes(60), Ok(()));
        assert_eq!(
            ctx.charge_bytes(60),
            Err(QueryError::BudgetExceeded {
                resource: Resource::Bytes
            })
        );
        // Stays overdrawn.
        assert!(ctx.charge_bytes(1).is_err());
    }

    #[test]
    fn row_budget_counts_rows() {
        let ctx = QueryCtx::unlimited().with_row_budget(3);
        assert_eq!(ctx.charge_rows(2), Ok(()));
        assert_eq!(ctx.charge_rows(1), Ok(()));
        assert_eq!(
            ctx.charge_rows(1),
            Err(QueryError::BudgetExceeded {
                resource: Resource::Rows
            })
        );
    }

    #[test]
    fn poller_strides_and_reacts() {
        let ctx = QueryCtx::new();
        let mut p = ctx.poller();
        // First tick checks (ok), the next POLL_STRIDE ticks are free.
        assert_eq!(p.tick(), Ok(()));
        ctx.cancel();
        let mut seen = None;
        for i in 0..=POLL_STRIDE {
            if p.tick().is_err() {
                seen = Some(i);
                break;
            }
        }
        assert_eq!(seen, Some(POLL_STRIDE), "reacts exactly at the stride");
    }

    #[test]
    fn fault_panics_at_requested_poll() {
        let ctx = QueryCtx::unlimited().with_fault(Fault::PanicAtPoll(3));
        assert_eq!(ctx.check(), Ok(()));
        assert_eq!(ctx.check(), Ok(()));
        let r = with_quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.check()))
        });
        assert!(r.is_err(), "third poll panics");
        assert_eq!(ctx.check(), Ok(()), "later polls are clean");
    }

    #[test]
    fn metrics_sink_records_polls_and_charges() {
        let sink = Arc::new(QueryMetrics::new());
        let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
        assert_eq!(ctx.check(), Ok(()));
        // Charges record even when no budget is configured.
        assert_eq!(ctx.charge_rows(5), Ok(()));
        assert_eq!(ctx.charge_bytes(100), Ok(()));
        ctx.record(Counter::DocsScanned, 3);
        ctx.record_panic(7, "boom");
        assert_eq!(sink.get(Counter::Polls), 1);
        assert_eq!(sink.get(Counter::RowsEmitted), 5);
        assert_eq!(sink.get(Counter::BytesCharged), 100);
        assert_eq!(sink.get(Counter::DocsScanned), 3);
        assert_eq!(sink.get(Counter::WorkerPanics), 1);
        assert_eq!(sink.panic_events()[0].chunk, 7);
        assert!(ctx.metrics().is_some());

        // Spanless and sinkless paths are no-ops, not errors.
        ctx.span_open(SpanKind::Plan, 0);
        let bare = QueryCtx::unlimited();
        bare.record(Counter::DocsScanned, 1);
        bare.record_panic(0, "ignored");
        bare.span_close(SpanKind::Plan, 0);
        assert!(bare.metrics().is_none());
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small = Json::Num(1);
        let big = Json::Array((0..100).map(|_| Json::str("hello world")).collect());
        assert!(approx_json_bytes(&big) > approx_json_bytes(&small));
        assert!(approx_json_bytes(&big) >= 100 * 11);
    }

    #[test]
    fn retryability_is_classified_per_variant() {
        assert!(QueryError::Overloaded.is_retryable());
        assert!(!QueryError::Deadline.is_retryable());
        assert!(!QueryError::Cancelled.is_retryable());
        assert!(!QueryError::BudgetExceeded {
            resource: Resource::Bytes
        }
        .is_retryable());
        assert!(!QueryError::BudgetExceeded {
            resource: Resource::Rows
        }
        .is_retryable());
        assert!(!QueryError::WorkerPanicked {
            chunk: 0..4,
            payload: "boom".into(),
        }
        .is_retryable());
        let parse_err = jsondata::parse_with_limits("[0", jsondata::ParseLimits::default())
            .expect_err("truncated doc must fail");
        assert!(!QueryError::ParseLimit(parse_err).is_retryable());
        assert!(!QueryError::BadQuery("no such stage".into()).is_retryable());
    }

    #[test]
    fn retry_retries_only_retryable_errors() {
        let quick = RetryPolicy {
            attempts: 5,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        };
        // Succeeds on the third attempt.
        let mut calls = 0;
        let out = retry_with_backoff(quick, || {
            calls += 1;
            if calls < 3 {
                Err(QueryError::Overloaded)
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));

        // Exhausts attempts and surfaces the last error.
        let mut calls = 0;
        let out: Result<(), _> = retry_with_backoff(quick, || {
            calls += 1;
            Err(QueryError::Overloaded)
        });
        assert_eq!(out, Err(QueryError::Overloaded));
        assert_eq!(calls, 5);

        // Non-retryable errors are returned immediately.
        let mut calls = 0;
        let out: Result<(), _> = retry_with_backoff(quick, || {
            calls += 1;
            Err(QueryError::Deadline)
        });
        assert_eq!(out, Err(QueryError::Deadline));
        assert_eq!(calls, 1);

        // attempts == 0 is clamped to a single attempt, not a panic.
        let zero = RetryPolicy {
            attempts: 0,
            ..quick
        };
        assert_eq!(retry_with_backoff(zero, || Ok(7)), Ok(7));
    }

    #[test]
    fn retry_backoff_sleeps_are_bounded_by_cap() {
        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::from_micros(200),
            cap: Duration::from_micros(400),
        };
        let t0 = Instant::now();
        let out: Result<(), _> = retry_with_backoff(policy, || Err(QueryError::Overloaded));
        assert_eq!(out, Err(QueryError::Overloaded));
        // 3 sleeps, each at most cap (plus scheduler slop): far below 1s.
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn display_is_stable() {
        let e = QueryError::WorkerPanicked {
            chunk: 3..7,
            payload: "boom".into(),
        };
        assert_eq!(e.to_string(), "worker panicked on chunk 3..7: boom");
        assert_eq!(QueryError::Deadline.to_string(), "query deadline exceeded");
        assert_eq!(
            QueryError::BudgetExceeded {
                resource: Resource::Rows
            }
            .to_string(),
            "query row budget exceeded"
        );
        assert_eq!(
            QueryError::Overloaded.to_string(),
            "server overloaded, request shed"
        );
        assert_eq!(QueryError::BadQuery("x".into()).to_string(), "bad query: x");
    }
}
