//! The Proposition 4 reduction: two-counter (Minsky) machine emptiness →
//! satisfiability of recursive, non-deterministic JNL with `EQ(α, β)`,
//! using no negation.
//!
//! A run is encoded as a linked list of configuration objects:
//!
//! ```json
//! { "state": "q0",
//!   "c1": "0",                       // counter 0 ≡ the string "0"
//!   "c2": {"a": {"a": "0"}},         // counter 2 ≡ an a-chain of length 2
//!   "next": { … next configuration … } }
//! ```
//!
//! The formula `Φ_M = init ∧ [ (⟨trans⟩ ∘ X_next)* ∘ ⟨final⟩ ]` uses
//! `EQ(α, β)` to force whole counter subtrees to be copied (±1 level of
//! `a`-nesting) between consecutive configurations — the mechanism that
//! makes satisfiability undecidable. Undecidability itself cannot be
//! executed; what this module reproduces is the *reduction*: for halting
//! machines the generated witness satisfies `Φ_M`, and truncated or
//! corrupted runs do not.

use jsondata::Json;

use crate::ast::{Binary, Unary};

/// A two-counter machine instruction (counters are indexed 0 and 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Increment the counter, go to the state.
    Inc(usize, usize),
    /// Decrement the counter (blocking on zero), go to the state.
    Dec(usize, usize),
    /// If the counter is zero go to the first state, else to the second.
    IfZero(usize, usize, usize),
    /// Halt (accepting).
    Halt,
}

/// A two-counter machine; state `0` is initial.
#[derive(Debug, Clone)]
pub struct MinskyMachine {
    /// Instruction for each state.
    pub program: Vec<Instr>,
}

/// One configuration of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Current state.
    pub state: usize,
    /// Counter values.
    pub counters: [u64; 2],
}

impl MinskyMachine {
    /// Runs the machine up to `max_steps`; returns the configuration trace
    /// ending in a `Halt` state, or `None` if it does not halt in time.
    pub fn run(&self, max_steps: usize) -> Option<Vec<Config>> {
        let mut trace = vec![Config {
            state: 0,
            counters: [0, 0],
        }];
        for _ in 0..max_steps {
            let cur = trace.last().expect("trace nonempty").clone();
            match self.program.get(cur.state)? {
                Instr::Halt => return Some(trace),
                Instr::Inc(c, q) => {
                    let mut counters = cur.counters;
                    counters[*c] += 1;
                    trace.push(Config {
                        state: *q,
                        counters,
                    });
                }
                Instr::Dec(c, q) => {
                    if cur.counters[*c] == 0 {
                        return None; // blocked
                    }
                    let mut counters = cur.counters;
                    counters[*c] -= 1;
                    trace.push(Config {
                        state: *q,
                        counters,
                    });
                }
                Instr::IfZero(c, then_q, else_q) => {
                    let q = if cur.counters[*c] == 0 {
                        *then_q
                    } else {
                        *else_q
                    };
                    trace.push(Config {
                        state: q,
                        counters: cur.counters,
                    });
                }
            }
        }
        matches!(self.program.get(trace.last()?.state), Some(Instr::Halt)).then_some(trace)
    }

    /// State name used in the encoding.
    fn state_name(q: usize) -> String {
        format!("q{q}")
    }

    fn counter_key(c: usize) -> &'static str {
        if c == 0 {
            "c1"
        } else {
            "c2"
        }
    }

    /// Encodes a counter value as an `a`-chain ending in the string `"0"`.
    pub fn encode_counter(v: u64) -> Json {
        let mut j = Json::Str("0".to_owned());
        for _ in 0..v {
            j = Json::object(vec![("a".to_owned(), j)]).expect("single key");
        }
        j
    }

    /// Encodes a halting trace as the linked-list witness document.
    pub fn encode_trace(trace: &[Config]) -> Json {
        let mut next: Option<Json> = None;
        for cfg in trace.iter().rev() {
            let mut pairs = vec![
                ("state".to_owned(), Json::Str(Self::state_name(cfg.state))),
                ("c1".to_owned(), Self::encode_counter(cfg.counters[0])),
                ("c2".to_owned(), Self::encode_counter(cfg.counters[1])),
            ];
            if let Some(n) = next.take() {
                pairs.push(("next".to_owned(), n));
            }
            next = Some(Json::object(pairs).expect("distinct keys"));
        }
        next.expect("trace nonempty")
    }

    /// The Proposition 4 formula `Φ_M`: satisfiable iff the machine has a
    /// halting run (over well-formed run encodings).
    pub fn to_jnl(&self) -> Unary {
        let eq_str = |alpha: Binary, s: &str| Unary::eq_doc(alpha, Json::Str(s.to_owned()));
        let state_is = |q: usize| eq_str(Binary::key("state"), &Self::state_name(q));
        let next_state_is = |q: usize| {
            eq_str(
                Binary::compose(vec![Binary::key("next"), Binary::key("state")]),
                &Self::state_name(q),
            )
        };
        // Counter copied unchanged into the next configuration.
        let copy = |c: usize| {
            Unary::eq_pair(
                Binary::key(Self::counter_key(c)),
                Binary::compose(vec![Binary::key("next"), Binary::key(Self::counter_key(c))]),
            )
        };

        let mut transitions: Vec<Unary> = Vec::new();
        for (q, instr) in self.program.iter().enumerate() {
            let phi_q = match instr {
                Instr::Halt => continue,
                Instr::Inc(c, q2) => Unary::and(vec![
                    state_is(q),
                    // next.c = {a: current.c}: current.c == next.c.a
                    Unary::eq_pair(
                        Binary::key(Self::counter_key(*c)),
                        Binary::compose(vec![
                            Binary::key("next"),
                            Binary::key(Self::counter_key(*c)),
                            Binary::key("a"),
                        ]),
                    ),
                    copy(1 - c),
                    next_state_is(*q2),
                ]),
                Instr::Dec(c, q2) => Unary::and(vec![
                    state_is(q),
                    // current.c.a == next.c (implies current.c > 0).
                    Unary::eq_pair(
                        Binary::compose(vec![Binary::key(Self::counter_key(*c)), Binary::key("a")]),
                        Binary::compose(vec![
                            Binary::key("next"),
                            Binary::key(Self::counter_key(*c)),
                        ]),
                    ),
                    copy(1 - c),
                    next_state_is(*q2),
                ]),
                Instr::IfZero(c, then_q, else_q) => Unary::and(vec![
                    state_is(q),
                    Unary::or(vec![
                        Unary::and(vec![
                            eq_str(Binary::key(Self::counter_key(*c)), "0"),
                            next_state_is(*then_q),
                        ]),
                        Unary::and(vec![
                            Unary::exists(Binary::compose(vec![
                                Binary::key(Self::counter_key(*c)),
                                Binary::key("a"),
                            ])),
                            next_state_is(*else_q),
                        ]),
                    ]),
                    copy(0),
                    copy(1),
                ]),
            };
            transitions.push(phi_q);
        }
        let trans = Unary::or(transitions);

        let init = Unary::and(vec![
            eq_str(Binary::key("c1"), "0"),
            eq_str(Binary::key("c2"), "0"),
            state_is(0),
        ]);
        let final_test = Unary::or(
            self.program
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::Halt))
                .map(|(q, _)| state_is(q))
                .collect(),
        );
        // init ∧ [ (⟨trans⟩ ∘ X_next)* ∘ ⟨final⟩ ]
        Unary::and(vec![
            init,
            Unary::exists(Binary::compose(vec![
                Binary::star(Binary::compose(vec![
                    Binary::test(trans),
                    Binary::key("next"),
                ])),
                Binary::test(final_test),
            ])),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::JsonTree;

    /// inc c1 twice, dec twice, then halt if zero.
    fn inc_dec_machine() -> MinskyMachine {
        MinskyMachine {
            program: vec![
                Instr::Inc(0, 1),
                Instr::Inc(0, 2),
                Instr::Dec(0, 3),
                Instr::Dec(0, 4),
                Instr::IfZero(0, 5, 2),
                Instr::Halt,
            ],
        }
    }

    #[test]
    fn machine_runs() {
        let m = inc_dec_machine();
        let trace = m.run(100).expect("halts");
        assert_eq!(trace.last().unwrap().state, 5);
        assert_eq!(trace.last().unwrap().counters, [0, 0]);
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn halting_run_witness_satisfies_formula() {
        let m = inc_dec_machine();
        let trace = m.run(100).unwrap();
        let witness = MinskyMachine::encode_trace(&trace);
        let phi = m.to_jnl();
        let frag = phi.fragment();
        assert!(frag.recursive && frag.eq_pair && !frag.negation);
        let t = JsonTree::build(&witness);
        assert!(
            crate::eval::cubic::eval(&t, &phi)[t.root().index()],
            "run witness must satisfy Φ_M"
        );
    }

    #[test]
    fn truncated_run_fails() {
        let m = inc_dec_machine();
        let mut trace = m.run(100).unwrap();
        trace.pop(); // drop the halting configuration
        let witness = MinskyMachine::encode_trace(&trace);
        let t = JsonTree::build(&witness);
        assert!(!crate::eval::cubic::eval(&t, &m.to_jnl())[t.root().index()]);
    }

    #[test]
    fn corrupted_counter_fails() {
        let m = inc_dec_machine();
        let trace = m.run(100).unwrap();
        // Corrupt: claim counter 1 jumps by two.
        let mut bad = trace.clone();
        bad[1].counters[0] = 2;
        let witness = MinskyMachine::encode_trace(&bad);
        let t = JsonTree::build(&witness);
        assert!(!crate::eval::cubic::eval(&t, &m.to_jnl())[t.root().index()]);
    }

    #[test]
    fn non_halting_machine_never_accepts_prefixes() {
        // Loop forever: inc then jump back.
        let m = MinskyMachine {
            program: vec![Instr::Inc(0, 1), Instr::IfZero(1, 0, 0)],
        };
        assert!(m.run(200).is_none());
        // Hand-built prefix traces cannot satisfy the formula (no Halt).
        let phi = m.to_jnl();
        let fake = MinskyMachine::encode_trace(&[
            Config {
                state: 0,
                counters: [0, 0],
            },
            Config {
                state: 1,
                counters: [1, 0],
            },
        ]);
        let t = JsonTree::build(&fake);
        assert!(!crate::eval::cubic::eval(&t, &phi)[t.root().index()]);
    }

    #[test]
    fn counter_encoding_shape() {
        assert_eq!(MinskyMachine::encode_counter(0), Json::Str("0".into()));
        let two = MinskyMachine::encode_counter(2);
        assert_eq!(two.get("a").unwrap().get("a"), Some(&Json::Str("0".into())));
    }
}
