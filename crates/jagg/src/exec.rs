//! The tree-backed pipeline executor.
//!
//! ## Row representation
//!
//! A pipeline row is **not** an owned document. It is a cursor into the
//! collection's persistent tree column plus overlay bindings:
//!
//! * `Base::Node` — a `(segment, node)` cursor ([`DocRef`]) into the
//!   collection's CSR trees. This is every row at pipeline entry, and stays
//!   the representation through `$match`, `$unwind`, `$sort`, `$skip`,
//!   `$limit`.
//! * Overlay bindings `path ↦ (segment, node)` record `$unwind`
//!   substitutions without copying the document: the row *means* "the base
//!   subtree with the value at `path` replaced by the bound subtree".
//!   Bindings are applied in list order (a later binding resolves through —
//!   and therefore nests inside or shadows — earlier ones).
//! * `Base::Owned` — an owned [`Json`], produced only at a `$group` or
//!   `$project` boundary, which must synthesize values that exist in no
//!   tree.
//!
//! Documents are materialised to [`Json`] exactly once, at pipeline output
//! — or earlier only where a stage genuinely observes a synthesized value
//! (a `$group` key, a projected field, a sort key, an accumulator
//! observation, or the rare merged view of a subtree that contains a
//! binding).
//!
//! ## Parallel execution
//!
//! Per-row stages (`$match`, `$project`, `$unwind`, sort-key resolution,
//! output materialisation, the accumulator folds of `$group`) fan out in
//! contiguous row-range chunks on the collection's [`jpar::Pool`]; chunk
//! results splice back in chunk order, so the output is identical for
//! every thread count and a 1-thread pool (or a row vector below
//! `PAR_MIN_ROWS`) runs the exact sequential code inline. Everything a
//! worker touches is read-only shared state: the executor's per-segment
//! [`CanonTable`]s live in `OnceLock` slots and are built **eagerly, in
//! parallel, before a `$group` fan-out** (never through `&mut self`
//! laziness), and `$group` itself is a three-phase plan — parallel key
//! resolution, a sequential unification barrier, parallel accumulation
//! with an in-chunk-order merge (see `Engine::group`). `$sort`'s
//! comparison sort, `$skip`/`$limit` and group-output assembly stay
//! sequential on the merged stream.
//!
//! ## Fast paths
//!
//! * A leading `$match` whose filter is in the exactly-compilable JNL
//!   fragment ([`Filter::jnl_exact`]) is answered by **one** whole-tree JNL
//!   evaluation per segment (the Proposition 1 engine), not a per-document
//!   walk; outside the fragment it runs [`Filter::matches_at`] per
//!   document — no materialisation either way.
//! * `$group` keys that resolve to tree nodes are hashed by their
//!   [`CanonTable`] class: two key nodes with equal subtrees share a
//!   class, so the common case never materialises or hashes a key value
//!   at all. At the unification barrier each distinct `(segment, class)`
//!   materialises **at most once per collection run** and unifies with
//!   other segments' classes — and with synthesized keys — through one
//!   shared [`Json`]-keyed map.
//! * `$sort` immediately followed by `$limit k` (or `$skip s` + `$limit
//!   k`) never performs the full sort: a bounded max-heap retains the
//!   `s + k` best rows under the stable `(sort keys, input position)`
//!   order (see `Engine::top_k`); `jagg::reference` keeps the full-sort
//!   semantics as the oracle.

use std::cmp::Ordering;
use std::sync::OnceLock;
use std::time::Instant;

use jguard::{QueryCtx, QueryError};
use jpar::Pool;
use jsondata::fxhash::FxHashMap;
use jsondata::{CanonTable, Json, JsonTree, NodeId, NodeKind};
use jtrace::{Counter, SpanKind};
use mongofind::{
    cmp_node_json, insert_path, json_kind, resolve_node_step, type_matches_kind, Collection,
    DocRef, Filter, Path,
};

use crate::explain::StageActual;
use crate::pipeline::{
    Accumulator, GroupSpec, IdExpr, Pipeline, ProjectField, SortOrder, Stage, ValueExpr,
};

/// Row vectors below this length always execute sequentially inline,
/// whatever the pool size — fan-out overhead would dominate.
const PAR_MIN_ROWS: usize = 512;

/// Minimum rows per chunk when a stage does fan out.
const ROW_CHUNK_MIN: usize = 128;

/// Runs an aggregation pipeline over a collection's tree column, returning
/// the output documents. Execution fans out on the collection's pool
/// ([`Collection::pool`]); output is identical for every thread count.
/// Agrees exactly with [`crate::reference::aggregate`] over
/// [`Collection::docs`] (differentially tested and CI-gated).
pub fn aggregate(coll: &Collection, pipeline: &Pipeline) -> Vec<Json> {
    match aggregate_with_ctx(coll, pipeline, &QueryCtx::unlimited()) {
        Ok(out) => out,
        Err(QueryError::WorkerPanicked { chunk, payload }) => {
            panic!(
                "worker panicked on chunk {}..{}: {payload}",
                chunk.start, chunk.end
            )
        }
        Err(e) => unreachable!("unlimited ctx cannot fail: {e}"),
    }
}

/// [`aggregate`] under a [`QueryCtx`]: every stage loop polls the
/// context (per row, amortised through a [`jguard::Poller`]), `$group`
/// accumulation and the `$push`/`$sort`/output buffers charge the byte
/// budget, `$unwind` expansion and the leading `$match` charge the row
/// budget, and a panicking worker surfaces as
/// [`QueryError::WorkerPanicked`] with the collection untouched.
pub fn aggregate_with_ctx(
    coll: &Collection,
    pipeline: &Pipeline,
    ctx: &QueryCtx,
) -> Result<Vec<Json>, QueryError> {
    // Worker panics are already contained per chunk inside the pool; this
    // outer net catches the coordinator-side loops (the `$group`
    // unification barrier, between-stage glue) so *no* panic crosses the
    // governed API boundary. `AssertUnwindSafe`: the engine is dropped on
    // the error path and the collection is only read.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Engine::with_ctx(coll, ctx.clone()).run(&pipeline.stages)
    })) {
        Ok(r) => r,
        Err(p) => Err(QueryError::WorkerPanicked {
            chunk: 0..0,
            payload: jpar::panic_payload(p),
        }),
    }
}

/// [`aggregate_with_ctx`] with a per-stage trace: `trace` receives one
/// [`StageActual`] per pipeline stage (fused `$sort`/`$skip`/`$limit`
/// blocks are expanded back into their constituent stages, interior
/// cardinalities derived arithmetically). The `EXPLAIN ANALYZE` entry
/// point of [`crate::explain`].
pub(crate) fn aggregate_traced_with_ctx(
    coll: &Collection,
    pipeline: &Pipeline,
    ctx: &QueryCtx,
    trace: &mut Vec<StageActual>,
) -> Result<Vec<Json>, QueryError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Engine::with_ctx(coll, ctx.clone()).run_traced(&pipeline.stages, Some(trace))
    })) {
        Ok(r) => r,
        Err(p) => Err(QueryError::WorkerPanicked {
            chunk: 0..0,
            payload: jpar::panic_payload(p),
        }),
    }
}

/// The base value of a row.
#[derive(Clone)]
enum Base {
    /// A cursor into the collection's tree column.
    Node(DocRef),
    /// An owned document synthesized by `$group`/`$project`.
    Owned(Json),
}

/// One pipeline row: a base document plus `$unwind` overlay bindings
/// (only ever non-empty on `Base::Node` rows — owned documents are
/// rebound in place).
#[derive(Clone)]
struct Row {
    base: Base,
    binds: Vec<(Path, DocRef)>,
}

impl Row {
    fn node(d: DocRef) -> Row {
        Row {
            base: Base::Node(d),
            binds: Vec::new(),
        }
    }

    fn owned(j: Json) -> Row {
        Row {
            base: Base::Owned(j),
            binds: Vec::new(),
        }
    }
}

/// The value a path resolves to on a row.
enum Resolved<'a> {
    /// A pure tree subtree (no binding beneath it).
    Node(DocRef),
    /// A borrowed owned value (row base is `Base::Owned`).
    Owned(&'a Json),
    /// A synthesized merged view: the subtree contained overlay bindings.
    Merged(Json),
}

struct Engine<'c> {
    coll: &'c Collection,
    pool: Pool,
    /// The query's governance context ([`QueryCtx::unlimited`] on the
    /// legacy path — every poll and charge is then a no-op branch).
    guard: QueryCtx,
    /// Canonical-label tables, one slot per segment (the `$group` key fast
    /// path). Thread-safe on-demand construction; `$group` fan-outs build
    /// every missing slot eagerly (and in parallel) first.
    canon: Vec<OnceLock<CanonTable>>,
}

impl<'c> Engine<'c> {
    fn with_ctx(coll: &'c Collection, guard: QueryCtx) -> Engine<'c> {
        Engine {
            coll,
            pool: *coll.pool(),
            guard,
            canon: (0..coll.segments().len())
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    fn tree(&self, seg: u32) -> &'c JsonTree {
        &self.coll.segments()[seg as usize]
    }

    fn json_of(&self, d: DocRef) -> Json {
        self.tree(d.seg).json_at(d.node)
    }

    fn canon(&self, seg: u32) -> &CanonTable {
        self.canon[seg as usize].get_or_init(|| {
            self.guard.record(Counter::CanonBuilds, 1);
            CanonTable::build(&self.coll.segments()[seg as usize])
        })
    }

    /// Builds the missing canonical-label tables of every segment `rows`
    /// can resolve a key node in, fanning the builds out on the pool — the
    /// eager pre-fan-out form of [`Engine::canon`], so `$group` workers
    /// only ever *read* the slots. Row key resolution can only land in a
    /// tree reachable from the row — its base cursor's segment or a
    /// binding's — so segments hosting no row (a selective leading
    /// `$match` over a fragmented collection leaves most of them empty)
    /// are never built.
    fn build_canon_for(&self, rows: &[Row]) -> Result<(), QueryError> {
        let mut needed = vec![false; self.canon.len()];
        for row in rows {
            if let Base::Node(d) = &row.base {
                needed[d.seg as usize] = true;
            }
            for (_, v) in &row.binds {
                needed[v.seg as usize] = true;
            }
        }
        let missing: Vec<usize> = (0..self.canon.len())
            .filter(|&i| needed[i] && self.canon[i].get().is_none())
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let built = self.pool.try_map(&self.guard, missing.len(), |k| {
            self.guard.record(Counter::CanonBuilds, 1);
            Ok(CanonTable::build(&self.coll.segments()[missing[k]]))
        })?;
        for (i, table) in missing.into_iter().zip(built) {
            // A racing get_or_init may have won the slot; either table is
            // byte-identical (class assignment is deterministic per tree).
            let _ = self.canon[i].set(table);
        }
        Ok(())
    }

    /// The chunk size row-range fan-outs use: collapses to one inline
    /// chunk for serial pools and small row vectors.
    fn row_chunk(&self, n: usize) -> usize {
        if self.pool.threads() <= 1 || n < PAR_MIN_ROWS {
            n.max(1)
        } else {
            self.pool.chunk_for(n, ROW_CHUNK_MIN)
        }
    }

    fn run(&self, stages: &[Stage]) -> Result<Vec<Json>, QueryError> {
        self.run_traced(stages, None)
    }

    /// [`Engine::run`] with an optional per-stage trace. Tracing adds one
    /// `Instant` read per stage and nothing else — the untraced path takes
    /// the exact same stage sequence (the trace is the only difference,
    /// so `EXPLAIN ANALYZE` measures the executor it describes). Fused
    /// `$sort`/`$skip`/`$limit` blocks report their interior
    /// cardinalities arithmetically: `$sort` preserves the row count and
    /// the pagination arithmetic is exact, so the trace matches the
    /// unfused reference executor stage for stage.
    fn run_traced(
        &self,
        stages: &[Stage],
        mut trace: Option<&mut Vec<StageActual>>,
    ) -> Result<Vec<Json>, QueryError> {
        let mut rows: Vec<Row>;
        let rest = match stages.first() {
            // Leading-$match fast path: the filter runs over the tree
            // column before any row struct is even built.
            Some(Stage::Match(f)) => {
                let t0 = trace.is_some().then(Instant::now);
                self.guard.span_open(SpanKind::Stage, 0);
                rows = self.leading_match(f)?;
                self.guard.span_close(SpanKind::Stage, 0);
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push(StageActual {
                        label: "$match",
                        rows_out: rows.len(),
                        wall_us: elapsed_us(t0),
                    });
                }
                &stages[1..]
            }
            _ => {
                rows = self
                    .coll
                    .doc_refs()
                    .iter()
                    .copied()
                    .map(Row::node)
                    .collect();
                stages
            }
        };
        let done = stages.len() - rest.len();
        let mut i = 0;
        while i < rest.len() {
            self.guard.check()?;
            let stage_no = (done + i) as u32;
            // Top-k pushdown: `$sort` whose output is immediately cut to
            // `skip + limit` rows is answered by a bounded heap instead of
            // a full sort.
            if let Stage::Sort(spec) = &rest[i] {
                let fused = match (rest.get(i + 1), rest.get(i + 2)) {
                    (Some(Stage::Limit(k)), _) => Some((0usize, clamp_len(*k), 2usize)),
                    (Some(Stage::Skip(s)), Some(Stage::Limit(k))) => {
                        Some((clamp_len(*s), clamp_len(*k), 3))
                    }
                    _ => None,
                };
                if let Some((skip, limit, consumed)) = fused {
                    let n_in = rows.len();
                    let t0 = trace.is_some().then(Instant::now);
                    self.guard.span_open(SpanKind::Stage, stage_no);
                    rows = self.top_k(rows, spec, skip, limit)?;
                    self.guard.span_close(SpanKind::Stage, stage_no);
                    if let Some(tr) = trace.as_deref_mut() {
                        // The fused block's wall time lands on the `$sort`
                        // entry; the pagination arithmetic is free.
                        tr.push(StageActual {
                            label: "$sort",
                            rows_out: n_in,
                            wall_us: elapsed_us(t0),
                        });
                        if consumed == 3 {
                            tr.push(StageActual {
                                label: "$skip",
                                rows_out: n_in.saturating_sub(skip),
                                wall_us: 0,
                            });
                        }
                        tr.push(StageActual {
                            label: "$limit",
                            rows_out: rows.len(),
                            wall_us: 0,
                        });
                    }
                    i += consumed;
                    continue;
                }
            }
            let t0 = trace.is_some().then(Instant::now);
            self.guard.span_open(SpanKind::Stage, stage_no);
            rows = self.step(rows, &rest[i])?;
            self.guard.span_close(SpanKind::Stage, stage_no);
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(StageActual {
                    label: stage_label(&rest[i]),
                    rows_out: rows.len(),
                    wall_us: elapsed_us(t0),
                });
            }
            i += 1;
        }
        let n = rows.len();
        let chunk = self.row_chunk(n);
        if chunk >= n {
            let mut out = Vec::with_capacity(n);
            let mut poll = self.guard.poller();
            for row in rows {
                poll.tick()?;
                let v = self.materialize(row);
                self.guard.charge_json(&v)?;
                out.push(v);
            }
            Ok(out)
        } else {
            self.pool.try_flat_map_chunks(&self.guard, n, chunk, |r| {
                let mut poll = self.guard.poller();
                let mut out = Vec::with_capacity(r.len());
                for i in r {
                    poll.tick()?;
                    let v = self.materialize_ref(&rows[i]);
                    self.guard.charge_json(&v)?;
                    out.push(v);
                }
                Ok(out)
            })
        }
    }

    /// The first `$match` of a pipeline, straight off the collection.
    /// Route choice, in order: a secondary-index probe when the
    /// collection's declared indexes answer part of the conjunction
    /// ([`Collection::index_answerable`] — bitmap intersection plus a
    /// residual pass on survivors only); one whole-tree JNL evaluation
    /// per segment when the filter compiles exactly (Proposition 1
    /// answers every document of a segment at once);
    /// [`Filter::matches_at`] per document otherwise. All three are
    /// (already governed) `Collection` paths returning refs in
    /// `(segment, doc)` order, so the route is unobservable in the
    /// output.
    fn leading_match(&self, f: &Filter) -> Result<Vec<Row>, QueryError> {
        // One routing function serves execution and `EXPLAIN`
        // ([`Collection::route_of`]), so a plan's claimed route is, by
        // construction, the route this fast path takes.
        let refs = self.coll.find_refs_routed_with_ctx(f, &self.guard)?;
        Ok(refs.into_iter().map(Row::node).collect())
    }

    fn step(&self, mut rows: Vec<Row>, stage: &Stage) -> Result<Vec<Row>, QueryError> {
        Ok(match stage {
            Stage::Match(f) => {
                let n = rows.len();
                let chunk = self.row_chunk(n);
                if chunk >= n {
                    let mut poll = self.guard.poller();
                    let mut kept = Vec::new();
                    for row in rows {
                        poll.tick()?;
                        if self.row_matches(&row, f) {
                            kept.push(row);
                        }
                    }
                    kept
                } else {
                    let keep: Vec<bool> =
                        self.pool.try_flat_map_chunks(&self.guard, n, chunk, |r| {
                            let mut poll = self.guard.poller();
                            let mut out = Vec::with_capacity(r.len());
                            for i in r {
                                poll.tick()?;
                                out.push(self.row_matches(&rows[i], f));
                            }
                            Ok(out)
                        })?;
                    let mut mask = keep.into_iter();
                    rows.retain(|_| mask.next().expect("mask covers every row"));
                    rows
                }
            }
            Stage::Project(spec) => {
                let n = rows.len();
                let chunk = self.row_chunk(n);
                self.pool.try_flat_map_chunks(&self.guard, n, chunk, |r| {
                    let mut poll = self.guard.poller();
                    let mut out = Vec::with_capacity(r.len());
                    for i in r {
                        poll.tick()?;
                        let v = self.project(&rows[i], spec);
                        self.guard.charge_json(&v)?;
                        out.push(Row::owned(v));
                    }
                    Ok(out)
                })?
            }
            Stage::Unwind(path) => self.unwind(rows, path)?,
            Stage::Group(spec) => self.group(rows, spec)?,
            Stage::Sort(spec) => self.sort(rows, spec)?,
            Stage::Skip(n) => {
                let n = clamp_len(*n).min(rows.len());
                rows.drain(..n);
                rows
            }
            Stage::Limit(n) => {
                rows.truncate(clamp_len(*n));
                rows
            }
            Stage::Count(label) => {
                // MongoDB emits no document at all for an empty input.
                if rows.is_empty() {
                    Vec::new()
                } else {
                    let doc = Json::object(vec![(label.clone(), Json::Num(rows.len() as u64))])
                        .expect("single key");
                    vec![Row::owned(doc)]
                }
            }
        })
    }

    // ---- path resolution over rows ----------------------------------

    /// Resolves a dotted path on a row, honouring overlay bindings. At each
    /// step, a binding whose (remaining) path is empty substitutes the
    /// current cursor — the **last** such binding wins, and bindings
    /// recorded before it are stale (they addressed the subtree it
    /// replaced; the executor only ever appends a binding at or below the
    /// resolution frontier of earlier ones, so this drop is exact). If
    /// bindings survive below the final cursor, the subtree is synthesized
    /// as a merged view.
    fn resolve<'r>(&self, row: &'r Row, path: &Path) -> Option<Resolved<'r>> {
        match &row.base {
            Base::Owned(j) => path.resolve(j).map(Resolved::Owned),
            Base::Node(d) => {
                let mut cur = *d;
                let mut active: Vec<(&[String], DocRef)> = row
                    .binds
                    .iter()
                    .map(|(p, v)| (p.0.as_slice(), *v))
                    .collect();
                for seg in &path.0 {
                    substitute(&mut cur, &mut active);
                    let t = self.tree(cur.seg);
                    cur = DocRef {
                        seg: cur.seg,
                        node: resolve_node_step(t, cur.node, seg)?,
                    };
                    active = active
                        .into_iter()
                        .filter_map(|(p, v)| {
                            p.split_first()
                                .and_then(|(head, rest)| (head == seg).then_some((rest, v)))
                        })
                        .collect();
                }
                substitute(&mut cur, &mut active);
                if active.is_empty() {
                    Some(Resolved::Node(cur))
                } else {
                    Some(Resolved::Merged(self.merge(cur, &active)))
                }
            }
        }
    }

    /// Materialises `cur` with the surviving bindings written in, in order.
    fn merge(&self, cur: DocRef, binds: &[(&[String], DocRef)]) -> Json {
        let mut j = self.json_of(cur);
        for (p, v) in binds {
            set_at(&mut j, p, self.json_of(*v));
        }
        j
    }

    /// Materialises a whole row (pipeline output, or an owned rebase).
    fn materialize(&self, row: Row) -> Json {
        match row.base {
            Base::Owned(j) => j,
            Base::Node(_) => self.materialize_ref(&row),
        }
    }

    /// [`Engine::materialize`] without consuming the row (the parallel
    /// output path, where rows are materialised through a shared borrow).
    fn materialize_ref(&self, row: &Row) -> Json {
        match &row.base {
            Base::Owned(j) => j.clone(),
            Base::Node(d) => {
                let mut j = self.json_of(*d);
                for (p, v) in &row.binds {
                    set_at(&mut j, &p.0, self.json_of(*v));
                }
                j
            }
        }
    }

    fn materialize_resolved(&self, r: Resolved<'_>) -> Json {
        match r {
            Resolved::Node(d) => self.json_of(d),
            Resolved::Owned(j) => j.clone(),
            Resolved::Merged(j) => j,
        }
    }

    /// Evaluates a value expression on a row, materialising the result
    /// (accumulator observations, compound `_id` fields, projected values).
    fn eval_expr(&self, row: &Row, e: &ValueExpr) -> Option<Json> {
        match e {
            ValueExpr::Const(c) => Some(c.clone()),
            ValueExpr::Field(p) => self.resolve(row, p).map(|r| self.materialize_resolved(r)),
        }
    }

    /// Evaluates a value expression as a number (`$sum`/`$avg`
    /// observations) without materialising non-numeric values.
    fn eval_num(&self, row: &Row, e: &ValueExpr) -> Option<u64> {
        match e {
            ValueExpr::Const(c) => c.as_num(),
            ValueExpr::Field(p) => match self.resolve(row, p)? {
                Resolved::Node(d) => self.tree(d.seg).num_value(d.node),
                Resolved::Owned(j) => j.as_num(),
                Resolved::Merged(j) => j.as_num(),
            },
        }
    }

    // ---- $match ------------------------------------------------------

    fn row_matches(&self, row: &Row, f: &Filter) -> bool {
        match &row.base {
            Base::Node(d) if row.binds.is_empty() => f.matches_at(self.tree(d.seg), d.node),
            Base::Owned(j) => f.matches(j),
            Base::Node(_) => self.matches_overlay(row, f),
        }
    }

    /// [`Filter::matches`] semantics on a row with overlay bindings.
    fn matches_overlay(&self, row: &Row, f: &Filter) -> bool {
        match f {
            Filter::And(fs) => fs.iter().all(|f| self.matches_overlay(row, f)),
            Filter::Or(fs) => fs.iter().any(|f| self.matches_overlay(row, f)),
            Filter::Not(f) => !self.matches_overlay(row, f),
            Filter::Compare(p, cmp, v) => match self.resolve(row, p) {
                Some(r) => {
                    let ord = self.cmp_resolved(&r, v);
                    match cmp {
                        mongofind::Cmp::Eq => ord.is_eq(),
                        mongofind::Cmp::Ne => !ord.is_eq(),
                        mongofind::Cmp::Gt => ord.is_gt(),
                        mongofind::Cmp::Gte => ord.is_ge(),
                        mongofind::Cmp::Lt => ord.is_lt(),
                        mongofind::Cmp::Lte => ord.is_le(),
                    }
                }
                None => false,
            },
            Filter::In(p, items, pos) => match self.resolve(row, p) {
                Some(r) => items.iter().any(|v| self.cmp_resolved(&r, v).is_eq()) == *pos,
                None => false,
            },
            Filter::Exists(p, flag) => self.resolve(row, p).is_some() == *flag,
            Filter::Size(p, n) => self
                .resolve(row, p)
                .and_then(|r| self.resolved_arr_len(&r))
                .is_some_and(|len| len as u64 == *n),
            Filter::Type(p, ty) => self
                .resolve(row, p)
                .is_some_and(|r| self.resolved_type_is(&r, ty)),
        }
    }

    fn cmp_resolved(&self, r: &Resolved<'_>, v: &Json) -> Ordering {
        match r {
            Resolved::Node(d) => cmp_node_json(self.tree(d.seg), d.node, v),
            Resolved::Owned(j) => j.total_cmp(v),
            Resolved::Merged(j) => j.total_cmp(v),
        }
    }

    fn resolved_arr_len(&self, r: &Resolved<'_>) -> Option<usize> {
        match r {
            Resolved::Node(d) => {
                let t = self.tree(d.seg);
                (t.kind(d.node) == NodeKind::Arr).then(|| t.child_count(d.node))
            }
            Resolved::Owned(j) => j.as_array().map(<[Json]>::len),
            Resolved::Merged(j) => j.as_array().map(<[Json]>::len),
        }
    }

    fn resolved_type_is(&self, r: &Resolved<'_>, ty: &str) -> bool {
        let kind = match r {
            Resolved::Node(d) => self.tree(d.seg).kind(d.node),
            Resolved::Owned(j) => json_kind(j),
            Resolved::Merged(j) => json_kind(j),
        };
        type_matches_kind(ty, kind)
    }

    // ---- $project ----------------------------------------------------

    fn project(&self, row: &Row, spec: &[(Path, ProjectField)]) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for (path, field) in spec {
            let value = match field {
                ProjectField::Include => self
                    .resolve(row, path)
                    .map(|r| self.materialize_resolved(r)),
                ProjectField::Expr(e) => self.eval_expr(row, e),
            };
            if let Some(v) = value {
                insert_path(&mut pairs, &path.0, v);
            }
        }
        Json::object(pairs).expect("insert_path keeps keys distinct")
    }

    // ---- $unwind -----------------------------------------------------

    fn unwind(&self, rows: Vec<Row>, path: &Path) -> Result<Vec<Row>, QueryError> {
        let n = rows.len();
        let chunk = self.row_chunk(n);
        if chunk >= n {
            let mut out = Vec::new();
            let mut poll = self.guard.poller();
            for row in rows {
                poll.tick()?;
                let before = out.len();
                self.unwind_into(row, path, &mut out);
                self.guard.charge_rows((out.len() - before) as u64)?;
            }
            Ok(out)
        } else {
            self.pool.try_flat_map_chunks(&self.guard, n, chunk, |r| {
                let mut out = Vec::new();
                let mut poll = self.guard.poller();
                for i in r {
                    poll.tick()?;
                    let before = out.len();
                    self.unwind_into(rows[i].clone(), path, &mut out);
                    self.guard.charge_rows((out.len() - before) as u64)?;
                }
                Ok(out)
            })
        }
    }

    /// Unwinds one row, appending its output rows in order.
    fn unwind_into(&self, row: Row, path: &Path, out: &mut Vec<Row>) {
        enum Plan {
            Keep,
            Drop,
            /// Bind each child of this array node over the existing row.
            BindElems(DocRef),
            /// Rebase the materialised row once per element.
            OwnedElems(Vec<Json>),
        }
        let plan = match self.resolve(&row, path) {
            None => Plan::Drop,
            Some(Resolved::Node(d)) => {
                if self.tree(d.seg).kind(d.node) == NodeKind::Arr {
                    Plan::BindElems(d)
                } else {
                    // MongoDB treats a non-array value as the
                    // single-element case: the row passes unchanged.
                    Plan::Keep
                }
            }
            Some(Resolved::Owned(j)) => match j.as_array() {
                Some(items) => Plan::OwnedElems(items.to_vec()),
                None => Plan::Keep,
            },
            Some(Resolved::Merged(j)) => match j {
                Json::Array(items) => Plan::OwnedElems(items),
                _ => Plan::Keep,
            },
        };
        match plan {
            Plan::Drop => {}
            Plan::Keep => out.push(row),
            Plan::BindElems(arr) => {
                let t = self.tree(arr.seg);
                for &node in t.arr_children(arr.node) {
                    let mut unwound = row.clone();
                    unwound
                        .binds
                        .push((path.clone(), DocRef { seg: arr.seg, node }));
                    out.push(unwound);
                }
            }
            Plan::OwnedElems(items) => {
                // The resolve borrow has ended, so the row materialises
                // by move — an owned base is reused, not re-cloned.
                let base = self.materialize(row);
                for elem in items {
                    let mut doc = base.clone();
                    set_at(&mut doc, &path.0, elem);
                    out.push(Row::owned(doc));
                }
            }
        }
    }

    // ---- $group ------------------------------------------------------

    /// `$group`, as a three-phase plan whose serial specialisation (one
    /// chunk) is the defined semantics:
    ///
    /// 1. **Key resolution (parallel).** Each row's `_id` resolves once.
    ///    Keys that are pure tree nodes stay unmaterialised — `(segment,
    ///    canonical class)` plus a representative node — everything else
    ///    (constants, compound documents, synthesized/owned/merged values,
    ///    the missing-key group) materialises its key value here.
    /// 2. **Unification barrier (sequential).** Row keys map to global
    ///    group ids: each distinct `(segment, class)` materialises its
    ///    value **at most once per collection run** and funnels — together
    ///    with every synthesized key — through one shared `Json`-keyed
    ///    map, so equal keys from different segments (or different
    ///    representations) land in one group.
    /// 3. **Accumulation (parallel) + in-order merge.** Chunks fold their
    ///    rows into per-chunk accumulator tables keyed by group id; the
    ///    barrier merges chunk tables **in chunk order**, which restores
    ///    exact input order for the order-sensitive accumulators
    ///    (`$push`/`$first`/`$last`) and plain sums for the rest.
    fn group(&self, rows: Vec<Row>, spec: &GroupSpec) -> Result<Vec<Row>, QueryError> {
        /// A resolved-but-not-yet-unified row key.
        enum KeyH {
            /// A pure tree-node key: `(segment, class)` plus one node of
            /// that class to materialise from if the barrier needs to.
            Class { seg: u32, class: u32, rep: NodeId },
            /// A materialised key (`None` = the missing-key group).
            Owned(Option<Json>),
        }

        let n = rows.len();
        let chunk = self.row_chunk(n);
        if chunk < n && matches!(spec.id, IdExpr::Field(_)) {
            // The fan-out reads canon slots; build the reachable ones up
            // front.
            self.build_canon_for(&rows)?;
        }

        // Phase 1: per-row key handles, in row order.
        let keys: Vec<KeyH> = self.pool.try_flat_map_chunks(&self.guard, n, chunk, |r| {
            let mut poll = self.guard.poller();
            let mut out = Vec::with_capacity(r.len());
            for i in r {
                poll.tick()?;
                out.push(match &spec.id {
                    IdExpr::Field(p) => match self.resolve(&rows[i], p) {
                        Some(Resolved::Node(d)) => KeyH::Class {
                            seg: d.seg,
                            class: self.canon(d.seg).class_of(d.node),
                            rep: d.node,
                        },
                        resolved => KeyH::Owned(resolved.map(|r| self.materialize_resolved(r))),
                    },
                    id => KeyH::Owned(self.group_key(&rows[i], id)),
                });
            }
            Ok(out)
        })?;

        // Phase 2: the unification barrier. Every *distinct* group key
        // materialises exactly once, and is charged to the byte budget at
        // that moment (the per-row handles carry no new allocation).
        let mut by_json: FxHashMap<Option<Json>, usize> = FxHashMap::default();
        let mut by_class: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        let mut group_keys: Vec<Option<Json>> = Vec::new();
        let guard = &self.guard;
        let mut slot =
            |key: Option<Json>, group_keys: &mut Vec<Option<Json>>| -> Result<usize, QueryError> {
                if let Some(&gi) = by_json.get(&key) {
                    return Ok(gi);
                }
                if let Some(k) = &key {
                    guard.charge_json(k)?;
                }
                let gi = group_keys.len();
                by_json.insert(key.clone(), gi);
                group_keys.push(key);
                Ok(gi)
            };
        let mut row_gis: Vec<usize> = Vec::with_capacity(n);
        let mut poll = self.guard.poller();
        for k in keys {
            poll.tick()?;
            row_gis.push(match k {
                KeyH::Class { seg, class, rep } => match by_class.get(&(seg, class)) {
                    Some(&gi) => gi,
                    None => {
                        let key = Some(self.tree(seg).json_at(rep));
                        let gi = slot(key, &mut group_keys)?;
                        by_class.insert((seg, class), gi);
                        gi
                    }
                },
                KeyH::Owned(key) => slot(key, &mut group_keys)?,
            });
        }
        let n_groups = group_keys.len();

        // Phase 3: per-chunk accumulation, merged in chunk order.
        let partials: Vec<FxHashMap<usize, Vec<AccState>>> =
            self.pool.try_map_chunks(&self.guard, n, chunk, |r| {
                let mut local: FxHashMap<usize, Vec<AccState>> = FxHashMap::default();
                let mut poll = self.guard.poller();
                for i in r {
                    poll.tick()?;
                    let states = local.entry(row_gis[i]).or_insert_with(|| {
                        spec.accs.iter().map(|(_, a)| AccState::new(a)).collect()
                    });
                    for (state, (_, acc)) in states.iter_mut().zip(&spec.accs) {
                        self.accumulate_into(state, acc, &rows[i])?;
                    }
                }
                Ok(local)
            })?;
        let mut states: Vec<Option<Vec<AccState>>> = (0..n_groups).map(|_| None).collect();
        for partial in partials {
            for (gi, part) in partial {
                match &mut states[gi] {
                    None => states[gi] = Some(part),
                    Some(dst) => {
                        for (d, s) in dst.iter_mut().zip(part) {
                            d.absorb(s);
                        }
                    }
                }
            }
        }

        // Deterministic output order: missing key first, then total order.
        let mut groups: Vec<(Option<Json>, Vec<AccState>)> = group_keys
            .into_iter()
            .zip(states)
            .map(|(key, st)| (key, st.expect("every group id came from a row")))
            .collect();
        groups.sort_by(|a, b| cmp_opt_json(&a.0, &b.0));
        Ok(groups
            .into_iter()
            .map(|(id, states)| {
                let mut pairs: Vec<(String, Json)> = Vec::new();
                if let Some(idj) = id {
                    pairs.push(("_id".into(), idj));
                }
                for ((name, _), state) in spec.accs.iter().zip(states) {
                    if let Some(v) = state.finish() {
                        pairs.push((name.clone(), v));
                    }
                }
                Row::owned(Json::object(pairs).expect("parser validated distinct names"))
            })
            .collect())
    }

    /// The group key of a row (`Field` ids are resolved inline by
    /// `Engine::group` so the class fast path shares the resolution).
    fn group_key(&self, row: &Row, id: &IdExpr) -> Option<Json> {
        match id {
            IdExpr::Const(c) => Some(c.clone()),
            IdExpr::Field(_) => unreachable!("Field ids are resolved inline by group()"),
            IdExpr::Doc(fields) => {
                let mut pairs: Vec<(String, Json)> = Vec::new();
                for (name, e) in fields {
                    if let Some(v) = self.eval_expr(row, e) {
                        pairs.push((name.clone(), v));
                    }
                }
                Some(Json::object(pairs).expect("parser validated distinct names"))
            }
        }
    }

    fn accumulate_into(
        &self,
        state: &mut AccState,
        acc: &Accumulator,
        row: &Row,
    ) -> Result<(), QueryError> {
        match (state, acc) {
            (AccState::Sum(total), Accumulator::Sum(e)) => {
                if let Some(n) = self.eval_num(row, e) {
                    *total += n as u128;
                }
            }
            (AccState::Avg { sum, count }, Accumulator::Avg(e)) => {
                if let Some(n) = self.eval_num(row, e) {
                    *sum += n as u128;
                    *count += 1;
                }
            }
            (AccState::Min(best), Accumulator::Min(e)) => {
                if let Some(v) = self.observe_cmp(row, e, best, Ordering::Less) {
                    *best = Some(v);
                }
            }
            (AccState::Max(best), Accumulator::Max(e)) => {
                if let Some(v) = self.observe_cmp(row, e, best, Ordering::Greater) {
                    *best = Some(v);
                }
            }
            (AccState::Count(n), Accumulator::Count) => *n += 1,
            (AccState::Push(items), Accumulator::Push(e)) => {
                // `$push` is the one accumulator with unbounded state: every
                // retained element is charged to the byte budget.
                if let Some(v) = self.eval_expr(row, e) {
                    self.guard.charge_json(&v)?;
                    items.push(v);
                }
            }
            (AccState::First(slot), Accumulator::First(e)) => {
                if slot.is_none() {
                    *slot = self.eval_expr(row, e);
                }
            }
            (AccState::Last(slot), Accumulator::Last(e)) => {
                if let Some(v) = self.eval_expr(row, e) {
                    *slot = Some(v);
                }
            }
            _ => unreachable!("state shape fixed by AccState::new"),
        }
        Ok(())
    }

    /// Observes a `$min`/`$max` candidate, materialising it **only** when
    /// it displaces the current best (tree-node candidates are compared in
    /// place via [`cmp_node_json`]).
    fn observe_cmp(
        &self,
        row: &Row,
        e: &ValueExpr,
        best: &Option<Json>,
        want: Ordering,
    ) -> Option<Json> {
        match e {
            ValueExpr::Const(c) => match best {
                None => Some(c.clone()),
                Some(b) => (c.total_cmp(b) == want).then(|| c.clone()),
            },
            ValueExpr::Field(p) => {
                let r = self.resolve(row, p)?;
                match best {
                    None => Some(self.materialize_resolved(r)),
                    Some(b) => {
                        (self.cmp_resolved(&r, b) == want).then(|| self.materialize_resolved(r))
                    }
                }
            }
        }
    }

    // ---- $sort -------------------------------------------------------

    /// Resolves the sort-key vector of every row (parallel chunks, row
    /// order preserved) — the per-row half both [`Engine::sort`] and
    /// `Engine::top_k` share.
    fn sort_keys(
        &self,
        rows: &[Row],
        spec: &[(Path, SortOrder)],
    ) -> Result<Vec<Vec<Option<Json>>>, QueryError> {
        let n = rows.len();
        let chunk = self.row_chunk(n);
        self.pool.try_flat_map_chunks(&self.guard, n, chunk, |r| {
            let mut poll = self.guard.poller();
            let mut out = Vec::with_capacity(r.len());
            for i in r {
                poll.tick()?;
                let mut keys: Vec<Option<Json>> = Vec::with_capacity(spec.len());
                for (p, _) in spec {
                    let k = self
                        .resolve(&rows[i], p)
                        .map(|x| self.materialize_resolved(x));
                    // The key buffer lives until the sort completes: it is
                    // part of the query's working set and charged as such.
                    if let Some(k) = &k {
                        self.guard.charge_json(k)?;
                    }
                    keys.push(k);
                }
                out.push(keys);
            }
            Ok(out)
        })
    }

    fn sort(&self, rows: Vec<Row>, spec: &[(Path, SortOrder)]) -> Result<Vec<Row>, QueryError> {
        // Sort keys are resolved on the tree and materialised once per row
        // (they are typically scalars); the rows themselves stay cursors.
        // The comparison sort runs sequentially on the merged stream.
        let keys = self.sort_keys(&rows, spec)?;
        let mut keyed: Vec<(Vec<Option<Json>>, Row)> = keys.into_iter().zip(rows).collect();
        // Stable, so equal-key rows keep their input order.
        keyed.sort_by(|(ka, _), (kb, _)| cmp_sort_keys(spec, ka, kb));
        Ok(keyed.into_iter().map(|(_, row)| row).collect())
    }

    /// The fused `$sort` + pagination: returns `stable_sort(rows)[skip ..
    /// skip + limit]` while retaining only `skip + limit` rows at a time.
    ///
    /// Correctness rests on `(sort keys, input position)` being a *total*
    /// order: the bounded max-heap keeps the `skip + limit` least rows
    /// under it, and sorting those ascending is exactly the first
    /// `skip + limit` rows of the full stable sort (ties resolved by input
    /// position = stability). `jagg::reference` runs the unfused full
    /// sort as the oracle; the differential suite pins equality including
    /// tie cases.
    fn top_k(
        &self,
        rows: Vec<Row>,
        spec: &[(Path, SortOrder)],
        skip: usize,
        limit: usize,
    ) -> Result<Vec<Row>, QueryError> {
        let keep = skip.saturating_add(limit);
        if keep == 0 || rows.is_empty() {
            return Ok(Vec::new());
        }
        if keep >= rows.len() {
            // The heap would hold everything: the full sort is cheaper.
            let mut out = self.sort(rows, spec)?;
            out.drain(..skip.min(out.len()));
            out.truncate(limit);
            return Ok(out);
        }
        let keys = self.sort_keys(&rows, spec)?;
        // A max-heap of the `keep` least entries under [`TopEnt`]'s total
        // `(keys, seq)` order: the root is the worst kept row, displaced
        // whenever a strictly-earlier-ordering row arrives (`PeekMut`
        // restores the heap on drop).
        let mut heap: std::collections::BinaryHeap<TopEnt<'_>> =
            std::collections::BinaryHeap::with_capacity(keep);
        let mut poll = self.guard.poller();
        for (seq, (keys, row)) in keys.into_iter().zip(rows).enumerate() {
            poll.tick()?;
            let ent = TopEnt {
                spec,
                keys,
                seq,
                row,
            };
            if heap.len() < keep {
                heap.push(ent);
            } else if let Some(mut worst) = heap.peek_mut() {
                if ent < *worst {
                    *worst = ent;
                }
            }
        }
        let mut kept = heap.into_sorted_vec();
        kept.drain(..skip.min(kept.len()));
        kept.truncate(limit);
        Ok(kept.into_iter().map(|e| e.row).collect())
    }
}

/// One candidate row of `Engine::top_k`'s bounded heap, ordered by the
/// stable `(sort keys, input position)` total order — the row itself does
/// not participate in comparisons.
struct TopEnt<'s> {
    spec: &'s [(Path, SortOrder)],
    keys: Vec<Option<Json>>,
    seq: usize,
    row: Row,
}

impl PartialEq for TopEnt<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for TopEnt<'_> {}

impl PartialOrd for TopEnt<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TopEnt<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_sort_keys(self.spec, &self.keys, &other.keys).then(self.seq.cmp(&other.seq))
    }
}

/// Accumulator state (one per `(group, accumulator)` pair).
enum AccState {
    Sum(u128),
    Avg { sum: u128, count: u64 },
    Min(Option<Json>),
    Max(Option<Json>),
    Count(u64),
    Push(Vec<Json>),
    First(Option<Json>),
    Last(Option<Json>),
}

impl AccState {
    fn new(acc: &Accumulator) -> AccState {
        match acc {
            Accumulator::Sum(_) => AccState::Sum(0),
            Accumulator::Avg(_) => AccState::Avg { sum: 0, count: 0 },
            Accumulator::Min(_) => AccState::Min(None),
            Accumulator::Max(_) => AccState::Max(None),
            Accumulator::Count => AccState::Count(0),
            Accumulator::Push(_) => AccState::Push(Vec::new()),
            Accumulator::First(_) => AccState::First(None),
            Accumulator::Last(_) => AccState::Last(None),
        }
    }

    /// Folds `later` — the state accumulated over a *later* contiguous row
    /// range — into `self`. Merging chunk states in chunk order is exactly
    /// the sequential fold: sums/counts add, min/max compare (ties keep
    /// the earlier observation, as the sequential fold does), `$push`
    /// concatenates, `$first` keeps the earliest observation and `$last`
    /// the latest.
    fn absorb(&mut self, later: AccState) {
        match (self, later) {
            (AccState::Sum(a), AccState::Sum(b)) => *a += b,
            (AccState::Avg { sum, count }, AccState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AccState::Min(a), AccState::Min(b)) => absorb_best(a, b, Ordering::Less),
            (AccState::Max(a), AccState::Max(b)) => absorb_best(a, b, Ordering::Greater),
            (AccState::Count(a), AccState::Count(b)) => *a += b,
            (AccState::Push(a), AccState::Push(b)) => a.extend(b),
            (AccState::First(a), AccState::First(b)) => {
                if a.is_none() {
                    *a = b;
                }
            }
            (AccState::Last(a), AccState::Last(b)) => {
                if b.is_some() {
                    *a = b;
                }
            }
            _ => unreachable!("state shape fixed by AccState::new"),
        }
    }

    /// The output value, or `None` for empty-observation accumulators
    /// whose field is omitted (the fragment has no `null`).
    fn finish(self) -> Option<Json> {
        match self {
            AccState::Sum(total) => Some(Json::Num(saturate(total))),
            AccState::Avg { count: 0, .. } => None,
            AccState::Avg { sum, count } => Some(Json::Num(saturate(sum / count as u128))),
            AccState::Min(v) | AccState::Max(v) | AccState::First(v) | AccState::Last(v) => v,
            AccState::Count(n) => Some(Json::Num(n)),
            AccState::Push(items) => Some(Json::Array(items)),
        }
    }
}

/// The `$min`/`$max` merge rule: take the later best only when it strictly
/// beats the earlier one (a tie keeps the earlier observation, matching
/// the sequential fold's strict-comparison displacement).
fn absorb_best(dst: &mut Option<Json>, later: Option<Json>, want: Ordering) {
    if let Some(v) = later {
        let take = match dst.as_ref() {
            None => true,
            Some(d) => v.total_cmp(d) == want,
        };
        if take {
            *dst = Some(v);
        }
    }
}

/// Microseconds since a trace-gated start instant (`0` when untraced).
fn elapsed_us(t0: Option<Instant>) -> u64 {
    t0.map_or(0, |t| t.elapsed().as_micros() as u64)
}

/// The stage's operator name, for traces and plans.
pub(crate) fn stage_label(stage: &Stage) -> &'static str {
    match stage {
        Stage::Match(_) => "$match",
        Stage::Project(_) => "$project",
        Stage::Unwind(_) => "$unwind",
        Stage::Group(_) => "$group",
        Stage::Sort(_) => "$sort",
        Stage::Skip(_) => "$skip",
        Stage::Limit(_) => "$limit",
        Stage::Count(_) => "$count",
    }
}

/// Clamps a `u128` accumulator total into the fragment's `u64` numbers.
pub(crate) fn saturate(n: u128) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Clamps a `$skip`/`$limit` operand into `usize` without wrapping (a
/// 32-bit target must treat an oversized operand as "everything", not as
/// its truncated low bits).
pub(crate) fn clamp_len(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// The `$sort` comparator over per-row key vectors: first inequality under
/// [`cmp_opt_json`] decides, honouring each key's direction. Shared by both
/// executors (pure plumbing over already-resolved keys).
pub(crate) fn cmp_sort_keys(
    spec: &[(Path, SortOrder)],
    ka: &[Option<Json>],
    kb: &[Option<Json>],
) -> Ordering {
    for (i, (_, order)) in spec.iter().enumerate() {
        let ord = cmp_opt_json(&ka[i], &kb[i]);
        let ord = match order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// `None` (missing) sorts before every present value; present values
/// compare under [`Json::total_cmp`].
pub(crate) fn cmp_opt_json(a: &Option<Json>, b: &Option<Json>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.total_cmp(y),
    }
}

/// Applies the pending exact-match binding (the last one wins; entries
/// before it addressed the subtree it replaced and are dropped).
fn substitute(cur: &mut DocRef, active: &mut Vec<(&[String], DocRef)>) {
    if let Some(i) = active.iter().rposition(|(p, _)| p.is_empty()) {
        *cur = active[i].1;
        active.drain(..=i);
    }
}

/// Replaces the value at an existing dotted path inside an owned document
/// (resolution mirrors [`Path::resolve`]; a path that does not resolve is
/// a no-op). Shared with the value-based reference executor — it is pure
/// plumbing on already-evaluated values.
pub(crate) fn set_at(root: &mut Json, path: &[String], value: Json) {
    if path.is_empty() {
        *root = value;
        return;
    }
    let mut cur = root;
    for seg in &path[..path.len() - 1] {
        let next = match seg.parse::<usize>() {
            Ok(i) if cur.is_array() => cur.index_mut(i),
            _ => cur.get_mut(seg),
        };
        match next {
            Some(n) => cur = n,
            None => return,
        }
    }
    let leaf = &path[path.len() - 1];
    let slot = match leaf.parse::<usize>() {
        Ok(i) if cur.is_array() => cur.index_mut(i),
        _ => cur.get_mut(leaf),
    };
    if let Some(s) = slot {
        *s = value;
    }
}
