//! The jagg differential suite: every pipeline runs through BOTH executors
//! — the tree-backed engine (`jagg::aggregate`, cursors + overlay bindings
//! over the collection's tree column) and the naive value-based oracle
//! (`jagg::reference::aggregate` over owned documents) — and the outputs
//! must be identical, element for element. Group output ordering, the
//! missing-key group, unwinding empty/missing/non-array values, compound
//! `_id` documents with absent subfields, and the leading-`$match` JNL
//! fast path are all crossed here.

use jagg::{reference, Pipeline};
use jsondata::{gen, parse, Json};
use mongofind::Collection;

/// Asserts tree executor == value oracle on one (collection, pipeline).
fn check(coll: &Collection, pipeline_src: &str) {
    let pipe = Pipeline::parse_str(pipeline_src).unwrap_or_else(|e| {
        panic!("pipeline {pipeline_src} does not parse: {e}");
    });
    let via_tree = jagg::aggregate(coll, &pipe);
    let via_value = reference::aggregate(coll.docs(), &pipe);
    assert_eq!(via_tree, via_value, "pipeline {pipeline_src}");
}

fn people() -> Collection {
    Collection::parse_str(
        r#"[
        {"name": {"first": "Sue", "last": "Kim"}, "age": 28,
         "hobbies": ["yoga", "chess"], "scores": [3, 1, 2]},
        {"name": {"first": "John", "last": "Doe"}, "age": 32,
         "hobbies": ["fishing"], "scores": []},
        {"name": {"first": "Ana"}, "age": 45, "hobbies": [],
         "tags": {"0": "numeric-key"}},
        {"name": {"first": "Sue", "last": "Doe"}, "age": 45,
         "hobbies": ["chess", "chess"], "scores": [9]},
        {"name": {"first": "Wei"}, "age": 28, "hobbies": "not-an-array"},
        {"misc": 7}
    ]"#,
    )
    .unwrap()
}

/// The pipeline corpus: every stage, every accumulator, and the edge cases
/// called out in the issue (unwinding empty and missing arrays, duplicate
/// group keys, missing-key groups, compound ids with absent subfields).
fn corpus() -> Vec<&'static str> {
    vec![
        // --- single stages ---
        r#"[{"$match": {"age": {"$gte": 30}}}]"#,
        // exact-JNL leading match (whole-collection fast path)…
        r#"[{"$match": {"name.first": {"$eq": "Sue"}}}]"#,
        r#"[{"$match": {"$or": [{"age": 28}, {"name.last": {"$exists": "false"}}]}}]"#,
        // …and inexact filters (per-document path)
        r#"[{"$match": {"hobbies": {"$size": 2}}}]"#,
        r#"[{"$match": {"hobbies": {"$type": "array"}}}]"#,
        r#"[{"$match": {"tags.0": "numeric-key"}}]"#,
        r#"[{"$project": {"name.first": 1, "age": 1}}]"#,
        r#"[{"$project": {"who": "$name.first", "const": {"$literal": {"k": [1]}}, "missing": "$nope"}}]"#,
        r#"[{"$unwind": "$hobbies"}]"#,
        r#"[{"$unwind": "$scores"}]"#,
        r#"[{"$unwind": "$missing.path"}]"#,
        r#"[{"$sort": {"age": 1, "name.first": 1}}]"#,
        r#"[{"$sort": {"age": 0, "name.last": 1}}]"#,
        r#"[{"$sort": {"nope": 1, "age": 0}}]"#,
        r#"[{"$skip": 2}]"#,
        r#"[{"$skip": 100}]"#,
        r#"[{"$limit": 3}]"#,
        r#"[{"$limit": 0}]"#,
        r#"[{"$count": "total"}]"#,
        // --- $group: every accumulator, duplicate keys, missing keys ---
        r#"[{"$group": {"_id": "$name.first",
                        "n": {"$count": {}},
                        "total_age": {"$sum": "$age"},
                        "avg_age": {"$avg": "$age"},
                        "min_age": {"$min": "$age"},
                        "max_age": {"$max": "$age"},
                        "ages": {"$push": "$age"},
                        "first_age": {"$first": "$age"},
                        "last_age": {"$last": "$age"}}}]"#,
        r#"[{"$group": {"_id": "$name", "n": {"$count": {}}}}]"#,
        r#"[{"$group": {"_id": "$hobbies", "n": {"$count": {}}}}]"#,
        r#"[{"$group": {"_id": "$misc", "seen": {"$push": "$name.first"}}}]"#,
        r#"[{"$group": {"_id": 1, "everyone": {"$count": {}}, "sum_missing": {"$sum": "$nope"}, "avg_missing": {"$avg": "$nope"}, "min_missing": {"$min": "$nope"}, "push_missing": {"$push": "$nope"}}}]"#,
        r#"[{"$group": {"_id": {"f": "$name.first", "l": "$name.last"}, "n": {"$count": {}}}}]"#,
        r#"[{"$group": {"_id": {"$literal": {"f": "$name.first"}}, "n": {"$count": {}}}}]"#,
        r#"[{"$group": {"_id": "$age", "non_numeric_sum": {"$sum": "$name"}, "mixed_min": {"$min": "$hobbies"}, "ones": {"$sum": 1}}}]"#,
        // --- multi-stage compositions ---
        r#"[{"$match": {"age": {"$gte": 28}}},
            {"$unwind": "$hobbies"},
            {"$group": {"_id": "$hobbies", "n": {"$count": {}}, "avg_age": {"$avg": "$age"}}},
            {"$sort": {"n": 0, "_id": 1}}]"#,
        r#"[{"$unwind": "$hobbies"},
            {"$match": {"hobbies": "chess"}},
            {"$count": "chess_rows"}]"#,
        r#"[{"$unwind": "$scores"},
            {"$unwind": "$hobbies"},
            {"$group": {"_id": {"h": "$hobbies", "s": "$scores"}, "n": {"$count": {}}}}]"#,
        r#"[{"$unwind": "$hobbies"},
            {"$project": {"name": 1, "hobby": "$hobbies"}},
            {"$sort": {"hobby": 1, "name.first": 1}},
            {"$skip": 1},
            {"$limit": 2}]"#,
        r#"[{"$match": {"name.first": {"$in": ["Sue", "Ana"]}}},
            {"$group": {"_id": "$name.first", "oldest": {"$max": "$age"}}},
            {"$match": {"oldest": {"$gte": 40}}}]"#,
        r#"[{"$project": {"a": "$scores"}},
            {"$unwind": "$a"},
            {"$group": {"_id": "$a", "n": {"$count": {}}}},
            {"$sort": {"_id": 0}}]"#,
        r#"[{"$group": {"_id": "$name.last", "n": {"$count": {}}}},
            {"$group": {"_id": "$n", "k": {"$count": {}}}}]"#,
        r#"[{"$sort": {"age": 1}},
            {"$group": {"_id": "$name.first", "youngest_last": {"$first": "$name.last"}, "oldest_last": {"$last": "$name.last"}}}]"#,
        r#"[{"$unwind": "$hobbies"}, {"$unwind": "$hobbies"}]"#,
        r#"[{"$match": {"nope": 1}}, {"$count": "none"}]"#,
        r#"[{"$count": "a"}, {"$count": "b"}]"#,
        // --- every overlay-matcher arm on rows with live bindings ---
        r#"[{"$unwind": "$scores"}, {"$match": {"scores": {"$type": "number"}}}]"#,
        r#"[{"$unwind": "$scores"}, {"$match": {"scores": {"$in": [1, 9]}}}]"#,
        r#"[{"$unwind": "$scores"}, {"$match": {"scores": {"$nin": [2, 3]}}}]"#,
        r#"[{"$unwind": "$scores"}, {"$match": {"scores": {"$gt": 1, "$lte": 9}}}]"#,
        r#"[{"$unwind": "$scores"}, {"$match": {"scores": {"$exists": "true"}, "name.last": {"$exists": "false"}}}]"#,
        r#"[{"$unwind": "$scores"}, {"$match": {"hobbies": {"$size": 2}, "name": {"$type": "object"}}}]"#,
        r#"[{"$unwind": "$scores"}, {"$match": {"$or": [{"scores": 9}, {"$not": {"scores": {"$gte": 2}}}]}}]"#,
    ]
}

#[test]
fn corpus_agrees_on_people() {
    let coll = people();
    for src in corpus() {
        check(&coll, src);
    }
}

#[test]
fn corpus_agrees_on_person_records() {
    let coll = Collection::from_array(&gen::person_records(200, 11)).unwrap();
    for src in corpus() {
        check(&coll, src);
    }
}

#[test]
fn corpus_agrees_on_random_documents() {
    // Random collections whose shapes the corpus paths only partially fit:
    // missing keys, type mismatches, numeric segments over objects.
    for seed in 0..24u64 {
        let docs: Vec<Json> = (0..12)
            .map(|i| gen::random_json(&gen::GenConfig::sized(seed * 31 + i, 40)))
            .collect();
        let coll = Collection::from_array(&Json::Array(docs)).unwrap();
        for src in [
            r#"[{"$unwind": "$a"}, {"$group": {"_id": "$a", "n": {"$count": {}}}}]"#,
            r#"[{"$match": {"a": {"$exists": "true"}}}, {"$sort": {"a": 1, "b": 0}}]"#,
            r#"[{"$project": {"x": "$a.b", "y": "$0", "z": 1}}]"#,
            r#"[{"$group": {"_id": {"k": "$a", "m": "$b.c"}, "lo": {"$min": "$a"}, "hi": {"$max": "$a"}, "all": {"$push": "$b"}}}]"#,
            r#"[{"$unwind": "$a"}, {"$unwind": "$a.b"}, {"$count": "rows"}]"#,
            r#"[{"$sort": {"a": 0}}, {"$skip": 3}, {"$limit": 5}]"#,
        ] {
            check(&coll, src);
        }
    }
}

#[test]
fn generated_pipelines_agree() {
    // Seeded pipeline generator: random stage sequences assembled from a
    // component pool over the person-record vocabulary, so $unwind overlay
    // bindings, re-grouping, and pagination compose in arbitrary orders.
    let stage_pool: Vec<&str> = vec![
        r#"{"$match": {"age": {"$gte": 40}}}"#,
        r#"{"$match": {"name.first": {"$in": ["Sue", "Wei", "Omar"]}}}"#,
        r#"{"$match": {"hobbies": {"$size": 1}}}"#,
        r#"{"$unwind": "$hobbies"}"#,
        r#"{"$project": {"name.first": 1, "age": 1, "hobbies": 1, "h": "$hobbies"}}"#,
        r#"{"$group": {"_id": "$name.first", "n": {"$count": {}}, "total": {"$sum": "$age"}, "hs": {"$push": "$hobbies"}}}"#,
        r#"{"$group": {"_id": {"f": "$name.first", "a": "$age"}, "lo": {"$min": "$age"}, "hi": {"$max": "$age"}}}"#,
        r#"{"$sort": {"age": 0, "name.first": 1}}"#,
        r#"{"$sort": {"n": 1, "_id": 0}}"#,
        r#"{"$skip": 2}"#,
        r#"{"$limit": 7}"#,
        r#"{"$count": "rows"}"#,
    ];
    // A tiny deterministic LCG so the sweep needs no rand dependency.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for case in 0..120 {
        let coll = Collection::from_array(&gen::person_records(40, case as u64)).unwrap();
        let len = 1 + next() % 4;
        let stages: Vec<&str> = (0..len)
            .map(|_| stage_pool[next() % stage_pool.len()])
            .collect();
        let src = format!("[{}]", stages.join(","));
        check(&coll, &src);
    }
}

#[test]
fn insert_then_aggregate_matches_rebuild() {
    // The ROADMAP's incremental-insert item: post-insert `find` and
    // `aggregate` must be indistinguishable from a from-scratch rebuild of
    // the extended collection.
    let mut coll = people();
    coll.insert(
        &parse(r#"{"name": {"first": "Omar"}, "age": 61, "hobbies": ["chess", "go"]}"#).unwrap(),
    );
    coll.insert_str(
        r#"{"name": {"first": "Sue"}, "age": 19, "hobbies": ["go"], "scores": [2, 2]}"#,
    )
    .unwrap();
    let rebuilt = Collection::from_array(&Json::Array(coll.docs().to_vec())).unwrap();
    assert_eq!(coll.docs(), rebuilt.docs());
    for src in corpus() {
        let pipe = Pipeline::parse_str(src).unwrap();
        assert_eq!(
            jagg::aggregate(&coll, &pipe),
            jagg::aggregate(&rebuilt, &pipe),
            "pipeline {src} diverges between incremental and rebuilt collections"
        );
        // And both agree with the oracle.
        check(&coll, src);
    }
    let f = mongofind::Filter::parse_str(r#"{"name.first": "Sue"}"#).unwrap();
    assert_eq!(coll.find(&f), rebuilt.find(&f));
    assert_eq!(coll.find_via_jnl(&f), rebuilt.find_via_jnl(&f));
}

#[test]
fn non_array_roots_aggregate_as_single_document() {
    // The shared single-document semantics of non-array collection roots.
    let coll =
        Collection::parse_str(r#"{"name": {"first": "Sue"}, "age": 28, "hobbies": ["yoga"]}"#)
            .unwrap();
    assert_eq!(coll.len(), 1);
    for src in [
        r#"[{"$match": {"name.first": "Sue"}}]"#,
        r#"[{"$match": {"name.first": "Zoe"}}]"#,
        r#"[{"$unwind": "$hobbies"}, {"$project": {"h": "$hobbies"}}]"#,
        r#"[{"$group": {"_id": "$name.first", "n": {"$count": {}}}}]"#,
        r#"[{"$count": "docs"}]"#,
    ] {
        check(&coll, src);
    }
    let pipe = Pipeline::parse_str(r#"[{"$count": "docs"}]"#).unwrap();
    assert_eq!(
        jagg::aggregate(&coll, &pipe),
        vec![parse(r#"{"docs": 1}"#).unwrap()]
    );
}

#[test]
fn unwind_edge_semantics_are_pinned() {
    // Beyond the differential agreement, pin the defined behavior itself:
    // missing → dropped, [] → dropped, non-array → passed through.
    let coll = Collection::parse_str(
        r#"[
        {"id": 0, "a": [1, 2]},
        {"id": 1, "a": []},
        {"id": 2},
        {"id": 3, "a": "scalar"}
    ]"#,
    )
    .unwrap();
    let pipe =
        Pipeline::parse_str(r#"[{"$unwind": "$a"}, {"$project": {"id": 1, "a": 1}}]"#).unwrap();
    let out = jagg::aggregate(&coll, &pipe);
    assert_eq!(
        out,
        vec![
            parse(r#"{"id": 0, "a": 1}"#).unwrap(),
            parse(r#"{"id": 0, "a": 2}"#).unwrap(),
            parse(r#"{"id": 3, "a": "scalar"}"#).unwrap(),
        ]
    );
    check(&coll, r#"[{"$unwind": "$a"}]"#);
}

#[test]
fn overlay_bindings_observed_from_above() {
    // A $match on a PARENT of an unwound path must see the merged view
    // (the binding nests inside the compared subtree).
    let coll = Collection::parse_str(
        r#"[
        {"o": {"a": [1, 2], "k": "x"}},
        {"o": {"a": [3],    "k": "y"}}
    ]"#,
    )
    .unwrap();
    let src = r#"[
        {"$unwind": "$o.a"},
        {"$match": {"o": {"$eq": {"a": 1, "k": "x"}}}},
        {"$project": {"v": "$o.a", "whole": "$o"}}
    ]"#;
    check(&coll, src);
    let out = jagg::aggregate(&coll, &Pipeline::parse_str(src).unwrap());
    assert_eq!(
        out,
        vec![parse(r#"{"v": 1, "whole": {"a": 1, "k": "x"}}"#).unwrap()]
    );
    // Grouping and sorting on merged parents of bindings.
    check(
        &coll,
        r#"[{"$unwind": "$o.a"}, {"$group": {"_id": "$o", "n": {"$count": {}}}}]"#,
    );
    check(&coll, r#"[{"$unwind": "$o.a"}, {"$sort": {"o": 0}}]"#);
    // Unwinding a parent of an existing binding (merged array case).
    let coll2 = Collection::parse_str(r#"[{"a": [[1, 2], [3]]}]"#).unwrap();
    check(
        &coll2,
        r#"[{"$unwind": "$a"}, {"$unwind": "$a"}, {"$group": {"_id": "$a", "n": {"$count": {}}}}]"#,
    );
}

#[test]
fn group_ordering_and_missing_key_group_are_defined() {
    let coll = people();
    let pipe = Pipeline::parse_str(
        r#"[{"$group": {"_id": "$name.last", "n": {"$count": {}}, "ages": {"$push": "$age"}}}]"#,
    )
    .unwrap();
    let out = jagg::aggregate(&coll, &pipe);
    // Missing-key group first (no _id field), then keys in total order.
    assert_eq!(
        out,
        vec![
            parse(r#"{"n": 3, "ages": [45, 28]}"#).unwrap(),
            parse(r#"{"_id": "Doe", "n": 2, "ages": [32, 45]}"#).unwrap(),
            parse(r#"{"_id": "Kim", "n": 1, "ages": [28]}"#).unwrap(),
        ]
    );
}

#[test]
fn docs_cache_is_consistent_before_and_after_insert() {
    let mut coll = people();
    let before = coll.docs().to_vec();
    coll.insert(&parse(r#"{"x": 1}"#).unwrap());
    let after = coll.docs();
    assert_eq!(after.len(), before.len() + 1);
    assert_eq!(&after[..before.len()], &before[..]);
    assert_eq!(after[before.len()], parse(r#"{"x": 1}"#).unwrap());
}
