//! # jtrace — per-query observability primitives
//!
//! The stack has four distinct execution routes for a single query (index
//! probe, whole-tree JNL evaluation, parallel scan, and `jstat`-pruned
//! pipelines), but which route ran and what it touched is invisible at
//! runtime. This crate is the substrate that makes it visible:
//!
//! * [`QueryMetrics`] — a sink of **sharded atomic counters** (documents
//!   scanned, rows emitted, index probes, …) that rides on
//!   `jguard::QueryCtx` so every `*_with_ctx` query path records for free.
//!   A query with no sink attached pays exactly one branch per would-be
//!   record, the same null-cost pattern as the unlimited `QueryCtx`.
//! * a **panic audit log** on the same sink: `jpar`'s chunk containment
//!   reports which chunk panicked and with what payload, so an
//!   injected-fault storm is auditable after the fact.
//! * [`SpanLog`] — a lock-free **flight-recorder ring** of open/close span
//!   events (parse / plan / probe / stage / chunk scopes) with
//!   monotonic-nanosecond timestamps, dumpable as Chrome-trace JSON for
//!   offline flame inspection.
//!
//! This crate is dependency-free and sits below `jguard` in the workspace
//! graph; it never allocates on the record path (counters are plain
//! `fetch_add`s, span slots are preallocated) except for the rare panic
//! event, which owns its payload string.
//!
//! ## Counter semantics and determinism
//!
//! Counters are **work** counters, not **schedule** counters, wherever the
//! work itself is deterministic: on a fixed collection and query,
//! [`Counter::DocsScanned`], [`Counter::RowsEmitted`] and
//! [`Counter::IndexProbes`] totals are invariant across thread counts and
//! storage layouts — each unit of work is recorded exactly once no matter
//! which worker performs it. Schedule-dependent counters
//! ([`Counter::ChunksDispatched`], [`Counter::ChunksStolen`],
//! [`Counter::Polls`]) are explicitly exempt from that guarantee: they
//! describe how the work was carved up, which legitimately varies with the
//! pool size. `docs/observability.md` pins the full contract.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------
// Counter vocabulary
// ---------------------------------------------------------------------

/// The fixed counter vocabulary. Each variant indexes one atomic slot per
/// shard; the recording sites are documented per variant so a reader of a
/// [`Snapshot`] knows exactly what a count means.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Documents visited by the parallel **scan** route
    /// (`Collection::find_refs*` chunk loops). Zero when a query was
    /// answered entirely by index probes or whole-tree JNL evaluation.
    DocsScanned = 0,
    /// Rows charged to the row budget: matching refs emitted by
    /// scan/index/JNL matching, plus `$unwind` row production.
    RowsEmitted,
    /// Index probes executed (one per index-answerable conjunct, not per
    /// segment). Zero when the planner fell back to scan or JNL.
    IndexProbes,
    /// Doc-bitmap AND operations performed while intersecting probe
    /// results.
    BitmapIntersections,
    /// Residual predicate evaluations (`matches_at` on probe survivors).
    ResidualEvals,
    /// Segments evaluated by the whole-tree **JNL** route (Proposition 1
    /// evaluation). Zero on the scan and index routes.
    SegmentsVisited,
    /// Per-query DFA symbol-bitset matcher compilations
    /// (`relex::SymMatcherTable` misses inside `jnl::eval`).
    DfaBitsetBuilds,
    /// `CanonTable` constructions performed on behalf of the query
    /// (`$group` key classing; one per segment at most).
    CanonBuilds,
    /// Bytes debited from the byte budget (only charged when a byte budget
    /// is configured — see `jguard::QueryCtx::charge_json`).
    BytesCharged,
    /// Governance poll checks that actually ran (deadline/cancel/fault
    /// inspections after stride amortisation).
    Polls,
    /// Parallel chunks claimed from the work-stealing counter
    /// (schedule-dependent).
    ChunksDispatched,
    /// Chunks claimed by a spawned worker rather than the calling thread
    /// (schedule-dependent; zero on serial execution).
    ChunksStolen,
    /// Worker panics contained by `jpar` (each also appends a
    /// [`PanicEvent`]).
    WorkerPanics,
}

/// Number of counters in the vocabulary.
pub const NUM_COUNTERS: usize = 13;

/// Every counter, in slot order.
pub const ALL_COUNTERS: [Counter; NUM_COUNTERS] = [
    Counter::DocsScanned,
    Counter::RowsEmitted,
    Counter::IndexProbes,
    Counter::BitmapIntersections,
    Counter::ResidualEvals,
    Counter::SegmentsVisited,
    Counter::DfaBitsetBuilds,
    Counter::CanonBuilds,
    Counter::BytesCharged,
    Counter::Polls,
    Counter::ChunksDispatched,
    Counter::ChunksStolen,
    Counter::WorkerPanics,
];

impl Counter {
    /// Stable snake-case identifier, used as the JSON key in snapshots,
    /// explain output and the bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DocsScanned => "docs_scanned",
            Counter::RowsEmitted => "rows_emitted",
            Counter::IndexProbes => "index_probes",
            Counter::BitmapIntersections => "bitmap_intersections",
            Counter::ResidualEvals => "residual_evals",
            Counter::SegmentsVisited => "segments_visited",
            Counter::DfaBitsetBuilds => "dfa_bitset_builds",
            Counter::CanonBuilds => "canon_builds",
            Counter::BytesCharged => "bytes_charged",
            Counter::Polls => "polls",
            Counter::ChunksDispatched => "chunks_dispatched",
            Counter::ChunksStolen => "chunks_stolen",
            Counter::WorkerPanics => "worker_panics",
        }
    }
}

// ---------------------------------------------------------------------
// Sharded sink
// ---------------------------------------------------------------------

/// Shard count (power of two). Each thread is pinned to one shard by a
/// process-wide round-robin assignment, so concurrent workers rarely
/// contend on the same cache line.
const SHARDS: usize = 16;

#[repr(align(128))]
#[derive(Default)]
struct Shard {
    slots: [AtomicU64; NUM_COUNTERS],
}

/// Returns this thread's shard index (assigned round-robin on first use,
/// cached in a thread-local thereafter).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            c.set(v);
            v
        }
    })
}

/// One panic contained by `jpar`'s per-chunk `catch_unwind`, preserved for
/// post-hoc audit: which chunk died and what the payload said.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicEvent {
    /// Index of the chunk whose worker panicked (`usize::MAX` when the
    /// chunk is unknown, e.g. a coordinator-side containment).
    pub chunk: usize,
    /// The panic payload, downcast to a string where possible.
    pub payload: String,
}

/// The per-query metrics sink: sharded atomic counters plus the panic
/// audit log and an optional [`SpanLog`]. Cheap to share (`Arc`), safe to
/// record into from any number of worker threads concurrently.
///
/// Recording is wait-free (`fetch_add` on this thread's shard); reading
/// ([`QueryMetrics::snapshot`]) sums shards and may observe a mid-flight
/// query's partial totals — exact totals require quiescence, which every
/// caller in this workspace has (snapshots are taken after the governed
/// call returns).
pub struct QueryMetrics {
    shards: Vec<Shard>,
    panics: Mutex<Vec<PanicEvent>>,
    spans: Option<SpanLog>,
}

impl Default for QueryMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for QueryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryMetrics")
            .field("snapshot", &self.snapshot().nonzero())
            .field("spans", &self.spans.is_some())
            .finish()
    }
}

impl QueryMetrics {
    /// A counters-only sink (no span ring).
    pub fn new() -> Self {
        QueryMetrics {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            panics: Mutex::new(Vec::new()),
            spans: None,
        }
    }

    /// A sink that also records spans into a ring of `capacity` slots
    /// (rounded up to a power of two; oldest events are overwritten once
    /// the ring wraps).
    pub fn with_spans(capacity: usize) -> Self {
        QueryMetrics {
            spans: Some(SpanLog::new(capacity)),
            ..QueryMetrics::new()
        }
    }

    /// Adds `n` to a counter on this thread's shard.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.shards[shard_index()].slots[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current total for one counter (sum over shards).
    pub fn get(&self, counter: Counter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.slots[counter as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of every counter total.
    pub fn snapshot(&self) -> Snapshot {
        let mut counts = [0u64; NUM_COUNTERS];
        for shard in &self.shards {
            for (i, slot) in shard.slots.iter().enumerate() {
                counts[i] += slot.load(Ordering::Relaxed);
            }
        }
        Snapshot { counts }
    }

    /// Appends a contained-panic event (and bumps
    /// [`Counter::WorkerPanics`]).
    pub fn record_panic(&self, chunk: usize, payload: &str) {
        self.add(Counter::WorkerPanics, 1);
        // A poisoned lock only means another recorder panicked while
        // appending; the Vec is still structurally sound.
        let mut log = self.panics.lock().unwrap_or_else(|e| e.into_inner());
        log.push(PanicEvent {
            chunk,
            payload: payload.to_owned(),
        });
    }

    /// The contained-panic audit log, in record order.
    pub fn panic_events(&self) -> Vec<PanicEvent> {
        self.panics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The span ring, if this sink was built with one.
    pub fn spans(&self) -> Option<&SpanLog> {
        self.spans.as_ref()
    }

    /// Records a span-open event (no-op without a span ring).
    #[inline]
    pub fn span_open(&self, kind: SpanKind, arg: u32) {
        if let Some(s) = &self.spans {
            s.record(kind, SpanPhase::Open, arg);
        }
    }

    /// Records a span-close event (no-op without a span ring).
    #[inline]
    pub fn span_close(&self, kind: SpanKind, arg: u32) {
        if let Some(s) = &self.spans {
            s.record(kind, SpanPhase::Close, arg);
        }
    }
}

/// An immutable copy of every counter total, taken by
/// [`QueryMetrics::snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Totals, indexed by `Counter as usize` (see [`ALL_COUNTERS`]).
    pub counts: [u64; NUM_COUNTERS],
}

impl Snapshot {
    /// Total for one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize]
    }

    /// The non-zero counters as `(name, total)` pairs, in slot order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        ALL_COUNTERS
            .iter()
            .filter(|c| self.get(**c) > 0)
            .map(|c| (c.name(), self.get(*c)))
            .collect()
    }

    /// Renders the snapshot as a flat JSON object keyed by
    /// [`Counter::name`], every counter present.
    pub fn to_json_text(&self) -> String {
        let mut out = String::from("{");
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.get(*c)));
        }
        out.push('}');
        out
    }
}

impl std::ops::Index<Counter> for Snapshot {
    type Output = u64;
    fn index(&self, c: Counter) -> &u64 {
        &self.counts[c as usize]
    }
}

// ---------------------------------------------------------------------
// Flight-recorder span ring
// ---------------------------------------------------------------------

/// Span scope vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Document ingestion (text → tree).
    Parse = 0,
    /// Query planning (route selection, probe planning).
    Plan,
    /// One index probe (arg = probe ordinal).
    Probe,
    /// One pipeline stage (arg = stage index).
    Stage,
    /// One parallel chunk (arg = chunk index).
    Chunk,
}

impl SpanKind {
    /// Stable lower-case name (Chrome-trace `cat`/`name` prefix).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Parse => "parse",
            SpanKind::Plan => "plan",
            SpanKind::Probe => "probe",
            SpanKind::Stage => "stage",
            SpanKind::Chunk => "chunk",
        }
    }

    fn from_u8(v: u8) -> SpanKind {
        match v {
            0 => SpanKind::Parse,
            1 => SpanKind::Plan,
            2 => SpanKind::Probe,
            3 => SpanKind::Stage,
            _ => SpanKind::Chunk,
        }
    }
}

/// Whether an event opens or closes its scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// Scope entry (Chrome-trace `"B"`).
    Open,
    /// Scope exit (Chrome-trace `"E"`).
    Close,
}

/// One decoded span event.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Scope kind.
    pub kind: SpanKind,
    /// Open or close.
    pub phase: SpanPhase,
    /// Kind-specific argument (stage index, chunk index, probe ordinal).
    pub arg: u32,
    /// Recording thread's shard index — the Chrome-trace lane.
    pub tid: u16,
    /// Nanoseconds since the ring was created (monotonic clock).
    pub ts_ns: u64,
    /// Global sequence number (1-based record order).
    pub seq: u64,
}

struct SpanSlot {
    /// 0 = empty/in-flight; otherwise `global_index + 1` of the event the
    /// payload fields currently hold. Written with `Release` after the
    /// payload, read with `Acquire` before and after — a torn slot (ring
    /// wrapped mid-read) fails the stamp re-check and is skipped.
    seq: AtomicU64,
    /// kind(8) | phase(8) | tid(16) | arg(32)
    packed: AtomicU64,
    ts_ns: AtomicU64,
}

/// A lock-free, fixed-capacity ring of span events. Writers claim a slot
/// with one `fetch_add` and stamp it with a sequence number when the
/// payload is complete; once the ring wraps, the oldest events are
/// overwritten. Reading ([`SpanLog::events`]) is designed for post-query
/// dumps: it validates each slot's stamp before and after decoding and
/// drops slots that changed underneath it.
pub struct SpanLog {
    head: AtomicU64,
    slots: Vec<SpanSlot>,
    epoch: Instant,
}

impl SpanLog {
    fn new(capacity: usize) -> SpanLog {
        let cap = capacity.max(16).next_power_of_two();
        SpanLog {
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| SpanSlot {
                    seq: AtomicU64::new(0),
                    packed: AtomicU64::new(0),
                    ts_ns: AtomicU64::new(0),
                })
                .collect(),
            epoch: Instant::now(),
        }
    }

    /// Records one event (wait-free; overwrites the oldest slot when
    /// full).
    pub fn record(&self, kind: SpanKind, phase: SpanPhase, arg: u32) {
        let ts = self.epoch.elapsed().as_nanos() as u64;
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
        let packed = ((kind as u64) << 56)
            | ((phase as u64) << 48)
            | ((shard_index() as u64 & 0xffff) << 32)
            | arg as u64;
        // Invalidate, write payload, then stamp: readers that race with
        // this write see either stamp 0 or a stamp that fails re-check.
        slot.seq.store(0, Ordering::Release);
        slot.packed.store(packed, Ordering::Relaxed);
        slot.ts_ns.store(ts, Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Decodes the surviving events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let stamp = slot.seq.load(Ordering::Acquire);
            if stamp == 0 {
                continue;
            }
            let packed = slot.packed.load(Ordering::Relaxed);
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != stamp {
                continue; // overwritten mid-read
            }
            out.push(SpanEvent {
                kind: SpanKind::from_u8((packed >> 56) as u8),
                phase: if (packed >> 48) as u8 == 0 {
                    SpanPhase::Open
                } else {
                    SpanPhase::Close
                },
                arg: packed as u32,
                tid: (packed >> 32) as u16,
                ts_ns,
                seq: stamp,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Renders the surviving events as Chrome-trace JSON
    /// (`chrome://tracing` / Perfetto `traceEvents` format, `B`/`E`
    /// duration events, microsecond timestamps).
    ///
    /// The top-level `"spanStats"` key carries the ring's honesty
    /// counters — `recorded` (every event ever seen) and `dropped`
    /// (events lost to wrap-around) — so a truncated trace is
    /// distinguishable from a complete one. Trace viewers ignore unknown
    /// top-level keys next to `traceEvents`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = match e.phase {
                SpanPhase::Open => "B",
                SpanPhase::Close => "E",
            };
            out.push_str(&format!(
                "{{\"name\":\"{} {}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}}}",
                e.kind.name(),
                e.arg,
                e.kind.name(),
                ph,
                e.ts_ns / 1_000,
                e.ts_ns % 1_000,
                e.tid,
            ));
        }
        out.push_str(&format!(
            "],\"spanStats\":{{\"recorded\":{},\"dropped\":{}}}}}",
            self.recorded(),
            self.dropped()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_across_threads() {
        let m = Arc::new(QueryMetrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add(Counter::DocsScanned, 1);
                        m.add(Counter::RowsEmitted, 2);
                    }
                });
            }
        });
        assert_eq!(m.get(Counter::DocsScanned), 8_000);
        assert_eq!(m.get(Counter::RowsEmitted), 16_000);
        assert_eq!(m.get(Counter::IndexProbes), 0);
        let snap = m.snapshot();
        assert_eq!(snap[Counter::DocsScanned], 8_000);
        assert_eq!(
            snap.nonzero(),
            vec![("docs_scanned", 8_000), ("rows_emitted", 16_000)]
        );
    }

    #[test]
    fn snapshot_json_lists_every_counter() {
        let m = QueryMetrics::new();
        m.add(Counter::Polls, 7);
        let text = m.snapshot().to_json_text();
        for c in ALL_COUNTERS {
            assert!(text.contains(&format!("\"{}\":", c.name())), "{text}");
        }
        assert!(text.contains("\"polls\":7"));
    }

    #[test]
    fn panic_events_are_auditable() {
        let m = QueryMetrics::new();
        m.record_panic(3, "boom");
        m.record_panic(usize::MAX, "coordinator");
        assert_eq!(m.get(Counter::WorkerPanics), 2);
        let events = m.panic_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].chunk, 3);
        assert_eq!(events[0].payload, "boom");
    }

    #[test]
    fn span_ring_records_and_orders_events() {
        let m = QueryMetrics::with_spans(64);
        m.span_open(SpanKind::Plan, 0);
        m.span_close(SpanKind::Plan, 0);
        m.span_open(SpanKind::Stage, 2);
        m.span_close(SpanKind::Stage, 2);
        let spans = m.spans().expect("ring requested");
        let events = spans.events();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(events[0].kind, SpanKind::Plan);
        assert_eq!(events[0].phase, SpanPhase::Open);
        assert_eq!(events[2].arg, 2);
        assert_eq!(spans.dropped(), 0);

        let trace = spans.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"stage 2\""));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\""));
        assert!(trace.ends_with("\"spanStats\":{\"recorded\":4,\"dropped\":0}}"));
    }

    #[test]
    fn chrome_trace_metadata_reports_drops_honestly() {
        let m = QueryMetrics::with_spans(16);
        let spans = m.spans().expect("ring requested");
        for i in 0..40u32 {
            spans.record(SpanKind::Chunk, SpanPhase::Open, i);
        }
        let trace = spans.to_chrome_trace();
        assert!(trace.contains("\"spanStats\":{\"recorded\":40,\"dropped\":24}"));
    }

    #[test]
    fn span_ring_wraps_keeping_newest() {
        let m = QueryMetrics::with_spans(16);
        let spans = m.spans().expect("ring requested");
        for i in 0..40u32 {
            spans.record(SpanKind::Chunk, SpanPhase::Open, i);
        }
        assert_eq!(spans.recorded(), 40);
        assert_eq!(spans.dropped(), 24);
        let events = spans.events();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().map(|e| e.arg), Some(24));
        assert_eq!(events.last().map(|e| e.arg), Some(39));
    }

    #[test]
    fn spanless_sink_span_calls_are_noops() {
        let m = QueryMetrics::new();
        m.span_open(SpanKind::Parse, 0);
        m.span_close(SpanKind::Parse, 0);
        assert!(m.spans().is_none());
    }
}
