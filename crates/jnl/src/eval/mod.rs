//! Evaluation engines for JNL.
//!
//! Four engines implement the semantics at the complexity points the paper
//! identifies:
//!
//! | Engine | Fragment | Bound (paper) | Where |
//! |---|---|---|---|
//! | [`naive`] | full logic | — (reference oracle) | differential tests |
//! | [`linear`] | deterministic JNL | `O(\|J\|·\|φ\|)` (Prop 1) | E1 |
//! | [`pdl`] | + non-det, recursion; no `EQ(α,β)` | `O(\|J\|·\|φ\|)` (Prop 3) | E3 |
//! | [`cubic`] | full logic incl. `EQ(α,β)` | `O(\|J\|³·\|φ\|)` (Prop 3) | E3 |
//!
//! [`evaluate`] dispatches to the cheapest engine that supports the
//! formula's fragment. All engines share the [`EvalContext`] (tree +
//! canonical subtree labels + per-regex edge-match caches).

pub mod cubic;
pub mod linear;
pub mod naive;
pub mod pathnfa;
pub mod pdl;

use jguard::{QueryCtx, QueryError};
use jsondata::{CanonTable, Json, JsonTree, NodeId, Sym};
use jtrace::Counter;
use relex::{EdgeStrategy, MatcherId, Regex, SymMatcher, SymMatcherTable};

use crate::ast::Unary;

/// Errors raised when a formula falls outside an engine's fragment, or
/// when a governed evaluation is stopped by its [`QueryCtx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The linear engine was given a non-deterministic construct.
    NotDeterministic(&'static str),
    /// The PDL engine was given `EQ(α, β)` (use [`cubic`]).
    EqPairUnsupported,
    /// A deadline/cancellation poll stopped the evaluation (only
    /// reachable through the `*_ctx` entry points, which unwrap it back
    /// to the underlying [`QueryError`]).
    Interrupted(QueryError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::NotDeterministic(what) => {
                write!(
                    f,
                    "formula uses {what}, outside the deterministic fragment (Prop 1)"
                )
            }
            EvalError::EqPairUnsupported => write!(
                f,
                "EQ(α, β) requires the cubic engine (Prop 3 excludes it from the linear case)"
            ),
            EvalError::Interrupted(q) => write!(f, "evaluation interrupted: {q}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Shared evaluation state for one tree: canonical labels plus the
/// per-regex edge matchers of the Proposition 3 proof's preprocessing step.
///
/// Edge keys live in the tree itself as interned [`Sym`]s — nothing is
/// cloned here. On the default [`EdgeStrategy::DfaBitset`] tier each regex
/// is compiled to a DFA once per (query, tree) and evaluated over the whole
/// symbol table in one pass, so every later edge test is a single bit load
/// (no string resolution, no automaton run); regexes too large to
/// determinise fall back to the lazy per-`(regex, symbol)` memo.
pub struct EvalContext<'t> {
    /// The document tree.
    pub tree: &'t JsonTree,
    /// Canonical subtree labels (the online-equality refinement of Prop 1).
    pub canon: CanonTable,
    /// `regex → edge matcher` (bitset tier with lazy-memo fallback).
    matchers: SymMatcherTable,
    /// Governance handle for cooperative interruption (unlimited — a
    /// no-op — unless built through [`EvalContext::with_guard`]).
    guard: QueryCtx,
}

impl<'t> EvalContext<'t> {
    /// Builds the context (one `O(|J|)` pass for the canonical labels; the
    /// edge matchers compile on first sight of each regex).
    pub fn new(tree: &'t JsonTree) -> EvalContext<'t> {
        EvalContext::with_strategy(tree, EdgeStrategy::default())
    }

    /// [`EvalContext::new`] with an explicit edge-matching strategy (the
    /// lazy-memo tier is kept selectable for benchmark ablations).
    pub fn with_strategy(tree: &'t JsonTree, strategy: EdgeStrategy) -> EvalContext<'t> {
        EvalContext {
            tree,
            canon: CanonTable::build(tree),
            matchers: SymMatcherTable::with_strategy(strategy),
            guard: QueryCtx::unlimited(),
        }
    }

    /// [`EvalContext::new`] bound to a governance context: the per-node
    /// evaluation loops poll `guard` (every [`jguard::POLL_STRIDE`]
    /// nodes) and stop with [`EvalError::Interrupted`] when it fails.
    pub fn with_guard(tree: &'t JsonTree, guard: QueryCtx) -> EvalContext<'t> {
        // The canon table was just built by `new` — make the work visible
        // to a metrics sink riding on the guard.
        guard.record(Counter::CanonBuilds, 1);
        EvalContext {
            guard,
            ..EvalContext::new(tree)
        }
    }

    /// The amortised per-node guard poll for loops that carry an index:
    /// the stride test is one mask on the loop counter ([`jguard::POLL_STRIDE`]
    /// is a power of two), so the between-stride cost stays in registers;
    /// the real check (time + cancellation + fault hook) runs once per
    /// stride on a governed context and never on an unlimited one.
    #[inline]
    pub(crate) fn poll_at(&self, i: usize) -> Result<(), EvalError> {
        if i & (jguard::POLL_STRIDE as usize - 1) != 0 {
            return Ok(());
        }
        if self.guard.is_unlimited() {
            return Ok(());
        }
        self.guard.check().map_err(EvalError::Interrupted)
    }

    /// The key on the edge into `n`, if `n` is an object child (resolved
    /// string; hot paths should use [`JsonTree::incoming_key_sym`] and
    /// compare symbols).
    pub fn incoming_key(&self, n: NodeId) -> Option<&'t str> {
        self.tree.incoming_key_sym(n).map(|s| self.tree.resolve(s))
    }

    /// The position on the edge into `n`, if `n` is an array child.
    pub fn incoming_index(&self, n: NodeId) -> Option<u64> {
        self.tree.incoming_index(n)
    }

    /// Whether the string behind `sym` (an edge key or string atom of this
    /// tree) matches `e` — a bit load on the default tier.
    pub fn key_matches(&mut self, e: &Regex, sym: Sym) -> bool {
        let tree = self.tree;
        self.matcher_for(e)
            .matches_sym(sym.index(), || tree.resolve(sym))
    }

    /// The edge matcher for `e` — fetch once before a loop over many edges
    /// so the table probe (which hashes the regex AST) runs once, not per
    /// edge.
    pub fn matcher_for(&mut self, e: &Regex) -> &mut SymMatcher {
        let id = self.matcher_id(e);
        self.matchers.get_mut(id)
    }

    /// Pre-resolves `e` to a stable matcher id (compiling on first sight),
    /// so hot loops can fetch the matcher by vector index via
    /// [`EvalContext::matcher`] with no AST hashing per edge. First-sight
    /// compilations are recorded against the guard's metrics sink
    /// (one [`Counter::DfaBitsetBuilds`] per distinct regex per context).
    pub fn matcher_id(&mut self, e: &Regex) -> MatcherId {
        let tree = self.tree;
        let before = self.matchers.len();
        let id = self
            .matchers
            .id(e, || tree.interner().iter().map(|(_, s)| s));
        if self.matchers.len() > before {
            self.guard.record(Counter::DfaBitsetBuilds, 1);
        }
        id
    }

    /// The matcher behind a pre-resolved id.
    #[inline]
    pub fn matcher(&mut self, id: MatcherId) -> &mut SymMatcher {
        self.matchers.get_mut(id)
    }

    /// The canonical class of an external document within this tree, if the
    /// document occurs as a subtree.
    pub fn class_of_doc(&self, doc: &Json) -> Option<u32> {
        self.canon.class_of_json(self.tree, doc)
    }
}

/// The result of an evaluation: the set of nodes satisfying the formula,
/// as a membership vector indexed by `NodeId::index()`.
pub type NodeSet = Vec<bool>;

/// Evaluates `φ` over `tree` with the best applicable engine:
/// deterministic → [`linear`], no `EQ(α,β)` → [`pdl`], otherwise [`cubic`].
pub fn evaluate(tree: &JsonTree, phi: &Unary) -> NodeSet {
    let frag = phi.fragment();
    if frag.is_deterministic() {
        linear::eval(tree, phi).expect("fragment checked deterministic")
    } else if !frag.eq_pair {
        pdl::eval(tree, phi).expect("fragment checked EQ-pair-free")
    } else {
        cubic::eval(tree, phi)
    }
}

/// [`evaluate`] over many trees at once, fanned out on `pool` — the
/// per-segment entry point of a segmented collection (each segment of a
/// `mongofind` tree column is one independent whole-tree evaluation).
///
/// Every per-tree evaluation owns its *entire* mutable state — the
/// [`EvalContext`] with its canonical-label table and regex edge
/// matchers/DFA bitsets is built inside the worker, per tree, exactly as
/// in the sequential path — so workers share only the immutable trees and
/// formula. Results come back in tree order regardless of thread count,
/// and a 1-thread pool runs the trees inline in order (byte-identical to
/// mapping [`evaluate`] yourself).
///
/// Generic over how the caller stores its trees: a plain `&[JsonTree]`
/// works, and so does the `&[Arc<JsonTree>]` a snapshot-sharing
/// collection holds (anything `Borrow<JsonTree> + Sync`).
pub fn evaluate_batch<T>(trees: &[T], phi: &Unary, pool: &jpar::Pool) -> Vec<NodeSet>
where
    T: std::borrow::Borrow<JsonTree> + Sync,
{
    pool.map(trees.len(), |i| evaluate(trees[i].borrow(), phi))
}

/// Governed [`evaluate`]: the linear engine polls `guard` every
/// [`jguard::POLL_STRIDE`] nodes; the PDL/cubic engines (whose inner
/// fixpoints are not instrumented) check it before and after the run.
/// Returns the guard's structured error instead of running to completion.
pub fn evaluate_ctx(tree: &JsonTree, phi: &Unary, guard: &QueryCtx) -> Result<NodeSet, QueryError> {
    let frag = phi.fragment();
    if frag.is_deterministic() {
        match linear::eval_with_guard(tree, phi, guard.clone()) {
            Ok(s) => Ok(s),
            Err(EvalError::Interrupted(q)) => Err(q),
            Err(e) => unreachable!("fragment checked deterministic: {e}"),
        }
    } else {
        guard.check()?;
        let s = if !frag.eq_pair {
            pdl::eval(tree, phi).expect("fragment checked EQ-pair-free")
        } else {
            cubic::eval(tree, phi)
        };
        guard.check()?;
        Ok(s)
    }
}

/// Governed [`evaluate_batch`]: fans the per-tree evaluations out
/// through the pool's fallible dispatch, so an expired deadline, a
/// cancellation, or a panicking evaluation surfaces as a structured
/// [`QueryError`] with all workers joined and the pool reusable.
/// Like [`evaluate_batch`], it accepts any `Borrow<JsonTree>` tree
/// storage (`&[JsonTree]` or `&[Arc<JsonTree>]` alike).
pub fn evaluate_batch_ctx<T>(
    trees: &[T],
    phi: &Unary,
    pool: &jpar::Pool,
    guard: &QueryCtx,
) -> Result<Vec<NodeSet>, QueryError>
where
    T: std::borrow::Borrow<JsonTree> + Sync,
{
    pool.try_map(guard, trees.len(), |i| {
        evaluate_ctx(trees[i].borrow(), phi, guard)
    })
}

/// Convenience: does the root satisfy `φ`?
pub fn check_root(tree: &JsonTree, phi: &Unary) -> bool {
    evaluate(tree, phi)[tree.root().index()]
}

/// Convenience: the nodes satisfying `φ`, as ids.
pub fn selected_nodes(tree: &JsonTree, phi: &Unary) -> Vec<NodeId> {
    evaluate(tree, phi)
        .iter()
        .enumerate()
        .filter(|&(_i, &b)| b)
        .map(|(i, &_b)| NodeId::from_index(i))
        .collect()
}
