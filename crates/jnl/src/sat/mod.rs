//! Satisfiability for JNL.
//!
//! * [`det`] — the deterministic fragment (Proposition 2, NP-complete):
//!   a backtracking tableau over an abstract *pattern tree*, with
//!   union-find merging for `EQ(α, β)` constraints and a final
//!   generate-and-verify pass (every `Sat` answer carries a witness
//!   document that has been re-checked by the reference evaluator).
//!
//! * [`det_str`] — the pre-interning string-keyed tableau, frozen as the
//!   differential verdict-and-witness oracle for [`det`] (exercised by the
//!   `sat_parity` property suite and `harness s8`).
//!
//! * [`containment`] — containment/equivalence checking by reduction to
//!   satisfiability (`φ ⊑ ψ` iff `φ ∧ ¬ψ` unsatisfiable), the coNP static
//!   task Prop 2 enables.
//!
//! Satisfiability for the non-deterministic and recursive fragments
//! (Proposition 5) lives in the `jsl` crate: the paper's own route is the
//! Theorem 2 translation into JSL followed by the JSL decision procedures,
//! and the crate dependency order follows the proofs.

pub mod containment;
pub mod det;
pub mod det_str;

use jsondata::Json;

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq)]
pub enum SatResult {
    /// Satisfiable, with a verified witness document.
    Sat(Json),
    /// No model exists.
    Unsat,
    /// The solver gave up (budget exhausted or unsupported construct);
    /// the string explains why.
    Unknown(String),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// The witness, if satisfiable.
    pub fn witness(&self) -> Option<&Json> {
        match self {
            SatResult::Sat(w) => Some(w),
            _ => None,
        }
    }
}
