//! A panicking worker closure must never abort the process or poison
//! the pool: it surfaces as `QueryError::WorkerPanicked` (try APIs) or
//! re-raises on the calling thread (legacy APIs), and the same pool
//! value keeps dispatching correctly afterwards.

use jguard::{with_quiet_panics, Fault, QueryCtx, QueryError};
use jpar::Pool;

#[test]
fn panicking_chunk_becomes_structured_error() {
    with_quiet_panics(|| {
        for threads in [1, 2, 8] {
            let pool = Pool::with_threads(threads);
            let r = pool.try_map_chunks(&QueryCtx::unlimited(), 100, 10, |r| {
                if r.contains(&42) {
                    panic!("chunk bomb");
                }
                Ok(r.len())
            });
            match r {
                Err(QueryError::WorkerPanicked { chunk, payload }) => {
                    assert!(chunk.contains(&42), "chunk {chunk:?} should contain 42");
                    assert_eq!(payload, "chunk bomb");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    });
}

#[test]
fn pool_is_reusable_after_a_panic() {
    with_quiet_panics(|| {
        let pool = Pool::with_threads(4);
        for round in 0..5 {
            let r = pool.try_map_chunks(&QueryCtx::unlimited(), 64, 4, |r| {
                if r.start == 32 {
                    panic!("round {round}");
                }
                Ok(r.len())
            });
            assert!(matches!(r, Err(QueryError::WorkerPanicked { .. })));
            // The very same pool value still produces correct results.
            let ok = pool.map(100, |i| i + 1);
            assert_eq!(ok, (1..=100).collect::<Vec<_>>());
        }
    });
}

#[test]
fn legacy_map_chunks_reraises_on_calling_thread() {
    with_quiet_panics(|| {
        let pool = Pool::with_threads(4);
        let caught = std::panic::catch_unwind(|| {
            pool.map_chunks(100, 10, |r| {
                if r.start == 50 {
                    panic!("legacy bomb");
                }
                r.len()
            })
        });
        let msg = match caught {
            Err(p) => *p.downcast::<String>().expect("string payload"),
            Ok(_) => panic!("expected a panic"),
        };
        assert!(msg.contains("legacy bomb"), "payload preserved: {msg}");
        assert!(msg.contains("50..60"), "chunk range named: {msg}");
        // Still alive and correct.
        assert_eq!(
            pool.map(10, |i| i * 2),
            (0..10).map(|i| i * 2).collect::<Vec<_>>()
        );
    });
}

#[test]
fn injected_fault_panic_is_contained_at_every_thread_count() {
    with_quiet_panics(|| {
        for threads in [1, 2, 8] {
            let pool = Pool::with_threads(threads);
            let ctx = QueryCtx::unlimited().with_fault(Fault::PanicAtPoll(2));
            let r = pool.try_map_chunks(&ctx, 1000, 10, |r| Ok(r.len()));
            assert!(
                matches!(r, Err(QueryError::WorkerPanicked { .. })),
                "threads {threads}: {r:?}"
            );
        }
    });
}

#[test]
fn expired_ctx_stops_dispatch() {
    for threads in [1, 2, 8] {
        let pool = Pool::with_threads(threads);
        let ctx = QueryCtx::unlimited().with_timeout(std::time::Duration::from_secs(0));
        let r = pool.try_map_chunks(&ctx, 10_000, 8, |r| Ok(r.len()));
        assert_eq!(r, Err(QueryError::Deadline), "threads {threads}");
    }
}

#[test]
fn cancelled_ctx_stops_dispatch() {
    let pool = Pool::with_threads(4);
    let ctx = QueryCtx::new();
    ctx.cancel();
    let r = pool.try_map_chunks(&ctx, 10_000, 8, |r| Ok(r.len()));
    assert_eq!(r, Err(QueryError::Cancelled));
}

#[test]
fn try_results_match_infallible_results() {
    let data: Vec<u64> = (0u64..50_000)
        .map(|i| i.wrapping_mul(2654435761) % 997)
        .collect();
    for threads in [1, 2, 8] {
        let pool = Pool::with_threads(threads);
        let plain = pool.flat_map_chunks(data.len(), 512, |r| {
            data[r].iter().copied().filter(|&x| x % 3 == 0).collect()
        });
        let tried = pool
            .try_flat_map_chunks(&QueryCtx::unlimited(), data.len(), 512, |r| {
                Ok(data[r].iter().copied().filter(|&x| x % 3 == 0).collect())
            })
            .unwrap();
        assert_eq!(plain, tried, "threads {threads}");
    }
}
