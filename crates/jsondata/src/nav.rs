//! JSON navigation instructions (§2): the primitive `J[key]` / `J[i]`
//! accessors every JSON system builds on, plus paths (sequences of steps)
//! with the paper's negative-index extension (`-1` = last element).

use std::fmt;
use std::str::FromStr;

use crate::error::JsonError;
use crate::tree::{JsonTree, NodeId};
use crate::value::Json;

/// One navigation instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NavStep {
    /// `J[key]`: the value of the key–value pair with key `key`.
    Key(String),
    /// `J[i]`: the `i`-th array element; negative counts from the end
    /// (`-1` is the last element).
    Index(i64),
}

impl NavStep {
    /// Applies the step to a value.
    pub fn apply<'a>(&self, value: &'a Json) -> Result<&'a Json, JsonError> {
        match self {
            NavStep::Key(k) => match value {
                Json::Object(o) => o.get(k).ok_or_else(|| JsonError::NoSuchKey(k.clone())),
                _ => Err(JsonError::NotAnObject),
            },
            NavStep::Index(i) => match value {
                Json::Array(items) => {
                    let idx = if *i >= 0 {
                        *i as usize
                    } else {
                        items
                            .len()
                            .checked_sub(i.unsigned_abs() as usize)
                            .ok_or(JsonError::IndexOutOfBounds(*i, items.len()))?
                    };
                    items
                        .get(idx)
                        .ok_or(JsonError::IndexOutOfBounds(*i, items.len()))
                }
                _ => Err(JsonError::NotAnArray),
            },
        }
    }

    /// Applies the step on the tree representation.
    pub fn apply_tree(&self, tree: &JsonTree, n: NodeId) -> Result<NodeId, JsonError> {
        match self {
            NavStep::Key(k) => {
                if tree.kind(n) != crate::tree::NodeKind::Obj {
                    return Err(JsonError::NotAnObject);
                }
                tree.child_by_key(n, k)
                    .ok_or_else(|| JsonError::NoSuchKey(k.clone()))
            }
            NavStep::Index(i) => {
                if tree.kind(n) != crate::tree::NodeKind::Arr {
                    return Err(JsonError::NotAnArray);
                }
                tree.child_by_signed_index(n, *i)
                    .ok_or(JsonError::IndexOutOfBounds(*i, tree.child_count(n)))
            }
        }
    }
}

impl fmt::Display for NavStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NavStep::Key(k) => write!(f, "[{}]", crate::serialize::quote(k)),
            NavStep::Index(i) => write!(f, "[{i}]"),
        }
    }
}

/// A sequence of navigation instructions, e.g. `["name"]["first"]` or
/// `["hobbies"][0]` in the paper's python-style notation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NavPath {
    steps: Vec<NavStep>,
}

impl NavPath {
    /// The empty path (identity).
    pub fn root() -> NavPath {
        NavPath::default()
    }

    /// Builds from steps.
    pub fn new(steps: Vec<NavStep>) -> NavPath {
        NavPath { steps }
    }

    /// Appends a key step.
    #[must_use]
    pub fn key(mut self, k: impl Into<String>) -> NavPath {
        self.steps.push(NavStep::Key(k.into()));
        self
    }

    /// Appends an index step.
    #[must_use]
    pub fn index(mut self, i: i64) -> NavPath {
        self.steps.push(NavStep::Index(i));
        self
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[NavStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Resolves against a value, returning the selected subdocument.
    pub fn resolve<'a>(&self, value: &'a Json) -> Result<&'a Json, JsonError> {
        self.steps.iter().try_fold(value, |v, s| s.apply(v))
    }

    /// Resolves against a tree node.
    pub fn resolve_tree(&self, tree: &JsonTree, from: NodeId) -> Result<NodeId, JsonError> {
        self.steps
            .iter()
            .try_fold(from, |n, s| s.apply_tree(tree, n))
    }
}

impl fmt::Display for NavPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J")?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Parses paths in the bracket notation used by the paper:
/// `J["name"]["first"]`, `J["hobbies"][0]`, `J[-1]`. The leading `J` is
/// optional.
impl FromStr for NavPath {
    type Err = JsonError;

    fn from_str(s: &str) -> Result<NavPath, JsonError> {
        let mut rest = s.trim();
        if let Some(stripped) = rest.strip_prefix('J') {
            rest = stripped;
        }
        let mut steps = Vec::new();
        while !rest.is_empty() {
            let Some(after) = rest.strip_prefix('[') else {
                return Err(JsonError::PointerSyntax(s.to_owned()));
            };
            let Some(end) = find_step_end(after) else {
                return Err(JsonError::PointerSyntax(s.to_owned()));
            };
            let body = &after[..end];
            rest = &after[end + 1..];
            let body = body.trim();
            if let Some(q) = body.strip_prefix('"') {
                let Some(inner) = q.strip_suffix('"') else {
                    return Err(JsonError::PointerSyntax(s.to_owned()));
                };
                // Reuse the JSON string parser for escapes.
                let parsed = crate::parse::parse(&format!("\"{inner}\""))
                    .map_err(|_| JsonError::PointerSyntax(s.to_owned()))?;
                match parsed {
                    Json::Str(k) => steps.push(NavStep::Key(k)),
                    _ => unreachable!("quoted body parses to a string"),
                }
            } else {
                let i: i64 = body
                    .parse()
                    .map_err(|_| JsonError::PointerSyntax(s.to_owned()))?;
                steps.push(NavStep::Index(i));
            }
        }
        Ok(NavPath { steps })
    }
}

/// Finds the `]` that closes the current step, skipping over quoted strings.
fn find_step_end(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ']' {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn doc() -> Json {
        parse(r#"{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}"#)
            .unwrap()
    }

    #[test]
    fn key_access() {
        let d = doc();
        let p = NavPath::root().key("name").key("first");
        assert_eq!(p.resolve(&d).unwrap(), &Json::str("John"));
    }

    #[test]
    fn index_access_and_negative() {
        let d = doc();
        assert_eq!(
            NavPath::root().key("hobbies").index(0).resolve(&d).unwrap(),
            &Json::str("fishing")
        );
        assert_eq!(
            NavPath::root()
                .key("hobbies")
                .index(-1)
                .resolve(&d)
                .unwrap(),
            &Json::str("yoga")
        );
        assert!(matches!(
            NavPath::root().key("hobbies").index(5).resolve(&d),
            Err(JsonError::IndexOutOfBounds(5, 2))
        ));
        assert!(matches!(
            NavPath::root().key("hobbies").index(-3).resolve(&d),
            Err(JsonError::IndexOutOfBounds(-3, 2))
        ));
    }

    #[test]
    fn kind_errors() {
        let d = doc();
        assert!(matches!(
            NavPath::root().key("age").key("x").resolve(&d),
            Err(JsonError::NotAnObject)
        ));
        assert!(matches!(
            NavPath::root().key("name").index(0).resolve(&d),
            Err(JsonError::NotAnArray)
        ));
        assert!(matches!(
            NavPath::root().key("zzz").resolve(&d),
            Err(JsonError::NoSuchKey(_))
        ));
    }

    #[test]
    fn tree_and_value_resolution_agree() {
        let d = doc();
        let t = JsonTree::build(&d);
        let paths = [
            NavPath::root().key("name").key("last"),
            NavPath::root().key("hobbies").index(1),
            NavPath::root().key("age"),
            NavPath::root().key("hobbies").index(-2),
        ];
        for p in paths {
            let via_value = p.resolve(&d).unwrap().clone();
            let via_tree = t.json_at(p.resolve_tree(&t, t.root()).unwrap());
            assert_eq!(via_value, via_tree, "path {p}");
        }
    }

    #[test]
    fn parse_bracket_syntax() {
        let p: NavPath = r#"J["name"]["first"]"#.parse().unwrap();
        assert_eq!(p, NavPath::root().key("name").key("first"));
        let p: NavPath = r#"["hobbies"][0]"#.parse().unwrap();
        assert_eq!(p, NavPath::root().key("hobbies").index(0));
        let p: NavPath = r#"[-1]"#.parse().unwrap();
        assert_eq!(p, NavPath::root().index(-1));
        // Keys containing `]` and escapes.
        let p: NavPath = r#"J["a]b"]["c\"d"]"#.parse().unwrap();
        assert_eq!(p, NavPath::root().key("a]b").key("c\"d"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(r#"J["unclosed"#.parse::<NavPath>().is_err());
        assert!(r#"J[abc]"#.parse::<NavPath>().is_err());
        assert!(r#"Jx[0]"#.parse::<NavPath>().is_err());
    }

    #[test]
    fn display_round_trip() {
        let p = NavPath::root().key("a\"b").index(-2).key("c");
        let shown = p.to_string();
        let back: NavPath = shown.parse().unwrap();
        assert_eq!(p, back);
    }
}
