//! Property tests pinning down that key interning is semantically
//! invisible: symbol-sorted CSR storage, `Sym`-probe lookups and
//! symbol-keyed canonical signatures must change *nothing* observable
//! about values, trees, or canonical classes.

use json_foundations::prelude::*;
use jsondata::gen::{self, GenConfig};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// An arbitrary document in the paper's fragment (bounded size), drawing
/// keys from a small pool so that objects share vocabulary.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        (0u64..40).prop_map(Json::Num),
        "[a-e]{0,3}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Array),
            prop::collection::btree_map("[a-f]{1,2}", inner, 0..5).prop_map(|m| {
                Json::object(m.into_iter().collect()).expect("btree keys are distinct")
            }),
        ]
    })
}

fn hash_of(j: &Json) -> u64 {
    let mut h = DefaultHasher::new();
    j.hash(&mut h);
    h.finish()
}

/// A permutation of an object's pairs driven by a seed.
fn permute(doc: &Json, seed: usize) -> Json {
    match doc {
        Json::Object(o) => {
            let mut pairs: Vec<(String, Json)> = o
                .iter()
                .map(|(k, v)| (k.to_owned(), permute(v, seed.wrapping_add(k.len()))))
                .collect();
            if pairs.len() > 1 {
                let k = seed % pairs.len();
                pairs.rotate_left(k);
            }
            Json::object(pairs).expect("permutation keeps keys distinct")
        }
        Json::Array(items) => Json::Array(items.iter().map(|v| permute(v, seed)).collect()),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Unordered object equality and hashing are untouched by interning:
    // reordering object members changes neither equality nor the hash, and
    // the trees built from both orderings are canonically identical.
    #[test]
    fn unordered_equality_and_hash_survive_interning(doc in arb_json(), seed in 0usize..7) {
        let shuffled = permute(&doc, seed);
        prop_assert_eq!(&doc, &shuffled);
        prop_assert_eq!(hash_of(&doc), hash_of(&shuffled));
        let (ta, tb) = (JsonTree::build(&doc), JsonTree::build(&shuffled));
        prop_assert_eq!(ta.to_json(), tb.to_json());
        let (ca, cb) = (CanonTable::build(&ta), CanonTable::build(&tb));
        prop_assert_eq!(
            ca.class_of_json(&ta, &shuffled).is_some(),
            cb.class_of_json(&tb, &doc).is_some()
        );
        prop_assert_eq!(ca.class_of_json(&ta, &doc), Some(ca.class_of(ta.root())));
    }

    // child_by_key (interner probe + Sym binary search) agrees with a naive
    // scan over resolved key strings at every object node.
    #[test]
    fn child_by_key_agrees_with_naive_scan(doc in arb_json()) {
        let tree = JsonTree::build(&doc);
        for n in tree.node_ids() {
            let entries: Vec<(String, NodeId)> =
                tree.obj_children(n).map(|(k, c)| (k.to_owned(), c)).collect();
            // Every present key is found...
            for (k, c) in &entries {
                prop_assert_eq!(tree.child_by_key(n, k), Some(*c));
                let sym = tree.sym(k).expect("present keys are interned");
                prop_assert_eq!(tree.child_by_sym(n, sym), Some(*c));
            }
            // ...and probe misses / foreign keys answer None.
            for probe in ["zz-absent", "", "k0"] {
                let naive = entries.iter().find(|(k, _)| k == probe).map(|(_, c)| *c);
                prop_assert_eq!(tree.child_by_key(n, probe), naive);
            }
        }
    }

    // The canonical partition equals structural subtree equality — the
    // defining property the Sig change must preserve.
    #[test]
    fn canon_classes_characterise_structural_equality(doc in arb_json()) {
        let tree = JsonTree::build(&doc);
        let canon = CanonTable::build(&tree);
        let n = tree.node_count();
        for i in (0..n).step_by(3) {
            for j in (0..n).step_by(4) {
                let (a, b) = (NodeId::from_index(i), NodeId::from_index(j));
                prop_assert_eq!(
                    canon.equal(a, b),
                    tree.json_at(a) == tree.json_at(b),
                    "classes must track equality at {:?},{:?}", a, b
                );
            }
        }
    }

    // Every edge and string atom resolves through the interner and back.
    #[test]
    fn symbols_round_trip_through_the_interner(doc in arb_json()) {
        let tree = JsonTree::build(&doc);
        for n in tree.node_ids() {
            if let Some(sym) = tree.incoming_key_sym(n) {
                let key = tree.resolve(sym).to_owned();
                prop_assert_eq!(tree.sym(&key), Some(sym));
                match tree.edge_from_parent(n) {
                    Some(jsondata::EdgeLabel::Key(k)) => prop_assert_eq!(k, key),
                    other => return Err(TestCaseError(format!("expected key edge, got {other:?}"))),
                }
            }
            if let Some(sym) = tree.str_sym(n) {
                prop_assert_eq!(tree.str_value(n), Some(tree.resolve(sym)));
            }
        }
    }
}

/// Interning must be invisible on the generator corpus too (bigger docs,
/// shared key pools — the shape the benches measure).
#[test]
fn generated_corpus_round_trips_and_looks_up() {
    for seed in 0..20u64 {
        let doc = gen::random_json(&GenConfig::sized(seed, 600));
        let tree = JsonTree::build(&doc);
        assert_eq!(tree.to_json(), doc, "seed {seed}");
        // Interner size is bounded by the distinct keys + atoms, far below
        // node count for pool-driven generation.
        assert!(tree.interner().len() <= tree.node_count());
        for n in tree.node_ids() {
            for (k, c) in tree.obj_children(n) {
                assert_eq!(tree.child_by_key(n, k), Some(c));
            }
            assert_eq!(tree.child_by_key(n, "never-generated-key"), None);
        }
    }
}

/// The documented contract: a key the tree never interned misses in O(1)
/// and can never address a child.
#[test]
fn uninterned_keys_always_miss() {
    let doc = jsondata::parse(r#"{"a": {"b": 1}, "c": [2, 3]}"#).unwrap();
    let tree = JsonTree::build(&doc);
    assert_eq!(tree.sym("d"), None);
    for n in tree.node_ids() {
        assert_eq!(tree.child_by_key(n, "d"), None);
    }
    // "b" is interned but only addresses a child under the right node.
    let a = tree.child_by_key(tree.root(), "a").unwrap();
    assert!(tree.child_by_key(a, "b").is_some());
    assert_eq!(tree.child_by_key(tree.root(), "b"), None);
}
