//! The **string-keyed** deterministic-JNL tableau, frozen as a
//! differential oracle.
//!
//! This is the pre-interning implementation of the Proposition 2 solver:
//! pattern-tree nodes key their children and forbidden-key sets by owned
//! `String`s, and every branch point clones those strings along with the
//! state. The production solver in [`super::det`] re-keys the same tableau
//! by [`jsondata::Sym`] on a query-owned interner; this module is kept
//! byte-for-byte at the algorithm level so the two can be compared on
//! **verdicts and witness validity** over seeded formula sweeps (the
//! `sat_parity` property suite, and `harness s8` / `BENCH_sat.json`).
//!
//! Do not extend this module: new solver work goes into [`super::det`],
//! and this oracle only changes when the shared algorithm does.

use std::collections::{BTreeMap, BTreeSet};

use jsondata::{Json, JsonTree, NodeKind};

use crate::ast::{Binary, Unary};
use crate::sat::SatResult;

/// Budget on explored branches; exceeding it yields `Unknown`.
const DEFAULT_BRANCH_BUDGET: usize = 200_000;

/// Checks satisfiability of a deterministic JNL formula through the
/// frozen string-keyed tableau (the differential oracle; production code
/// should call [`super::det::sat_deterministic`]).
pub fn sat_deterministic_strings(phi: &Unary) -> SatResult {
    sat_deterministic_strings_with_budget(phi, DEFAULT_BRANCH_BUDGET)
}

/// As [`sat_deterministic_strings`] with an explicit branch budget.
pub fn sat_deterministic_strings_with_budget(phi: &Unary, budget: usize) -> SatResult {
    let frag = phi.fragment();
    if !frag.is_deterministic() {
        return SatResult::Unknown(
            "formula is outside the deterministic fragment; use the JSL-based procedures"
                .to_owned(),
        );
    }
    // The Proposition 2 rank preprocessing is needed only when binary-coded
    // indices would force super-polynomial witnesses. It rewrites the
    // formula, so it is applied only where that is satisfiability-preserving:
    // equality operators embed concrete documents whose array positions
    // would fall out of sync with the ranked indices.
    const RANK_THRESHOLD: u64 = 4096;
    let mut indices = BTreeSet::new();
    collect_indices_u(phi, &mut indices);
    let needs_ranking = indices.last().is_some_and(|&m| m > RANK_THRESHOLD);
    let ranked;
    let phi: &Unary = if needs_ranking {
        if uses_equality(phi) {
            return SatResult::Unknown(
                "indices above the ranking threshold combined with EQ operators".to_owned(),
            );
        }
        ranked = rank_preprocess(phi);
        &ranked
    } else {
        phi
    };
    let mut solver = Solver {
        budget,
        exhausted: false,
        original: phi,
    };
    let mut state = State::new();
    let root = state.fresh_node();
    let nnf = nnf(phi, false);
    match solver.search(state, root, vec![(root, nnf)]) {
        Some(witness) => SatResult::Sat(witness),
        None if solver.exhausted => SatResult::Unknown("branch budget exhausted".to_owned()),
        None => SatResult::Unsat,
    }
}

// ---------------------------------------------------------------------
// Preprocessing
// ---------------------------------------------------------------------

/// Replaces array indices by their ranks, level by level, as in the
/// Proposition 2 proof: the witness sizes then stay polynomial even when
/// indices are written in binary. Only non-negative indices are rewritten;
/// formulas are otherwise preserved.
fn rank_preprocess(phi: &Unary) -> Unary {
    // Collect all non-negative indices used anywhere, rank them globally
    // (a finer per-level ranking is possible but not necessary for
    // correctness: the global ranking also preserves order).
    let mut indices: BTreeSet<u64> = BTreeSet::new();
    collect_indices_u(phi, &mut indices);
    let rank: BTreeMap<u64, u64> = indices
        .iter()
        .enumerate()
        .map(|(r, &i)| (i, r as u64))
        .collect();
    map_indices_u(phi, &rank)
}

/// Whether the formula uses `EQ(α, A)` or `EQ(α, β)` anywhere.
fn uses_equality(phi: &Unary) -> bool {
    match phi {
        Unary::True => false,
        Unary::Not(p) => uses_equality(p),
        Unary::And(ps) | Unary::Or(ps) => ps.iter().any(uses_equality),
        Unary::Exists(a) => uses_equality_b(a),
        Unary::EqDoc(_, _) | Unary::EqPair(_, _) => true,
    }
}

fn uses_equality_b(alpha: &Binary) -> bool {
    match alpha {
        Binary::Test(p) => uses_equality(p),
        Binary::Compose(ps) => ps.iter().any(uses_equality_b),
        Binary::Star(a) => uses_equality_b(a),
        _ => false,
    }
}

fn collect_indices_u(phi: &Unary, out: &mut BTreeSet<u64>) {
    match phi {
        Unary::True => {}
        Unary::Not(p) => collect_indices_u(p, out),
        Unary::And(ps) | Unary::Or(ps) => ps.iter().for_each(|p| collect_indices_u(p, out)),
        Unary::Exists(a) => collect_indices_b(a, out),
        Unary::EqDoc(a, _) => collect_indices_b(a, out),
        Unary::EqPair(a, b) => {
            collect_indices_b(a, out);
            collect_indices_b(b, out);
        }
    }
}

fn collect_indices_b(alpha: &Binary, out: &mut BTreeSet<u64>) {
    match alpha {
        Binary::Index(i) if *i >= 0 => {
            out.insert(*i as u64);
        }
        Binary::Test(p) => collect_indices_u(p, out),
        Binary::Compose(ps) => ps.iter().for_each(|p| collect_indices_b(p, out)),
        Binary::Star(a) => collect_indices_b(a, out),
        _ => {}
    }
}

fn map_indices_u(phi: &Unary, rank: &BTreeMap<u64, u64>) -> Unary {
    match phi {
        Unary::True => Unary::True,
        Unary::Not(p) => Unary::Not(Box::new(map_indices_u(p, rank))),
        Unary::And(ps) => Unary::And(ps.iter().map(|p| map_indices_u(p, rank)).collect()),
        Unary::Or(ps) => Unary::Or(ps.iter().map(|p| map_indices_u(p, rank)).collect()),
        Unary::Exists(a) => Unary::Exists(Box::new(map_indices_b(a, rank))),
        Unary::EqDoc(a, d) => Unary::EqDoc(Box::new(map_indices_b(a, rank)), d.clone()),
        Unary::EqPair(a, b) => Unary::EqPair(
            Box::new(map_indices_b(a, rank)),
            Box::new(map_indices_b(b, rank)),
        ),
    }
}

fn map_indices_b(alpha: &Binary, rank: &BTreeMap<u64, u64>) -> Binary {
    match alpha {
        Binary::Index(i) if *i >= 0 => Binary::Index(rank[&(*i as u64)] as i64),
        Binary::Test(p) => Binary::Test(Box::new(map_indices_u(p, rank))),
        Binary::Compose(ps) => Binary::Compose(ps.iter().map(|p| map_indices_b(p, rank)).collect()),
        Binary::Star(a) => Binary::Star(Box::new(map_indices_b(a, rank))),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// NNF
// ---------------------------------------------------------------------

/// Negation normal form: `Not` only wraps `True`, `Exists`, `EqDoc`,
/// `EqPair`.
fn nnf(phi: &Unary, negated: bool) -> Unary {
    match (phi, negated) {
        (Unary::True, false) => Unary::True,
        (Unary::True, true) => Unary::Not(Box::new(Unary::True)),
        (Unary::Not(p), _) => nnf(p, !negated),
        (Unary::And(ps), false) => Unary::And(ps.iter().map(|p| nnf(p, false)).collect()),
        (Unary::And(ps), true) => Unary::Or(ps.iter().map(|p| nnf(p, true)).collect()),
        (Unary::Or(ps), false) => Unary::Or(ps.iter().map(|p| nnf(p, false)).collect()),
        (Unary::Or(ps), true) => Unary::And(ps.iter().map(|p| nnf(p, true)).collect()),
        (leaf, false) => leaf.clone(),
        (leaf, true) => Unary::Not(Box::new(leaf.clone())),
    }
}

// ---------------------------------------------------------------------
// Pattern tree
// ---------------------------------------------------------------------

type PId = usize;

#[derive(Debug, Clone, Default)]
struct PNode {
    /// Union-find parent (self when representative).
    uf: PId,
    kind: Option<NodeKind>,
    kind_not: BTreeSet<u8>, // NodeKind encoded (0..4)
    keys: BTreeMap<String, PId>,
    idxs: BTreeMap<u64, PId>,
    str_val: Option<String>,
    num_val: Option<u64>,
    /// Subtree must equal exactly this document.
    exact: Option<Json>,
    /// Subtree must differ from each of these documents.
    not_exact: Vec<Json>,
    /// Keys that must not exist (failure points of `¬[α]`).
    forbidden_keys: BTreeSet<String>,
    /// If an array, its length must be < this bound.
    max_len: Option<u64>,
    /// Nodes whose subtrees must differ from this one (`¬EQ(α, β)`).
    diseq: Vec<PId>,
}

fn kind_code(k: NodeKind) -> u8 {
    match k {
        NodeKind::Obj => 0,
        NodeKind::Arr => 1,
        NodeKind::Str => 2,
        NodeKind::Int => 3,
    }
}

#[derive(Debug, Clone, Default)]
struct State {
    nodes: Vec<PNode>,
    /// Concretisation re-entrancy guard (see the occurs check).
    visiting: Vec<PId>,
}

impl State {
    fn new() -> State {
        State::default()
    }

    fn fresh_node(&mut self) -> PId {
        let id = self.nodes.len();
        self.nodes.push(PNode {
            uf: id,
            ..PNode::default()
        });
        id
    }

    /// Union-find representative (no path compression: chains stay short
    /// because states are formula-sized, and `&self` keeps call sites
    /// borrow-friendly).
    fn find(&self, mut x: PId) -> PId {
        while self.nodes[x].uf != x {
            x = self.nodes[x].uf;
        }
        x
    }

    /// Mutable access to the representative node of `x`.
    fn node_mut(&mut self, x: PId) -> &mut PNode {
        let r = self.find(x);
        &mut self.nodes[r]
    }

    /// Sets or checks the kind of a node class; `false` = conflict.
    fn set_kind(&mut self, x: PId, k: NodeKind) -> bool {
        let x = self.find(x);
        let node = &mut self.nodes[x];
        if node.kind_not.contains(&kind_code(k)) {
            return false;
        }
        match node.kind {
            None => {
                node.kind = Some(k);
                true
            }
            Some(existing) => existing == k,
        }
    }

    fn exclude_kind(&mut self, x: PId, k: NodeKind) -> bool {
        let x = self.find(x);
        let node = &mut self.nodes[x];
        if node.kind == Some(k) {
            return false;
        }
        node.kind_not.insert(kind_code(k));
        // All four kinds excluded = no model for this node.
        node.kind_not.len() < 4
    }

    /// Child of `x` under key `w`, materialising it if needed.
    fn key_child(&mut self, x: PId, w: &str) -> Option<PId> {
        let x = self.find(x);
        if !self.set_kind(x, NodeKind::Obj) {
            return None;
        }
        if self.nodes[x].forbidden_keys.contains(w) {
            return None;
        }
        if let Some(&c) = self.nodes[x].keys.get(w) {
            return Some(c);
        }
        // A closed (exact-bound) object admits only the document's keys.
        if let Some(doc) = self.nodes[x].exact.clone() {
            let sub = doc.get(w)?.clone();
            let c = self.fresh_node();
            self.node_mut(x).keys.insert(w.to_owned(), c);
            if !self.impose_exact(c, &sub) {
                return None;
            }
            return Some(c);
        }
        let c = self.fresh_node();
        self.node_mut(x).keys.insert(w.to_owned(), c);
        Some(c)
    }

    /// Child of `x` at index `i`, materialising it if needed.
    fn idx_child(&mut self, x: PId, i: u64) -> Option<PId> {
        let x = self.find(x);
        if !self.set_kind(x, NodeKind::Arr) {
            return None;
        }
        if let Some(ml) = self.nodes[x].max_len {
            if i >= ml {
                return None;
            }
        }
        if let Some(&c) = self.nodes[x].idxs.get(&i) {
            return Some(c);
        }
        if let Some(doc) = self.nodes[x].exact.clone() {
            let sub = doc.index(i as usize)?.clone();
            let c = self.fresh_node();
            self.node_mut(x).idxs.insert(i, c);
            if !self.impose_exact(c, &sub) {
                return None;
            }
            return Some(c);
        }
        let c = self.fresh_node();
        self.node_mut(x).idxs.insert(i, c);
        Some(c)
    }

    /// Binds `x`'s subtree to exactly `doc`; `false` on conflict.
    fn impose_exact(&mut self, x: PId, doc: &Json) -> bool {
        let x = self.find(x);
        if let Some(existing) = self.nodes[x].exact.clone() {
            return existing == *doc;
        }
        if self.nodes[x].not_exact.iter().any(|d| d == doc) {
            return false;
        }
        let kind = match doc {
            Json::Object(_) => NodeKind::Obj,
            Json::Array(_) => NodeKind::Arr,
            Json::Str(_) => NodeKind::Str,
            Json::Num(_) => NodeKind::Int,
        };
        if !self.set_kind(x, kind) {
            return false;
        }
        match doc {
            Json::Str(s) => {
                let node = &mut self.node_mut(x);
                if let Some(v) = &node.str_val {
                    if v != s {
                        return false;
                    }
                }
                node.str_val = Some(s.clone());
            }
            Json::Num(v) => {
                let node = &mut self.node_mut(x);
                if let Some(existing) = node.num_val {
                    if existing != *v {
                        return false;
                    }
                }
                node.num_val = Some(*v);
            }
            Json::Object(o) => {
                // Existing materialised children must be covered by doc.
                let existing: Vec<(String, PId)> = {
                    let node = &self.node_mut(x);
                    node.keys.iter().map(|(k, &c)| (k.clone(), c)).collect()
                };
                for (k, c) in existing {
                    let Some(sub) = o.get(&k) else { return false };
                    if !self.impose_exact(c, &sub.clone()) {
                        return false;
                    }
                }
                // Forbidden keys must not occur in doc.
                let forb = self.node_mut(x).forbidden_keys.clone();
                if forb.iter().any(|k| o.get(k).is_some()) {
                    return false;
                }
            }
            Json::Array(items) => {
                if let Some(ml) = self.node_mut(x).max_len {
                    if items.len() as u64 > ml.saturating_sub(0) && items.len() as u64 >= ml {
                        return false;
                    }
                }
                let existing: Vec<(u64, PId)> = {
                    let node = &self.node_mut(x);
                    node.idxs.iter().map(|(&i, &c)| (i, c)).collect()
                };
                for (i, c) in existing {
                    let Some(sub) = items.get(i as usize) else {
                        return false;
                    };
                    if !self.impose_exact(c, &sub.clone()) {
                        return false;
                    }
                }
            }
        }
        self.node_mut(x).exact = Some(doc.clone());
        true
    }

    /// Whether `target` occurs in the pattern subtree rooted at `from`
    /// (by representatives).
    fn reaches(&self, from: PId, target: PId) -> bool {
        let target = self.find(target);
        let mut visited: BTreeSet<PId> = BTreeSet::new();
        let mut stack = vec![self.find(from)];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if !visited.insert(n) {
                continue;
            }
            let node = &self.nodes[n];
            stack.extend(node.keys.values().map(|&c| self.find(c)));
            stack.extend(node.idxs.values().map(|&c| self.find(c)));
        }
        false
    }

    /// Identifies the subtrees at `x` and `y` (`EQ(α, β)`); `false` on
    /// conflict.
    fn merge(&mut self, x: PId, y: PId) -> bool {
        let (x, y) = (self.find(x), self.find(y));
        if x == y {
            return true;
        }
        // Occurs check: identifying a node with a strict descendant (or
        // ancestor) would force an infinite tree — unsatisfiable over
        // finite JSON documents, and divergent for the unifier.
        if self.reaches(x, y) || self.reaches(y, x) {
            return false;
        }
        // Merge y into x.
        let ynode = std::mem::take(&mut self.nodes[y]);
        self.nodes[y].uf = x;
        if let Some(k) = ynode.kind {
            if !self.set_kind(x, k) {
                return false;
            }
        }
        for kc in ynode.kind_not {
            let node = &mut self.node_mut(x);
            if node.kind.map(kind_code) == Some(kc) {
                return false;
            }
            node.kind_not.insert(kc);
        }
        if let Some(s) = ynode.str_val {
            let node = &mut self.node_mut(x);
            match &node.str_val {
                Some(v) if *v != s => return false,
                _ => node.str_val = Some(s),
            }
        }
        if let Some(v) = ynode.num_val {
            let node = &mut self.node_mut(x);
            match node.num_val {
                Some(e) if e != v => return false,
                _ => node.num_val = Some(v),
            }
        }
        for k in ynode.forbidden_keys {
            if self.node_mut(x).keys.contains_key(&k) {
                return false;
            }
            self.node_mut(x).forbidden_keys.insert(k);
        }
        if let Some(ml) = ynode.max_len {
            let node = &mut self.node_mut(x);
            node.max_len = Some(node.max_len.map_or(ml, |m| m.min(ml)));
        }
        self.node_mut(x).not_exact.extend(ynode.not_exact);
        self.node_mut(x).diseq.extend(ynode.diseq.iter().copied());
        // Children merge recursively.
        for (k, yc) in ynode.keys {
            match self.key_child(x, &k) {
                Some(xc) => {
                    if !self.merge(xc, yc) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        for (i, yc) in ynode.idxs {
            match self.idx_child(x, i) {
                Some(xc) => {
                    if !self.merge(xc, yc) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if let Some(doc) = ynode.exact {
            if !self.impose_exact(x, &doc) {
                return false;
            }
        }
        true
    }

    /// Concretises the pattern tree at `root` into a JSON document. Free
    /// leaves get globally-unique fresh strings so that disequalities
    /// resolve themselves wherever possible.
    fn concretize(
        &mut self,
        root: PId,
        fresh: &mut u64,
        memo: &mut BTreeMap<PId, Json>,
    ) -> Option<Json> {
        let x = self.find(root);
        // Memoise per representative: `EQ(α, β)`-merged nodes must
        // concretise to identical documents (fresh leaves included).
        if let Some(done) = memo.get(&x) {
            return Some(done.clone());
        }
        // Occurs check: `EQ(α, β)` can merge a node with its own
        // descendant; no finite tree equals a strict subtree of itself, so
        // such a branch is unsatisfiable.
        if self.visiting.contains(&x) {
            return None;
        }
        self.visiting.push(x);
        let out = self.concretize_inner(x, fresh, memo);
        self.visiting.pop();
        out
    }

    fn concretize_inner(
        &mut self,
        x: PId,
        fresh: &mut u64,
        memo: &mut BTreeMap<PId, Json>,
    ) -> Option<Json> {
        if let Some(doc) = self.nodes[x].exact.clone() {
            memo.insert(x, doc.clone());
            return Some(doc);
        }
        let kind = self.nodes[x].kind.or_else(|| {
            // Default: infer from children, else a fresh string leaf.
            let node = &self.nodes[x];
            if !node.keys.is_empty() {
                Some(NodeKind::Obj)
            } else if !node.idxs.is_empty() || node.max_len.is_some() {
                Some(NodeKind::Arr)
            } else if node.num_val.is_some() {
                Some(NodeKind::Int)
            } else {
                // Respect kind exclusions when defaulting.
                [NodeKind::Str, NodeKind::Int, NodeKind::Obj, NodeKind::Arr]
                    .into_iter()
                    .find(|k| !node.kind_not.contains(&kind_code(*k)))
            }
        })?;
        let result = match kind {
            NodeKind::Str => {
                let v = self.nodes[x].str_val.clone().unwrap_or_else(|| {
                    *fresh += 1;
                    format!("#fresh{}", *fresh)
                });
                Json::Str(v)
            }
            NodeKind::Int => Json::Num(self.nodes[x].num_val.unwrap_or(0)),
            NodeKind::Obj => {
                let entries: Vec<(String, PId)> = self.nodes[x]
                    .keys
                    .iter()
                    .map(|(k, &c)| (k.clone(), c))
                    .collect();
                let mut pairs = Vec::with_capacity(entries.len());
                for (k, c) in entries {
                    pairs.push((k, self.concretize(c, fresh, memo)?));
                }
                Json::object(pairs).ok()?
            }
            NodeKind::Arr => {
                let idxs: Vec<(u64, PId)> =
                    self.nodes[x].idxs.iter().map(|(&i, &c)| (i, c)).collect();
                let len = idxs.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
                if let Some(ml) = self.nodes[x].max_len {
                    if len > ml {
                        return None;
                    }
                }
                let mut items: Vec<Json> = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    *fresh += 1;
                    items.push(Json::Str(format!("#fresh{}", *fresh)));
                }
                for (i, c) in idxs {
                    items[i as usize] = self.concretize(c, fresh, memo)?;
                }
                Json::Array(items)
            }
        };
        memo.insert(x, result.clone());
        Some(result)
    }
}

// ---------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------

struct Solver<'a> {
    budget: usize,
    exhausted: bool,
    original: &'a Unary,
}

/// A pending obligation: formula `φ` must hold at pattern node `x`.
type Obligation = (PId, Unary);

impl<'a> Solver<'a> {
    /// The complete search: processes obligations, branching as needed.
    /// Non-branching obligations are consumed iteratively so that recursion
    /// depth is bounded by the *branching* nesting only (deep conjunctive
    /// chains must not grow the call stack).
    fn search(&mut self, state: State, root: PId, obligations: Vec<Obligation>) -> Option<Json> {
        let mut state = state;
        let mut obligations = obligations;
        loop {
            if self.budget == 0 {
                self.exhausted = true;
                return None;
            }
            self.budget -= 1;

            // Pop the next obligation; if none remain, close the state.
            let Some((x, phi)) = obligations.pop() else {
                return self.try_close(&state);
            };

            match phi {
                Unary::True => continue,
                Unary::And(ps) => {
                    for p in ps {
                        obligations.push((x, p));
                    }
                    continue;
                }
                Unary::Or(ps) => {
                    // If some branch is already entailed by the current
                    // state, the disjunction is settled — drop it instead of
                    // multiplying the search (this is what keeps UNSAT 3SAT
                    // instances at 2^vars instead of 3^clauses).
                    if ps.iter().any(|p| entailed(&state, x, p)) {
                        continue;
                    }
                    for p in ps {
                        let mut obs = obligations.clone();
                        obs.push((x, p));
                        if let Some(w) = self.search(state.clone(), root, obs) {
                            return Some(w);
                        }
                        if self.exhausted {
                            return None;
                        }
                    }
                    return None;
                }
                Unary::Exists(alpha) => {
                    // Walk and convert embedded tests into obligations so
                    // their own branching is handled uniformly.
                    match self.walk_ob(&mut state, x, &alpha, &mut obligations) {
                        Some(_) => continue,
                        None => return None,
                    }
                }
                Unary::EqDoc(alpha, doc) => {
                    match self.walk_ob(&mut state, x, &alpha, &mut obligations) {
                        Some(end) if state.impose_exact(end, &doc) => continue,
                        _ => return None,
                    }
                }
                Unary::EqPair(alpha, beta) => {
                    let a = self.walk_ob(&mut state, x, &alpha, &mut obligations)?;
                    let b = self.walk_ob(&mut state, x, &beta, &mut obligations)?;
                    if state.merge(a, b) {
                        continue;
                    }
                    return None;
                }
                Unary::Not(inner) => {
                    return self.search_negation(state, root, obligations, x, *inner)
                }
            }
        }
    }

    /// Handles a negated literal (the branching cases of the search).
    fn search_negation(
        &mut self,
        state: State,
        root: PId,
        obligations: Vec<Obligation>,
        x: PId,
        inner: Unary,
    ) -> Option<Json> {
        match inner {
            Unary::True => None,
            Unary::Exists(alpha) => {
                self.branch_path_failure(state, root, obligations, x, &alpha, None)
            }
            Unary::EqDoc(alpha, doc) => {
                // ¬EQ(α, A): path fails, or end differs from A.
                self.branch_path_failure(
                    state,
                    root,
                    obligations,
                    x,
                    &alpha,
                    Some(NegEnd::NotDoc(doc)),
                )
            }
            Unary::EqPair(alpha, beta) => {
                // ¬EQ(α, β): α fails, or β fails, or both end nodes differ.
                // Case 1: α fails.
                if let Some(w) = self.branch_path_failure(
                    state.clone(),
                    root,
                    obligations.clone(),
                    x,
                    &alpha,
                    None,
                ) {
                    return Some(w);
                }
                if self.exhausted {
                    return None;
                }
                // Case 2: α succeeds, β fails.
                {
                    let mut st = state.clone();
                    let mut obs = obligations.clone();
                    if self.walk_ob(&mut st, x, &alpha, &mut obs).is_some() {
                        if let Some(w) = self.branch_path_failure(st, root, obs, x, &beta, None) {
                            return Some(w);
                        }
                        if self.exhausted {
                            return None;
                        }
                    }
                }
                // Case 3: both succeed, subtrees differ.
                let mut st = state;
                let mut obs = obligations;
                let a = self.walk_ob(&mut st, x, &alpha, &mut obs)?;
                let b = self.walk_ob(&mut st, x, &beta, &mut obs)?;
                let (ra, rb) = (st.find(a), st.find(b));
                if ra == rb {
                    return None;
                }
                st.nodes[ra].diseq.push(rb);
                self.search(st, root, obs)
            }
            // NNF guarantees no other shapes under Not.
            other => {
                let nf = nnf(&Unary::Not(Box::new(other)), false);
                let mut obs = obligations;
                obs.push((x, nf));
                self.search(state, root, obs)
            }
        }
    }

    /// Walks a path converting tests into obligations.
    fn walk_ob(
        &mut self,
        state: &mut State,
        x: PId,
        alpha: &Binary,
        obligations: &mut Vec<Obligation>,
    ) -> Option<PId> {
        let steps = flatten(alpha)?;
        let mut cur = x;
        for s in steps {
            match s {
                FStep::Key(w) => cur = state.key_child(cur, &w)?,
                FStep::Index(i) => cur = state.idx_child(cur, i)?,
                FStep::Test(phi) => obligations.push((cur, nnf(&phi, false))),
            }
        }
        Some(cur)
    }

    /// `¬[α]`-style branching: the path must fail at some position, or (if
    /// `neg_end` is given) succeed with a constrained end.
    fn branch_path_failure(
        &mut self,
        state: State,
        root: PId,
        obligations: Vec<Obligation>,
        x: PId,
        alpha: &Binary,
        neg_end: Option<NegEnd>,
    ) -> Option<Json> {
        let Some(steps) = flatten(alpha) else {
            // Unflattenable (non-deterministic) — cannot happen: fragment
            // checked up front.
            return None;
        };
        // Option A: fail at position p.
        for p in 0..steps.len() {
            let mut st = state.clone();
            let mut obs = obligations.clone();
            // Succeed up to p.
            let mut cur = x;
            let mut ok = true;
            for s in &steps[..p] {
                match s {
                    FStep::Key(w) => match st.key_child(cur, w) {
                        Some(c) => cur = c,
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    FStep::Index(i) => match st.idx_child(cur, *i) {
                        Some(c) => cur = c,
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    FStep::Test(phi) => obs.push((cur, nnf(phi, false))),
                }
            }
            if !ok {
                continue;
            }
            // Fail at step p.
            match &steps[p] {
                FStep::Key(w) => {
                    // (a) not an object
                    {
                        let mut st2 = st.clone();
                        if st2.exclude_kind(cur, NodeKind::Obj) {
                            if let Some(wit) = self.search(st2, root, obs.clone()) {
                                return Some(wit);
                            }
                            if self.exhausted {
                                return None;
                            }
                        }
                    }
                    // (b) object but key absent
                    let mut st2 = st;
                    let rep = st2.find(cur);
                    if st2.nodes[rep].keys.contains_key(w) {
                        continue;
                    }
                    if let Some(doc) = &st2.nodes[rep].exact {
                        if doc.get(w).is_some() {
                            continue;
                        }
                    }
                    st2.nodes[rep].forbidden_keys.insert(w.clone());
                    if let Some(wit) = self.search(st2, root, obs) {
                        return Some(wit);
                    }
                    if self.exhausted {
                        return None;
                    }
                }
                FStep::Index(i) => {
                    // (a) not an array
                    {
                        let mut st2 = st.clone();
                        if st2.exclude_kind(cur, NodeKind::Arr) {
                            if let Some(wit) = self.search(st2, root, obs.clone()) {
                                return Some(wit);
                            }
                            if self.exhausted {
                                return None;
                            }
                        }
                    }
                    // (b) array shorter than i+1
                    let mut st2 = st;
                    let rep = st2.find(cur);
                    let needed = *i + 1;
                    let too_long = st2.nodes[rep].idxs.keys().any(|&k| k >= *i)
                        || st2.nodes[rep]
                            .exact
                            .as_ref()
                            .and_then(|d| d.as_array())
                            .is_some_and(|a| a.len() as u64 >= needed);
                    if too_long {
                        continue;
                    }
                    let node = &mut st2.nodes[rep];
                    node.max_len = Some(node.max_len.map_or(needed - 1, |m| m.min(needed - 1)));
                    if let Some(wit) = self.search(st2, root, obs) {
                        return Some(wit);
                    }
                    if self.exhausted {
                        return None;
                    }
                }
                FStep::Test(phi) => {
                    let mut obs2 = obs.clone();
                    obs2.push((cur, nnf(phi, true)));
                    if let Some(wit) = self.search(st, root, obs2) {
                        return Some(wit);
                    }
                    if self.exhausted {
                        return None;
                    }
                }
            }
        }
        // Option B: path succeeds, end constrained.
        if let Some(NegEnd::NotDoc(doc)) = neg_end {
            let mut st = state;
            let mut obs = obligations;
            if let Some(end) = self.walk_ob(&mut st, x, alpha, &mut obs) {
                let rep = st.find(end);
                if st.nodes[rep].exact.as_ref() == Some(&doc) {
                    return None;
                }
                st.nodes[rep].not_exact.push(doc);
                return self.search(st, root, obs);
            }
        }
        None
    }

    /// Concretises and verifies a saturated state.
    fn try_close(&mut self, state: &State) -> Option<Json> {
        let mut st = state.clone();
        let mut fresh = 0u64;
        let candidate = st.concretize(0, &mut fresh, &mut BTreeMap::new())?;
        // Soundness net: re-verify with the reference evaluator (this also
        // enforces `not_exact` and `diseq`, which concretisation handles
        // only heuristically via fresh leaves).
        let tree = JsonTree::build(&candidate);
        let ok = crate::eval::naive::eval(&tree, self.original)[tree.root().index()];
        ok.then_some(candidate)
    }
}

enum NegEnd {
    NotDoc(Json),
}

/// Conservative entailment: `true` only if `phi` is guaranteed to hold in
/// every concretisation of `state` (peeking at existing structure, never
/// materialising). Used to discharge settled disjunctions.
fn entailed(state: &State, x: PId, phi: &Unary) -> bool {
    match phi {
        Unary::True => true,
        Unary::And(ps) => ps.iter().all(|p| entailed(state, x, p)),
        Unary::Or(ps) => ps.iter().any(|p| entailed(state, x, p)),
        Unary::Exists(alpha) => peek_walk(state, x, alpha).is_some(),
        Unary::EqDoc(alpha, doc) => peek_walk(state, x, alpha)
            .is_some_and(|end| state.nodes[state.find(end)].exact.as_ref() == Some(doc)),
        Unary::EqPair(alpha, beta) => match (peek_walk(state, x, alpha), peek_walk(state, x, beta))
        {
            (Some(a), Some(b)) => state.find(a) == state.find(b),
            _ => false,
        },
        Unary::Not(_) => false,
    }
}

/// Walks a path through *existing* structure only.
fn peek_walk(state: &State, x: PId, alpha: &Binary) -> Option<PId> {
    let steps = flatten(alpha)?;
    let mut cur = state.find(x);
    for s in &steps {
        match s {
            FStep::Key(w) => {
                if state.nodes[cur].kind != Some(NodeKind::Obj) {
                    return None;
                }
                cur = state.find(*state.nodes[cur].keys.get(w)?);
            }
            FStep::Index(i) => {
                if state.nodes[cur].kind != Some(NodeKind::Arr) {
                    return None;
                }
                cur = state.find(*state.nodes[cur].idxs.get(i)?);
            }
            FStep::Test(phi) => {
                if !entailed(state, cur, phi) {
                    return None;
                }
            }
        }
    }
    Some(cur)
}

/// A flattened deterministic path step.
#[derive(Clone)]
enum FStep {
    Key(String),
    Index(u64),
    Test(Unary),
}

/// Flattens a deterministic binary formula; `None` if it uses negative
/// indices or non-deterministic constructs (callers pre-check the fragment,
/// negative indices yield `Unknown` upstream).
fn flatten(alpha: &Binary) -> Option<Vec<FStep>> {
    let mut out = Vec::new();
    fn go(alpha: &Binary, out: &mut Vec<FStep>) -> Option<()> {
        match alpha {
            Binary::Epsilon => Some(()),
            Binary::Key(w) => {
                out.push(FStep::Key(w.clone()));
                Some(())
            }
            Binary::Index(i) if *i >= 0 => {
                out.push(FStep::Index(*i as u64));
                Some(())
            }
            Binary::Index(_) => None,
            Binary::Test(phi) => {
                out.push(FStep::Test((**phi).clone()));
                Some(())
            }
            Binary::Compose(ps) => {
                for p in ps {
                    go(p, out)?;
                }
                Some(())
            }
            Binary::KeyRegex(e) => {
                let w = e.as_single_word()?;
                out.push(FStep::Key(w));
                Some(())
            }
            Binary::Range(i, Some(j)) if i == j => {
                out.push(FStep::Index(*i));
                Some(())
            }
            Binary::Range(_, _) | Binary::Star(_) => None,
        }
    }
    go(alpha, &mut out).map(|()| out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Binary as B, Unary as U};
    use jsondata::parse;

    // Smoke coverage only: the oracle's real exerciser is the string/Sym
    // parity property suite (`tests/sat_parity.rs`) and `harness s8`.
    #[test]
    fn oracle_smoke() {
        let sat = U::exists(B::compose(vec![B::key("a"), B::key("b")]));
        assert!(sat_deterministic_strings(&sat).is_sat());
        let unsat = U::and(vec![
            U::eq_doc(B::key("x"), parse("1").unwrap()),
            U::eq_doc(B::key("x"), parse("2").unwrap()),
        ]);
        assert_eq!(sat_deterministic_strings(&unsat), SatResult::Unsat);
        assert!(matches!(
            sat_deterministic_strings(&U::exists(B::any_key())),
            SatResult::Unknown(_)
        ));
    }
}
