//! # jautomata — J-automata over JSON trees
//!
//! The automaton model of the Proposition 10 proof: alternating automata
//! whose transition rules are positive boolean combinations of node tests,
//! negated node tests, same-node state references (acyclic, mirroring the
//! paper's `Qn` rule-graph restriction) and modal atoms `q∃e`, `q∀e`,
//! `q∃i:j`, `q∀i:j`.
//!
//! Because the rules determine each node's state set *uniquely* from its
//! children (the run labelling of the appendix is an "if and only if"
//! condition), membership is a deterministic bottom-up pass. Complementation
//! dualises the rules in polynomial time, exactly as the appendix remarks.
//! Emptiness goes through the inverse of Lemma 4/5 — a J-automaton *is* a
//! well-formed recursive JSL expression presented state-by-state — and the
//! `jsl` tableau decides it (completely for bounded-height reasoning,
//! `Unknown` past the cap, matching the EXPTIME/2EXPTIME reality of
//! Proposition 10).

use std::collections::HashMap;
use std::fmt;

use jsl::ast::{Jsl, NodeTest};
use jsl::recursive::RecursiveJsl;
use jsl::sat::{sat_recursive, JslSatResult, SatConfig};
use jsondata::{JsonTree, NodeId};
use relex::Regex;

pub mod run;

/// A transition rule: a positive boolean combination over atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Conjunction.
    And(Vec<Rule>),
    /// Disjunction.
    Or(Vec<Rule>),
    /// A node test holds here.
    Test(NodeTest),
    /// A node test fails here (`NodeTests¬` of the appendix).
    NegTest(NodeTest),
    /// Another state holds at the *same* node (must be acyclic).
    State(usize),
    /// `q∃e`: some object child under a key in `L(e)` is labelled `q`.
    ExistsKey(Regex, usize),
    /// `q∀e`: every object child under a key in `L(e)` is labelled `q`.
    ForallKey(Regex, usize),
    /// `q∃i:j`: some array child at a position in `[i,j]` is labelled `q`.
    ExistsRange(u64, Option<u64>, usize),
    /// `q∀i:j`: every array child at a position in `[i,j]` is labelled `q`.
    ForallRange(u64, Option<u64>, usize),
}

/// A J-automaton.
#[derive(Debug, Clone)]
pub struct JAutomaton {
    /// Rules, indexed by state id; `names` documents them.
    pub rules: Vec<Rule>,
    /// Human-readable state names.
    pub names: Vec<String>,
    /// Accepting states (acceptance: some final state labels the root).
    pub finals: Vec<usize>,
}

/// Automaton construction/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomatonError {
    /// Same-node state references form a cycle (violates the appendix's
    /// acyclicity restriction on `Qn` rules).
    SameNodeCycle(Vec<usize>),
    /// A rule references an unknown state.
    UnknownState(usize),
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::SameNodeCycle(c) => {
                write!(f, "same-node state references form a cycle: {c:?}")
            }
            AutomatonError::UnknownState(q) => write!(f, "unknown state {q}"),
        }
    }
}

impl std::error::Error for AutomatonError {}

impl JAutomaton {
    /// Checks the structural restrictions (state ids in range, same-node
    /// reference acyclicity) and returns a topological order of states for
    /// same-node evaluation.
    pub fn validate(&self) -> Result<Vec<usize>, AutomatonError> {
        let n = self.rules.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (q, rule) in self.rules.iter().enumerate() {
            let mut refs = Vec::new();
            same_node_refs(rule, &mut refs);
            for r in &refs {
                if *r >= n {
                    return Err(AutomatonError::UnknownState(*r));
                }
                adj[q].push(*r);
            }
            let mut modal = Vec::new();
            modal_refs(rule, &mut modal);
            for r in modal {
                if r >= n {
                    return Err(AutomatonError::UnknownState(r));
                }
            }
        }
        for f in &self.finals {
            if *f >= n {
                return Err(AutomatonError::UnknownState(*f));
            }
        }
        // Kahn topological sort over "q depends on r" edges.
        let mut indeg = vec![0usize; n];
        for q in 0..n {
            for &r in &adj[q] {
                let _ = r;
                indeg[q] += 0; // placeholder to keep shape clear
            }
        }
        // indegree = number of dependents pointing at me is not what we
        // need; we need deps first: order states so that every same-node
        // reference of q precedes q.
        let mut order = Vec::with_capacity(n);
        let mut mark = vec![0u8; n];
        for start in 0..n {
            if mark[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            mark[start] = 1;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < adj[u].len() {
                    let v = adj[u][*next];
                    *next += 1;
                    match mark[v] {
                        0 => {
                            mark[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => {
                            return Err(AutomatonError::SameNodeCycle(
                                stack.iter().map(|&(s, _)| s).collect(),
                            ))
                        }
                        _ => {}
                    }
                } else {
                    mark[u] = 2;
                    order.push(u);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Deterministic bottom-up membership: does the automaton accept `J`?
    pub fn accepts(&self, tree: &JsonTree) -> Result<bool, AutomatonError> {
        Ok(run::run(self, tree)?.accepting)
    }

    /// Polynomial complementation by rule dualisation (the appendix's
    /// remark). The result accepts exactly the documents this automaton
    /// rejects.
    pub fn complement(&self) -> JAutomaton {
        // Normalise to a single final state first.
        let mut a = self.clone();
        let f = a.rules.len();
        a.rules.push(Rule::Or(
            self.finals.iter().map(|&q| Rule::State(q)).collect(),
        ));
        a.names.push("⋁finals".to_owned());
        a.finals = vec![f];
        // Dualise every rule; state indices keep their meaning ("dual of q").
        let rules = a.rules.iter().map(dualise).collect();
        JAutomaton {
            rules,
            names: a.names.iter().map(|n| format!("¬{n}")).collect(),
            finals: vec![f],
        }
    }

    /// Product automaton accepting the intersection of two languages.
    pub fn intersect(&self, other: &JAutomaton) -> JAutomaton {
        let offset = self.rules.len();
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().map(|r| shift(r, offset)));
        let mut names = self.names.clone();
        names.extend(other.names.iter().map(|n| format!("R·{n}")));
        let f = rules.len();
        rules.push(Rule::And(vec![
            Rule::Or(self.finals.iter().map(|&q| Rule::State(q)).collect()),
            Rule::Or(
                other
                    .finals
                    .iter()
                    .map(|&q| Rule::State(q + offset))
                    .collect(),
            ),
        ]));
        names.push("⋀pair".to_owned());
        JAutomaton {
            rules,
            names,
            finals: vec![f],
        }
    }

    /// Lemma 4/5: compiles a well-formed recursive JSL expression into an
    /// equivalent J-automaton. Each definition yields a positive and (on
    /// demand) a dual state, so rules stay positive.
    pub fn from_recursive_jsl(delta: &RecursiveJsl) -> Result<JAutomaton, String> {
        delta.well_formed().map_err(|e| e.to_string())?;
        let mut b = Builder {
            index: HashMap::new(),
            rules: Vec::new(),
            names: Vec::new(),
        };
        // Allocate states for every (definition, polarity) lazily, then the
        // base expression as the final state.
        let base_rule = b.compile(&delta.base, true);
        let f = b.rules.len();
        b.rules.push(base_rule);
        b.names.push("base".to_owned());
        // Definition rules are filled in by allocation; compile them now.
        let mut pending: Vec<(usize, String, bool)> = b
            .index
            .iter()
            .map(|(&(ref name, pol), &q)| (q, name.clone(), pol))
            .collect();
        let mut done: Vec<bool> = vec![false; b.rules.len()];
        while let Some((q, name, pol)) = pending.pop() {
            if done.get(q).copied().unwrap_or(false) {
                continue;
            }
            let def = delta
                .defs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p.clone())
                .expect("well-formed");
            let before = b.index.clone();
            let rule = b.compile(&def, pol);
            if done.len() < b.rules.len() {
                done.resize(b.rules.len(), false);
            }
            b.rules[q] = rule;
            done[q] = true;
            // Newly allocated states need compiling too.
            for (key, &id) in &b.index {
                if !before.contains_key(key) {
                    pending.push((id, key.0.clone(), key.1));
                }
            }
        }
        Ok(JAutomaton {
            rules: b.rules,
            names: b.names,
            finals: vec![f],
        })
    }

    /// The inverse of Lemma 4/5: presents the automaton as a well-formed
    /// recursive JSL expression (used by [`JAutomaton::is_empty`]).
    pub fn to_recursive_jsl(&self) -> RecursiveJsl {
        let name = |q: usize| format!("q{q}");
        let defs = self
            .rules
            .iter()
            .enumerate()
            .map(|(q, r)| (name(q), rule_to_jsl(r, &name)))
            .collect();
        let base = Jsl::or(self.finals.iter().map(|&q| Jsl::Var(name(q))).collect());
        RecursiveJsl { defs, base }
    }

    /// Emptiness through the recursive-JSL tableau (Proposition 10's
    /// decision problem; `Unknown` when the height cap bites).
    pub fn is_empty(&self, cfg: SatConfig) -> Emptiness {
        match sat_recursive(&self.to_recursive_jsl(), cfg) {
            JslSatResult::Sat(w) => Emptiness::NonEmpty(w),
            JslSatResult::Unsat => Emptiness::Empty,
            JslSatResult::Unknown(r) => Emptiness::Unknown(r),
        }
    }
}

/// Result of an emptiness check.
#[derive(Debug, Clone, PartialEq)]
pub enum Emptiness {
    /// The language is empty.
    Empty,
    /// A member document.
    NonEmpty(jsondata::Json),
    /// Undecided within the configured bounds.
    Unknown(String),
}

fn same_node_refs(rule: &Rule, out: &mut Vec<usize>) {
    match rule {
        Rule::State(q) => out.push(*q),
        Rule::And(rs) | Rule::Or(rs) => rs.iter().for_each(|r| same_node_refs(r, out)),
        _ => {}
    }
}

fn modal_refs(rule: &Rule, out: &mut Vec<usize>) {
    match rule {
        Rule::ExistsKey(_, q)
        | Rule::ForallKey(_, q)
        | Rule::ExistsRange(_, _, q)
        | Rule::ForallRange(_, _, q) => out.push(*q),
        Rule::And(rs) | Rule::Or(rs) => rs.iter().for_each(|r| modal_refs(r, out)),
        _ => {}
    }
}

fn dualise(rule: &Rule) -> Rule {
    match rule {
        Rule::True => Rule::False,
        Rule::False => Rule::True,
        Rule::And(rs) => Rule::Or(rs.iter().map(dualise).collect()),
        Rule::Or(rs) => Rule::And(rs.iter().map(dualise).collect()),
        Rule::Test(t) => Rule::NegTest(t.clone()),
        Rule::NegTest(t) => Rule::Test(t.clone()),
        Rule::State(q) => Rule::State(*q),
        Rule::ExistsKey(e, q) => Rule::ForallKey(e.clone(), *q),
        Rule::ForallKey(e, q) => Rule::ExistsKey(e.clone(), *q),
        Rule::ExistsRange(i, j, q) => Rule::ForallRange(*i, *j, *q),
        Rule::ForallRange(i, j, q) => Rule::ExistsRange(*i, *j, *q),
    }
}

fn shift(rule: &Rule, offset: usize) -> Rule {
    match rule {
        Rule::True => Rule::True,
        Rule::False => Rule::False,
        Rule::And(rs) => Rule::And(rs.iter().map(|r| shift(r, offset)).collect()),
        Rule::Or(rs) => Rule::Or(rs.iter().map(|r| shift(r, offset)).collect()),
        Rule::Test(t) => Rule::Test(t.clone()),
        Rule::NegTest(t) => Rule::NegTest(t.clone()),
        Rule::State(q) => Rule::State(q + offset),
        Rule::ExistsKey(e, q) => Rule::ExistsKey(e.clone(), q + offset),
        Rule::ForallKey(e, q) => Rule::ForallKey(e.clone(), q + offset),
        Rule::ExistsRange(i, j, q) => Rule::ExistsRange(*i, *j, q + offset),
        Rule::ForallRange(i, j, q) => Rule::ForallRange(*i, *j, q + offset),
    }
}

fn rule_to_jsl(rule: &Rule, name: &dyn Fn(usize) -> String) -> Jsl {
    match rule {
        Rule::True => Jsl::True,
        Rule::False => Jsl::falsity(),
        Rule::And(rs) => Jsl::and(rs.iter().map(|r| rule_to_jsl(r, name)).collect()),
        Rule::Or(rs) => Jsl::or(rs.iter().map(|r| rule_to_jsl(r, name)).collect()),
        Rule::Test(t) => Jsl::Test(t.clone()),
        Rule::NegTest(t) => Jsl::not(Jsl::Test(t.clone())),
        Rule::State(q) => Jsl::Var(name(*q)),
        Rule::ExistsKey(e, q) => Jsl::DiamondKey(e.clone(), Box::new(Jsl::Var(name(*q)))),
        Rule::ForallKey(e, q) => Jsl::BoxKey(e.clone(), Box::new(Jsl::Var(name(*q)))),
        Rule::ExistsRange(i, j, q) => Jsl::DiamondRange(*i, *j, Box::new(Jsl::Var(name(*q)))),
        Rule::ForallRange(i, j, q) => Jsl::BoxRange(*i, *j, Box::new(Jsl::Var(name(*q)))),
    }
}

struct Builder {
    /// `(definition name, polarity) → state id`.
    index: HashMap<(String, bool), usize>,
    rules: Vec<Rule>,
    names: Vec<String>,
}

impl Builder {
    fn state_for(&mut self, name: &str, polarity: bool) -> usize {
        if let Some(&q) = self.index.get(&(name.to_owned(), polarity)) {
            return q;
        }
        let q = self.rules.len();
        self.rules.push(Rule::True); // placeholder, filled by the driver
        self.names.push(if polarity {
            name.to_owned()
        } else {
            format!("¬{name}")
        });
        self.index.insert((name.to_owned(), polarity), q);
        q
    }

    /// Compiles a JSL formula into a positive rule; `polarity = false`
    /// compiles the negation.
    fn compile(&mut self, phi: &Jsl, polarity: bool) -> Rule {
        match (phi, polarity) {
            (Jsl::True, true) => Rule::True,
            (Jsl::True, false) => Rule::False,
            (Jsl::Not(p), pol) => self.compile(p, !pol),
            (Jsl::And(ps), true) => Rule::And(ps.iter().map(|p| self.compile(p, true)).collect()),
            (Jsl::And(ps), false) => Rule::Or(ps.iter().map(|p| self.compile(p, false)).collect()),
            (Jsl::Or(ps), true) => Rule::Or(ps.iter().map(|p| self.compile(p, true)).collect()),
            (Jsl::Or(ps), false) => Rule::And(ps.iter().map(|p| self.compile(p, false)).collect()),
            (Jsl::Test(t), true) => Rule::Test(t.clone()),
            (Jsl::Test(t), false) => Rule::NegTest(t.clone()),
            (Jsl::Var(v), pol) => Rule::State(self.state_for(v, pol)),
            (Jsl::DiamondKey(e, p), true) => {
                let q = self.aux(p, true);
                Rule::ExistsKey(e.clone(), q)
            }
            (Jsl::DiamondKey(e, p), false) => {
                let q = self.aux(p, false);
                Rule::ForallKey(e.clone(), q)
            }
            (Jsl::BoxKey(e, p), true) => {
                let q = self.aux(p, true);
                Rule::ForallKey(e.clone(), q)
            }
            (Jsl::BoxKey(e, p), false) => {
                let q = self.aux(p, false);
                Rule::ExistsKey(e.clone(), q)
            }
            (Jsl::DiamondRange(i, j, p), true) => {
                let q = self.aux(p, true);
                Rule::ExistsRange(*i, *j, q)
            }
            (Jsl::DiamondRange(i, j, p), false) => {
                let q = self.aux(p, false);
                Rule::ForallRange(*i, *j, q)
            }
            (Jsl::BoxRange(i, j, p), true) => {
                let q = self.aux(p, true);
                Rule::ForallRange(*i, *j, q)
            }
            (Jsl::BoxRange(i, j, p), false) => {
                let q = self.aux(p, false);
                Rule::ExistsRange(*i, *j, q)
            }
        }
    }

    /// Allocates an auxiliary state for a modal body.
    fn aux(&mut self, phi: &Jsl, polarity: bool) -> usize {
        let rule = self.compile(phi, polarity);
        let q = self.rules.len();
        self.rules.push(rule);
        self.names.push(format!("aux{q}"));
        q
    }
}

/// Convenience: labels each node of a tree with the states that hold there.
pub fn state_labels(
    automaton: &JAutomaton,
    tree: &JsonTree,
) -> Result<Vec<Vec<bool>>, AutomatonError> {
    let r = run::run(automaton, tree)?;
    Ok(r.labels)
}

/// Convenience: the state set at one node.
pub fn states_at(
    automaton: &JAutomaton,
    tree: &JsonTree,
    node: NodeId,
) -> Result<Vec<usize>, AutomatonError> {
    let labels = state_labels(automaton, tree)?;
    Ok((0..automaton.rules.len())
        .filter(|&q| labels[q][node.index()])
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsl::ast::Jsl as J;
    use jsondata::parse;

    fn even_depth() -> RecursiveJsl {
        RecursiveJsl {
            defs: vec![
                ("g1".into(), J::box_any_key(J::Var("g2".into()))),
                (
                    "g2".into(),
                    J::and(vec![
                        J::diamond_any_key(J::True),
                        J::box_any_key(J::Var("g1".into())),
                    ]),
                ),
            ],
            base: J::Var("g1".into()),
        }
    }

    fn docs() -> Vec<jsondata::Json> {
        [
            "{}",
            r#"{"a": {}}"#,
            r#"{"a": {"x": {}}}"#,
            r#"{"a": {"x": {}}, "b": {}}"#,
            r#"{"a": {"x": {"y": {"z": {}}}}}"#,
            r#"[1, 2]"#,
            "5",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect()
    }

    #[test]
    fn lemma45_membership_matches_recursive_jsl() {
        let delta = even_depth();
        let auto = JAutomaton::from_recursive_jsl(&delta).unwrap();
        auto.validate().unwrap();
        for doc in docs() {
            let tree = JsonTree::build(&doc);
            assert_eq!(
                auto.accepts(&tree).unwrap(),
                delta.check_root(&tree),
                "doc {doc}"
            );
        }
    }

    #[test]
    fn complement_flips_membership() {
        let delta = even_depth();
        let auto = JAutomaton::from_recursive_jsl(&delta).unwrap();
        let comp = auto.complement();
        comp.validate().unwrap();
        for doc in docs() {
            let tree = JsonTree::build(&doc);
            assert_eq!(
                auto.accepts(&tree).unwrap(),
                !comp.accepts(&tree).unwrap(),
                "doc {doc}"
            );
        }
    }

    #[test]
    fn intersection_is_conjunction() {
        let delta = even_depth();
        let a = JAutomaton::from_recursive_jsl(&delta).unwrap();
        let b = JAutomaton::from_recursive_jsl(&RecursiveJsl::plain(J::diamond_any_key(J::True)))
            .unwrap();
        let both = a.intersect(&b);
        both.validate().unwrap();
        for doc in docs() {
            let tree = JsonTree::build(&doc);
            assert_eq!(
                both.accepts(&tree).unwrap(),
                a.accepts(&tree).unwrap() && b.accepts(&tree).unwrap(),
                "doc {doc}"
            );
        }
    }

    #[test]
    fn emptiness_with_witness() {
        let delta = even_depth();
        let auto = JAutomaton::from_recursive_jsl(&delta).unwrap();
        match auto.is_empty(SatConfig::default()) {
            Emptiness::NonEmpty(w) => {
                let tree = JsonTree::build(&w);
                assert!(auto.accepts(&tree).unwrap());
            }
            other => panic!("expected NonEmpty, got {other:?}"),
        }
        // Intersecting with its complement is empty.
        let never = auto.intersect(&auto.complement());
        match never.is_empty(SatConfig {
            max_height: Some(6),
            ..Default::default()
        }) {
            Emptiness::Empty | Emptiness::Unknown(_) => {}
            Emptiness::NonEmpty(w) => panic!("L ∩ ¬L gave witness {w}"),
        }
    }

    #[test]
    fn hand_built_automaton() {
        // Accepts arrays whose first element is the number 7.
        let auto = JAutomaton {
            rules: vec![
                Rule::Test(NodeTest::EqDoc(jsondata::Json::Num(7))),
                Rule::And(vec![
                    Rule::Test(NodeTest::Arr),
                    Rule::ExistsRange(0, Some(0), 0),
                ]),
            ],
            names: vec!["is7".into(), "root".into()],
            finals: vec![1],
        };
        auto.validate().unwrap();
        assert!(auto
            .accepts(&JsonTree::build(&parse("[7, 1]").unwrap()))
            .unwrap());
        assert!(!auto
            .accepts(&JsonTree::build(&parse("[1, 7]").unwrap()))
            .unwrap());
        assert!(!auto
            .accepts(&JsonTree::build(&parse("7").unwrap()))
            .unwrap());
    }

    #[test]
    fn same_node_cycles_rejected() {
        let auto = JAutomaton {
            rules: vec![Rule::State(1), Rule::State(0)],
            names: vec!["a".into(), "b".into()],
            finals: vec![0],
        };
        assert!(matches!(
            auto.validate(),
            Err(AutomatonError::SameNodeCycle(_))
        ));
        let auto = JAutomaton {
            rules: vec![Rule::State(7)],
            names: vec!["a".into()],
            finals: vec![0],
        };
        assert!(matches!(
            auto.validate(),
            Err(AutomatonError::UnknownState(7))
        ));
    }

    #[test]
    fn state_labels_expose_runs() {
        let delta = even_depth();
        let auto = JAutomaton::from_recursive_jsl(&delta).unwrap();
        let tree = JsonTree::build(&parse(r#"{"a": {"x": {}}}"#).unwrap());
        let at_root = states_at(&auto, &tree, tree.root()).unwrap();
        assert!(!at_root.is_empty());
    }
}
