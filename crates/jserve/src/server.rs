//! The multi-tenant serving front end.
//!
//! A [`Server`] owns a [`Store`] and an [`Admission`] gate and exposes
//! the query surface as client-visible **verbs** ([`Request`]): `find`,
//! projected find, aggregation, insert, and the `EXPLAIN` /
//! `EXPLAIN ANALYZE` plans. Every request runs on behalf of a
//! registered tenant ([`TenantSpec`]): admission first, then a
//! [`QueryCtx`] carrying the tenant's deadline and budgets plus its
//! shared [`QueryMetrics`] sink, then execution against an immutable
//! [`crate::Snapshot`] acquired once per request.
//!
//! ## Failure envelope
//!
//! [`Server::serve`] returns `Result<Response, QueryError>` and nothing
//! else, ever:
//!
//! - malformed request text → [`QueryError::BadQuery`] (deterministic,
//!   not retryable);
//! - shed by admission → [`QueryError::Overloaded`] (retryable — pair
//!   with [`jguard::retry_with_backoff`]);
//! - deadline/budget trips → the corresponding governance error;
//! - a panic anywhere under the verb → contained at this boundary and
//!   surfaced as [`QueryError::WorkerPanicked`], with the permit
//!   released and the server fully serviceable for the next request
//!   (the `s11` fault-storm gate).

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use jguard::{Fault, QueryCtx, QueryError};
use jsondata::{Json, ParseLimits};
use jtrace::QueryMetrics;
use mongofind::{Collection, Filter, Projection};

use crate::admission::{Admission, AdmissionConfig};
use crate::store::{Snapshot, Store};

/// Per-tenant serving policy. Fields left `None` are unlimited.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name — the routing key of [`Server::serve`].
    pub name: String,
    /// Per-request deadline, applied at admission time.
    pub timeout: Option<Duration>,
    /// Per-request byte budget (materialization charges).
    pub byte_budget: Option<u64>,
    /// Per-request row budget.
    pub row_budget: Option<u64>,
    /// Ingestion limits for this tenant's inserts.
    pub parse_limits: ParseLimits,
    /// Span-ring capacity of the tenant's metrics sink (0 = counters
    /// only, no flight recorder).
    pub span_capacity: usize,
}

impl TenantSpec {
    /// A spec with no limits: counters-plus-spans sink, unlimited
    /// everything, default parse limits.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            timeout: None,
            byte_budget: None,
            row_budget: None,
            parse_limits: ParseLimits::default(),
            span_capacity: 1024,
        }
    }
}

struct Tenant {
    spec: TenantSpec,
    metrics: Arc<QueryMetrics>,
}

/// A client-visible verb. All payloads are *text* — parsing happens
/// inside the serve boundary so malformed input is a typed
/// [`QueryError::BadQuery`], not a caller-side panic.
#[derive(Debug, Clone)]
pub enum Request {
    /// `find(filter)` — matching documents, in document order.
    Find {
        /// Filter text (`{"age": {"$gte": 30}}`).
        filter: String,
    },
    /// `find(filter, projection)`.
    FindProject {
        /// Filter text.
        filter: String,
        /// Projection text (`{"name.first": 1}`).
        projection: String,
    },
    /// `aggregate(pipeline)`.
    Aggregate {
        /// Pipeline text (`[{"$match": …}, …]`).
        pipeline: String,
    },
    /// Appends one document through the tenant's [`ParseLimits`].
    Insert {
        /// Document text.
        doc: String,
    },
    /// `EXPLAIN` of a find — the plan, nothing executed.
    Explain {
        /// Filter text.
        filter: String,
    },
    /// `EXPLAIN ANALYZE` of a find — plan plus actuals (rows, wall
    /// time, counters, span recorded/dropped tallies).
    ExplainAnalyze {
        /// Filter text.
        filter: String,
    },
    /// `EXPLAIN` of a pipeline.
    ExplainPipeline {
        /// Pipeline text.
        pipeline: String,
    },
    /// `EXPLAIN ANALYZE` of a pipeline.
    ExplainAnalyzePipeline {
        /// Pipeline text.
        pipeline: String,
    },
}

/// What a verb returns. Read verbs carry the **epoch** of the snapshot
/// that produced them — the anchor of the `s11` linearizability replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Documents from a `find`/`aggregate`, plus the snapshot epoch.
    Docs {
        /// Epoch of the snapshot the query ran against.
        epoch: u64,
        /// The result documents.
        docs: Vec<Json>,
    },
    /// Outcome of an insert: the epoch it created.
    Inserted {
        /// The new epoch (this insert's position in the commit log).
        epoch: u64,
    },
    /// A rendered `EXPLAIN`/`EXPLAIN ANALYZE` plan.
    Plan {
        /// Epoch of the snapshot the plan describes.
        epoch: u64,
        /// The machine-stable JSON rendering of the plan.
        plan: Json,
    },
}

/// The serving core: store + admission + tenants.
pub struct Server {
    store: Store,
    admission: Admission,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
}

fn bad_query(e: impl std::fmt::Display) -> QueryError {
    QueryError::BadQuery(e.to_string())
}

impl Server {
    /// Wraps a seed collection. The collection's pool configuration
    /// (thread count, dispatch strategy) is inherited by every snapshot.
    pub fn new(coll: Collection, admission: AdmissionConfig) -> Server {
        Server {
            store: Store::new(coll),
            admission: Admission::new(admission),
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// Registers a tenant; `false` (and no change) if the name is taken.
    pub fn register_tenant(&self, spec: TenantSpec) -> bool {
        let metrics = Arc::new(if spec.span_capacity > 0 {
            QueryMetrics::with_spans(spec.span_capacity)
        } else {
            QueryMetrics::new()
        });
        let mut tenants = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if tenants.contains_key(&spec.name) {
            return false;
        }
        tenants.insert(spec.name.clone(), Arc::new(Tenant { spec, metrics }));
        true
    }

    /// The shared metrics sink of a tenant — counters and spans
    /// aggregated across every request the tenant has run.
    pub fn tenant_metrics(&self, name: &str) -> Option<Arc<QueryMetrics>> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|t| Arc::clone(&t.metrics))
    }

    /// The underlying store — snapshots, the commit log, and
    /// [`Store::compact`] for maintenance tasks.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The admission gate in force.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Serves one request on behalf of `tenant`. See the module docs
    /// for the complete failure envelope.
    pub fn serve(&self, tenant: &str, req: &Request) -> Result<Response, QueryError> {
        self.serve_with_fault(tenant, req, Fault::None)
    }

    /// [`Server::serve`] with an injected [`Fault`] planted on the
    /// request's context — the fault-storm entry point of the `s11`
    /// harness and the containment tests. Production callers use
    /// [`Server::serve`] (`Fault::None`).
    pub fn serve_with_fault(
        &self,
        tenant: &str,
        req: &Request,
        fault: Fault,
    ) -> Result<Response, QueryError> {
        let tenant = self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .cloned()
            .ok_or_else(|| bad_query(format!("unknown tenant: {tenant}")))?;
        let deadline = tenant.spec.timeout.map(|t| Instant::now() + t);
        let _permit = self.admission.admit(deadline)?;
        let mut ctx = QueryCtx::new().with_metrics(Arc::clone(&tenant.metrics));
        if let Some(d) = deadline {
            ctx = ctx.with_deadline(d);
        }
        if let Some(b) = tenant.spec.byte_budget {
            ctx = ctx.with_byte_budget(b);
        }
        if let Some(r) = tenant.spec.row_budget {
            ctx = ctx.with_row_budget(r);
        }
        if fault != Fault::None {
            ctx = ctx.with_fault(fault);
        }
        // The panic boundary: a panic anywhere under a verb becomes a
        // typed error with the permit released (Drop) and the snapshot
        // discarded — the server state cannot be poisoned by a request.
        match std::panic::catch_unwind(AssertUnwindSafe(|| self.execute(&tenant, &ctx, req))) {
            Ok(r) => r,
            Err(p) => {
                let payload = jpar::panic_payload(p);
                ctx.record_panic(usize::MAX, &payload);
                Err(QueryError::WorkerPanicked {
                    chunk: 0..0,
                    payload,
                })
            }
        }
    }

    fn execute(
        &self,
        tenant: &Tenant,
        ctx: &QueryCtx,
        req: &Request,
    ) -> Result<Response, QueryError> {
        if let Request::Insert { doc } = req {
            let epoch = self.store.insert_str(doc, tenant.spec.parse_limits)?;
            return Ok(Response::Inserted { epoch });
        }
        let snap: Arc<Snapshot> = self.store.snapshot();
        let coll = snap.collection();
        let epoch = snap.epoch();
        match req {
            Request::Find { filter } => {
                let f = Filter::parse_str(filter).map_err(bad_query)?;
                let docs = coll.find_with_ctx(&f, ctx)?;
                Ok(Response::Docs { epoch, docs })
            }
            Request::FindProject { filter, projection } => {
                let f = Filter::parse_str(filter).map_err(bad_query)?;
                let p = Projection::parse_str(projection).map_err(bad_query)?;
                let docs = coll.find_project_with_ctx(&f, &p, ctx)?;
                Ok(Response::Docs { epoch, docs })
            }
            Request::Aggregate { pipeline } => {
                let p = jagg::Pipeline::parse_str(pipeline).map_err(bad_query)?;
                let docs = jagg::aggregate_with_ctx(coll, &p, ctx)?;
                Ok(Response::Docs { epoch, docs })
            }
            Request::Explain { filter } => {
                let f = Filter::parse_str(filter).map_err(bad_query)?;
                Ok(Response::Plan {
                    epoch,
                    plan: coll.explain(&f).to_json(),
                })
            }
            Request::ExplainAnalyze { filter } => {
                let f = Filter::parse_str(filter).map_err(bad_query)?;
                Ok(Response::Plan {
                    epoch,
                    plan: coll.explain_analyze(&f)?.to_json(),
                })
            }
            Request::ExplainPipeline { pipeline } => {
                let p = jagg::Pipeline::parse_str(pipeline).map_err(bad_query)?;
                Ok(Response::Plan {
                    epoch,
                    plan: jagg::explain(coll, &p).to_json(),
                })
            }
            Request::ExplainAnalyzePipeline { pipeline } => {
                let p = jagg::Pipeline::parse_str(pipeline).map_err(bad_query)?;
                Ok(Response::Plan {
                    epoch,
                    plan: jagg::explain_analyze(coll, &p)?.to_json(),
                })
            }
            Request::Insert { .. } => unreachable!("handled before snapshot acquisition"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;
    use jtrace::Counter;

    fn seed() -> Collection {
        Collection::from_array(
            &parse(
                r#"[
                {"id": 1, "name": {"first": "Sue", "last": "Kim"}, "age": 28},
                {"id": 2, "name": {"first": "John", "last": "Doe"}, "age": 32},
                {"id": 3, "name": {"first": "Ada", "last": "Kim"}, "age": 41}
            ]"#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn server() -> Server {
        let s = Server::new(seed(), AdmissionConfig::default());
        assert!(s.register_tenant(TenantSpec::new("t0")));
        s
    }

    #[test]
    fn verbs_round_trip() {
        let s = server();
        let r = s
            .serve(
                "t0",
                &Request::Find {
                    filter: r#"{"age": {"$gte": 30}}"#.into(),
                },
            )
            .unwrap();
        let Response::Docs { epoch, docs } = r else {
            panic!("find returns docs")
        };
        assert_eq!((epoch, docs.len()), (0, 2));

        let r = s
            .serve(
                "t0",
                &Request::Insert {
                    doc: r#"{"id": 4, "name": {"first": "Bo", "last": "Chen"}, "age": 35}"#.into(),
                },
            )
            .unwrap();
        assert_eq!(r, Response::Inserted { epoch: 1 });

        let r = s
            .serve(
                "t0",
                &Request::Aggregate {
                    pipeline: r#"[{"$match": {"age": {"$gte": 30}}}, {"$count": "n"}]"#.into(),
                },
            )
            .unwrap();
        let Response::Docs { epoch, docs } = r else {
            panic!("aggregate returns docs")
        };
        assert_eq!(epoch, 1);
        assert_eq!(docs[0].to_string(), r#"{"n":3}"#);
    }

    #[test]
    fn explain_verbs_are_client_visible() {
        let s = server();
        for (req, needle) in [
            (
                Request::Explain {
                    filter: r#"{"age": {"$gte": 30}}"#.into(),
                },
                "\"route\"",
            ),
            (
                Request::ExplainAnalyze {
                    filter: r#"{"age": {"$gte": 30}}"#.into(),
                },
                "\"spans\"",
            ),
            (
                Request::ExplainPipeline {
                    pipeline: r#"[{"$match": {"age": {"$gte": 30}}}]"#.into(),
                },
                "\"stages\"",
            ),
            (
                Request::ExplainAnalyzePipeline {
                    pipeline: r#"[{"$match": {"age": {"$gte": 30}}}]"#.into(),
                },
                "\"spans\"",
            ),
        ] {
            let Response::Plan { plan, .. } = s.serve("t0", &req).unwrap() else {
                panic!("explain verbs return plans")
            };
            assert!(plan.to_string().contains(needle), "{req:?}: {plan}");
        }
    }

    #[test]
    fn malformed_text_is_bad_query_never_a_panic() {
        let s = server();
        for req in [
            Request::Find {
                filter: "{not json".into(),
            },
            Request::FindProject {
                filter: r#"{"age": 1}"#.into(),
                projection: "nope".into(),
            },
            Request::Aggregate {
                pipeline: r#"[{"$frobnicate": 1}]"#.into(),
            },
            Request::Explain {
                filter: "{{{{".into(),
            },
        ] {
            let err = s.serve("t0", &req).unwrap_err();
            assert!(matches!(err, QueryError::BadQuery(_)), "{req:?}: {err}");
            assert!(!err.is_retryable());
        }
        let err = s
            .serve(
                "nobody",
                &Request::Find {
                    filter: "{}".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, QueryError::BadQuery(_)));
    }

    #[test]
    fn injected_panic_is_contained_and_server_stays_serviceable() {
        let s = server();
        let req = Request::Find {
            filter: r#"{"age": {"$gte": 0}}"#.into(),
        };
        let err = jguard::with_quiet_panics(|| {
            s.serve_with_fault("t0", &req, Fault::PanicAtPoll(1))
                .unwrap_err()
        });
        assert!(matches!(err, QueryError::WorkerPanicked { .. }), "{err}");
        // The permit was released and the store untouched: the very next
        // request succeeds.
        let r = s.serve("t0", &req).unwrap();
        assert!(matches!(r, Response::Docs { .. }));
        assert_eq!(s.admission().inflight(), 0);
    }

    #[test]
    fn tenant_deadline_and_metrics_ride_every_request() {
        let s = Server::new(seed(), AdmissionConfig::default());
        let mut spec = TenantSpec::new("slow");
        spec.timeout = Some(Duration::from_millis(40));
        assert!(s.register_tenant(spec));
        let req = Request::Find {
            filter: r#"{"age": {"$gte": 0}}"#.into(),
        };
        // A clean request records work against the tenant's shared sink.
        assert!(s.serve("slow", &req).is_ok());
        let m = s.tenant_metrics("slow").unwrap();
        assert!(m.get(Counter::DocsScanned) > 0 || m.get(Counter::SegmentsVisited) > 0);
        // A fault that sleeps past the deadline trips Deadline, not a hang.
        let err = s
            .serve_with_fault("slow", &req, Fault::SleepAtPoll { at: 1, millis: 200 })
            .unwrap_err();
        assert_eq!(err, QueryError::Deadline);
    }
}
