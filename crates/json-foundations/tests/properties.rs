//! Property-based tests over the core invariants, with proptest generators
//! for documents, formulas and schemas.

use jnl::ast::{Binary, Unary};
use json_foundations::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// An arbitrary document in the paper's fragment (bounded size).
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        (0u64..50).prop_map(Json::Num),
        "[a-d]{0,3}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Array),
            prop::collection::btree_map("[a-e]{1,2}", inner, 0..5).prop_map(|m| {
                Json::object(m.into_iter().collect()).expect("btree keys are distinct")
            }),
        ]
    })
}

/// An arbitrary regular expression over a small ascii + greek alphabet
/// (overlapping the key/atom alphabets below, so matches actually occur).
fn arb_regex() -> impl Strategy<Value = relex::Regex> {
    use relex::{CharClass, Regex};
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        "[a-e]{1,2}".prop_map(|s| Regex::literal(&s)),
        "[α-γ]{1,1}".prop_map(|s| Regex::literal(&s)),
        Just(Regex::Class(CharClass::from_ranges([(
            'a' as u32, 'c' as u32
        )]))),
        Just(Regex::Class(CharClass::from_ranges([(
            'α' as u32,
            'ω' as u32
        )]))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(relex::Regex::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(relex::Regex::alt),
            inner.prop_map(|r| relex::Regex::Star(Box::new(r))),
        ]
    })
}

/// An arbitrary document whose keys and string atoms mix ascii and greek —
/// the symbol universe the edge-matching tiers are tested over.
fn arb_json_unicode() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        (0u64..50).prop_map(Json::Num),
        "[a-d]{0,3}".prop_map(Json::Str),
        "[α-δ]{1,2}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Array),
            prop::collection::btree_map("[a-e]{1,2}", inner.clone(), 0..5).prop_map(|m| {
                Json::object(m.into_iter().collect()).expect("btree keys are distinct")
            }),
            prop::collection::btree_map("[α-γ]{1,2}", inner, 0..4).prop_map(|m| {
                Json::object(m.into_iter().collect()).expect("btree keys are distinct")
            }),
        ]
    })
}

/// An arbitrary deterministic JNL formula over a small key space.
fn arb_det_unary() -> impl Strategy<Value = Unary> {
    let path = prop::collection::vec(
        prop_oneof![
            "[a-e]{1,2}".prop_map(Binary::Key),
            (0i64..3).prop_map(Binary::Index),
        ],
        1..4,
    )
    .prop_map(Binary::compose);
    let atom = prop_oneof![
        Just(Unary::True),
        path.clone().prop_map(Unary::exists),
        (path.clone(), 0u64..5).prop_map(|(p, v)| Unary::eq_doc(p, Json::Num(v))),
        (path.clone(), path.clone()).prop_map(|(a, b)| Unary::eq_pair(a, b)),
    ];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Unary::and),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Unary::or),
            inner.prop_map(Unary::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // -------------------------------------------------------------
    // jsondata invariants
    // -------------------------------------------------------------

    #[test]
    fn parse_serialize_round_trip(doc in arb_json()) {
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn pretty_and_compact_agree(doc in arb_json()) {
        let pretty = jsondata::serialize::to_string_pretty(&doc);
        prop_assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn tree_round_trip(doc in arb_json()) {
        let tree = JsonTree::build(&doc);
        prop_assert_eq!(tree.to_json(), doc.clone());
        prop_assert_eq!(tree.node_count(), doc.node_count());
        prop_assert_eq!(tree.height(), doc.height());
    }

    #[test]
    fn canonical_labels_characterise_equality(doc in arb_json()) {
        let tree = JsonTree::build(&doc);
        let canon = CanonTable::build(&tree);
        // Sample node pairs rather than all O(n²).
        let n = tree.node_count();
        for i in (0..n).step_by(3) {
            for j in (0..n).step_by(5) {
                let (a, b) = (NodeId::from_index(i), NodeId::from_index(j));
                prop_assert_eq!(
                    canon.equal(a, b),
                    tree.json_at(a) == tree.json_at(b)
                );
            }
        }
    }

    #[test]
    fn formal_model_always_validates(doc in arb_json()) {
        let formal = jsondata::domain::FormalJson::from_tree(&JsonTree::build(&doc));
        prop_assert!(formal.validate().is_empty());
        prop_assert_eq!(formal.to_json().unwrap(), doc);
    }

    // -------------------------------------------------------------
    // JNL engine agreement (Prop 1 / Prop 3 implementations vs oracle)
    // -------------------------------------------------------------

    #[test]
    fn jnl_engines_agree_with_oracle(doc in arb_json(), phi in arb_det_unary()) {
        let tree = JsonTree::build(&doc);
        let oracle = jnl::eval::naive::eval(&tree, &phi);
        let linear = jnl::eval::linear::eval(&tree, &phi).unwrap();
        prop_assert_eq!(&oracle, &linear, "linear vs oracle for {}", phi);
        let cubic = jnl::eval::cubic::eval(&tree, &phi);
        prop_assert_eq!(&oracle, &cubic, "cubic vs oracle for {}", phi);
        if !phi.fragment().eq_pair {
            let pdl = jnl::eval::pdl::eval(&tree, &phi).unwrap();
            prop_assert_eq!(&oracle, &pdl, "pdl vs oracle for {}", phi);
        }
    }

    // -------------------------------------------------------------
    // Edge-matching tiers: string baseline vs lazy memo vs DFA bitset
    // -------------------------------------------------------------

    #[test]
    fn regex_tiers_three_way_agreement(doc in arb_json_unicode(), e in arb_regex()) {
        let tree = JsonTree::build(&doc);
        // Tier 0 (string baseline): a fresh NFA run per resolved string.
        let compiled = e.compile();
        // Tier 1 (lazy memo): tri-state per-symbol cache.
        let mut memo = relex::KeyMatchMemo::new(e.compile());
        // Tier 2 (DFA bitset): precomputed over the whole symbol table.
        let mut matcher = relex::SymMatcher::compile(&e, tree.interner().iter().map(|(_, s)| s));
        prop_assert!(matcher.is_bitset(), "small regexes must determinise");
        for (sym, s) in tree.interner().iter() {
            let direct = compiled.is_match(s);
            prop_assert_eq!(direct, memo.matches_str(sym.index(), s), "memo on {:?}", s);
            prop_assert_eq!(direct, matcher.matches_sym(sym.index(), || s), "bitset on {:?}", s);
        }
        // And through a whole evaluation: the JSL key modalities and pattern
        // test agree across the bitset and lazy-memo strategies.
        let phi = jsl::Jsl::and(vec![
            jsl::Jsl::DiamondKey(e.clone(), Box::new(jsl::Jsl::True)),
            jsl::Jsl::not(jsl::Jsl::BoxKey(
                e.clone(),
                Box::new(jsl::Jsl::Test(jsl::NodeTest::Pattern(e.clone()))),
            )),
        ]);
        let via_bitset = jsl::eval::evaluate_with(
            &tree,
            &phi,
            jsl::EvalOptions { edge: relex::EdgeStrategy::DfaBitset, ..Default::default() },
        );
        let via_memo = jsl::eval::evaluate_with(
            &tree,
            &phi,
            jsl::EvalOptions { edge: relex::EdgeStrategy::LazyMemo, ..Default::default() },
        );
        prop_assert_eq!(via_bitset, via_memo, "strategies diverge under {}", e);
    }

    #[test]
    fn dfa_too_large_fallback_agrees(doc in arb_json_unicode()) {
        // (a|b)*a(a|b)^12 needs 2^13 DFA states — above MAX_EDGE_DFA_STATES —
        // so the matcher must pick the lazy memo tier and still agree with
        // the string baseline on every interned symbol.
        let e = relex::Regex::parse("(a|b)*a(a|b){12}").unwrap();
        let tree = JsonTree::build(&doc);
        let mut matcher = relex::SymMatcher::compile(&e, tree.interner().iter().map(|(_, s)| s));
        prop_assert!(!matcher.is_bitset(), "blowup regex must fall back");
        let compiled = e.compile();
        for (sym, s) in tree.interner().iter() {
            prop_assert_eq!(
                compiled.is_match(s),
                matcher.matches_sym(sym.index(), || s),
                "fallback on {:?}", s
            );
        }
    }

    // -------------------------------------------------------------
    // Satisfiability soundness (Prop 2)
    // -------------------------------------------------------------

    #[test]
    fn det_sat_witnesses_verify(phi in arb_det_unary()) {
        match jnl::sat_deterministic(&phi) {
            jnl::SatResult::Sat(w) => {
                let tree = JsonTree::build(&w);
                prop_assert!(
                    jnl::eval::check_root(&tree, &phi),
                    "witness {} must satisfy {}", w, phi
                );
            }
            jnl::SatResult::Unsat => {
                // Spot-check soundness: a handful of small random documents
                // must also falsify the formula at the root.
                for seed in 0..5u64 {
                    let doc = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(seed, 40));
                    let tree = JsonTree::build(&doc);
                    prop_assert!(
                        !jnl::eval::check_root(&tree, &phi),
                        "UNSAT but {} satisfies {}", doc, phi
                    );
                }
            }
            jnl::SatResult::Unknown(_) => {}
        }
    }

    // -------------------------------------------------------------
    // Theorem 2: JSL ↔ JNL translations preserve semantics
    // -------------------------------------------------------------

    #[test]
    fn theorem2_translations_preserve_semantics(doc in arb_json(), phi in arb_det_unary()) {
        if phi.fragment().eq_pair {
            return Ok(()); // outside the Theorem 2 fragment
        }
        // Negative indices are outside JSL's reach.
        let tree = JsonTree::build(&doc);
        if let Ok(psi) = jsl::jnl_to_jsl_cps(&phi) {
            {
                let via_jnl = jnl::eval::evaluate(&tree, &phi);
                let via_jsl = jsl::eval::evaluate(&tree, &psi);
                prop_assert_eq!(via_jnl, via_jsl, "{} vs {}", phi, psi);
                // And back again.
                if let Ok(phi2) = jsl::jsl_to_jnl(&strip_tests(&psi)) {
                    let again = jnl::eval::evaluate(&tree, &phi2);
                    let direct = jsl::eval::evaluate(&tree, &strip_tests(&psi));
                    prop_assert_eq!(again, direct);
                }
            }
        } // Err: formula used a construct outside the fragment
    }

    // -------------------------------------------------------------
    // Theorem 1: schema inference output round-trips through JSL
    // -------------------------------------------------------------

    #[test]
    fn theorem1_on_inferred_schemas(docs in prop::collection::vec(arb_json(), 1..4), probe in arb_json()) {
        let schema = json_foundations::schema::infer(&docs);
        let delta = json_foundations::schema::schema_to_jsl(&schema).unwrap();
        // Agreement on both the training documents and an arbitrary probe.
        for d in docs.iter().chain(std::iter::once(&probe)) {
            let via_validator = json_foundations::schema::is_valid(&schema, d).unwrap();
            let via_jsl = delta.check_root(&JsonTree::build(d));
            prop_assert_eq!(via_validator, via_jsl, "doc {}", d);
        }
    }

    // -------------------------------------------------------------
    // Dialects agree with their JNL compilations
    // -------------------------------------------------------------

    #[test]
    fn jsonpath_selection_matches_jnl(doc in arb_json()) {
        let tree = JsonTree::build(&doc);
        for src in ["$..a", "$.*", "$[0:2]", "$..b[*]", "$.a.b"] {
            let p = jsonpath::JsonPath::parse(src).unwrap();
            let mut direct = p.select_nodes(&tree);
            let mut via = p.select_nodes_via_jnl(&tree);
            direct.sort();
            via.sort();
            prop_assert_eq!(direct, via, "path {} on {}", src, doc);
        }
    }
}

/// Replaces node tests other than `∼(A)` by `⊤` so the formula re-enters
/// the `jsl_to_jnl` fragment (used to close the round trip).
fn strip_tests(phi: &jsl::Jsl) -> jsl::Jsl {
    use jsl::{Jsl, NodeTest};
    match phi {
        Jsl::Test(NodeTest::EqDoc(_)) | Jsl::True | Jsl::Var(_) => phi.clone(),
        Jsl::Test(_) => Jsl::True,
        Jsl::Not(p) => Jsl::not(strip_tests(p)),
        Jsl::And(ps) => Jsl::and(ps.iter().map(strip_tests).collect()),
        Jsl::Or(ps) => Jsl::or(ps.iter().map(strip_tests).collect()),
        Jsl::DiamondKey(e, p) => Jsl::DiamondKey(e.clone(), Box::new(strip_tests(p))),
        Jsl::BoxKey(e, p) => Jsl::BoxKey(e.clone(), Box::new(strip_tests(p))),
        Jsl::DiamondRange(i, j, p) => Jsl::DiamondRange(*i, *j, Box::new(strip_tests(p))),
        Jsl::BoxRange(i, j, p) => Jsl::BoxRange(*i, *j, Box::new(strip_tests(p))),
    }
}
