//! Evaluation engines for JNL.
//!
//! Four engines implement the semantics at the complexity points the paper
//! identifies:
//!
//! | Engine | Fragment | Bound (paper) | Where |
//! |---|---|---|---|
//! | [`naive`] | full logic | — (reference oracle) | differential tests |
//! | [`linear`] | deterministic JNL | `O(\|J\|·\|φ\|)` (Prop 1) | E1 |
//! | [`pdl`] | + non-det, recursion; no `EQ(α,β)` | `O(\|J\|·\|φ\|)` (Prop 3) | E3 |
//! | [`cubic`] | full logic incl. `EQ(α,β)` | `O(\|J\|³·\|φ\|)` (Prop 3) | E3 |
//!
//! [`evaluate`] dispatches to the cheapest engine that supports the
//! formula's fragment. All engines share the [`EvalContext`] (tree +
//! canonical subtree labels + per-regex edge-match caches).

pub mod cubic;
pub mod linear;
pub mod naive;
pub mod pathnfa;
pub mod pdl;

use std::collections::HashMap;

use jsondata::{CanonTable, Json, JsonTree, NodeId};
use relex::Regex;

use crate::ast::Unary;

/// Errors raised when a formula falls outside an engine's fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The linear engine was given a non-deterministic construct.
    NotDeterministic(&'static str),
    /// The PDL engine was given `EQ(α, β)` (use [`cubic`]).
    EqPairUnsupported,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::NotDeterministic(what) => {
                write!(f, "formula uses {what}, outside the deterministic fragment (Prop 1)")
            }
            EvalError::EqPairUnsupported => write!(
                f,
                "EQ(α, β) requires the cubic engine (Prop 3 excludes it from the linear case)"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Shared evaluation state for one tree: canonical labels plus caches for
/// the per-regex edge preprocessing step of the Proposition 3 proof.
pub struct EvalContext<'t> {
    /// The document tree.
    pub tree: &'t JsonTree,
    /// Canonical subtree labels (the online-equality refinement of Prop 1).
    pub canon: CanonTable,
    /// For each node: the key labelling the edge from its parent (if any).
    edge_key: Vec<Option<String>>,
    /// For each node: the array position labelling the edge from its parent.
    edge_index: Vec<Option<u64>>,
    /// `regex → (per-node: does the incoming edge key match?)`.
    regex_cache: HashMap<Regex, Vec<bool>>,
}

impl<'t> EvalContext<'t> {
    /// Builds the context (one `O(|J|)` pass).
    pub fn new(tree: &'t JsonTree) -> EvalContext<'t> {
        let canon = CanonTable::build(tree);
        let mut edge_key = vec![None; tree.node_count()];
        let mut edge_index = vec![None; tree.node_count()];
        for n in tree.node_ids() {
            match tree.edge_from_parent(n) {
                Some(jsondata::EdgeLabel::Key(k)) => edge_key[n.index()] = Some(k.to_owned()),
                Some(jsondata::EdgeLabel::Index(i)) => edge_index[n.index()] = Some(i as u64),
                None => {}
            }
        }
        EvalContext { tree, canon, edge_key, edge_index, regex_cache: HashMap::new() }
    }

    /// The key on the edge into `n`, if `n` is an object child.
    pub fn incoming_key(&self, n: NodeId) -> Option<&str> {
        self.edge_key[n.index()].as_deref()
    }

    /// The position on the edge into `n`, if `n` is an array child.
    pub fn incoming_index(&self, n: NodeId) -> Option<u64> {
        self.edge_index[n.index()]
    }

    /// Whether the edge into `n` is an object edge whose key matches `e`.
    /// Per-regex results are cached: this is the preprocessing step that
    /// keeps Proposition 3 linear.
    pub fn edge_matches(&mut self, e: &Regex, n: NodeId) -> bool {
        if !self.regex_cache.contains_key(e) {
            let compiled = e.compile();
            let marks: Vec<bool> = (0..self.tree.node_count())
                .map(|i| {
                    self.edge_key[i].as_deref().is_some_and(|k| compiled.is_match(k))
                })
                .collect();
            self.regex_cache.insert(e.clone(), marks);
        }
        self.regex_cache[e][n.index()]
    }

    /// The canonical class of an external document within this tree, if the
    /// document occurs as a subtree.
    pub fn class_of_doc(&self, doc: &Json) -> Option<u32> {
        self.canon.class_of_json(doc)
    }
}

/// The result of an evaluation: the set of nodes satisfying the formula,
/// as a membership vector indexed by `NodeId::index()`.
pub type NodeSet = Vec<bool>;

/// Evaluates `φ` over `tree` with the best applicable engine:
/// deterministic → [`linear`], no `EQ(α,β)` → [`pdl`], otherwise [`cubic`].
pub fn evaluate(tree: &JsonTree, phi: &Unary) -> NodeSet {
    let frag = phi.fragment();
    if frag.is_deterministic() {
        linear::eval(tree, phi).expect("fragment checked deterministic")
    } else if !frag.eq_pair {
        pdl::eval(tree, phi).expect("fragment checked EQ-pair-free")
    } else {
        cubic::eval(tree, phi)
    }
}

/// Convenience: does the root satisfy `φ`?
pub fn check_root(tree: &JsonTree, phi: &Unary) -> bool {
    evaluate(tree, phi)[tree.root().index()]
}

/// Convenience: the nodes satisfying `φ`, as ids.
pub fn selected_nodes(tree: &JsonTree, phi: &Unary) -> Vec<NodeId> {
    evaluate(tree, phi)
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then(|| NodeId::from_index(i)))
        .collect()
}
