//! Abstract syntax of JSON Navigation Logic (Definition 1 of the paper,
//! plus the §4.3 extensions).
//!
//! Binary formulas `α, β` navigate (they denote pairs of nodes); unary
//! formulas `φ, ψ` test (they denote sets of nodes):
//!
//! ```text
//! α, β ::= ⟨φ⟩ | X_w | X_i | X_e | X_{i:j} | α ∘ β | ε | (α)*
//! φ, ψ ::= ⊤ | ¬φ | φ∧ψ | φ∨ψ | [α] | EQ(α, A) | EQ(α, β)
//! ```
//!
//! `X_w`/`X_i` are the deterministic core; `X_e` (regex keys) and `X_{i:j}`
//! (index ranges) add non-determinism; `(α)*` adds recursion. The paper's
//! negative indices (`X_{-1}` = last element) are supported in `X_i`.

use std::fmt;

use jsondata::Json;
use relex::Regex;

/// A binary (path) formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Binary {
    /// `⟨φ⟩` — stay put, require `φ` here.
    Test(Box<Unary>),
    /// `X_w` — follow the object edge labelled exactly `w`.
    Key(String),
    /// `X_i` — follow the array edge at position `i`; negative counts from
    /// the end (`-1` = last).
    Index(i64),
    /// `X_e` — follow any object edge whose label is in `L(e)`.
    KeyRegex(Regex),
    /// `X_{i:j}` — follow any array edge at a position in `[i, j]`;
    /// `None` is the paper's `+∞`.
    Range(u64, Option<u64>),
    /// `α ∘ β ∘ …` — composition (kept n-ary for convenience).
    Compose(Vec<Binary>),
    /// `ε` — the identity relation.
    Epsilon,
    /// `(α)*` — reflexive-transitive closure (the recursive extension).
    Star(Box<Binary>),
}

/// A unary (node-set) formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Unary {
    /// `⊤` — true at every node.
    True,
    /// `¬φ`.
    Not(Box<Unary>),
    /// `φ ∧ ψ ∧ …` (n-ary).
    And(Vec<Unary>),
    /// `φ ∨ ψ ∨ …` (n-ary).
    Or(Vec<Unary>),
    /// `[α]` — some `α`-path starts here.
    Exists(Box<Binary>),
    /// `EQ(α, A)` — some `α`-path reaches a node whose subtree equals the
    /// document `A`.
    EqDoc(Box<Binary>, Json),
    /// `EQ(α, β)` — some `α`-path and some `β`-path reach nodes with equal
    /// subtrees.
    EqPair(Box<Binary>, Box<Binary>),
}

/// Which JNL fragment a formula falls into; drives evaluator dispatch and
/// the complexity claims being measured (Propositions 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Uses `X_e` or `X_{i:j}` (non-determinism).
    pub nondeterministic: bool,
    /// Uses `(α)*` (recursion).
    pub recursive: bool,
    /// Uses the binary equality `EQ(α, β)`.
    pub eq_pair: bool,
    /// Uses negation.
    pub negation: bool,
}

impl Fragment {
    /// The deterministic core of Definition 1 (Proposition 1 applies).
    pub fn is_deterministic(&self) -> bool {
        !self.nondeterministic && !self.recursive
    }
}

impl Unary {
    /// `⊤` constructor.
    pub fn truth() -> Unary {
        Unary::True
    }

    /// `¬φ`, collapsing double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(phi: Unary) -> Unary {
        match phi {
            Unary::Not(inner) => *inner,
            other => Unary::Not(Box::new(other)),
        }
    }

    /// `φ ∧ ψ` flattening nested conjunctions.
    pub fn and(parts: Vec<Unary>) -> Unary {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Unary::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Unary::True,
            1 => flat.into_iter().next().expect("one element"),
            _ => Unary::And(flat),
        }
    }

    /// `φ ∨ ψ` flattening nested disjunctions.
    pub fn or(parts: Vec<Unary>) -> Unary {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Unary::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Unary::Not(Box::new(Unary::True)),
            1 => flat.into_iter().next().expect("one element"),
            _ => Unary::Or(flat),
        }
    }

    /// `[α]`.
    pub fn exists(alpha: Binary) -> Unary {
        Unary::Exists(Box::new(alpha))
    }

    /// `EQ(α, A)`.
    pub fn eq_doc(alpha: Binary, doc: Json) -> Unary {
        Unary::EqDoc(Box::new(alpha), doc)
    }

    /// `EQ(α, β)`.
    pub fn eq_pair(alpha: Binary, beta: Binary) -> Unary {
        Unary::EqPair(Box::new(alpha), Box::new(beta))
    }

    /// Formula size `|φ|` (nodes of the syntax tree, counting embedded
    /// regexes and documents).
    pub fn size(&self) -> usize {
        match self {
            Unary::True => 1,
            Unary::Not(p) => 1 + p.size(),
            Unary::And(ps) | Unary::Or(ps) => 1 + ps.iter().map(Unary::size).sum::<usize>(),
            Unary::Exists(a) => 1 + a.size(),
            Unary::EqDoc(a, d) => 1 + a.size() + d.node_count(),
            Unary::EqPair(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Fragment analysis.
    pub fn fragment(&self) -> Fragment {
        let mut f = Fragment {
            nondeterministic: false,
            recursive: false,
            eq_pair: false,
            negation: false,
        };
        self.scan(&mut f);
        f
    }

    fn scan(&self, f: &mut Fragment) {
        match self {
            Unary::True => {}
            Unary::Not(p) => {
                f.negation = true;
                p.scan(f);
            }
            Unary::And(ps) | Unary::Or(ps) => {
                for p in ps {
                    p.scan(f);
                }
            }
            Unary::Exists(a) => a.scan(f),
            Unary::EqDoc(a, _) => a.scan(f),
            Unary::EqPair(a, b) => {
                f.eq_pair = true;
                a.scan(f);
                b.scan(f);
            }
        }
    }
}

impl Binary {
    /// `X_w`.
    pub fn key(w: impl Into<String>) -> Binary {
        Binary::Key(w.into())
    }

    /// `X_i`.
    pub fn index(i: i64) -> Binary {
        Binary::Index(i)
    }

    /// `X_e`.
    pub fn key_regex(e: Regex) -> Binary {
        Binary::KeyRegex(e)
    }

    /// `X_{Σ*}` — any object edge (a common axis in the paper's examples).
    pub fn any_key() -> Binary {
        Binary::KeyRegex(Regex::sigma_star())
    }

    /// `X_{i:j}`.
    pub fn range(i: u64, j: Option<u64>) -> Binary {
        Binary::Range(i, j)
    }

    /// `X_{0:∞}` — any array edge.
    pub fn any_index() -> Binary {
        Binary::Range(0, None)
    }

    /// Any child edge: `X_{Σ*} ∪ X_{0:∞}` expressed as `⟨⊤⟩`-free union via
    /// `Compose`… composition cannot express union of steps, so this helper
    /// returns the two-branch alternative used by callers:
    /// `[any_child]φ ≡ [X_{Σ*}]φ ∨ [X_{0:∞}]φ`. Provided as a pair.
    pub fn child_axes() -> (Binary, Binary) {
        (Binary::any_key(), Binary::any_index())
    }

    /// `α ∘ β`, flattening nested compositions.
    pub fn compose(parts: Vec<Binary>) -> Binary {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Binary::Compose(inner) => flat.extend(inner),
                Binary::Epsilon => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Binary::Epsilon,
            1 => flat.into_iter().next().expect("one element"),
            _ => Binary::Compose(flat),
        }
    }

    /// `⟨φ⟩`.
    pub fn test(phi: Unary) -> Binary {
        Binary::Test(Box::new(phi))
    }

    /// `(α)*`.
    pub fn star(alpha: Binary) -> Binary {
        Binary::Star(Box::new(alpha))
    }

    /// `α ∘ α ∘ … ∘ α` (k times); `k = 0` is `ε`.
    pub fn power(alpha: Binary, k: usize) -> Binary {
        Binary::compose(std::iter::repeat_n(alpha, k).collect())
    }

    /// Formula size.
    pub fn size(&self) -> usize {
        match self {
            Binary::Epsilon | Binary::Key(_) | Binary::Index(_) | Binary::Range(_, _) => 1,
            Binary::KeyRegex(e) => 1 + e.size(),
            Binary::Test(p) => 1 + p.size(),
            Binary::Compose(ps) => 1 + ps.iter().map(Binary::size).sum::<usize>(),
            Binary::Star(a) => 1 + a.size(),
        }
    }

    fn scan(&self, f: &mut Fragment) {
        match self {
            Binary::Epsilon | Binary::Key(_) | Binary::Index(_) => {}
            Binary::KeyRegex(e) => {
                // A singleton-language regex is still deterministic in
                // effect, but we classify syntactically like the paper.
                let _ = e;
                f.nondeterministic = true;
            }
            Binary::Range(_, _) => f.nondeterministic = true,
            Binary::Test(p) => p.scan(f),
            Binary::Compose(ps) => {
                for p in ps {
                    p.scan(f);
                }
            }
            Binary::Star(a) => {
                f.recursive = true;
                a.scan(f);
            }
        }
    }
}

impl fmt::Display for Binary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binary::Test(p) => write!(f, "<{p}>"),
            Binary::Key(w) => write!(f, "@{}", jsondata::serialize::quote(w)),
            Binary::Index(i) => write!(f, "@{i}"),
            Binary::KeyRegex(e) => write!(f, "@/{}/", regex_src(e)),
            Binary::Range(i, Some(j)) => write!(f, "@[{i}:{j}]"),
            Binary::Range(i, None) => write!(f, "@[{i}:*]"),
            Binary::Compose(ps) => {
                for (k, p) in ps.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ; ")?;
                    }
                    if matches!(p, Binary::Star(_)) {
                        write!(f, "{p}")?;
                    } else if matches!(p, Binary::Compose(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Binary::Epsilon => write!(f, "eps"),
            Binary::Star(a) => write!(f, "({a})*"),
        }
    }
}

/// Escapes `/` in the regex source so `@/…/` stays parseable.
fn regex_src(e: &Regex) -> String {
    e.to_string().replace('/', "\\/")
}

impl fmt::Display for Unary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unary::True => write!(f, "true"),
            Unary::Not(p) => {
                if matches!(**p, Unary::And(_) | Unary::Or(_)) {
                    write!(f, "!({p})")
                } else {
                    write!(f, "!{p}")
                }
            }
            Unary::And(ps) => {
                for (k, p) in ps.iter().enumerate() {
                    if k > 0 {
                        write!(f, " & ")?;
                    }
                    if matches!(p, Unary::Or(_) | Unary::And(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Unary::Or(ps) => {
                for (k, p) in ps.iter().enumerate() {
                    if k > 0 {
                        write!(f, " | ")?;
                    }
                    if matches!(p, Unary::Or(_) | Unary::And(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Unary::Exists(a) => write!(f, "[{a}]"),
            Unary::EqDoc(a, d) => write!(f, "eqdoc({a}, {d})"),
            Unary::EqPair(a, b) => write!(f, "eqpair({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalise() {
        assert_eq!(Unary::and(vec![]), Unary::True);
        assert_eq!(Unary::and(vec![Unary::True]), Unary::True);
        let nested = Unary::and(vec![
            Unary::and(vec![Unary::True, Unary::True]),
            Unary::True,
        ]);
        assert_eq!(
            nested,
            Unary::And(vec![Unary::True, Unary::True, Unary::True])
        );
        assert_eq!(Unary::not(Unary::not(Unary::True)), Unary::True);
        assert_eq!(
            Binary::compose(vec![Binary::Epsilon, Binary::Epsilon]),
            Binary::Epsilon
        );
        assert_eq!(
            Binary::compose(vec![Binary::key("a"), Binary::Epsilon, Binary::key("b")]),
            Binary::Compose(vec![Binary::key("a"), Binary::key("b")])
        );
    }

    #[test]
    fn fragment_analysis() {
        let det = Unary::exists(Binary::compose(vec![Binary::key("a"), Binary::index(0)]));
        let f = det.fragment();
        assert!(f.is_deterministic());
        assert!(!f.eq_pair && !f.negation);

        let nondet = Unary::exists(Binary::any_key());
        assert!(nondet.fragment().nondeterministic);

        let rec = Unary::exists(Binary::star(Binary::any_key()));
        assert!(rec.fragment().recursive);

        let eq = Unary::eq_pair(Binary::key("a"), Binary::key("b"));
        assert!(eq.fragment().eq_pair);

        let neg = Unary::not(Unary::exists(Binary::key("a")));
        assert!(neg.fragment().negation);
    }

    #[test]
    fn size_counts_embedded_documents() {
        let phi = Unary::eq_doc(Binary::key("a"), jsondata::parse(r#"{"x":[1,2]}"#).unwrap());
        // 1 (EqDoc) + 1 (Key) + 4 (doc nodes: obj, arr, 1, 2)
        assert_eq!(phi.size(), 6);
    }

    #[test]
    fn display_shapes() {
        let phi = Unary::and(vec![
            Unary::exists(Binary::compose(vec![
                Binary::key("name"),
                Binary::test(Unary::True),
            ])),
            Unary::not(Unary::exists(Binary::star(Binary::any_key()))),
        ]);
        let s = phi.to_string();
        assert!(s.contains("@\"name\""));
        assert!(s.contains(")*"));
        assert!(s.contains('!'));
    }

    #[test]
    fn power_builds_compositions() {
        assert_eq!(Binary::power(Binary::key("a"), 0), Binary::Epsilon);
        assert_eq!(Binary::power(Binary::key("a"), 1), Binary::key("a"));
        assert_eq!(
            Binary::power(Binary::key("a"), 3),
            Binary::Compose(vec![Binary::key("a"), Binary::key("a"), Binary::key("a")])
        );
    }
}
