//! String interning: stable `u32` symbols for object keys and string atoms.
//!
//! Every `O(|J|·|φ|)` bound in the paper assumes edge-label tests are
//! `O(1)`, yet a string-keyed tree pays a full comparison (and often a
//! clone) per test. Real-world JSON corpora have tiny key vocabularies
//! relative to their node counts, so a per-tree [`Interner`] turns the
//! dominant per-node string work into `u32` compares:
//!
//! * [`JsonTree::build`](crate::JsonTree::build) interns every object key
//!   and string leaf once; nodes store [`Sym`]s, never owned strings.
//! * `child_by_key` becomes an `O(1)` interner probe followed by a binary
//!   search over `Sym`s — a key absent from the interner cannot label any
//!   edge, so the miss answers `None` without touching the node.
//! * Regex edge caches throughout the logic engines memoise per
//!   `(regex, Sym)` — `O(distinct keys)` regex runs instead of
//!   `O(nodes)`.
//!
//! Symbols are **per-tree**: comparing `Sym`s from different trees is
//! meaningless (and the type offers no cross-tree guard beyond that
//! documented contract, matching `NodeId`).

use crate::fxhash::FxHashMap;

/// An interned string: a dense index into one [`Interner`].
///
/// `Sym`s are ordered by interning time, **not** lexicographically; they
/// support only equality/ordering as opaque ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (always `< Interner::len`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index (bench/test helper; the index
    /// must come from the same interner's [`Sym::index`]).
    pub const fn from_index(i: usize) -> Sym {
        Sym(i as u32)
    }
}

/// A string interning table: each distinct string receives one [`Sym`].
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its existing symbol or allocating the next one.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let owned: Box<str> = s.into();
        self.strings.push(owned.clone());
        self.map.insert(owned, sym);
        sym
    }

    /// The symbol of `s`, if it has been interned — the `O(1)` probe that
    /// fronts every key lookup.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        for s in ["", "k", "key", "日本語", "k"] {
            let sym = i.intern(s);
            assert_eq!(i.resolve(sym), s);
            assert_eq!(i.lookup(s), Some(sym));
        }
        assert_eq!(i.len(), 4, "duplicates collapse");
        assert_eq!(i.lookup("absent"), None);
    }

    #[test]
    fn iteration_follows_interning_order() {
        let mut i = Interner::new();
        i.intern("z");
        i.intern("a");
        let pairs: Vec<(usize, &str)> = i.iter().map(|(s, t)| (s.index(), t)).collect();
        assert_eq!(pairs, vec![(0, "z"), (1, "a")]);
    }
}
