//! The naive, value-based reference executor.
//!
//! Every stage operates on owned [`Json`] documents: `$match` clones the
//! survivors, `$unwind` clones one whole document per element, `$group`
//! keys are found by linear scan with [`Json`] equality. This is the
//! semantics oracle the tree-backed executor ([`crate::exec`]) is
//! differentially tested and benchmarked against: slow on purpose, simple
//! enough to audit by eye, and sharing **no** evaluation machinery with
//! the tree path (only the parsed [`Pipeline`] IR and the pure
//! output-assembly helpers `insert_path`/`set_at`).

use jsondata::Json;
use mongofind::{insert_path, Path};

use crate::exec::{clamp_len, cmp_opt_json, cmp_sort_keys, saturate, set_at};
use crate::pipeline::{
    Accumulator, GroupSpec, IdExpr, Pipeline, ProjectField, SortOrder, Stage, ValueExpr,
};

/// Runs the pipeline over owned documents. The defined output of every
/// pipeline — [`crate::aggregate`] must agree with this exactly.
pub fn aggregate(docs: &[Json], pipeline: &Pipeline) -> Vec<Json> {
    let mut rows: Vec<Json> = docs.to_vec();
    for stage in &pipeline.stages {
        rows = step(rows, stage);
    }
    rows
}

/// The cardinality of the row stream *leaving* each stage — `out[i]` is
/// the number of rows after `pipeline.stages[i]`. This is the oracle the
/// `EXPLAIN ANALYZE` agreement gate compares the tree executor's
/// per-stage trace against: the traced executor must report the same
/// counts even through its top-k fusion (whose interior `$sort`/`$skip`
/// cardinalities it derives arithmetically).
pub fn stage_cardinalities(docs: &[Json], pipeline: &Pipeline) -> Vec<usize> {
    let mut rows: Vec<Json> = docs.to_vec();
    let mut out = Vec::with_capacity(pipeline.stages.len());
    for stage in &pipeline.stages {
        rows = step(rows, stage);
        out.push(rows.len());
    }
    out
}

fn eval_expr(doc: &Json, e: &ValueExpr) -> Option<Json> {
    match e {
        ValueExpr::Const(c) => Some(c.clone()),
        ValueExpr::Field(p) => p.resolve(doc).cloned(),
    }
}

fn step(mut rows: Vec<Json>, stage: &Stage) -> Vec<Json> {
    match stage {
        Stage::Match(f) => {
            rows.retain(|d| f.matches(d));
            rows
        }
        Stage::Project(spec) => rows.iter().map(|d| project(d, spec)).collect(),
        Stage::Unwind(path) => rows.into_iter().flat_map(|d| unwind(d, path)).collect(),
        Stage::Group(spec) => group(&rows, spec),
        Stage::Sort(spec) => sort(rows, spec),
        Stage::Skip(n) => {
            let n = clamp_len(*n).min(rows.len());
            rows.drain(..n);
            rows
        }
        Stage::Limit(n) => {
            rows.truncate(clamp_len(*n));
            rows
        }
        Stage::Count(label) => {
            if rows.is_empty() {
                Vec::new()
            } else {
                vec![
                    Json::object(vec![(label.clone(), Json::Num(rows.len() as u64))])
                        .expect("single key"),
                ]
            }
        }
    }
}

fn project(doc: &Json, spec: &[(Path, ProjectField)]) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    for (path, field) in spec {
        let value = match field {
            ProjectField::Include => path.resolve(doc).cloned(),
            ProjectField::Expr(e) => eval_expr(doc, e),
        };
        if let Some(v) = value {
            insert_path(&mut pairs, &path.0, v);
        }
    }
    Json::object(pairs).expect("insert_path keeps keys distinct")
}

fn unwind(doc: Json, path: &Path) -> Vec<Json> {
    match path.resolve(&doc) {
        None => Vec::new(),
        Some(Json::Array(items)) => {
            let items = items.clone();
            items
                .into_iter()
                .map(|elem| {
                    let mut out = doc.clone();
                    set_at(&mut out, &path.0, elem);
                    out
                })
                .collect()
        }
        // Non-array values pass through as their own single element.
        Some(_) => vec![doc],
    }
}

fn group_key(doc: &Json, id: &IdExpr) -> Option<Json> {
    match id {
        IdExpr::Const(c) => Some(c.clone()),
        IdExpr::Field(p) => p.resolve(doc).cloned(),
        IdExpr::Doc(fields) => {
            let mut pairs: Vec<(String, Json)> = Vec::new();
            for (name, e) in fields {
                if let Some(v) = eval_expr(doc, e) {
                    pairs.push((name.clone(), v));
                }
            }
            Some(Json::object(pairs).expect("parser validated distinct names"))
        }
    }
}

fn group(rows: &[Json], spec: &GroupSpec) -> Vec<Json> {
    // Linear-scan key table: Json equality, no hashing, no classes.
    let mut keys: Vec<Option<Json>> = Vec::new();
    let mut members: Vec<Vec<&Json>> = Vec::new();
    for doc in rows {
        let key = group_key(doc, &spec.id);
        match keys.iter().position(|k| *k == key) {
            Some(i) => members[i].push(doc),
            None => {
                keys.push(key);
                members.push(vec![doc]);
            }
        }
    }
    let mut groups: Vec<(Option<Json>, Vec<&Json>)> = keys.into_iter().zip(members).collect();
    groups.sort_by(|(a, _), (b, _)| cmp_opt_json(a, b));
    groups
        .into_iter()
        .map(|(key, docs)| {
            let mut pairs: Vec<(String, Json)> = Vec::new();
            if let Some(k) = key {
                pairs.push(("_id".into(), k));
            }
            for (name, acc) in &spec.accs {
                if let Some(v) = accumulate(&docs, acc) {
                    pairs.push((name.clone(), v));
                }
            }
            Json::object(pairs).expect("parser validated distinct names")
        })
        .collect()
}

fn accumulate(docs: &[&Json], acc: &Accumulator) -> Option<Json> {
    let observed =
        |e: &ValueExpr| -> Vec<Json> { docs.iter().filter_map(|d| eval_expr(d, e)).collect() };
    let numbers = |e: &ValueExpr| -> Vec<u64> {
        docs.iter()
            .filter_map(|d| eval_expr(d, e).and_then(|v| v.as_num()))
            .collect()
    };
    match acc {
        Accumulator::Sum(e) => Some(Json::Num(saturate(
            numbers(e).into_iter().map(u128::from).sum(),
        ))),
        Accumulator::Avg(e) => {
            let ns = numbers(e);
            if ns.is_empty() {
                None
            } else {
                let total: u128 = ns.iter().copied().map(u128::from).sum();
                Some(Json::Num(saturate(total / ns.len() as u128)))
            }
        }
        Accumulator::Min(e) => observed(e).into_iter().min_by(|a, b| a.total_cmp(b)),
        Accumulator::Max(e) => observed(e).into_iter().max_by(|a, b| a.total_cmp(b)),
        Accumulator::Count => Some(Json::Num(docs.len() as u64)),
        Accumulator::Push(e) => Some(Json::Array(observed(e))),
        Accumulator::First(e) => observed(e).into_iter().next(),
        Accumulator::Last(e) => observed(e).into_iter().last(),
    }
}

fn sort(rows: Vec<Json>, spec: &[(Path, SortOrder)]) -> Vec<Json> {
    let mut keyed: Vec<(Vec<Option<Json>>, Json)> = rows
        .into_iter()
        .map(|doc| {
            let keys = spec.iter().map(|(p, _)| p.resolve(&doc).cloned()).collect();
            (keys, doc)
        })
        .collect();
    keyed.sort_by(|(ka, _), (kb, _)| cmp_sort_keys(spec, ka, kb));
    keyed.into_iter().map(|(_, doc)| doc).collect()
}
