//! Admission control: a bounded, deadline-aware request gate.
//!
//! Every request acquires a [`Permit`] before touching the store. At
//! most [`AdmissionConfig::max_inflight`] permits are out at once; up
//! to [`AdmissionConfig::queue_cap`] requests may wait for one, each
//! bounded by the earlier of its own deadline and
//! [`AdmissionConfig::max_queue_wait`]. Everything beyond those bounds
//! is shed **fail-closed** with [`QueryError::Overloaded`] — a typed,
//! retryable rejection ([`QueryError::is_retryable`]), never a hang and
//! never an unbounded queue. Nothing has executed when a request is
//! shed, so [`jguard::retry_with_backoff`] is safe to wrap around the
//! whole call.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use jguard::QueryError;

/// Sizing of the admission gate.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Requests allowed to execute concurrently (clamped to ≥ 1).
    pub max_inflight: usize,
    /// Requests allowed to wait for a permit; arrivals beyond this are
    /// shed immediately.
    pub queue_cap: usize,
    /// Upper bound on queue waiting for requests without a deadline
    /// (requests with one wait until `min(deadline, now + max_queue_wait)`).
    pub max_queue_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: std::thread::available_parallelism().map_or(4, usize::from),
            queue_cap: 64,
            max_queue_wait: Duration::from_millis(250),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    inflight: usize,
    waiting: usize,
}

/// The gate. One per server; cheap to share behind the server itself.
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    freed: Condvar,
}

/// An execution slot. Dropping it (normally or during a panic unwind)
/// frees the slot and wakes one waiter — permits cannot leak.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        st.inflight -= 1;
        drop(st);
        self.gate.freed.notify_one();
    }
}

impl Admission {
    /// Builds the gate (`max_inflight` clamped to ≥ 1).
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg: AdmissionConfig {
                max_inflight: cfg.max_inflight.max(1),
                ..cfg
            },
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
        }
    }

    /// The configuration in force (after clamping).
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Acquires an execution slot, waiting (bounded) if the server is at
    /// capacity. Sheds with [`QueryError::Overloaded`] when the queue is
    /// full or the bounded wait expires.
    pub fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, QueryError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.inflight < self.cfg.max_inflight {
            st.inflight += 1;
            return Ok(Permit { gate: self });
        }
        if st.waiting >= self.cfg.queue_cap {
            return Err(QueryError::Overloaded);
        }
        st.waiting += 1;
        let cap = Instant::now() + self.cfg.max_queue_wait;
        let limit = deadline.map_or(cap, |d| d.min(cap));
        loop {
            if st.inflight < self.cfg.max_inflight {
                st.waiting -= 1;
                st.inflight += 1;
                return Ok(Permit { gate: self });
            }
            let now = Instant::now();
            if now >= limit {
                st.waiting -= 1;
                return Err(QueryError::Overloaded);
            }
            let (guard, _timed_out) = self
                .freed
                .wait_timeout(st, limit - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Requests currently executing (diagnostics).
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tight(max_inflight: usize, queue_cap: usize, wait_ms: u64) -> Admission {
        Admission::new(AdmissionConfig {
            max_inflight,
            queue_cap,
            max_queue_wait: Duration::from_millis(wait_ms),
        })
    }

    #[test]
    fn permits_free_on_drop() {
        let gate = tight(1, 0, 10);
        let p = gate.admit(None).unwrap();
        assert!(matches!(gate.admit(None), Err(QueryError::Overloaded)));
        drop(p);
        assert!(gate.admit(None).is_ok());
    }

    #[test]
    fn queue_full_sheds_immediately() {
        let gate = Arc::new(tight(1, 1, 2_000));
        let _held = gate.admit(None).unwrap();
        // One waiter occupies the queue slot...
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.admit(None).is_ok());
        // ...once it is parked, the next arrival must shed *immediately*
        // (no 2-second wait), proving queue_cap is enforced on arrival.
        loop {
            let queued = {
                let st = gate.state.lock().unwrap();
                st.waiting
            };
            if queued == 1 {
                break;
            }
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        assert!(matches!(gate.admit(None), Err(QueryError::Overloaded)));
        assert!(t0.elapsed() < Duration::from_millis(500));
        drop(_held);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn bounded_wait_expires_as_overloaded_not_a_hang() {
        let gate = tight(1, 8, 20);
        let _held = gate.admit(None).unwrap();
        let t0 = Instant::now();
        let r = gate.admit(None);
        assert!(matches!(r, Err(QueryError::Overloaded)));
        assert!(
            t0.elapsed() >= Duration::from_millis(15),
            "waited for the bound before shedding"
        );
    }

    #[test]
    fn deadline_tightens_the_queue_wait() {
        let gate = tight(1, 8, 5_000);
        let _held = gate.admit(None).unwrap();
        let t0 = Instant::now();
        let r = gate.admit(Some(Instant::now() + Duration::from_millis(20)));
        assert!(matches!(r, Err(QueryError::Overloaded)));
        assert!(t0.elapsed() < Duration::from_millis(1_000));
    }

    #[test]
    fn waiters_drain_under_contention() {
        let gate = Arc::new(tight(2, 64, 5_000));
        let served = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let gate = Arc::clone(&gate);
            let served = Arc::clone(&served);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let _p = gate.admit(None).expect("queue is deep enough");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(served.load(Ordering::Relaxed), 16 * 25);
        assert_eq!(gate.inflight(), 0);
    }
}
