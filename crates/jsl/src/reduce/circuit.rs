//! The Proposition 9 lower bound: boolean circuit evaluation → recursive
//! JSL evaluation.
//!
//! The input assignment becomes a flat object `{"IN0": "T", "IN1": "F", …}`;
//! each gate becomes a definition `γ_j = φ_j`, with input gates reading the
//! document through `◇_{INi} Pattern(T)`; the base expression is the output
//! gate's symbol. The circuit is true under the assignment iff the document
//! satisfies the recursive JSL expression.

use jsondata::Json;

use crate::ast::{Jsl, NodeTest};
use crate::recursive::RecursiveJsl;

/// A boolean circuit gate.
#[derive(Debug, Clone)]
pub enum Gate {
    /// Reads input `i`.
    Input(usize),
    /// Conjunction of earlier gates.
    And(Vec<usize>),
    /// Disjunction of earlier gates.
    Or(Vec<usize>),
    /// Negation of an earlier gate.
    Not(usize),
}

/// A boolean circuit; gate indices reference earlier gates only; the last
/// gate is the output.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Number of inputs.
    pub n_inputs: usize,
    /// Topologically ordered gates.
    pub gates: Vec<Gate>,
}

impl Circuit {
    /// Direct evaluation (reference oracle).
    pub fn eval(&self, inputs: &[bool]) -> bool {
        let mut vals: Vec<bool> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match g {
                Gate::Input(i) => inputs[*i],
                Gate::And(gs) => gs.iter().all(|&g| vals[g]),
                Gate::Or(gs) => gs.iter().any(|&g| vals[g]),
                Gate::Not(g) => !vals[*g],
            };
            vals.push(v);
        }
        *vals.last().expect("nonempty circuit")
    }

    /// Encodes an assignment as the input document.
    pub fn input_doc(&self, inputs: &[bool]) -> Json {
        Json::object(
            inputs
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    (
                        format!("IN{i}"),
                        Json::Str(if b { "T" } else { "F" }.to_owned()),
                    )
                })
                .collect(),
        )
        .expect("input keys distinct")
    }

    /// The Proposition 9 recursive JSL encoding.
    pub fn to_recursive_jsl(&self) -> RecursiveJsl {
        let input_formula = |i: usize| {
            Jsl::diamond_key(
                &format!("IN{i}"),
                Jsl::Test(NodeTest::Pattern(relex::Regex::literal("T"))),
            )
        };
        let defs: Vec<(String, Jsl)> = self
            .gates
            .iter()
            .enumerate()
            .map(|(j, g)| {
                let phi = match g {
                    Gate::Input(i) => input_formula(*i),
                    Gate::And(gs) => {
                        Jsl::and(gs.iter().map(|g| Jsl::Var(format!("g{g}"))).collect())
                    }
                    Gate::Or(gs) => Jsl::or(gs.iter().map(|g| Jsl::Var(format!("g{g}"))).collect()),
                    Gate::Not(g) => Jsl::not(Jsl::Var(format!("g{g}"))),
                };
                (format!("g{j}"), phi)
            })
            .collect();
        RecursiveJsl {
            defs,
            base: Jsl::Var(format!("g{}", self.gates.len() - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::JsonTree;

    fn majority3() -> Circuit {
        // maj(a,b,c) = (a∧b) ∨ (a∧c) ∨ (b∧c)
        Circuit {
            n_inputs: 3,
            gates: vec![
                Gate::Input(0),
                Gate::Input(1),
                Gate::Input(2),
                Gate::And(vec![0, 1]),
                Gate::And(vec![0, 2]),
                Gate::And(vec![1, 2]),
                Gate::Or(vec![3, 4, 5]),
            ],
        }
    }

    #[test]
    fn encoding_is_well_formed() {
        let delta = majority3().to_recursive_jsl();
        assert_eq!(delta.well_formed(), Ok(()));
        // Exposed same-level references exist (gates reference gates), so
        // the precedence graph is non-trivial but acyclic.
        assert!(!delta.precedence_edges().is_empty());
    }

    #[test]
    fn agrees_with_direct_evaluation_on_all_inputs() {
        let c = majority3();
        let delta = c.to_recursive_jsl();
        for bits in 0u8..8 {
            let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let doc = c.input_doc(&inputs);
            let t = JsonTree::build(&doc);
            assert_eq!(delta.check_root(&t), c.eval(&inputs), "inputs {inputs:?}");
        }
    }

    #[test]
    fn negation_gates() {
        // ¬(a ∧ ¬b)
        let c = Circuit {
            n_inputs: 2,
            gates: vec![
                Gate::Input(0),
                Gate::Input(1),
                Gate::Not(1),
                Gate::And(vec![0, 2]),
                Gate::Not(3),
            ],
        };
        let delta = c.to_recursive_jsl();
        for bits in 0u8..4 {
            let inputs: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let t = JsonTree::build(&c.input_doc(&inputs));
            assert_eq!(delta.check_root(&t), c.eval(&inputs), "inputs {inputs:?}");
        }
    }

    /// A deep chain circuit for scaling experiments: alternating NOT gates.
    pub fn chain(depth: usize) -> Circuit {
        let mut gates = vec![Gate::Input(0)];
        for i in 0..depth {
            gates.push(Gate::Not(i));
        }
        Circuit { n_inputs: 1, gates }
    }

    #[test]
    fn deep_chains_evaluate_in_polynomial_time() {
        let c = chain(500);
        let delta = c.to_recursive_jsl();
        let t = JsonTree::build(&c.input_doc(&[true]));
        assert_eq!(delta.check_root(&t), c.eval(&[true]));
    }
}
