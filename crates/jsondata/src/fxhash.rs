//! A minimal Fx-style hasher for the interning and canonical-label hot
//! paths.
//!
//! `std`'s default SipHash is DoS-resistant but costs real time on the
//! millions of tiny keys the [`CanonTable`](crate::CanonTable) and
//! [`Interner`](crate::intern::Interner) hash per document. Those inputs
//! *do* come from arbitrary external JSON, so this hasher keeps a
//! flooding defence: every hasher starts from a **per-process random
//! seed** (drawn once from `std`'s `RandomState`), so collision sets
//! cannot be precomputed offline the way they can against an unseeded
//! multiply-rotate hash. The per-word mix is still the cheap rustc Fx
//! step — one multiply and rotate — which is the point of the swap.
//!
//! The seed defence is weaker than SipHash against an *adaptive* attacker
//! who can measure per-request timing; services exposed to that threat
//! model should front documents with `parse_with_limits` size caps (which
//! bound the damage of any quadratic blow-up).

use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::OnceLock;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One random value per process, so hash layouts differ across runs.
fn process_seed() -> u64 {
    static PROCESS_SEED: OnceLock<u64> = OnceLock::new();
    *PROCESS_SEED.get_or_init(|| {
        // RandomState carries the OS-provided randomness std already uses.
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(0xF0F0_F0F0);
        h.finish()
    })
}

/// The rustc Fx hash function (one multiply and rotate per word), seeded
/// per process.
pub struct FxHasher {
    hash: u64,
}

impl Default for FxHasher {
    fn default() -> FxHasher {
        FxHasher {
            hash: process_seed(),
        }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_hash_equal() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello world"), h(b"hello world"));
        assert_ne!(h(b"hello world"), h(b"hello worlds"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn hashers_start_from_the_process_seed() {
        // Seeded: the empty hash is the process seed, not a constant zero.
        let h = FxHasher::default().finish();
        assert_eq!(h, FxHasher::default().finish());
        assert_eq!(h, super::process_seed());
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("key512"), Some(&512));
        assert_eq!(m.get("absent"), None);
    }
}
