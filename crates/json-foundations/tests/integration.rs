//! Cross-crate integration tests: the full pipelines the paper's sections
//! chain together, exercised through the facade crate.

use jnl::ast::{Binary as B, Unary as U};
use jsl::ast::{Jsl as J, NodeTest as T};
use json_foundations::prelude::*;
use json_foundations::schema::{is_valid, jsl_to_schema, schema_to_jsl, Schema};

#[test]
fn figure1_through_every_layer() {
    let src = r#"{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}"#;
    let doc = parse(src).unwrap();
    // The engines query the fused parse; it is the identical tree.
    let tree = jsondata::parse_to_tree(src).unwrap();
    assert!(tree.identical(&JsonTree::build(&doc)));

    // JNL: deterministic navigation query (all four engines agree).
    let phi = jnl::parse_unary(r#"eqdoc(@"name" ; @"first", "John") & [@"hobbies" ; @1]"#).unwrap();
    assert!(jnl::eval::check_root(&tree, &phi));

    // JSL: the same condition modally.
    let psi = J::and(vec![
        J::diamond_key(
            "name",
            J::diamond_key("first", J::Test(T::EqDoc(parse("\"John\"").unwrap()))),
        ),
        J::diamond_key("hobbies", J::Test(T::MinCh(2))),
    ]);
    assert!(jsl::eval::check_root(&tree, &psi));

    // Schema: Table 1 keywords.
    let schema = Schema::parse_str(
        r#"{"type": "object", "required": ["name", "age", "hobbies"],
            "properties": {"age": {"type": "number", "minimum": 18}}}"#,
    )
    .unwrap();
    assert!(is_valid(&schema, &doc).unwrap());

    // Theorem 1 loop: schema → JSL → (agrees) and JSL → schema → (agrees).
    let delta = schema_to_jsl(&schema).unwrap();
    assert!(delta.check_root(&tree));
    let back = jsl_to_schema(&delta.base).unwrap();
    let back_schema = Schema::parse(&back).unwrap();
    assert!(is_valid(&back_schema, &doc).unwrap());
}

#[test]
fn mongo_filter_jnl_satisfiability_pipeline() {
    // Compile a MongoDB filter to JNL, prove it satisfiable, and check the
    // produced witness actually matches the filter.
    let filter =
        mongofind::Filter::parse_str(r#"{"name.first": "Sue", "tags": {"$size": 2}}"#).unwrap();
    let phi = filter.to_jnl();
    match jnl::sat_deterministic(&phi) {
        jnl::SatResult::Sat(witness) => {
            assert!(
                filter.matches(&witness),
                "witness {witness} must match the filter"
            );
        }
        other => panic!("expected Sat, got {other:?}"),
    }
    // An unsatisfiable filter: a path that must be both array and object.
    let dead = mongofind::Filter::parse_str(r#"{"a.0": 1, "a.b": 2}"#).unwrap();
    assert!(jnl::sat_deterministic(&dead.to_jnl()).is_unsat());
}

#[test]
fn jsonpath_jnl_jsl_translation_chain() {
    // JSONPath → JNL (branches) → JSL (Theorem 2) all agree on selection
    // emptiness at the root. Built through the fused parser: the engines
    // only need the tree, so no value is ever materialised.
    let tree = jsondata::parse_to_tree(r#"{"a": {"b": [{"c": 1}, {"d": 2}]}}"#).unwrap();
    let path = jsonpath::JsonPath::parse("$.a.b[*].c").unwrap();
    let selected = path.select_nodes(&tree);
    let phi = path.to_jnl_unary();
    let via_jnl = jnl::eval::check_root(&tree, &phi);
    assert_eq!(!selected.is_empty(), via_jnl);
    // Star-free fragment translates to JSL (Theorem 2) — expand the
    // wildcard branches first.
    let nonrec = jsonpath::JsonPath::parse("$.a.b[0:2].c").unwrap();
    let jsl_phi = jsl::jnl_to_jsl_cps(&nonrec.to_jnl_unary()).unwrap();
    assert_eq!(
        jsl::eval::check_root(&tree, &jsl_phi),
        !nonrec.select_nodes(&tree).is_empty()
    );
}

#[test]
fn automaton_accepts_exactly_the_schema_language() {
    // Schema → JSL → J-automaton; membership must match the validator.
    let schema = Schema::parse_str(
        r#"{"type": "object",
            "properties": {"n": {"type": "number", "multipleOf": 3}},
            "required": ["n"],
            "additionalProperties": {"type": "string"}}"#,
    )
    .unwrap();
    let delta = schema_to_jsl(&schema).unwrap();
    let auto = jautomata::JAutomaton::from_recursive_jsl(&delta).unwrap();
    for src in [
        r#"{"n": 9}"#,
        r#"{"n": 9, "note": "ok"}"#,
        r#"{"n": 7}"#,
        r#"{"n": 9, "bad": 1}"#,
        r#"{}"#,
        r#"[1]"#,
    ] {
        let doc = parse(src).unwrap();
        let tree = JsonTree::build(&doc);
        assert_eq!(
            auto.accepts(&tree).unwrap(),
            is_valid(&schema, &doc).unwrap(),
            "doc {src}"
        );
    }
}

#[test]
fn all_four_jnl_engines_agree() {
    let doc = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(99, 400));
    let tree = JsonTree::build(&doc);
    // A formula in the common fragment of all engines (deterministic).
    let phi = U::and(vec![
        U::or(vec![
            U::exists(B::key("a")),
            U::exists(B::key("name")),
            U::not(U::exists(B::key("items"))),
        ]),
        U::not(U::eq_doc(B::key("id"), parse("0").unwrap())),
    ]);
    let naive = jnl::eval::naive::eval(&tree, &phi);
    let linear = jnl::eval::linear::eval(&tree, &phi).unwrap();
    let pdl = jnl::eval::pdl::eval(&tree, &phi).unwrap();
    let cubic = jnl::eval::cubic::eval(&tree, &phi);
    assert_eq!(naive, linear);
    assert_eq!(naive, pdl);
    assert_eq!(naive, cubic);
}

#[test]
fn formal_model_round_trip() {
    let doc = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(5, 200));
    let tree = JsonTree::build(&doc);
    let formal = jsondata::domain::FormalJson::from_tree(&tree);
    assert!(formal.validate().is_empty());
    assert_eq!(formal.to_json().unwrap(), doc);
}

#[test]
fn schema_inference_feeds_validation_and_logic() {
    let examples: Vec<_> = (0..5)
        .map(|i| {
            jsondata::gen::person_records(3, i)
                .as_array()
                .unwrap()
                .first()
                .unwrap()
                .clone()
        })
        .collect();
    let schema = json_foundations::schema::infer(&examples);
    let delta = schema_to_jsl(&schema).unwrap();
    for e in &examples {
        assert!(is_valid(&schema, e).unwrap());
        assert!(delta.check_root(&JsonTree::build(e)));
    }
}

#[test]
fn minsky_reduction_round_trip() {
    use jnl::reduce::minsky::{Instr, MinskyMachine};
    let m = MinskyMachine {
        program: vec![
            Instr::Inc(0, 1),
            Instr::Inc(1, 2),
            Instr::Dec(0, 3),
            Instr::IfZero(1, 4, 4),
            Instr::Halt,
        ],
    };
    let trace = m.run(50).expect("halts");
    let witness = MinskyMachine::encode_trace(&trace);
    let tree = JsonTree::build(&witness);
    assert!(jnl::eval::cubic::eval(&tree, &m.to_jnl())[tree.root().index()]);
}
