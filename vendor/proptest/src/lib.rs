//! Offline shim for the subset of the `proptest` framework this workspace
//! uses.
//!
//! The build environment cannot fetch crates.io. This crate implements the
//! strategy combinators and macros the workspace's property tests call —
//! ranges, simple `[a-z]{m,n}` string patterns, `Just`, tuples,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::collection::btree_map`, and the `proptest!`/`prop_assert*!`
//! macros — over a seeded RNG. No shrinking is performed: a failing case
//! reports its inputs and panics directly.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Test-case RNG (one per case, deterministic in the case number).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for one numbered case. The base seed can be overridden with
    /// `PROPTEST_SEED` for reproduction.
    pub fn for_case(case: u64) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_u64);
        TestRng {
            inner: StdRng::seed_from_u64(base.wrapping_add(case.wrapping_mul(0x9E37_79B9))),
        }
    }

    fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run configuration (shim of `proptest::test_runner::Config`).
#[derive(Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value generator (shim of `proptest::strategy::Strategy`, without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
        U: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng))))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps a strategy for depth `d` into one for depth `d + 1`. The
    /// `_desired_size`/`_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from simple patterns: `&'static str` supports the
/// `[<lo>-<hi>]{m,n}` character-class-with-repetition shape the workspace
/// uses (e.g. `"[a-d]{0,3}"`); any other pattern is treated as a literal.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((lo, hi, min, max)) => {
                let len = min + rng.below(max - min + 1);
                (0..len)
                    .map(|_| {
                        let span = (hi as u32) - (lo as u32) + 1;
                        char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                            .expect("ASCII class")
                    })
                    .collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[x-y]{m,n}` into `(x, y, m, n)`.
fn parse_class_repeat(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || hi < lo {
        return None;
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = body.split_once(',')?;
    let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
    if min > max {
        return None;
    }
    Some((lo, hi, min, max))
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Uniform choice between strategies of a common value type (the engine
/// behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use super::*;

    /// A `Vec` of values with a length drawn from `len`.
    pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| {
            let n = len.start + rng.below(len.end - len.start);
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }

    /// A `BTreeMap` with approximately `len` entries (duplicate keys
    /// collapse, matching upstream semantics).
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy + 'static,
        V: Strategy + 'static,
        K::Value: Ord + 'static,
        V::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| {
            let n = len.start + rng.below(len.end - len.start);
            (0..n)
                .map(|_| (key.generate(rng), value.generate(rng)))
                .collect()
        }))
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice between the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {case} failed: {e}\ninputs:{}",
                            [$(format!("\n  {} = {:?}", stringify!($arg), $arg)),*].concat()
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in prop::collection::vec(0usize..4, 1..5)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn string_patterns_generate_the_class(s in "[a-d]{0,3}") {
            prop_assert!(s.len() <= 3, "{}", s);
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
        }

        #[test]
        fn oneof_and_map_combine(v in prop_oneof![
            (0u64..5).prop_map(|n| n.to_string()),
            Just("fixed".to_string()),
        ]) {
            prop_assert!(v == "fixed" || v.parse::<u64>().unwrap() < 5);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum T {
            Leaf(u64),
            Node(Vec<T>),
        }
        let strat = (0u64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(T::Node)
            });
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..50 {
            fn depth(t: &T) -> usize {
                match t {
                    T::Leaf(_) => 0,
                    T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
