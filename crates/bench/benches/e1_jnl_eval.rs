//! E1 (Prop 1): deterministic JNL evaluation scaling in |J| and |φ|, with
//! the reference oracle as baseline.

use bench::{e1_formula, e1_formula_sized, scaling_doc};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsondata::JsonTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_jnl_eval");
    g.sample_size(10);
    let phi = e1_formula();
    for exp in [10u32, 12, 14] {
        let doc = scaling_doc(1 << exp, 1);
        let tree = JsonTree::build(&doc);
        g.bench_with_input(
            BenchmarkId::new("linear_prop1", tree.node_count()),
            &tree,
            |b, t| b.iter(|| jnl::eval::linear::eval(t, &phi).unwrap()),
        );
        if exp <= 12 {
            g.bench_with_input(
                BenchmarkId::new("oracle_baseline", tree.node_count()),
                &tree,
                |b, t| b.iter(|| jnl::eval::naive::eval(t, &phi)),
            );
        }
    }
    let doc = scaling_doc(1 << 12, 1);
    let tree = JsonTree::build(&doc);
    for k in [16usize, 64, 256] {
        let phi = e1_formula_sized(k);
        g.bench_with_input(
            BenchmarkId::new("formula_sweep", phi.size()),
            &phi,
            |b, p| b.iter(|| jnl::eval::linear::eval(&tree, p).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
