//! The Theorem 1 and Theorem 3 translations: JSON Schema ⇄ JSL.
//!
//! [`schema_to_jsl`] produces a [`RecursiveJsl`] whose base formula holds at
//! a document's root iff the schema validates it; `definitions`/`$ref`
//! become formula definitions/variables (Theorem 3). [`jsl_to_schema`] is
//! the reverse construction from the appendix. Both directions are
//! differentially tested against the independent validator.

use jsl::ast::{Jsl, NodeTest};
use jsl::recursive::RecursiveJsl;
use jsondata::{Json, JsonPointer};
use relex::Regex;

use crate::ir::{Schema, SchemaError, SchemaType};

/// Theorem 1 / Theorem 3, schema → logic.
pub fn schema_to_jsl(schema: &Schema) -> Result<RecursiveJsl, SchemaError> {
    let mut defs = Vec::new();
    for (name, s) in &schema.definitions {
        defs.push((name.clone(), body_to_jsl(s)?));
    }
    let base = body_to_jsl(schema)?;
    Ok(RecursiveJsl { defs, base })
}

fn ref_var(reference: &str) -> Result<String, SchemaError> {
    let ptr: JsonPointer = reference.parse().map_err(|_| SchemaError {
        at: reference.to_owned(),
        message: "unsupported $ref".into(),
    })?;
    let tokens = ptr.tokens();
    if tokens.len() == 2 && tokens[0] == "definitions" {
        Ok(tokens[1].clone())
    } else {
        Err(SchemaError {
            at: reference.to_owned(),
            message: "only #/definitions/<name> references are in the fragment".into(),
        })
    }
}

fn body_to_jsl(s: &Schema) -> Result<Jsl, SchemaError> {
    let mut parts: Vec<Jsl> = Vec::new();

    if let Some(r) = &s.reference {
        parts.push(Jsl::Var(ref_var(r)?));
    }
    if let Some(t) = s.ty {
        parts.push(Jsl::Test(match t {
            SchemaType::String => NodeTest::Str,
            SchemaType::Number => NodeTest::Int,
            SchemaType::Object => NodeTest::Obj,
            SchemaType::Array => NodeTest::Arr,
        }));
    }
    // Type-specific keywords are vacuous on other kinds: `¬Kind ∨ constraint`.
    if let Some((_, re)) = &s.pattern {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Str)),
            Jsl::Test(NodeTest::Pattern(re.clone())),
        ]));
    }
    if let Some(m) = s.minimum {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Int)),
            Jsl::Test(NodeTest::Min(m)),
        ]));
    }
    if let Some(m) = s.maximum {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Int)),
            Jsl::Test(NodeTest::Max(m)),
        ]));
    }
    if let Some(m) = s.multiple_of {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Int)),
            Jsl::Test(NodeTest::MultOf(m)),
        ]));
    }
    if let Some(m) = s.min_properties {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Obj)),
            Jsl::Test(NodeTest::MinCh(m)),
        ]));
    }
    if let Some(m) = s.max_properties {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Obj)),
            Jsl::Test(NodeTest::MaxCh(m)),
        ]));
    }
    for k in &s.required {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Obj)),
            Jsl::diamond_key(k, Jsl::True),
        ]));
    }
    for (k, sub) in &s.properties {
        parts.push(Jsl::box_key(k, body_to_jsl(sub)?));
    }
    for (_, re, sub) in &s.pattern_properties {
        parts.push(Jsl::BoxKey(re.clone(), Box::new(body_to_jsl(sub)?)));
    }
    if let Some(ap) = &s.additional_properties {
        // □_C ψ where C is the complement of all covered keys.
        let mut covered = Regex::Empty.to_dfa();
        for (k, _) in &s.properties {
            covered = covered.union(&Regex::literal(k).to_dfa());
        }
        for (_, re, _) in &s.pattern_properties {
            covered = covered.union(&re.to_dfa());
        }
        let c = covered.complement().to_regex();
        parts.push(Jsl::BoxKey(c, Box::new(body_to_jsl(ap)?)));
    }
    for (i, sub) in s.items.iter().enumerate() {
        parts.push(Jsl::BoxRange(
            i as u64,
            Some(i as u64),
            Box::new(body_to_jsl(sub)?),
        ));
    }
    match (&s.additional_items, s.items.is_empty()) {
        (Some(ai), _) => {
            parts.push(Jsl::BoxRange(
                s.items.len() as u64,
                None,
                Box::new(body_to_jsl(ai)?),
            ));
        }
        (None, false) => {
            // The paper's reading: items alone bounds the length.
            parts.push(Jsl::BoxRange(
                s.items.len() as u64,
                None,
                Box::new(Jsl::falsity()),
            ));
        }
        (None, true) => {}
    }
    if s.unique_items {
        parts.push(Jsl::or(vec![
            Jsl::not(Jsl::Test(NodeTest::Arr)),
            Jsl::Test(NodeTest::Unique),
        ]));
    }
    for sub in &s.all_of {
        parts.push(body_to_jsl(sub)?);
    }
    if !s.any_of.is_empty() {
        parts.push(Jsl::or(
            s.any_of.iter().map(body_to_jsl).collect::<Result<_, _>>()?,
        ));
    }
    if let Some(sub) = &s.not {
        parts.push(Jsl::not(body_to_jsl(sub)?));
    }
    if !s.enumeration.is_empty() {
        parts.push(Jsl::or(
            s.enumeration
                .iter()
                .map(|d| Jsl::Test(NodeTest::EqDoc(d.clone())))
                .collect(),
        ));
    }
    Ok(Jsl::and(parts))
}

/// Theorem 1, logic → schema (appendix construction). Only non-recursive
/// formulas: `Var` is rejected.
pub fn jsl_to_schema(phi: &Jsl) -> Result<Json, SchemaError> {
    Ok(match phi {
        Jsl::True => Json::empty_object(),
        Jsl::Var(v) => {
            return Err(SchemaError {
                at: format!("${v}"),
                message: "recursive formulas translate through schema_to_jsl's inverse only at the document level".into(),
            })
        }
        Jsl::Not(p) => obj(vec![("not", jsl_to_schema(p)?)]),
        Jsl::And(ps) => obj(vec![(
            "allOf",
            Json::Array(ps.iter().map(jsl_to_schema).collect::<Result<_, _>>()?),
        )]),
        Jsl::Or(ps) => obj(vec![(
            "anyOf",
            Json::Array(ps.iter().map(jsl_to_schema).collect::<Result<_, _>>()?),
        )]),
        Jsl::Test(t) => test_to_schema(t),
        // □_e ψ ⇒ patternProperties.
        Jsl::BoxKey(e, p) => obj(vec![(
            "patternProperties",
            obj_s(vec![(e.to_string(), jsl_to_schema(p)?)]),
        )]),
        // ◇_e ψ ⇒ ¬ □_e ¬ψ.
        Jsl::DiamondKey(e, p) => {
            let inner = Jsl::BoxKey(e.clone(), Box::new(Jsl::not((**p).clone())));
            // ◇ additionally requires the node to be an object with a
            // matching child — ¬□¬ gives exactly that (vacuity flips).
            obj(vec![("not", jsl_to_schema(&inner)?)])
        }
        // □_{i:j} ψ ⇒ items padding.
        Jsl::BoxRange(i, j, p) => {
            let sub = jsl_to_schema(p)?;
            match j {
                Some(j) => {
                    let mut items: Vec<Json> = Vec::new();
                    for _ in 0..*i {
                        items.push(Json::empty_object());
                    }
                    for _ in *i..=*j {
                        items.push(sub.clone());
                    }
                    obj(vec![
                        ("items", Json::Array(items)),
                        ("additionalItems", Json::empty_object()),
                    ])
                }
                None => {
                    let mut items: Vec<Json> = Vec::new();
                    for _ in 0..*i {
                        items.push(Json::empty_object());
                    }
                    obj(vec![
                        ("items", Json::Array(items)),
                        ("additionalItems", sub),
                    ])
                }
            }
        }
        Jsl::DiamondRange(i, j, p) => {
            let inner = Jsl::BoxRange(*i, *j, Box::new(Jsl::not((**p).clone())));
            obj(vec![("not", jsl_to_schema(&inner)?)])
        }
    })
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        .expect("distinct keys by construction")
}

fn obj_s(pairs: Vec<(String, Json)>) -> Json {
    Json::object(pairs).expect("distinct keys by construction")
}

fn test_to_schema(t: &NodeTest) -> Json {
    match t {
        NodeTest::Obj => obj(vec![("type", Json::str("object"))]),
        NodeTest::Arr => obj(vec![("type", Json::str("array"))]),
        NodeTest::Str => obj(vec![("type", Json::str("string"))]),
        NodeTest::Int => obj(vec![("type", Json::str("number"))]),
        NodeTest::Pattern(e) => obj(vec![
            ("type", Json::str("string")),
            ("pattern", Json::str(e.to_string())),
        ]),
        NodeTest::Min(i) => obj(vec![
            ("type", Json::str("number")),
            ("minimum", Json::Num(*i)),
        ]),
        NodeTest::Max(i) => obj(vec![
            ("type", Json::str("number")),
            ("maximum", Json::Num(*i)),
        ]),
        NodeTest::MultOf(i) => obj(vec![
            ("type", Json::str("number")),
            ("multipleOf", Json::Num((*i).max(1))),
        ]),
        NodeTest::Unique => obj(vec![
            ("type", Json::str("array")),
            ("uniqueItems", Json::str("true")),
        ]),
        NodeTest::EqDoc(d) => obj(vec![("enum", Json::Array(vec![d.clone()]))]),
        // MinCh(i): object with ≥ i properties, or array longer than i-1.
        NodeTest::MinCh(i) => {
            if *i == 0 {
                return Json::empty_object();
            }
            let arr_at_least = obj(vec![
                ("type", Json::str("array")),
                (
                    "not",
                    obj(vec![(
                        "items",
                        Json::Array(vec![Json::empty_object(); (*i - 1) as usize]),
                    )]),
                ),
            ]);
            obj(vec![(
                "anyOf",
                Json::Array(vec![
                    obj(vec![
                        ("type", Json::str("object")),
                        ("minProperties", Json::Num(*i)),
                    ]),
                    arr_at_least,
                ]),
            )])
        }
        // MaxCh(i): every kind with ≤ i children (leaves always qualify).
        NodeTest::MaxCh(i) => obj(vec![(
            "anyOf",
            Json::Array(vec![
                obj(vec![
                    ("type", Json::str("object")),
                    ("maxProperties", Json::Num(*i)),
                ]),
                obj(vec![
                    ("type", Json::str("array")),
                    (
                        "items",
                        Json::Array(vec![Json::empty_object(); *i as usize]),
                    ),
                ]),
                obj(vec![("type", Json::str("string"))]),
                obj(vec![("type", Json::str("number"))]),
            ]),
        )]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use jsondata::{parse, JsonTree};

    fn docs() -> Vec<Json> {
        [
            "0",
            "7",
            "12",
            r#""0101""#,
            r#""juan@ciws.cl""#,
            r#""x""#,
            "{}",
            "[]",
            r#"{"name": "x", "aba": 4, "other": 1}"#,
            r#"{"name": 3}"#,
            r#"{"aca": 3}"#,
            r#"{"other": 2}"#,
            r#"["a", "b", 1, 2]"#,
            r#"["a", "a"]"#,
            r#"[1, 2, 3]"#,
            r#"{"a": {"b": [1, "x"]}}"#,
            r#"[[], {}, 0, ""]"#,
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect()
    }

    fn assert_theorem1(schema_src: &str) {
        let schema = Schema::parse_str(schema_src).unwrap();
        let delta = schema_to_jsl(&schema).unwrap();
        assert_eq!(delta.well_formed(), Ok(()));
        for doc in docs() {
            let via_validator = is_valid(&schema, &doc).unwrap();
            let via_jsl = delta.check_root(&JsonTree::build(&doc));
            assert_eq!(via_validator, via_jsl, "schema {schema_src}, doc {doc}");
        }
    }

    #[test]
    fn theorem1_on_paper_schemas() {
        assert_theorem1(r#"{"type": "string", "pattern": "(0|1)+"}"#);
        assert_theorem1(r#"{"type": "number", "maximum": 12, "multipleOf": 4}"#);
        assert_theorem1(
            r#"{
            "type": "object",
            "properties": {"name": {"type": "string"}},
            "patternProperties": {"a(b|c)a": {"type": "number", "multipleOf": 2}},
            "additionalProperties": {"type": "number", "minimum": 1, "maximum": 1}
        }"#,
        );
        assert_theorem1(
            r#"{
            "type": "array",
            "items": [{"type": "string"}, {"type": "string"}],
            "additionalItems": {"type": "number"},
            "uniqueItems": "true"
        }"#,
        );
        assert_theorem1(r#"{"not": {"type": "number", "multipleOf": 2}}"#);
        assert_theorem1(r#"{"enum": [1, "a", {"k": [2]}]}"#);
        assert_theorem1(
            r#"{"anyOf": [{"type": "string"}, {"type": "number", "minimum": 5}],
                "allOf": [{"not": {"enum": [7]}}]}"#,
        );
        assert_theorem1(r#"{"required": ["name", "aba"], "minProperties": 2}"#);
        assert_theorem1(r#"{"type": "array", "items": [{"type": "number"}]}"#);
    }

    #[test]
    fn theorem3_recursive_schema() {
        // The paper's email example: ¬email via definitions.
        let src = r##"{
            "definitions": {"email": {"type": "string", "pattern": "[A-z]*@ciws\\.cl"}},
            "not": {"$ref": "#/definitions/email"}
        }"##;
        let schema = Schema::parse_str(src).unwrap();
        let delta = schema_to_jsl(&schema).unwrap();
        assert_eq!(delta.defs.len(), 1);
        for doc in docs() {
            let via_validator = is_valid(&schema, &doc).unwrap();
            let via_jsl = delta.check_root(&JsonTree::build(&doc));
            assert_eq!(via_validator, via_jsl, "doc {doc}");
        }
    }

    #[test]
    fn theorem3_recursive_list_schema() {
        // A genuinely recursive schema: a cons-list of numbers.
        // list = {} (nil) | {"head": number, "tail": list}
        let src = r##"{
            "definitions": {
                "list": {
                    "type": "object",
                    "anyOf": [
                        {"maxProperties": 0},
                        {"required": ["head", "tail"],
                         "properties": {
                             "head": {"type": "number"},
                             "tail": {"$ref": "#/definitions/list"}},
                         "additionalProperties": {"not": {}}}
                    ]
                }
            },
            "$ref": "#/definitions/list"
        }"##;
        let schema = Schema::parse_str(src).unwrap();
        let delta = schema_to_jsl(&schema).unwrap();
        assert_eq!(delta.well_formed(), Ok(()));
        let good = [
            "{}",
            r#"{"head": 1, "tail": {}}"#,
            r#"{"head": 1, "tail": {"head": 2, "tail": {}}}"#,
        ];
        let bad = [
            r#"{"head": 1}"#,
            r#"{"head": "x", "tail": {}}"#,
            r#"{"head": 1, "tail": {"head": 2}}"#,
            "[]",
            "3",
        ];
        for d in good {
            let doc = parse(d).unwrap();
            assert!(is_valid(&schema, &doc).unwrap(), "validator accepts {d}");
            assert!(delta.check_root(&JsonTree::build(&doc)), "jsl accepts {d}");
        }
        for d in bad {
            let doc = parse(d).unwrap();
            assert!(!is_valid(&schema, &doc).unwrap(), "validator rejects {d}");
            assert!(!delta.check_root(&JsonTree::build(&doc)), "jsl rejects {d}");
        }
    }

    #[test]
    fn jsl_to_schema_inverse_direction() {
        use jsl::ast::Jsl as J;
        use jsl::ast::NodeTest as T;
        let phis = vec![
            J::Test(T::Str),
            J::Test(T::Pattern(Regex::parse("(0|1)+").unwrap())),
            J::Test(T::Min(5)),
            J::Test(T::Unique),
            J::Test(T::MinCh(2)),
            J::Test(T::MaxCh(1)),
            J::Test(T::EqDoc(parse(r#"{"k": 1}"#).unwrap())),
            J::and(vec![
                J::Test(T::Obj),
                J::diamond_key("name", J::Test(T::Str)),
            ]),
            J::or(vec![J::Test(T::Int), J::box_any_key(J::Test(T::Int))]),
            J::not(J::diamond_key("x", J::True)),
            J::BoxRange(1, Some(2), Box::new(J::Test(T::Int))),
            J::DiamondRange(0, None, Box::new(J::Test(T::Str))),
            J::BoxRange(2, None, Box::new(J::Test(T::Int))),
        ];
        for phi in phis {
            let schema_doc = jsl_to_schema(&phi).unwrap();
            let schema = Schema::parse(&schema_doc)
                .unwrap_or_else(|e| panic!("generated schema invalid for {phi}: {e}"));
            for doc in docs() {
                let via_jsl = jsl::eval::check_root(&JsonTree::build(&doc), &phi);
                let via_validator = is_valid(&schema, &doc).unwrap();
                assert_eq!(via_jsl, via_validator, "formula {phi}, doc {doc}");
            }
        }
    }
}
