//! Satellite (d): the `jsondata::gen::hostile_corpus` driven through
//! serving-layer ingestion while concurrent readers run. Rejected
//! documents must leave the snapshot, the indexes, and reader-visible
//! results exactly unchanged; accepted ones must become visible
//! atomically (epoch bump, never a torn view).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jguard::QueryError;
use jserve::{AdmissionConfig, Request, Response, Server, TenantSpec};
use jsondata::{gen, parse, parse_with_limits, ParseLimits};
use mongofind::{Collection, Filter};

fn seed() -> Collection {
    let mut coll = Collection::from_array(
        &parse(
            r#"[
            {"id": 1, "name": {"first": "Sue", "last": "Kim"}, "age": 28},
            {"id": 2, "name": {"first": "John", "last": "Doe"}, "age": 32},
            {"id": 3, "name": {"first": "Ada", "last": "Kim"}, "age": 41}
        ]"#,
        )
        .unwrap(),
    )
    .unwrap();
    assert!(coll.create_index("age"));
    coll
}

#[test]
fn hostile_ingestion_under_concurrent_readers() {
    let server = Arc::new(Server::new(
        seed(),
        AdmissionConfig {
            max_inflight: 8,
            queue_cap: 64,
            ..AdmissionConfig::default()
        },
    ));
    assert!(server.register_tenant(TenantSpec::new("ingest")));
    assert!(server.register_tenant(TenantSpec::new("reader")));

    // An indexed probe — exercises the index path so a rejected insert
    // corrupting index state (not just segments) would be caught.
    let indexed = Request::Find {
        filter: r#"{"age": {"$gte": 30}}"#.into(),
    };
    let probe = |server: &Server| -> Vec<jsondata::Json> {
        match server.serve("reader", &indexed).unwrap() {
            Response::Docs { docs, .. } => docs,
            other => panic!("find returns docs, got {other:?}"),
        }
    };
    let baseline = probe(&server);
    assert_eq!(baseline.len(), 2);

    // Concurrent readers: loop the indexed find until ingestion stops,
    // asserting every response is Ok and epochs never go backwards.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let indexed = indexed.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match server.serve("reader", &indexed) {
                        Ok(Response::Docs { epoch, docs }) => {
                            assert!(epoch >= last_epoch, "snapshot epoch went backwards");
                            last_epoch = epoch;
                            // Hostile docs carry no "age"; the indexed
                            // result set is invariant under the storm.
                            assert_eq!(docs.len(), 2);
                            served += 1;
                        }
                        Ok(other) => panic!("find returned {other:?}"),
                        // Admission shed under burst load is legal;
                        // anything else is not.
                        Err(QueryError::Overloaded) => {}
                        Err(e) => panic!("reader hit a non-admission error: {e}"),
                    }
                }
                served
            })
        })
        .collect();

    // Drive the whole hostile corpus through ingestion, twice (the
    // second pass runs against the post-accept, multi-segment layout).
    let limits = ParseLimits::default();
    for round in 0..2 {
        for (label, text) in gen::hostile_corpus(7 + round) {
            let before = server.store().snapshot();
            let before_probe = probe(&server);
            let should_parse = parse_with_limits(&text, limits).is_ok();
            let outcome = server.serve("ingest", &Request::Insert { doc: text.clone() });
            let after = server.store().snapshot();
            match outcome {
                Ok(Response::Inserted { epoch }) => {
                    assert!(should_parse, "{label}: illegal text was accepted");
                    assert_eq!(epoch, before.epoch() + 1, "{label}");
                    assert_eq!(after.collection().len(), before.collection().len() + 1);
                }
                Ok(other) => panic!("{label}: insert returned {other:?}"),
                Err(QueryError::ParseLimit(_)) => {
                    assert!(!should_parse, "{label}: legal text was rejected");
                    // Fail-closed: nothing moved.
                    assert_eq!(after.epoch(), before.epoch(), "{label}");
                    assert_eq!(after.collection().len(), before.collection().len());
                    assert_eq!(
                        server.store().log_len() as u64,
                        after.epoch(),
                        "{label}: log and epoch agree"
                    );
                }
                Err(e) => panic!("{label}: unexpected error {e}"),
            }
            // Reader-visible results across the attempt: the indexed
            // probe is invariant (hostile docs never match it).
            assert_eq!(probe(&server), before_probe, "{label}");
            assert_eq!(before_probe, baseline, "{label}");
        }
        // Compact mid-storm: layout changes, content must not.
        server.store().compact();
        assert_eq!(probe(&server), baseline, "post-compact round {round}");
    }

    stop.store(true, Ordering::Relaxed);
    let mut total_served = 0;
    for r in readers {
        total_served += r.join().expect("reader thread never panics");
    }
    assert!(total_served > 0, "readers made progress during the storm");

    // Final cross-check: the snapshot equals a serial replay of the log.
    let snap = server.store().snapshot();
    let mut replay = seed();
    for entry in server.store().log_prefix(snap.epoch() as usize) {
        replay.insert_str(&entry).expect("log entries replay");
    }
    assert_eq!(replay.len(), snap.collection().len());
    let f = Filter::parse_str(r#"{"age": {"$gte": 30}}"#).unwrap();
    assert_eq!(replay.find(&f), snap.collection().find(&f));
}
