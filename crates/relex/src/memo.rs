//! Lazy per-symbol memoisation of anchored regex membership — the
//! **fallback tier** of edge matching.
//!
//! The logic engines test edge keys and string atoms against regular
//! expressions. With keys interned to dense `u32` symbols (see
//! `jsondata::intern`), each regex needs to run **once per distinct
//! symbol** rather than once per node: a [`KeyMatchMemo`] caches the
//! verdict in a dense tri-state table indexed by symbol, filled lazily by
//! NFA runs.
//!
//! The evaluation contexts now default to the *precomputed* tier —
//! [`crate::bitset::SymMatcher`] compiles each regex to a DFA once per
//! (query, tree) and materialises the whole verdict table as a
//! [`crate::bitset::SymBitset`] in one pass. This lazy tier remains for
//! regexes whose determinisation exceeds
//! [`crate::bitset::MAX_EDGE_DFA_STATES`] (where an eager pass could be
//! arbitrarily expensive), and as the ablation baseline benchmarks compare
//! the bitset tier against.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::nfa::CompiledRegex;
use crate::Regex;

const UNKNOWN: u8 = 0;
const NO: u8 = 1;
const YES: u8 = 2;

/// A compiled regex plus a dense per-symbol verdict cache.
pub struct KeyMatchMemo {
    compiled: CompiledRegex,
    verdicts: Vec<u8>,
}

impl KeyMatchMemo {
    /// Wraps a compiled regex with an empty cache.
    pub fn new(compiled: CompiledRegex) -> KeyMatchMemo {
        KeyMatchMemo {
            compiled,
            verdicts: Vec::new(),
        }
    }

    /// Unmemoised membership test on a resolved string.
    pub fn is_match(&self, s: &str) -> bool {
        self.compiled.is_match(s)
    }

    /// Memoised membership: the string `s` behind symbol index `sym` is run
    /// through the regex at most once per distinct symbol; later calls are a
    /// table load. Symbols denote one string by contract, so the cached
    /// verdict wins regardless of the `s` passed on later calls.
    pub fn matches_str(&mut self, sym: usize, s: &str) -> bool {
        if sym >= self.verdicts.len() {
            self.verdicts.resize(sym + 1, UNKNOWN);
        }
        match self.verdicts[sym] {
            YES => true,
            NO => false,
            _ => {
                let hit = self.compiled.is_match(s);
                self.verdicts[sym] = if hit { YES } else { NO };
                hit
            }
        }
    }

    /// Number of symbols with a cached verdict (for tests/diagnostics).
    pub fn cached(&self) -> usize {
        self.verdicts.iter().filter(|&&v| v != UNKNOWN).count()
    }
}

/// A regex-keyed vector with a single-probe hit path, shared by
/// [`RegexMemoTable`] and `crate::bitset::SymMatcherTable`.
///
/// Values are keyed by a **precomputed 64-bit hash** of the regex AST: a
/// hit costs one AST hash + one `u64` map probe + one AST equality check,
/// replacing the previous `contains_key` → `insert` → `get_mut` sequence
/// that hashed the full AST up to three times per call. Hash collisions
/// between distinct regexes are handled by a per-slot bucket scan. Slots
/// are dense and stable, so callers can also hold the returned index and
/// skip the probe entirely.
pub(crate) struct RegexKeyedVec<V> {
    index: HashMap<u64, Vec<(Regex, usize)>>,
    values: Vec<V>,
}

impl<V> Default for RegexKeyedVec<V> {
    fn default() -> Self {
        RegexKeyedVec {
            index: HashMap::new(),
            values: Vec::new(),
        }
    }
}

impl<V> RegexKeyedVec<V> {
    pub(crate) fn len(&self) -> usize {
        self.values.len()
    }

    /// The slot of `e`, constructing its value on first sight.
    pub(crate) fn slot_or_insert_with(
        &mut self,
        e: &Regex,
        make: impl FnOnce(&Regex) -> V,
    ) -> usize {
        let mut h = DefaultHasher::new();
        e.hash(&mut h);
        let bucket = match self.index.entry(h.finish()) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => v.insert(Vec::new()),
        };
        if let Some((_, slot)) = bucket.iter().find(|(r, _)| r == e) {
            return *slot;
        }
        let slot = self.values.len();
        self.values.push(make(e));
        bucket.push((e.clone(), slot));
        slot
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, slot: usize) -> &mut V {
        &mut self.values[slot]
    }
}

/// A per-regex collection of [`KeyMatchMemo`]s for standalone lazy-tier
/// users (the evaluation contexts use `crate::bitset::SymMatcherTable`).
///
/// Callers iterating many symbols against one regex should still fetch the
/// memo **once** and reuse it inside the loop; the probe hashes the full
/// regex AST each call.
#[derive(Default)]
pub struct RegexMemoTable {
    memos: RegexKeyedVec<KeyMatchMemo>,
}

impl RegexMemoTable {
    /// An empty table.
    pub fn new() -> RegexMemoTable {
        RegexMemoTable::default()
    }

    /// The memo for `e`, compiling the regex on first sight (single probe;
    /// see `RegexKeyedVec`).
    pub fn memo(&mut self, e: &Regex) -> &mut KeyMatchMemo {
        let slot = self
            .memos
            .slot_or_insert_with(e, |e| KeyMatchMemo::new(e.compile()));
        self.memos.get_mut(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    #[test]
    fn memoises_per_symbol() {
        let mut memo = KeyMatchMemo::new(Regex::parse("a(b|c)a").unwrap().compile());
        for _ in 0..5 {
            assert!(memo.matches_str(0, "aba"));
            assert!(!memo.matches_str(7, "nope"));
        }
        assert_eq!(memo.cached(), 2, "only the two distinct symbols resolved");
    }

    #[test]
    fn matches_str_agrees_with_direct() {
        let mut memo = KeyMatchMemo::new(Regex::parse("x+").unwrap().compile());
        assert!(memo.matches_str(3, "xxx"));
        // Cached verdict wins even if a different string is passed for the
        // same symbol (symbols denote one string by contract).
        assert!(memo.matches_str(3, "zzz"));
        assert!(!memo.matches_str(4, "zzz"));
    }
}
