//! Static analysis of an aggregation pipeline against a declared schema.
//!
//! ```sh
//! cargo run -p json-foundations --example analyze
//! ```
//!
//! A collection declares (as a promise) that its documents never carry a
//! `legacy_id` key. The pipeline under review accumulated cruft across
//! refactors: a tautological guard, a filter shadowed by an earlier one,
//! a `$sort` immediately overwritten by a wider one, and a projection of
//! the long-gone `legacy_id`. `jstat` proves each one dead — every lint
//! is backed by a sat/containment verdict, never a heuristic — and the
//! pruning rewrite drops them without changing a single output document.

use json_foundations::agg::{reference, Pipeline};
use json_foundations::mongo::Collection;
use json_foundations::nav::ast::{Binary, Unary};
use json_foundations::schema_logic::{translate::jnl_to_jsl_cps, RecursiveJsl};
use json_foundations::stat::Analyze;

fn main() {
    // The declared schema: "no document has a `legacy_id` key" — written
    // in JNL and carried over to JSL by the paper's Theorem 2
    // translation (the same bridge the analyzer itself uses).
    let no_legacy = Unary::not(Unary::exists(Binary::key("legacy_id")));
    let schema = RecursiveJsl::plain(jnl_to_jsl_cps(&no_legacy).expect("translates"));

    let mut coll = Collection::parse_str(
        r#"[
            {"user": "sue",  "age": 28, "plan": "pro"},
            {"user": "john", "age": 32, "plan": "free"},
            {"user": "ana",  "age": 45, "plan": "pro"},
            {"user": "wei",  "age": 28}
        ]"#,
    )
    .expect("collection parses");
    coll.set_schema(schema).expect("schema is well-formed");

    let pipe = Pipeline::parse_str(
        r#"[
            {"$match": {"$or": [{"plan": {"$exists": "true"}},
                                {"plan": {"$exists": "false"}}]}},
            {"$match": {"plan": "pro"}},
            {"$match": {"plan": {"$exists": "true"}}},
            {"$sort": {"age": 1}},
            {"$sort": {"age": 1, "user": 1}},
            {"$project": {"user": 1, "age": 1, "legacy_id": 1}}
        ]"#,
    )
    .expect("pipeline parses");

    let report = pipe.analyze(coll.schema());
    println!("analysis of a {}-stage pipeline:\n", pipe.stages.len());
    for d in &report.diagnostics {
        println!("  {d}");
    }

    let pruned = pipe.prune(&report);
    println!(
        "\npruned: {} stages -> {} stages",
        pipe.stages.len(),
        pruned.stages.len()
    );

    // The rewrite is semantics-preserving: identical output documents.
    let before = reference::aggregate(coll.docs(), &pipe);
    let after = reference::aggregate(coll.docs(), &pruned);
    assert_eq!(before, after, "prune must not change the output");
    println!("output identical on {} result documents:", after.len());
    for doc in &after {
        println!("  {doc}");
    }
}
