//! Quickstart: the paper's Figure 1 document, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use json_foundations::prelude::*;
use json_foundations::schema::{is_valid, Schema};
use json_foundations::schema_logic::ast::{Jsl, NodeTest};

fn main() {
    // ---- §2: the JSON fragment and navigation instructions ----
    let doc = parse(
        r#"{
        "name": { "first": "John", "last": "Doe" },
        "age": 32,
        "hobbies": ["fishing", "yoga"]
    }"#,
    )
    .expect("Figure 1 parses");
    println!("document      : {doc}");
    println!(
        "J[name][first]: {}",
        doc.get("name").unwrap().get("first").unwrap()
    );
    println!(
        "J[hobbies][1] : {}",
        doc.get("hobbies").unwrap().index(1).unwrap()
    );

    // ---- §3: the JSON tree model (fused: text → tree in one pass) ----
    let tree = jsondata::parse_to_tree(&doc.to_string()).expect("round-trip parses");
    assert!(tree.identical(&JsonTree::build(&doc)));
    println!(
        "\ntree: {} nodes, height {}",
        tree.node_count(),
        tree.height()
    );
    for n in tree.node_ids() {
        println!(
            "  {:<22} {:<7} json(n) = {}",
            tree.path_string(n),
            tree.kind(n).to_string(),
            tree.json_at(n)
        );
    }

    // ---- §4: JNL queries ----
    let phi = jnl::parse_unary(
        r#"eqdoc(@"name" ; @"first", "John") & [@"hobbies" ; @-1] & !eqdoc(@"age", 31)"#,
    )
    .expect("well-formed JNL");
    println!("\nJNL  {phi}");
    println!(
        "  root satisfies it: {}",
        jnl::eval::check_root(&tree, &phi)
    );

    // ---- §5: JSL and JSON Schema ----
    let schema = Schema::parse_str(
        r#"{
        "type": "object",
        "required": ["name", "age"],
        "properties": {
            "age": {"type": "number", "minimum": 18},
            "hobbies": {"type": "array", "additionalItems": {"type": "string"},
                        "uniqueItems": "true"}
        }
    }"#,
    )
    .expect("schema parses");
    println!("\nschema validates: {}", is_valid(&schema, &doc).unwrap());

    // Theorem 1: the same schema as a JSL formula.
    let delta = json_foundations::schema::schema_to_jsl(&schema).unwrap();
    println!("as JSL          : {}", delta.base);
    println!("JSL agrees      : {}", delta.check_root(&tree));

    // A direct JSL formula.
    let adult = Jsl::diamond_key("age", Jsl::Test(NodeTest::Min(18)));
    println!("◇_age Min(18)   : {}", jsl::eval::check_root(&tree, &adult));
}
