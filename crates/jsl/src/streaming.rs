//! Streaming JSL validation — the §6 "Streaming" future-work item.
//!
//! The paper suspects that the deterministic fragments of JNL/JSL "might
//! actually be shown to be evaluated in a streaming context with constant
//! memory requirements when tree equality is excluded". This module
//! implements the natural streaming evaluator for JSL over a SAX-style
//! event sequence and makes the memory profile precise:
//!
//! * the document is **never materialised** — one pass over events;
//! * working memory is `O(depth(J) · |φ|)`: one frame per open container,
//!   each holding a truth accumulator per subformula (constant per
//!   nesting level, which is the streaming-validation currency; truly
//!   depth-independent memory is impossible for formulas that look below
//!   more than one level);
//! * supported: the full logic — including non-deterministic key regexes
//!   and position ranges — **except** `Unique` and `∼(A)` for container
//!   documents, both of which need subtree buffering (exactly the "tree
//!   equality" the paper excludes).
//!
//! ```
//! use jsl::ast::{Jsl, NodeTest};
//! use jsl::streaming::{validate_stream, events_of};
//!
//! let doc = jsondata::parse(r#"{"age": 42}"#).unwrap();
//! let phi = Jsl::diamond_key("age", Jsl::Test(NodeTest::Min(18)));
//! assert!(validate_stream(&phi, events_of(&doc)).unwrap());
//! ```

use std::fmt;

use jsondata::Json;
use relex::CompiledRegex;

use crate::ast::{Jsl, NodeTest};

/// A SAX-style document event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `{` — an object opens.
    BeginObject,
    /// The key of the next member (objects only).
    Key(String),
    /// `[` — an array opens.
    BeginArray,
    /// `}` / `]` — the innermost container closes.
    End,
    /// A string leaf.
    Str(String),
    /// A number leaf.
    Num(u64),
}

/// Serialises a document into its event sequence (iteratively; safe on
/// deep documents).
pub fn events_of(doc: &Json) -> Vec<Event> {
    enum W<'a> {
        Value(&'a Json),
        KeyThen(&'a str, &'a Json),
        End,
    }
    let mut out = Vec::new();
    let mut stack = vec![W::Value(doc)];
    while let Some(w) = stack.pop() {
        match w {
            W::End => out.push(Event::End),
            W::KeyThen(k, v) => {
                out.push(Event::Key(k.to_owned()));
                stack.push(W::Value(v));
            }
            W::Value(Json::Str(s)) => out.push(Event::Str(s.clone())),
            W::Value(Json::Num(n)) => out.push(Event::Num(*n)),
            W::Value(Json::Array(items)) => {
                out.push(Event::BeginArray);
                stack.push(W::End);
                for item in items.iter().rev() {
                    stack.push(W::Value(item));
                }
            }
            W::Value(Json::Object(o)) => {
                out.push(Event::BeginObject);
                stack.push(W::End);
                let pairs: Vec<(&str, &Json)> = o.iter().collect();
                for (k, v) in pairs.into_iter().rev() {
                    stack.push(W::KeyThen(k, v));
                }
            }
        }
    }
    out
}

/// Why a formula cannot be validated in streaming mode.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamingUnsupported {
    /// `Unique` compares whole sibling subtrees.
    Unique,
    /// `∼(A)` for a container `A` compares a whole subtree.
    ContainerEqDoc(Json),
    /// Free formula variable (recursive JSL is not streamed here).
    FreeVariable(String),
    /// Malformed event sequence.
    BadStream(String),
}

impl fmt::Display for StreamingUnsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamingUnsupported::Unique => {
                write!(
                    f,
                    "Unique requires subtree buffering (excluded tree equality)"
                )
            }
            StreamingUnsupported::ContainerEqDoc(d) => {
                write!(f, "~({d}) on containers requires subtree buffering")
            }
            StreamingUnsupported::FreeVariable(v) => write!(f, "free variable ${v}"),
            StreamingUnsupported::BadStream(m) => write!(f, "malformed event stream: {m}"),
        }
    }
}

impl std::error::Error for StreamingUnsupported {}

/// Validates a formula against an event stream; `Ok(true)` iff the
/// document satisfies `φ` at the root.
pub fn validate_stream(
    phi: &Jsl,
    events: impl IntoIterator<Item = Event>,
) -> Result<bool, StreamingUnsupported> {
    let mut v = StreamingValidator::new(phi)?;
    for e in events {
        v.feed(&e)?;
    }
    v.finish()
}

/// The subformula table: children indices precede parents (post-order).
struct Table {
    subs: Vec<Jsl>,
    regexes: Vec<Option<CompiledRegex>>,
    /// Index of each direct subformula within `subs`.
    child_idx: Vec<Vec<usize>>,
}

/// One open container (or the virtual root) during the pass.
struct Frame {
    /// Kind: None = virtual root slot, Some(true) = object, Some(false) = array.
    is_object: Option<bool>,
    /// Children seen so far.
    child_count: u64,
    /// Pending key for the next object member.
    pending_key: Option<String>,
    /// Per modal subformula: the accumulated ∃/∀ verdicts over children.
    exists_acc: Vec<bool>,
    forall_acc: Vec<bool>,
    /// The truth vector of the completed value in this slot (filled when
    /// the child value closes; the root slot receives the final answer).
    completed: Option<Vec<bool>>,
}

impl Frame {
    fn new(is_object: Option<bool>, n_subs: usize) -> Frame {
        Frame {
            is_object,
            child_count: 0,
            pending_key: None,
            exists_acc: vec![false; n_subs],
            forall_acc: vec![true; n_subs],
            completed: None,
        }
    }
}

/// An incremental streaming validator.
pub struct StreamingValidator {
    table: Table,
    stack: Vec<Frame>,
}

impl StreamingValidator {
    /// Compiles the formula (rejecting constructs that need subtree
    /// buffering) and prepares the virtual root frame.
    pub fn new(phi: &Jsl) -> Result<StreamingValidator, StreamingUnsupported> {
        let mut table = Table {
            subs: Vec::new(),
            regexes: Vec::new(),
            child_idx: Vec::new(),
        };
        collect(phi, &mut table)?;
        let n = table.subs.len();
        Ok(StreamingValidator {
            table,
            stack: vec![Frame::new(None, n)],
        })
    }

    /// Feeds one event.
    pub fn feed(&mut self, event: &Event) -> Result<(), StreamingUnsupported> {
        let n = self.table.subs.len();
        match event {
            Event::BeginObject => self.stack.push(Frame::new(Some(true), n)),
            Event::BeginArray => self.stack.push(Frame::new(Some(false), n)),
            Event::Key(k) => {
                let top = self.top()?;
                if top.is_object != Some(true) {
                    return Err(StreamingUnsupported::BadStream(
                        "Key outside an object".into(),
                    ));
                }
                top.pending_key = Some(k.clone());
            }
            Event::Str(s) => {
                let truth = self.leaf_truth(LeafKind::Str(s));
                self.close_value(truth)?;
            }
            Event::Num(v) => {
                let truth = self.leaf_truth(LeafKind::Num(*v));
                self.close_value(truth)?;
            }
            Event::End => {
                let frame = self
                    .stack
                    .pop()
                    .ok_or_else(|| StreamingUnsupported::BadStream("unmatched End".into()))?;
                if frame.is_object.is_none() {
                    return Err(StreamingUnsupported::BadStream(
                        "End at the root slot".into(),
                    ));
                }
                let truth = self.container_truth(&frame);
                self.close_value(truth)?;
            }
        }
        Ok(())
    }

    /// Finishes the pass, returning the root verdict.
    pub fn finish(mut self) -> Result<bool, StreamingUnsupported> {
        if self.stack.len() != 1 {
            return Err(StreamingUnsupported::BadStream(
                "unclosed containers".into(),
            ));
        }
        let root = self.stack.pop().expect("root frame");
        let completed = root
            .completed
            .ok_or_else(|| StreamingUnsupported::BadStream("empty stream".into()))?;
        Ok(*completed.last().expect("nonempty formula"))
    }

    fn top(&mut self) -> Result<&mut Frame, StreamingUnsupported> {
        self.stack
            .last_mut()
            .ok_or_else(|| StreamingUnsupported::BadStream("event after the document".into()))
    }

    /// A completed value (truth vector) is attributed to the parent frame.
    fn close_value(&mut self, truth: Vec<bool>) -> Result<(), StreamingUnsupported> {
        let table = &self.table;
        let frame = self
            .stack
            .last_mut()
            .ok_or_else(|| StreamingUnsupported::BadStream("value after the document".into()))?;
        match frame.is_object {
            None => {
                if frame.completed.is_some() {
                    return Err(StreamingUnsupported::BadStream(
                        "two top-level values".into(),
                    ));
                }
                frame.completed = Some(truth);
            }
            Some(true) => {
                let key = frame.pending_key.take().ok_or_else(|| {
                    StreamingUnsupported::BadStream("object member without a key".into())
                })?;
                for (i, sub) in table.subs.iter().enumerate() {
                    match sub {
                        Jsl::DiamondKey(_, _) | Jsl::BoxKey(_, _) => {
                            let matches = table.regexes[i]
                                .as_ref()
                                .expect("key modality compiled")
                                .is_match(&key);
                            if matches {
                                let body = table.child_idx[i][0];
                                if truth[body] {
                                    frame.exists_acc[i] = true;
                                } else {
                                    frame.forall_acc[i] = false;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                frame.child_count += 1;
            }
            Some(false) => {
                let pos = frame.child_count;
                for (i, sub) in table.subs.iter().enumerate() {
                    if let Jsl::DiamondRange(lo, hi, _) | Jsl::BoxRange(lo, hi, _) = sub {
                        if pos >= *lo && hi.is_none_or(|h| pos <= h) {
                            let body = table.child_idx[i][0];
                            if truth[body] {
                                frame.exists_acc[i] = true;
                            } else {
                                frame.forall_acc[i] = false;
                            }
                        }
                    }
                }
                frame.child_count += 1;
            }
        }
        Ok(())
    }

    fn leaf_truth(&self, leaf: LeafKind<'_>) -> Vec<bool> {
        let table = &self.table;
        let mut out = vec![false; table.subs.len()];
        for i in 0..table.subs.len() {
            out[i] = match &table.subs[i] {
                Jsl::True => true,
                Jsl::Not(_) => !out[table.child_idx[i][0]],
                Jsl::And(_) => table.child_idx[i].iter().all(|&c| out[c]),
                Jsl::Or(_) => table.child_idx[i].iter().any(|&c| out[c]),
                // Leaves have no children: ◇ false, □ vacuous.
                Jsl::DiamondKey(_, _) | Jsl::DiamondRange(_, _, _) => false,
                Jsl::BoxKey(_, _) | Jsl::BoxRange(_, _, _) => true,
                Jsl::Var(_) => unreachable!("rejected at compile"),
                Jsl::Test(t) => match (&leaf, t) {
                    (LeafKind::Str(_), NodeTest::Str) => true,
                    (LeafKind::Str(s), NodeTest::Pattern(_)) => table.regexes[i]
                        .as_ref()
                        .expect("pattern compiled")
                        .is_match(s),
                    (LeafKind::Str(s), NodeTest::EqDoc(Json::Str(d))) => *s == d,
                    (LeafKind::Num(_), NodeTest::Int) => true,
                    (LeafKind::Num(v), NodeTest::Min(m)) => v >= m,
                    (LeafKind::Num(v), NodeTest::Max(m)) => v <= m,
                    (LeafKind::Num(v), NodeTest::MultOf(m)) => {
                        if *m == 0 {
                            *v == 0
                        } else {
                            v % m == 0
                        }
                    }
                    (LeafKind::Num(v), NodeTest::EqDoc(Json::Num(d))) => v == d,
                    (_, NodeTest::MinCh(m)) => *m == 0,
                    (_, NodeTest::MaxCh(_)) => true,
                    _ => false,
                },
            };
        }
        out
    }

    fn container_truth(&self, frame: &Frame) -> Vec<bool> {
        let table = &self.table;
        let is_object = frame.is_object == Some(true);
        let mut out = vec![false; table.subs.len()];
        for i in 0..table.subs.len() {
            out[i] = match &table.subs[i] {
                Jsl::True => true,
                Jsl::Not(_) => !out[table.child_idx[i][0]],
                Jsl::And(_) => table.child_idx[i].iter().all(|&c| out[c]),
                Jsl::Or(_) => table.child_idx[i].iter().any(|&c| out[c]),
                Jsl::DiamondKey(_, _) => is_object && frame.exists_acc[i],
                Jsl::BoxKey(_, _) => !is_object || frame.forall_acc[i],
                Jsl::DiamondRange(_, _, _) => !is_object && frame.exists_acc[i],
                Jsl::BoxRange(_, _, _) => is_object || frame.forall_acc[i],
                Jsl::Var(_) => unreachable!("rejected at compile"),
                Jsl::Test(t) => match t {
                    NodeTest::Obj => is_object,
                    NodeTest::Arr => !is_object,
                    NodeTest::MinCh(m) => frame.child_count >= *m,
                    NodeTest::MaxCh(m) => frame.child_count <= *m,
                    // Only the empty-container documents are streamable for
                    // ∼(A) on containers (rejected otherwise at compile,
                    // except {} and [] which need no buffering).
                    NodeTest::EqDoc(Json::Object(o)) => {
                        is_object && o.is_empty() && frame.child_count == 0
                    }
                    NodeTest::EqDoc(Json::Array(a)) => {
                        !is_object && a.is_empty() && frame.child_count == 0
                    }
                    _ => false,
                },
            };
        }
        out
    }
}

enum LeafKind<'a> {
    Str(&'a str),
    Num(u64),
}

/// Post-order subformula collection with streamability checks.
fn collect(phi: &Jsl, table: &mut Table) -> Result<usize, StreamingUnsupported> {
    let children: Vec<usize> = match phi {
        Jsl::True => Vec::new(),
        Jsl::Var(v) => return Err(StreamingUnsupported::FreeVariable(v.clone())),
        Jsl::Test(NodeTest::Unique) => return Err(StreamingUnsupported::Unique),
        Jsl::Test(NodeTest::EqDoc(d)) => {
            // Non-empty containers would require buffering.
            match d {
                Json::Object(o) if !o.is_empty() => {
                    return Err(StreamingUnsupported::ContainerEqDoc(d.clone()))
                }
                Json::Array(a) if !a.is_empty() => {
                    return Err(StreamingUnsupported::ContainerEqDoc(d.clone()))
                }
                _ => Vec::new(),
            }
        }
        Jsl::Test(_) => Vec::new(),
        Jsl::Not(p) => vec![collect(p, table)?],
        Jsl::And(ps) | Jsl::Or(ps) => ps
            .iter()
            .map(|p| collect(p, table))
            .collect::<Result<_, _>>()?,
        Jsl::DiamondKey(_, p)
        | Jsl::BoxKey(_, p)
        | Jsl::DiamondRange(_, _, p)
        | Jsl::BoxRange(_, _, p) => vec![collect(p, table)?],
    };
    let idx = table.subs.len();
    table.subs.push(phi.clone());
    table.regexes.push(match phi {
        Jsl::DiamondKey(e, _) | Jsl::BoxKey(e, _) => Some(e.compile()),
        Jsl::Test(NodeTest::Pattern(e)) => Some(e.compile()),
        _ => None,
    });
    table.child_idx.push(children);
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Jsl as J;
    use crate::ast::NodeTest as T;
    use jsondata::{parse, JsonTree};
    use relex::Regex;

    fn agree(phi: &J, src: &str) {
        let doc = parse(src).unwrap();
        let tree = JsonTree::build(&doc);
        let via_tree = crate::eval::check_root(&tree, phi);
        let via_stream = validate_stream(phi, events_of(&doc)).unwrap();
        assert_eq!(via_tree, via_stream, "formula {phi}, doc {src}");
    }

    #[test]
    fn streaming_matches_tree_evaluation() {
        let phis = vec![
            J::diamond_key("age", J::Test(T::Min(18))),
            J::box_any_key(J::Test(T::Int)),
            J::and(vec![
                J::Test(T::Obj),
                J::not(J::diamond_key("missing", J::True)),
                J::Test(T::MinCh(1)),
            ]),
            J::DiamondKey(
                Regex::parse("a(b|c)a").unwrap(),
                Box::new(J::Test(T::MultOf(2))),
            ),
            J::DiamondRange(1, Some(2), Box::new(J::Test(T::EqDoc(Json::Num(7))))),
            J::BoxRange(
                0,
                None,
                Box::new(J::or(vec![J::Test(T::Str), J::Test(T::Int)])),
            ),
            J::Test(T::EqDoc(Json::Str("hello".into()))),
            J::Test(T::EqDoc(Json::empty_object())),
            J::diamond_key(
                "nested",
                J::diamond_key("deep", J::Test(T::Pattern(Regex::parse("x+").unwrap()))),
            ),
        ];
        let docs = [
            r#"{"age": 42}"#,
            r#"{"age": 12, "x": 1}"#,
            r#"{"aba": 4, "aca": 3}"#,
            r#"[5, 7, 9]"#,
            r#"[5, 6, 7]"#,
            r#"["a", 1, "b"]"#,
            r#""hello""#,
            r#"{}"#,
            r#"{"nested": {"deep": "xxx"}}"#,
            r#"{"nested": {"deep": "y"}}"#,
            r#"[]"#,
            "3",
        ];
        for phi in &phis {
            for doc in docs {
                agree(phi, doc);
            }
        }
    }

    #[test]
    fn streaming_matches_on_random_documents() {
        let phi = J::and(vec![
            J::or(vec![
                J::diamond_key("a", J::True),
                J::box_any_key(J::not(J::Test(T::EqDoc(Json::Num(3))))),
            ]),
            J::not(J::DiamondRange(0, Some(1), Box::new(J::Test(T::Str)))),
        ]);
        for seed in 0..40 {
            let doc = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(seed, 120));
            let tree = JsonTree::build(&doc);
            let via_tree = crate::eval::check_root(&tree, &phi);
            let via_stream = validate_stream(&phi, events_of(&doc)).unwrap();
            assert_eq!(via_tree, via_stream, "seed {seed}, doc {doc}");
        }
    }

    #[test]
    fn memory_is_depth_bounded_not_document_bounded() {
        // A wide flat array: frames never exceed depth 2.
        let doc = jsondata::gen::wide_array(50_000);
        let phi = J::BoxRange(0, None, Box::new(J::Test(T::Int)));
        let mut v = StreamingValidator::new(&phi).unwrap();
        let mut max_depth = 0usize;
        for e in events_of(&doc) {
            v.feed(&e).unwrap();
            max_depth = max_depth.max(v.stack.len());
        }
        assert!(v.finish().unwrap());
        assert!(max_depth <= 2, "stack depth {max_depth}");
    }

    #[test]
    fn unsupported_constructs_are_rejected() {
        assert_eq!(
            StreamingValidator::new(&J::Test(T::Unique)).err(),
            Some(StreamingUnsupported::Unique)
        );
        let container = parse(r#"{"k": 1}"#).unwrap();
        assert!(matches!(
            StreamingValidator::new(&J::Test(T::EqDoc(container))).err(),
            Some(StreamingUnsupported::ContainerEqDoc(_))
        ));
        assert!(matches!(
            StreamingValidator::new(&J::Var("g".into())).err(),
            Some(StreamingUnsupported::FreeVariable(_))
        ));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let phi = J::True;
        // Key outside an object.
        let mut v = StreamingValidator::new(&phi).unwrap();
        assert!(v.feed(&Event::Key("k".into())).is_err());
        // Unmatched End.
        let mut v = StreamingValidator::new(&phi).unwrap();
        assert!(v.feed(&Event::End).is_err());
        // Unclosed container.
        let mut v = StreamingValidator::new(&phi).unwrap();
        v.feed(&Event::BeginArray).unwrap();
        assert!(v.finish().is_err());
        // Two top-level values.
        let mut v = StreamingValidator::new(&phi).unwrap();
        v.feed(&Event::Num(1)).unwrap();
        assert!(v.feed(&Event::Num(2)).is_err());
    }

    #[test]
    fn event_serialisation_round_trips_structure() {
        let doc = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let events = events_of(&doc);
        assert_eq!(events.iter().filter(|e| matches!(e, Event::End)).count(), 4);
        assert_eq!(
            events.iter().filter(|e| matches!(e, Event::Key(_))).count(),
            3
        );
    }
}
