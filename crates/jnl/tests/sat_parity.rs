//! Differential parity between the Sym-keyed deterministic sat solver
//! ([`jnl::sat::det`]) and the frozen string-keyed oracle
//! ([`jnl::sat::det_str`]), on the shared seeded formula sweeps
//! ([`jnl::gen`]) that also drive `harness s8`.
//!
//! Two contracts are pinned:
//!
//! 1. **Verdict parity** — on every generated formula the two engines
//!    agree Sat/Unsat/Unknown. (Witness *documents* may legitimately
//!    differ: the engines make branch choices over differently-ordered
//!    key spaces.)
//! 2. **Closed-loop witness validity** — every witness either engine
//!    returns actually satisfies its formula through the production
//!    evaluator (`jnl::eval::check_root`), closing the loop from solver
//!    to evaluator rather than trusting the solvers' internal
//!    re-verification.

use jnl::ast::Unary;
use jnl::check_root;
use jnl::sat::det::sat_deterministic;
use jnl::sat::det_str::sat_deterministic_strings;
use jnl::sat::SatResult;
use jsondata::JsonTree;

fn verdict(r: &SatResult) -> &'static str {
    match r {
        SatResult::Sat(_) => "sat",
        SatResult::Unsat => "unsat",
        SatResult::Unknown(_) => "unknown",
    }
}

fn assert_witness_valid(phi: &Unary, r: &SatResult, engine: &str) {
    if let SatResult::Sat(w) = r {
        let tree = JsonTree::build(w);
        assert!(
            check_root(&tree, phi),
            "{engine} witness fails its own formula\n  formula: {phi}\n  witness: {w}"
        );
    }
}

/// One sweep: both engines on every formula, parity + witness checks,
/// returning the verdict tally so callers can assert non-vacuity.
fn sweep(seed: u64, count: usize, depth: usize) -> (usize, usize, usize) {
    let (mut sat, mut unsat, mut unknown) = (0, 0, 0);
    for phi in jnl::gen::formulas(seed, count, depth) {
        let symed = sat_deterministic(&phi);
        let strung = sat_deterministic_strings(&phi);
        assert_eq!(
            verdict(&symed),
            verdict(&strung),
            "engines disagree on {phi}\n  sym: {symed:?}\n  str: {strung:?}"
        );
        assert_witness_valid(&phi, &symed, "sym-keyed");
        assert_witness_valid(&phi, &strung, "string-keyed");
        match symed {
            SatResult::Sat(_) => sat += 1,
            SatResult::Unsat => unsat += 1,
            SatResult::Unknown(_) => unknown += 1,
        }
    }
    (sat, unsat, unknown)
}

#[test]
fn engines_agree_on_shallow_sweeps() {
    let (sat, unsat, _) = sweep(101, 250, 2);
    assert!(sat > 20, "shallow sweep too easy: only {sat} sat");
    assert!(unsat > 20, "shallow sweep too easy: only {unsat} unsat");
}

#[test]
fn engines_agree_on_deep_sweeps() {
    let (sat, unsat, _) = sweep(202, 150, 4);
    assert!(sat > 10, "deep sweep degenerate: only {sat} sat");
    assert!(unsat > 10, "deep sweep degenerate: only {unsat} unsat");
}

#[test]
fn engines_agree_on_handpicked_edges() {
    // Constructs the random sweeps hit rarely: exact-document equality
    // interacting with key constraints, forbidden keys, index/key
    // mixtures, and tests inside paths.
    let cases = [
        r#"eqdoc(@"a", {"z": 1}) & [@"a" ; @"z"]"#,
        r#"eqdoc(@"a", {"z": 1}) & [@"a" ; @"w"]"#,
        r#"eqdoc(@"a", {}) & [@"a" ; @"z"]"#,
        r#"eqdoc(@"a", [1, 2]) & [@"a" ; @1]"#,
        r#"eqdoc(@"a", [1]) & [@"a" ; @1]"#,
        r#"[@"k" ; <eqdoc(@"a", 1) & eqdoc(@"b", 2)>]"#,
        r#"eqpair(@"a", @"b") & eqdoc(@"a", {"k": 3})"#,
        r#"!([@"a"]) & eqdoc(@"a", 1)"#,
        r#"!([@"a"]) & !([@"b"]) & ([@"a"] | [@"b"])"#,
    ];
    for src in cases {
        let phi = jnl::parse_unary(src).expect("edge case parses");
        let symed = sat_deterministic(&phi);
        let strung = sat_deterministic_strings(&phi);
        assert_eq!(
            verdict(&symed),
            verdict(&strung),
            "engines disagree on {src}"
        );
        assert_witness_valid(&phi, &symed, "sym-keyed");
        assert_witness_valid(&phi, &strung, "string-keyed");
    }
}
