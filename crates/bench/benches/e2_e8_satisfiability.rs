//! E2 (Prop 2) and E8 (Prop 7): satisfiability engines on their hardness
//! families — 3SAT→JNL and QBF→JSL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jnl::reduce::threesat::ThreeSat;
use jsl::reduce::qbf::{Qbf, Quant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_e8_satisfiability");
    g.sample_size(10);
    for n in [6usize, 10, 14] {
        let inst = ThreeSat::random(n, (n as f64 * 4.2) as usize, n as u64);
        let phi = inst.to_jnl();
        g.bench_with_input(BenchmarkId::new("threesat_jnl", n), &phi, |b, p| {
            b.iter(|| jnl::sat::det::sat_deterministic_with_budget(p, 2_000_000))
        });
    }
    for n in [2usize, 3] {
        let q = Qbf {
            prefix: (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        Quant::Exists
                    } else {
                        Quant::Forall
                    }
                })
                .collect(),
            clauses: (0..n)
                .map(|i| vec![(i, true), ((i + 1) % n, false)])
                .collect(),
        };
        g.bench_with_input(BenchmarkId::new("qbf_jsl", n), &q, |b, q| {
            b.iter(|| q.solve_via_jsl())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
