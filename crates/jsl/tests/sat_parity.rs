//! Cross-logic sat parity: the JSL modal tableau ([`jsl::sat`]) against
//! the JNL deterministic solver ([`jnl::sat::det`]), bridged by the
//! paper's Theorem 2 translation ([`jsl::translate::jnl_to_jsl_cps`],
//! which preserves satisfiability node-for-node).
//!
//! This is the `crates/jnl/tests/sat_parity.rs`-style coverage the
//! tableau's *region* machinery rides on: deciding a translated key
//! formula forces `close_object` to partition the key space into regions
//! (intersections of key-regex DFAs and their complements) and to pad
//! `MinCh` obligations with fresh keys — exactly the endpoint
//! comparisons that were re-keyed onto the tableau-owned interner's
//! `Sym`s. Three contracts:
//!
//! 1. **Verdict parity** — whenever both engines decide (no Unknown),
//!    they agree Sat/Unsat.
//! 2. **Closed-loop witnesses, both directions** — a tableau witness
//!    must satisfy the *original JNL* formula through `jnl::check_root`,
//!    and a JNL witness must satisfy the *translated JSL* expression
//!    through `jsl::check_root` — closing the loop across the
//!    translation rather than trusting either solver's internal
//!    re-verification.
//! 3. **Non-vacuity** — each sweep must actually decide enough formulas
//!    in each direction for the parity to mean something.

use jnl::sat::det::sat_deterministic;
use jnl::sat::SatResult;
use jsl::{sat_jsl, JslSatResult};
use jsondata::JsonTree;

/// One sweep: translate every generated JNL formula, decide with both
/// engines, check parity + witnesses, and tally both-decided verdicts.
fn sweep(seed: u64, count: usize, depth: usize) -> (usize, usize) {
    let (mut both_sat, mut both_unsat) = (0, 0);
    for phi in jnl::gen::formulas(seed, count, depth) {
        let Ok(psi) = jsl::jnl_to_jsl_cps(&phi) else {
            // `eqpair` (path-path equality) has no JSL counterpart —
            // formulas using it fall outside the Theorem 2 fragment and
            // are skipped; the non-vacuity floors below keep the skip
            // rate honest.
            continue;
        };
        let jnl_r = sat_deterministic(&phi);
        let jsl_r = sat_jsl(&psi);
        // Cross-verified witnesses, independent of the other verdict.
        if let SatResult::Sat(w) = &jnl_r {
            let tree = JsonTree::build(w);
            assert!(
                jsl::check_root(&tree, &psi),
                "JNL witness fails the translated JSL\n  jnl: {phi}\n  witness: {w}"
            );
        }
        if let JslSatResult::Sat(w) = &jsl_r {
            let tree = JsonTree::build(w);
            assert!(
                jnl::check_root(&tree, &phi),
                "tableau witness fails the original JNL\n  jnl: {phi}\n  witness: {w}"
            );
        }
        match (&jnl_r, &jsl_r) {
            (SatResult::Sat(_), JslSatResult::Unsat) => {
                panic!("jnl says Sat, tableau says Unsat on {phi}")
            }
            (SatResult::Unsat, JslSatResult::Sat(w)) => {
                panic!("jnl says Unsat, tableau found witness {w} for {phi}")
            }
            (SatResult::Sat(_), JslSatResult::Sat(_)) => both_sat += 1,
            (SatResult::Unsat, JslSatResult::Unsat) => both_unsat += 1,
            // An Unknown on either side is a legitimate budget/heuristic
            // gap, not a parity violation.
            _ => {}
        }
    }
    (both_sat, both_unsat)
}

#[test]
fn tableau_agrees_with_jnl_on_shallow_sweeps() {
    let (sat, unsat) = sweep(101, 250, 2);
    assert!(sat > 20, "shallow sweep vacuous: only {sat} both-sat");
    assert!(unsat > 20, "shallow sweep vacuous: only {unsat} both-unsat");
}

#[test]
fn tableau_agrees_with_jnl_on_deep_sweeps() {
    // Depth 3 with a larger draw: deeper draws are dominated by `eqpair`
    // (untranslatable, skipped), starving the unsat tally.
    let (sat, unsat) = sweep(202, 300, 3);
    assert!(sat > 50, "deep sweep vacuous: only {sat} both-sat");
    assert!(unsat > 10, "deep sweep vacuous: only {unsat} both-unsat");
}

#[test]
fn tableau_agrees_on_key_heavy_edges() {
    // Handpicked formulas whose decision lives in the region machinery:
    // multiple distinct keys under one object, demanded-vs-forbidden key
    // overlaps, keys that share prefixes (adjacent range endpoints), and
    // unicode keys — each forces region-DFA construction and fresh-key
    // padding during `close_object`.
    let cases = [
        r#"[@"a"] & [@"b"] & [@"c"]"#,
        r#"[@"a"] & !([@"b"]) & [@"c"]"#,
        r#"[@"a"] & !([@"a"])"#,
        r#"[@"ab"] & [@"ab2"] & !([@"ab1"])"#,
        r#"[@"k" ; <[@"k"] & !([@"q"])>]"#,
        r#"eqdoc(@"a", {"z": 1}) & [@"b"]"#,
        r#"[@"züri"] & !([@"zür"])"#,
        r#"[@"北"] & [@"京"] & !([@"北京"])"#,
        r#"!([@"a"]) & !([@"b"]) & ([@"a"] | [@"b"])"#,
    ];
    let (mut decided, mut n) = (0, 0);
    for src in cases {
        let phi = jnl::parse_unary(src).expect("edge case parses");
        let psi = jsl::jnl_to_jsl_cps(&phi).expect("edge case translates");
        let jnl_r = sat_deterministic(&phi);
        let jsl_r = sat_jsl(&psi);
        match (&jnl_r, &jsl_r) {
            (SatResult::Sat(_), JslSatResult::Unsat) => {
                panic!("jnl Sat vs tableau Unsat on {src}")
            }
            (SatResult::Unsat, JslSatResult::Sat(_)) => {
                panic!("jnl Unsat vs tableau Sat on {src}")
            }
            (SatResult::Sat(_) | SatResult::Unsat, JslSatResult::Sat(_) | JslSatResult::Unsat) => {
                decided += 1
            }
            _ => {}
        }
        if let JslSatResult::Sat(w) = &jsl_r {
            let tree = JsonTree::build(w);
            assert!(
                jnl::check_root(&tree, &phi),
                "tableau witness fails {src}: {w}"
            );
        }
        n += 1;
    }
    assert!(
        decided >= n - 2,
        "edge corpus mostly Unknown: {decided}/{n} decided"
    );
}
