//! # jserve — the concurrent multi-tenant serving core
//!
//! Turns a single-owner [`mongofind::Collection`] into a serving
//! process: many concurrent readers, one writer, per-tenant governance,
//! and a failure envelope that is *typed errors only* — no panics, no
//! hangs, no torn reads.
//!
//! Four layers, composed bottom-up:
//!
//! | Layer | Type | Contract |
//! |---|---|---|
//! | snapshot isolation | [`Store`] / [`Snapshot`] | readers get an immutable epoch-stamped view; the writer publishes atomically; [`Store::compact`] merges off to the side and catches up by segment adoption |
//! | worker pool | [`jpar::Dispatch::Park`] | persistent parked helpers replace per-scope thread spawn on every pool-driven query path (the collection's pool configuration rides into every snapshot) |
//! | admission | [`Admission`] | bounded deadline-aware queue; excess load shed fail-closed as [`jguard::QueryError::Overloaded`] |
//! | verbs | [`Server`] / [`Request`] | find / projected find / aggregate / insert / `EXPLAIN` / `EXPLAIN ANALYZE`, each under a tenant's [`jguard::QueryCtx`] with a shared [`jtrace::QueryMetrics`] sink, panic-contained at the serve boundary |
//!
//! ## The linearizability contract
//!
//! Every read response names the epoch of the snapshot it ran against
//! ([`Response::Docs`]), and epoch `e` means *exactly* the seed
//! collection plus the first `e` entries of the commit log
//! ([`Store::log_prefix`]). The `s11` harness gate replays that
//! equation serially and byte-compares: what a concurrent reader saw is
//! what a serial replay of the committed prefix produces, storms,
//! compactions, and injected faults notwithstanding.

pub mod admission;
pub mod server;
pub mod store;

pub use admission::{Admission, AdmissionConfig, Permit};
pub use server::{Request, Response, Server, TenantSpec};
pub use store::{Snapshot, Store};
