//! A from-scratch JSON text parser for the paper's fragment.
//!
//! The lexer recognises the complete RFC 8259 grammar so that out-of-fragment
//! constructs (`null`, `true`, `false`, negative or fractional numbers) are
//! reported with precise, targeted errors instead of generic syntax noise.
//!
//! The parser is iterative over object/array nesting depth up to a
//! configurable limit (default 512), avoiding stack overflow on adversarial
//! inputs while still being plain recursive descent in shape.

use std::hash::{Hash, Hasher};

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::fxhash::{FxHashSet, FxHasher};
use crate::value::Json;

/// Resource limits applied while parsing.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum object/array nesting depth.
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits { max_depth: 512 }
    }
}

/// Parses a complete JSON document with default limits.
///
/// ```
/// use jsondata::{parse, Json};
/// assert_eq!(parse("42").unwrap(), Json::Num(42));
/// assert_eq!(parse(r#""hi""#).unwrap(), Json::str("hi"));
/// assert!(parse("null").is_err()); // outside the paper's fragment
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses with explicit [`ParseLimits`].
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, ParseError> {
    let mut p = Parser::new(input, limits);
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err(ParseErrorKind::TrailingContent));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    limits: ParseLimits,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, limits: ParseLimits) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            limits,
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            col: self.col,
            offset: self.pos,
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            position: self.position(),
            kind,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Advances one byte, maintaining line/column. Only call when the byte at
    /// `pos` is ASCII; multi-byte characters go through `bump_char`.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_char(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += c.len_utf8();
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.bump(),
                _ => break,
            }
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > self.limits.max_depth {
            return Err(self.err(ParseErrorKind::TooDeep(self.limits.max_depth)));
        }
        match self.peek() {
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(b'-') => Err(self.err(ParseErrorKind::NegativeNumber)),
            Some(b't') => self.reject_literal("true"),
            Some(b'f') => self.reject_literal("false"),
            Some(b'n') => self.reject_literal("null"),
            Some(b) => {
                let c = self.current_char(b);
                Err(self.err(ParseErrorKind::UnexpectedChar(c)))
            }
        }
    }

    fn current_char(&self, first: u8) -> char {
        if first.is_ascii() {
            first as char
        } else {
            self.src[self.pos..].chars().next().unwrap_or('\u{fffd}')
        }
    }

    fn reject_literal(&mut self, lit: &'static str) -> Result<Json, ParseError> {
        if self.src[self.pos..].starts_with(lit) {
            Err(self.err(ParseErrorKind::UnsupportedLiteral(lit)))
        } else {
            let b = self.bytes[self.pos];
            Err(self.err(ParseErrorKind::UnexpectedChar(b as char)))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.bump(); // consume '{'
        let mut pairs: Vec<(String, Json)> = Vec::new();
        // Duplicate-key detection: a set of key *hashes* keeps the probe
        // allocation-free and the whole object near-linear (a hash hit — in
        // practice only a true duplicate — is confirmed by one scan, so an
        // adversarial collision degrades a single key to O(n), never the
        // silent acceptance of a duplicate).
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::empty_object());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return match self.peek() {
                    None => Err(self.err(ParseErrorKind::UnexpectedEof)),
                    Some(b) => Err(self.err(ParseErrorKind::UnexpectedChar(self.current_char(b)))),
                };
            }
            let key_pos = self.position();
            let key = self.parse_string()?;
            let mut h = FxHasher::default();
            key.hash(&mut h);
            if !seen.insert(h.finish()) && pairs.iter().any(|(k, _)| *k == key) {
                return Err(ParseError {
                    position: key_pos,
                    kind: ParseErrorKind::DuplicateKey(key),
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b':') => self.bump(),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b) => {
                    return Err(self.err(ParseErrorKind::UnexpectedChar(self.current_char(b))))
                }
            }
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    // Duplicates already rejected pair-by-pair above.
                    return Ok(Json::object(pairs).expect("duplicates checked during parse"));
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b) => {
                    return Err(self.err(ParseErrorKind::UnexpectedChar(self.current_char(b))))
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.bump(); // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(Json::Array(items));
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some(b) => {
                    return Err(self.err(ParseErrorKind::UnexpectedChar(self.current_char(b))))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.bump(); // consume '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            };
            match b {
                b'"' => {
                    self.bump();
                    return Ok(out);
                }
                b'\\' => {
                    self.bump();
                    self.parse_escape(&mut out)?;
                }
                0x00..=0x1f => {
                    return Err(self.err(ParseErrorKind::ControlCharInString(b as char)));
                }
                _ if b.is_ascii() => {
                    out.push(b as char);
                    self.bump();
                }
                _ => {
                    let c = self.src[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err(ParseErrorKind::InvalidUtf8))?;
                    out.push(c);
                    self.bump_char(c);
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let Some(b) = self.peek() else {
            return Err(self.err(ParseErrorKind::UnexpectedEof));
        };
        let simple = match b {
            b'"' => Some('"'),
            b'\\' => Some('\\'),
            b'/' => Some('/'),
            b'b' => Some('\u{0008}'),
            b'f' => Some('\u{000c}'),
            b'n' => Some('\n'),
            b'r' => Some('\r'),
            b't' => Some('\t'),
            _ => None,
        };
        if let Some(c) = simple {
            out.push(c);
            self.bump();
            return Ok(());
        }
        if b != b'u' {
            return Err(self.err(ParseErrorKind::BadEscape((b as char).to_string())));
        }
        self.bump(); // consume 'u'
        let first = self.parse_hex4()?;
        let c = if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') {
                self.bump();
                if self.peek() != Some(b'u') {
                    return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                        "\\u{first:04X} not followed by low surrogate"
                    ))));
                }
                self.bump();
                let second = self.parse_hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                        "\\u{first:04X}\\u{second:04X} is not a surrogate pair"
                    ))));
                }
                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                char::from_u32(cp).ok_or_else(|| {
                    self.err(ParseErrorKind::BadUnicodeEscape(format!("U+{cp:X}")))
                })?
            } else {
                return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                    "unpaired high surrogate \\u{first:04X}"
                ))));
            }
        } else if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                "unpaired low surrogate \\u{first:04X}"
            ))));
        } else {
            char::from_u32(first)
                .ok_or_else(|| self.err(ParseErrorKind::BadUnicodeEscape(format!("U+{first:X}"))))?
        };
        out.push(c);
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => {
                    return Err(self.err(ParseErrorKind::BadUnicodeEscape((b as char).to_string())))
                }
            };
            v = (v << 4) | d;
            self.bump();
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let first = self.bytes[self.pos];
        self.bump();
        while let Some(b @ b'0'..=b'9') = self.peek() {
            let _ = b;
            self.bump();
        }
        // The full JSON grammar allows fraction/exponent; the fragment
        // doesn't. Detect and report them specifically.
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err(ParseErrorKind::NonNaturalNumber));
        }
        let text = &self.src[start..self.pos];
        if first == b'0' && text.len() > 1 {
            return Err(self.err(ParseErrorKind::LeadingZero));
        }
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| self.err(ParseErrorKind::NumberOverflow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind::*;

    fn kind(s: &str) -> ParseErrorKind {
        parse(s).unwrap_err().kind
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("0").unwrap(), Json::Num(0));
        assert_eq!(parse("1234567890").unwrap(), Json::Num(1234567890));
        assert_eq!(parse(r#""x\ny""#).unwrap(), Json::str("x\ny"));
        assert_eq!(parse(r#""""#).unwrap(), Json::str(""));
    }

    #[test]
    fn parses_nested_structures() {
        let j = parse(r#"{"a": [1, {"b": "c"}, []], "d": {}}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().index(1).unwrap().get("b"),
            Some(&Json::str("c"))
        );
        assert_eq!(j.get("d"), Some(&Json::empty_object()));
    }

    #[test]
    fn figure1_document() {
        let j = parse(
            r#"{
                "name": {"first": "John", "last": "Doe"},
                "age": 32,
                "hobbies": ["fishing", "yoga"]
            }"#,
        )
        .unwrap();
        assert_eq!(j.node_count(), 8);
        assert_eq!(j.get("hobbies").unwrap().index(1), Some(&Json::str("yoga")));
    }

    #[test]
    fn rejects_out_of_fragment_literals() {
        assert_eq!(kind("null"), UnsupportedLiteral("null"));
        assert_eq!(kind("true"), UnsupportedLiteral("true"));
        assert_eq!(kind("false"), UnsupportedLiteral("false"));
        assert_eq!(kind("-3"), NegativeNumber);
        assert_eq!(kind("3.5"), NonNaturalNumber);
        assert_eq!(kind("3e2"), NonNaturalNumber);
    }

    #[test]
    fn rejects_leading_zero_and_overflow() {
        assert_eq!(kind("012"), LeadingZero);
        assert_eq!(kind("99999999999999999999999"), NumberOverflow);
    }

    #[test]
    fn rejects_duplicate_keys_with_position() {
        let e = parse(r#"{"a":1, "a":2}"#).unwrap_err();
        assert!(matches!(e.kind, DuplicateKey(ref k) if k == "a"));
        assert_eq!(e.position.line, 1);
    }

    #[test]
    fn wide_object_duplicate_check_is_near_linear() {
        // 50k distinct keys: the per-key duplicate probe must be a hash-set
        // lookup, not a scan of all previous pairs (the old O(n²) check did
        // ~1.25e9 string compares here and took minutes in debug builds).
        let n = 50_000usize;
        let mut src = String::with_capacity(n * 12);
        src.push('{');
        for i in 0..n {
            if i > 0 {
                src.push(',');
            }
            src.push_str(&format!("\"key{i}\":{i}"));
        }
        src.push('}');
        let doc = parse(&src).unwrap();
        assert_eq!(doc.as_object().unwrap().len(), n);
        // The same object with one duplicate appended is still rejected,
        // with the position of the *second* occurrence.
        let dup = format!("{}, \"key0\": 0}}", &src[..src.len() - 1]);
        let e = parse(&dup).unwrap_err();
        assert!(matches!(e.kind, DuplicateKey(ref k) if k == "key0"));
        assert_eq!(e.position.offset, dup.len() - 10);
    }

    #[test]
    fn rejects_trailing_content() {
        assert_eq!(kind("1 2"), TrailingContent);
        assert_eq!(kind("{} {}"), TrailingContent);
    }

    #[test]
    fn rejects_truncated_documents() {
        assert_eq!(kind("{\"a\": "), UnexpectedEof);
        assert_eq!(kind("[1, 2"), UnexpectedEof);
        assert_eq!(kind("\"abc"), UnexpectedEof);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::str("A"));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert_eq!(
            parse(r#""\\\"\/\b\f\n\r\t""#).unwrap(),
            Json::str("\\\"/\u{8}\u{c}\n\r\t")
        );
        assert!(matches!(kind(r#""\ud800""#), BadUnicodeEscape(_)));
        assert!(matches!(kind(r#""\udc00""#), BadUnicodeEscape(_)));
        assert!(matches!(kind(r#""\q""#), BadEscape(_)));
    }

    #[test]
    fn unescaped_control_char_rejected() {
        assert!(matches!(kind("\"a\u{0001}b\""), ControlCharInString(_)));
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"čšž — 中文\"").unwrap(), Json::str("čšž — 中文"));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(matches!(kind(&deep), TooDeep(512)));
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
        let custom = parse_with_limits(&ok, ParseLimits { max_depth: 10 });
        assert!(matches!(custom.unwrap_err().kind, TooDeep(10)));
    }

    #[test]
    fn error_positions_track_lines() {
        let e = parse("{\n  \"a\": null\n}").unwrap_err();
        assert_eq!(e.position.line, 2);
        assert_eq!(e.kind, UnsupportedLiteral("null"));
    }

    #[test]
    fn whitespace_everywhere() {
        let j = parse(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
