//! # jpar — a scoped worker pool for embarrassingly parallel index ranges
//!
//! The query layers of this workspace (the `mongofind` find paths, the
//! `jagg` aggregation executor, per-segment JNL evaluation) are all
//! *per-document computations over immutable trees*: the collection's
//! segmented tree column is built once, then every query step maps an
//! index range `0..n` (documents, rows, or segments) through a pure
//! function of shared read-only state. This crate is the one
//! parallelism substrate they share — the build environment has no
//! crates.io access (so no `rayon`), and `std::thread::scope` is all
//! that is needed for this shape of work.
//!
//! ## Threading model
//!
//! * **Shared state is read-only.** A [`Pool`] call borrows its closure
//!   (and everything the closure captures) immutably across all
//!   workers; nothing behind `&mut` crosses a thread boundary. Callers
//!   that used to build caches lazily through `&mut self` (canonical
//!   subtree tables, regex edge bitsets) must either build them
//!   **eagerly before the fan-out** or make them **worker-owned**
//!   (each worker builds its own) — the `jagg` executor does the
//!   former for `CanonTable`s, the JNL batch evaluator does the latter
//!   for its whole evaluation context.
//! * **Work is stolen in chunks.** [`Pool::map_chunks`] splits `0..n`
//!   into fixed-size chunks; workers claim chunk indices from one
//!   atomic counter (`fetch_add`), so a slow chunk never stalls the
//!   others and no per-item synchronisation exists.
//! * **Results are spliced deterministically.** Each chunk's output is
//!   returned to its chunk slot, so the assembled `Vec` is in index
//!   order *regardless of thread count or steal order*. Any
//!   order-sensitive reduction (accumulator states, group tables) must
//!   be merged **in chunk order** by the caller — chunk `i` always
//!   holds the results of items `i*chunk .. (i+1)*chunk`, contiguous
//!   and in order.
//! * **`N = 1` is the semantic oracle.** A pool with one thread (or a
//!   call whose range fits in one chunk) runs the chunks inline on the
//!   calling thread, in order, spawning nothing — not merely "the same
//!   results" but the *same sequence of closure applications* as the
//!   pre-parallel code. The determinism suites compare every parallel
//!   path against this serial fallback; a parallel run that disagrees
//!   with `N = 1` is a bug by definition.
//!
//! ## Dispatch strategies
//!
//! A pool value also carries *how* workers are provided
//! ([`Dispatch`]):
//!
//! * [`Dispatch::Park`] (the default) lends out **persistent helper
//!   threads** parked on a condvar between jobs. Wake-ups cost
//!   microseconds instead of the per-call `thread::spawn` cost, which is
//!   what a serving layer running many µs-scale queries needs; the
//!   calling thread always participates inline, so a dispatch can never
//!   hang waiting for busy helpers. See `src/park.rs` for the protocol.
//! * [`Dispatch::Spawn`] is the legacy per-call
//!   [`std::thread::scope`] strategy, kept selectable (and benchmarked
//!   against `Park` by `harness s11`) so the persistent pool always has
//!   an in-tree baseline.
//!
//! Both strategies claim chunks from the same work-stealing counter and
//! splice results in chunk order, so the choice affects latency only —
//! results are identical, and `N = 1` still runs inline with no worker
//! machinery at all.
//!
//! ## Choosing a thread count
//!
//! [`Pool::auto`] uses [`std::thread::available_parallelism`], overridden
//! by the `JPAR_THREADS` environment variable (useful for benchmarking
//! `1` vs `max` on one machine) or by [`Pool::with_threads`]. Thread
//! counts are clamped to at least 1: `JPAR_THREADS` values of `0`,
//! unparseable garbage, or numbers too large for `usize` fall back to
//! the machine's parallelism (itself at least 1) rather than erroring —
//! the contract pinned by `tests/env_contract.rs`. The dispatch strategy
//! can likewise be overridden with `JPAR_DISPATCH=park|spawn`.

use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use jguard::{QueryCtx, QueryError};
use jtrace::{Counter, SpanKind};

mod park;

/// The environment variable overriding [`Pool::auto`]'s thread count.
pub const THREADS_ENV: &str = "JPAR_THREADS";

/// The environment variable overriding [`Pool::auto`]'s dispatch
/// strategy (`park` or `spawn`, case-insensitive; anything else keeps
/// the default).
pub const DISPATCH_ENV: &str = "JPAR_DISPATCH";

/// How a pool call obtains its worker threads. See the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Persistent parked helpers, woken per dispatch (default).
    #[default]
    Park,
    /// Per-call scoped spawn — the legacy strategy, kept as the A/B
    /// baseline for the persistent pool.
    Spawn,
}

/// Renders a caught panic payload for [`QueryError::WorkerPanicked`].
pub fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs one chunk with panic containment: a panic inside `f` (including
/// an injected fault inside a context poll) becomes a structured
/// [`QueryError::WorkerPanicked`] carrying the chunk's item range.
///
/// `AssertUnwindSafe` is sound here because on the error path every
/// partial result is dropped and the pool's contract already requires
/// closure captures to be shared read-only state.
fn contain<T>(
    chunk: Range<usize>,
    f: impl FnOnce() -> Result<T, QueryError>,
) -> Result<T, QueryError> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(p) => Err(QueryError::WorkerPanicked {
            chunk,
            payload: panic_payload(p),
        }),
    }
}

/// A worker pool: a thread count plus the dispatch strategy.
///
/// `Pool` is a plain value (cheap to copy, it owns no OS resources).
/// Under [`Dispatch::Park`] workers are borrowed from a process-global
/// set of persistent parked helpers for the duration of one call; under
/// [`Dispatch::Spawn`] they are spawned per call inside a
/// [`std::thread::scope`]. Either way every worker is quiesced before
/// the call returns, so borrowed data needs no `'static` lifetime and a
/// panicking worker propagates to (or is contained for) the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
    dispatch: Dispatch,
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::auto()
    }
}

impl Pool {
    /// A single-threaded pool: every call runs inline on the calling
    /// thread, in order — the semantic oracle of the parallel paths.
    pub fn serial() -> Pool {
        Pool {
            threads: 1,
            dispatch: Dispatch::default(),
        }
    }

    /// A pool with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            dispatch: Dispatch::default(),
        }
    }

    /// The same pool with an explicit dispatch strategy.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Pool {
        self.dispatch = dispatch;
        self
    }

    /// The machine's available parallelism, overridden by the
    /// `JPAR_THREADS` environment variable when set to a positive number;
    /// the dispatch strategy is likewise overridable via `JPAR_DISPATCH`.
    pub fn auto() -> Pool {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let dispatch = match std::env::var(DISPATCH_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("spawn") => Dispatch::Spawn,
            Ok(v) if v.eq_ignore_ascii_case("park") => Dispatch::Park,
            _ => Dispatch::default(),
        };
        Pool { threads, dispatch }
    }

    /// The number of worker threads this pool dispatches to (including
    /// the calling thread, which always participates).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The dispatch strategy this pool uses for its workers.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// A chunk size for `len` items that yields several chunks per worker
    /// (so stealing can balance uneven chunks) without dropping below
    /// `min_chunk` items — ranges smaller than `min_chunk` collapse into
    /// a single chunk and therefore run inline, which keeps tiny inputs
    /// off the thread-spawn path entirely.
    pub fn chunk_for(&self, len: usize, min_chunk: usize) -> usize {
        if self.threads <= 1 {
            return len.max(1);
        }
        len.div_ceil(self.threads * 4).max(min_chunk).max(1)
    }

    /// Maps each index of `0..len` through `f`, returning the results in
    /// index order. Equivalent to `map_chunks(len, 1, |r| f(r.start))` —
    /// one item per chunk, for coarse-grained items (e.g. one whole-tree
    /// evaluation per collection segment).
    pub fn map<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_chunks(len, 1, |r| f(r.start))
    }

    /// Splits `0..len` into chunks of `chunk` items (the last chunk may be
    /// short), evaluates `f` on each chunk, and returns the chunk results
    /// **in chunk order**. Workers steal chunk indices from one atomic
    /// counter; with one thread or one chunk everything runs inline on the
    /// calling thread in order (the serial fallback).
    ///
    /// A panicking closure re-raises the (contained) panic on the calling
    /// thread after all workers have been joined — the process never
    /// aborts, and the pool stays usable. Callers that need the panic as
    /// a value use [`Pool::try_map_chunks`].
    pub fn map_chunks<T, F>(&self, len: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        match self.try_map_chunks(&QueryCtx::unlimited(), len, chunk, |r| Ok(f(r))) {
            Ok(out) => out,
            Err(QueryError::WorkerPanicked { chunk, payload }) => {
                panic!("jpar worker panicked on chunk {chunk:?}: {payload}")
            }
            Err(e) => unreachable!("unlimited ctx cannot fail, got {e}"),
        }
    }

    /// Fallible [`Pool::map`]: checks `ctx` between items and contains
    /// worker panics. See [`Pool::try_map_chunks`].
    pub fn try_map<T, F>(&self, ctx: &QueryCtx, len: usize, f: F) -> Result<Vec<T>, QueryError>
    where
        T: Send,
        F: Fn(usize) -> Result<T, QueryError> + Sync,
    {
        self.try_map_chunks(ctx, len, 1, |r| f(r.start))
    }

    /// The governed core of the pool: like [`Pool::map_chunks`] but
    ///
    /// * workers poll `ctx` **before claiming each chunk** — an expired
    ///   deadline, a cancellation, or an overdrawn budget stops the whole
    ///   fan-out within one chunk of work and returns the error;
    /// * every chunk closure runs under `catch_unwind` — a panic becomes
    ///   [`QueryError::WorkerPanicked`] with the chunk's item range, the
    ///   remaining workers are joined, and the pool (plus any shared
    ///   immutable state) stays reusable;
    /// * when several chunks fail concurrently, the error of the
    ///   **lowest chunk index** wins, keeping the outcome deterministic
    ///   for a single planted fault regardless of thread count.
    pub fn try_map_chunks<T, F>(
        &self,
        ctx: &QueryCtx,
        len: usize,
        chunk: usize,
        f: F,
    ) -> Result<Vec<T>, QueryError>
    where
        T: Send,
        F: Fn(Range<usize>) -> Result<T, QueryError> + Sync,
    {
        let chunk = chunk.max(1);
        let n_chunks = len.div_ceil(chunk);
        let range_of = |i: usize| i * chunk..((i + 1) * chunk).min(len);
        // Runs chunk `i` with containment, recording the chunk span and —
        // on a contained panic — the audit event into the ctx's metrics
        // sink (both no-ops without a sink).
        let run_chunk = |i: usize| -> Result<T, QueryError> {
            ctx.record(Counter::ChunksDispatched, 1);
            ctx.span_open(SpanKind::Chunk, i as u32);
            let r = contain(range_of(i), || {
                ctx.check()?;
                f(range_of(i))
            });
            ctx.span_close(SpanKind::Chunk, i as u32);
            if let Err(QueryError::WorkerPanicked { payload, .. }) = &r {
                ctx.record_panic(i, payload);
            }
            r
        };

        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n_chunks);
            for i in 0..n_chunks {
                out.push(run_chunk(i)?);
            }
            return Ok(out);
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // Each worker returns its claimed (chunk, value) pairs plus the
        // error (tagged with its chunk index) that stopped it, if any.
        type WorkerOut<T> = (Vec<(usize, T)>, Option<(usize, QueryError)>);
        let run_worker = |stolen: bool| -> WorkerOut<T> {
            let mut claimed: Vec<(usize, T)> = Vec::new();
            let mut err = None;
            while !stop.load(Ordering::Relaxed) {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                if stolen {
                    // Claimed by a spawned worker rather than the caller.
                    ctx.record(Counter::ChunksStolen, 1);
                }
                match run_chunk(i) {
                    Ok(v) => claimed.push((i, v)),
                    Err(e) => {
                        err = Some((i, e));
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            (claimed, err)
        };

        // A rangeless error for a panic that escaped `run_worker` itself
        // (i.e. outside any chunk's containment) — kept alive as a value
        // so neither strategy ever re-raises across the pool boundary.
        let coordinator_error = |p: Box<dyn std::any::Any + Send>| -> WorkerOut<T> {
            let payload = panic_payload(p);
            ctx.record_panic(usize::MAX, &payload);
            (
                Vec::new(),
                Some((
                    usize::MAX,
                    QueryError::WorkerPanicked {
                        chunk: 0..0,
                        payload,
                    },
                )),
            )
        };

        let mut outputs: Vec<WorkerOut<T>> = Vec::with_capacity(workers);
        match self.dispatch {
            Dispatch::Spawn => std::thread::scope(|scope| {
                let handles: Vec<_> = (1..workers)
                    .map(|_| scope.spawn(|| run_worker(true)))
                    .collect();
                outputs.push(run_worker(false));
                for h in handles {
                    // `run_worker` contains every panic, so `join` failing
                    // would mean a panic outside any chunk; keep the
                    // process alive anyway and surface it as a rangeless
                    // error.
                    outputs.push(h.join().unwrap_or_else(&coordinator_error));
                }
            }),
            Dispatch::Park => {
                let sink: Mutex<Vec<WorkerOut<T>>> = Mutex::new(Vec::with_capacity(workers));
                let task = |on_helper: bool| {
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| run_worker(on_helper)))
                        .unwrap_or_else(|p| {
                            stop.store(true, Ordering::Relaxed);
                            coordinator_error(p)
                        });
                    sink.lock().unwrap_or_else(|e| e.into_inner()).push(out);
                };
                park::dispatch(workers - 1, &task);
                outputs = sink.into_inner().unwrap_or_else(|e| e.into_inner());
            }
        }

        let mut first_err: Option<(usize, QueryError)> = None;
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        for (claimed, err) in outputs {
            for (i, v) in claimed {
                slots[i] = Some(v);
            }
            if let Some((i, e)) = err {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every chunk index was claimed exactly once"))
            .collect())
    }

    /// [`Pool::map_chunks`] with the chunk results concatenated — the
    /// common "filter/flat-map a row vector" shape. Item order is
    /// preserved exactly (chunks are contiguous index ranges spliced in
    /// chunk order).
    pub fn flat_map_chunks<T, F>(&self, len: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> Vec<T> + Sync,
    {
        self.map_chunks(len, chunk, f)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Fallible [`Pool::flat_map_chunks`]: governed, panic-contained,
    /// chunk results concatenated in chunk order.
    pub fn try_flat_map_chunks<T, F>(
        &self,
        ctx: &QueryCtx,
        len: usize,
        chunk: usize,
        f: F,
    ) -> Result<Vec<T>, QueryError>
    where
        T: Send,
        F: Fn(Range<usize>) -> Result<Vec<T>, QueryError> + Sync,
    {
        Ok(self
            .try_map_chunks(ctx, len, chunk, f)?
            .into_iter()
            .flatten()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::with_threads(threads);
            let out = pool.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunks_covers_every_index_exactly_once() {
        for threads in [1, 2, 5] {
            for (len, chunk) in [(0, 4), (1, 4), (7, 3), (64, 64), (65, 64), (1000, 17)] {
                let pool = Pool::with_threads(threads);
                let parts = pool.map_chunks(len, chunk, |r| r.collect::<Vec<_>>());
                let flat: Vec<usize> = parts.concat();
                assert_eq!(
                    flat,
                    (0..len).collect::<Vec<_>>(),
                    "len {len} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn flat_map_matches_sequential_filter() {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 2654435761) % 1000).collect();
        let expect: Vec<u64> = data.iter().copied().filter(|&x| x % 7 == 0).collect();
        for threads in [1, 2, 8] {
            let pool = Pool::with_threads(threads);
            let got = pool.flat_map_chunks(data.len(), 128, |r| {
                data[r].iter().copied().filter(|&x| x % 7 == 0).collect()
            });
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn chunk_for_collapses_small_inputs() {
        let pool = Pool::with_threads(8);
        // Below the minimum chunk everything fits in one chunk → inline.
        assert!(pool.chunk_for(100, 256) >= 100);
        // Large ranges split into several chunks per worker.
        let chunk = pool.chunk_for(100_000, 256);
        assert!(chunk >= 256);
        assert!(100_000usize.div_ceil(chunk) >= 8);
        // Serial pools never split.
        assert_eq!(Pool::serial().chunk_for(100_000, 256), 100_000);
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert!(Pool::auto().threads() >= 1);
        assert_eq!(Pool::serial().threads(), 1);
    }

    #[test]
    fn metrics_record_dispatch_and_contained_panics() {
        use std::sync::Arc;

        // Dispatch accounting: every chunk is dispatched exactly once;
        // serial execution steals nothing.
        let sink = Arc::new(jtrace::QueryMetrics::new());
        let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
        let pool = Pool::with_threads(4);
        let out = pool
            .try_map_chunks(&ctx, 100, 10, |r| Ok(r.len()))
            .expect("no faults");
        assert_eq!(out.iter().sum::<usize>(), 100);
        let snap = sink.snapshot();
        assert_eq!(snap[Counter::ChunksDispatched], 10);
        assert!(snap[Counter::ChunksStolen] <= snap[Counter::ChunksDispatched]);

        let serial_sink = Arc::new(jtrace::QueryMetrics::new());
        let serial_ctx = QueryCtx::new().with_metrics(Arc::clone(&serial_sink));
        Pool::serial()
            .try_map_chunks(&serial_ctx, 100, 10, |r| Ok(r.len()))
            .expect("no faults");
        assert_eq!(serial_sink.get(Counter::ChunksDispatched), 10);
        assert_eq!(serial_sink.get(Counter::ChunksStolen), 0);

        // A contained panic lands in the audit log with its chunk index.
        for threads in [1, 4] {
            let sink = Arc::new(jtrace::QueryMetrics::new());
            let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
            let pool = Pool::with_threads(threads);
            let err = jguard::with_quiet_panics(|| {
                pool.try_map_chunks(&ctx, 100, 10, |r| {
                    if r.start == 30 {
                        panic!("chunk bomb");
                    }
                    Ok(r.len())
                })
            })
            .expect_err("chunk 3 panics");
            assert!(matches!(err, QueryError::WorkerPanicked { .. }));
            assert_eq!(sink.get(Counter::WorkerPanics), 1);
            let events = sink.panic_events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].chunk, 3);
            assert!(events[0].payload.contains("chunk bomb"));
        }
    }

    #[test]
    fn park_and_spawn_dispatch_agree() {
        let data: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        let serial: Vec<u64> = Pool::serial().map_chunks(data.len(), 512, |r| data[r].iter().sum());
        for dispatch in [Dispatch::Park, Dispatch::Spawn] {
            let pool = Pool::with_threads(4).with_dispatch(dispatch);
            assert_eq!(pool.dispatch(), dispatch);
            let got = pool.map_chunks(data.len(), 512, |r| data[r].iter().sum::<u64>());
            assert_eq!(got, serial, "{dispatch:?} must match the serial oracle");
        }
    }

    #[test]
    fn park_dispatch_survives_concurrent_callers() {
        // Many threads dispatching simultaneously exercises the shared
        // helper queue: jobs must not steal each other's chunks or lose
        // results.
        let data: Vec<u64> = (0..20_000).collect();
        let expect: u64 = data.iter().sum();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let data = &data;
                s.spawn(move || {
                    let pool = Pool::with_threads(4).with_dispatch(Dispatch::Park);
                    for _ in 0..50 {
                        let partials =
                            pool.map_chunks(data.len(), 333, |r| data[r].iter().sum::<u64>());
                        assert_eq!(partials.iter().sum::<u64>(), expect);
                    }
                });
            }
        });
    }

    #[test]
    fn park_dispatch_supports_nested_calls() {
        // A dispatched worker that itself dispatches must make progress
        // even when every helper is busy: the inner caller participates
        // inline by construction.
        let pool = Pool::with_threads(4).with_dispatch(Dispatch::Park);
        let out = pool.map(8, |i| {
            let inner = Pool::with_threads(2).with_dispatch(Dispatch::Park);
            inner
                .map_chunks(1000, 100, |r| r.sum::<usize>())
                .iter()
                .sum::<usize>()
                + i
        });
        let inner_total: usize = (0..1000).sum();
        assert_eq!(out, (0..8).map(|i| inner_total + i).collect::<Vec<_>>());
    }

    #[test]
    fn park_dispatch_contains_panics_and_stays_reusable() {
        let pool = Pool::with_threads(4).with_dispatch(Dispatch::Park);
        for _ in 0..10 {
            let err = jguard::with_quiet_panics(|| {
                pool.try_map_chunks(&QueryCtx::new(), 100, 10, |r| {
                    if r.start == 50 {
                        panic!("park bomb");
                    }
                    Ok(r.len())
                })
            })
            .expect_err("chunk 5 panics");
            assert!(matches!(err, QueryError::WorkerPanicked { .. }));
            // The helpers survive the contained panic and serve the next
            // call normally.
            let ok = pool
                .try_map_chunks(&QueryCtx::new(), 100, 10, |r| Ok(r.len()))
                .expect("pool stays usable");
            assert_eq!(ok.iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn workers_share_read_only_state() {
        // The closure borrows a large shared slice; sums agree.
        let data: Vec<u64> = (0..100_000).collect();
        let pool = Pool::with_threads(4);
        let partials = pool.map_chunks(data.len(), 1013, |r| data[r].iter().sum::<u64>());
        let total: u64 = partials.iter().sum();
        assert_eq!(total, 100_000 * 99_999 / 2);
    }
}
