//! Seeded generation of deterministic-fragment JNL formulas.
//!
//! The satisfiability engines are differentially tested — the Sym-keyed
//! tableau ([`crate::sat::det`]) against the frozen string-keyed oracle
//! ([`crate::sat::det_str`]) — on *sweeps* of random formulas, and the
//! same sweeps drive the `harness s8` timing gates. This module is the
//! single source of those formulas so the test suite and the benchmark
//! measure exactly the same distribution.
//!
//! Generated formulas stay inside the deterministic fragment (Proposition
//! 2's decidable class): paths compose keys, small non-negative indices
//! and embedded tests; connectives are `∧`/`∨`/`¬` over `[α]`, `EQ(α, A)`
//! and `EQ(α, β)`. The key vocabulary and leaf documents are deliberately
//! tiny so that random conjunctions collide often — the sweeps exercise
//! both verdicts instead of drowning in trivially-satisfiable formulas.

use jsondata::Json;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::ast::{Binary, Unary};

/// The closed key vocabulary of generated formulas.
const KEYS: [&str; 4] = ["a", "b", "k", "v"];

/// A seeded sweep of `count` deterministic formulas of nesting depth
/// ≤ `depth`. Deterministic in `(seed, count, depth)`.
pub fn formulas(seed: u64, count: usize, depth: usize) -> Vec<Unary> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| formula(&mut rng, depth)).collect()
}

/// One random deterministic formula of nesting depth ≤ `depth`.
pub fn formula(rng: &mut StdRng, depth: usize) -> Unary {
    if depth == 0 {
        return match rng.gen_range(0..6u32) {
            0..=2 => Unary::exists(path(rng, 0)),
            3..=4 => Unary::eq_doc(path(rng, 0), leaf_doc(rng)),
            _ => Unary::eq_pair(path(rng, 0), path(rng, 0)),
        };
    }
    match rng.gen_range(0..8u32) {
        0 | 1 => Unary::and(subformulas(rng, depth)),
        2 | 3 => Unary::or(subformulas(rng, depth)),
        4 => Unary::not(formula(rng, depth - 1)),
        5 => Unary::exists(path(rng, depth - 1)),
        6 => Unary::eq_doc(path(rng, depth - 1), leaf_doc(rng)),
        _ => Unary::eq_pair(path(rng, depth - 1), path(rng, depth - 1)),
    }
}

fn subformulas(rng: &mut StdRng, depth: usize) -> Vec<Unary> {
    let n = rng.gen_range(2..=3usize);
    (0..n).map(|_| formula(rng, depth - 1)).collect()
}

/// A deterministic path: 1–3 steps of keys, small indices, and (below the
/// depth budget) embedded tests.
fn path(rng: &mut StdRng, depth: usize) -> Binary {
    let len = rng.gen_range(1..=3usize);
    let mut parts = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0..10u32);
        if roll < 6 {
            parts.push(Binary::key(KEYS[rng.gen_range(0..KEYS.len())]));
        } else if roll < 8 {
            parts.push(Binary::index(rng.gen_range(0..3i64)));
        } else if depth > 0 {
            parts.push(Binary::test(formula(rng, depth - 1)));
        } else {
            parts.push(Binary::key(KEYS[rng.gen_range(0..KEYS.len())]));
        }
    }
    Binary::compose(parts)
}

/// A small embedded document for `EQ(α, A)` leaves.
fn leaf_doc(rng: &mut StdRng) -> Json {
    match rng.gen_range(0..5u32) {
        0 | 1 => Json::Num(rng.gen_range(0..3u64)),
        2 => Json::Str("s".to_owned()),
        3 => Json::object(vec![("z".to_owned(), Json::Num(rng.gen_range(0..2u64)))])
            .expect("distinct keys"),
        _ => Json::Array(vec![Json::Num(1)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let a = formulas(11, 40, 3);
        let b = formulas(11, 40, 3);
        assert_eq!(a, b);
        assert_ne!(a, formulas(12, 40, 3));
    }

    #[test]
    fn sweeps_stay_in_the_deterministic_fragment() {
        for phi in formulas(7, 200, 3) {
            assert!(
                phi.fragment().is_deterministic(),
                "generated formula left the fragment: {phi}"
            );
        }
    }

    #[test]
    fn sweeps_exercise_both_verdicts() {
        let (mut sat, mut unsat) = (0usize, 0usize);
        for phi in formulas(3, 120, 3) {
            match crate::sat::det::sat_deterministic(&phi) {
                crate::sat::SatResult::Sat(_) => sat += 1,
                crate::sat::SatResult::Unsat => unsat += 1,
                crate::sat::SatResult::Unknown(_) => {}
            }
        }
        assert!(sat > 10, "only {sat} satisfiable formulas in the sweep");
        assert!(
            unsat > 10,
            "only {unsat} unsatisfiable formulas in the sweep"
        );
    }
}
