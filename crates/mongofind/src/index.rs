//! Secondary indexes over the segmented tree column.
//!
//! Two structures per declared path, both keyed through the collection's
//! interned substrate rather than re-materialised values:
//!
//! * a **hash index** on `(path, canon-class)` — per segment, a
//!   [`CanonTable`] assigns every subtree a hash-consed class id, and the
//!   posting map sends each class to the ascending document ordinals whose
//!   path value lands in that class. `$eq` probes an external constant via
//!   [`CanonTable::class_of_json`]; an un-interned constant is a *proof of
//!   absence* (no document can hold it), so the probe answers in O(1)
//!   without touching a document. `$in` is a union of `$eq` probes.
//! * a **sorted column** — per segment, the `(ordinal, value-node)` pairs
//!   ordered by [`cmp_nodes`](crate::cmp_nodes) (the node-node twin of
//!   [`Json::total_cmp`]); `$gt`/`$gte`/`$lt`/`$lte` binary-search the
//!   boundary with [`cmp_node_json`](crate::cmp_node_json) and take a
//!   prefix/suffix. The column is also the substrate a future `$sort`
//!   pushdown reads runs from.
//!
//! Both are **per-segment**: [`Collection::insert`] appends a single-doc
//! segment and [`IndexSet::add_segment`] extends every index incrementally
//! without touching existing postings; [`Collection::compact`] invalidates
//! all node ids and classes, so it rebuilds from scratch
//! ([`IndexSet::rebuild`]).
//!
//! Planning ([`IndexSet::plan`]) flattens a conjunctive filter and splits
//! it into an index-answerable prefix — `Compare(Eq|Gt|Gte|Lt|Lte)` and
//! positive `In` on indexed paths — plus a residual predicate. Probes
//! materialise document-set bitmaps ([`jnl::bitset::BitSet`]) that are
//! ANDed in place; the residual runs [`Filter::matches_at`] only on the
//! surviving ordinals. Missing-path semantics line up exactly: the filter
//! dialect makes `Compare`/positive-`In` false on an unresolvable path,
//! and a document without the path simply never enters a posting.
//!
//! The scan path ([`Collection::find_refs`]) stays untouched as the
//! differential oracle; `tests/index_differential.rs` sweeps layouts and
//! thread counts asserting byte-identical output.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use jguard::{QueryCtx, QueryError};
use jnl::bitset::BitSet;
use jsondata::canon::CanonTable;
use jsondata::{Json, JsonTree, NodeId};
use jtrace::{Counter, SpanKind};

use crate::{cmp_node_json, cmp_nodes, expect_ungoverned, Cmp, Collection, DocRef, Filter, Path};

/// All secondary indexes of one [`Collection`], plus the per-segment
/// canonical-label tables they share. Empty (the default) until
/// [`Collection::create_index`] declares a path; an empty set costs
/// nothing on insert.
///
/// Per-segment postings and canon tables are immutable once built (a
/// segment's contents never change; maintenance only *appends* new
/// per-segment entries), so they sit behind [`Arc`]s and cloning an
/// `IndexSet` — which `Collection::clone` does for every snapshot — is
/// a vector of reference bumps, never a posting rebuild.
#[derive(Default, Clone)]
pub struct IndexSet {
    /// One index per declared path, in declaration order.
    paths: Vec<PathIndex>,
    /// One [`CanonTable`] per segment, shared by every path index (built
    /// lazily on the first `create_index`, parallel to
    /// `Collection::segments` from then on).
    canons: Vec<Arc<CanonTable>>,
}

/// One declared index: the dotted path and its per-segment postings.
#[derive(Clone)]
struct PathIndex {
    /// The declared path, as written (`"name.first"`).
    name: String,
    path: Path,
    /// Parallel to `Collection::segments`.
    segs: Vec<Arc<SegPosting>>,
}

/// The postings of one `(path, segment)` pair.
struct SegPosting {
    /// canon class → ascending global document ordinals (the hash side).
    eq: HashMap<u32, Vec<u32>>,
    /// `(global ordinal, resolved value node)` ordered by
    /// [`cmp_nodes`] then ordinal (the sorted column). Storing the value
    /// node means range probes never re-resolve the path.
    sorted: Vec<(u32, NodeId)>,
}

/// One index-answerable conjunct, referencing the filter it came from.
pub(crate) enum Probe<'f> {
    /// `$eq` constant.
    Eq(&'f Json),
    /// Positive `$in` list (union of `Eq` probes).
    In(&'f [Json]),
    /// `$gt`/`$gte`/`$lt`/`$lte` boundary.
    Range(Cmp, &'f Json),
}

/// The planning split of a conjunctive filter: probes against declared
/// indexes plus the residual conjuncts evaluated on surviving docs only.
/// `pub(crate)` so the explain module can describe the exact split the
/// executor would run.
pub(crate) struct IndexPlan<'f> {
    /// `(position in IndexSet::paths, probe)` pairs.
    pub(crate) probes: Vec<(usize, Probe<'f>)>,
    /// Conjuncts the indexes cannot answer; empty means the probes are
    /// exact.
    pub(crate) residual: Vec<&'f Filter>,
}

/// Builds the postings of one `(path, segment)` pair from the segment's
/// `(ordinal, doc-root)` list.
fn build_posting(
    path: &Path,
    tree: &JsonTree,
    canon: &CanonTable,
    docs: &[(u32, NodeId)],
) -> SegPosting {
    let mut eq: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut sorted: Vec<(u32, NodeId)> = Vec::new();
    for &(ord, doc) in docs {
        if let Some(v) = path.resolve_node(tree, doc) {
            eq.entry(canon.class_of(v)).or_default().push(ord);
            sorted.push((ord, v));
        }
    }
    // Ordinal tiebreak keeps the column deterministic across rebuilds.
    sorted.sort_by(|&(oa, na), &(ob, nb)| cmp_nodes(tree, na, nb).then(oa.cmp(&ob)));
    SegPosting { eq, sorted }
}

/// Groups document ordinals by segment: `out[seg]` lists the
/// `(global ordinal, doc-root)` pairs of that segment, in order.
fn group_by_segment(n_segs: usize, doc_refs: &[DocRef]) -> Vec<Vec<(u32, NodeId)>> {
    let mut per: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); n_segs];
    for (i, d) in doc_refs.iter().enumerate() {
        per[d.seg as usize].push((i as u32, d.node));
    }
    per
}

impl IndexSet {
    /// Whether any index is declared (the fast-path gate: an empty set
    /// costs nothing on insert and plans nothing).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The declared paths, in declaration order.
    pub fn declared(&self) -> impl Iterator<Item = &str> {
        self.paths.iter().map(|p| p.name.as_str())
    }

    /// Position of the index on `path`, if declared.
    fn position(&self, path: &Path) -> Option<usize> {
        self.paths.iter().position(|p| p.path == *path)
    }

    /// The declared path name of the index at position `i` (the plan's
    /// probe positions resolve through this for `EXPLAIN` rendering).
    pub(crate) fn path_name(&self, i: usize) -> &str {
        &self.paths[i].name
    }

    /// Ensures one [`CanonTable`] per segment (no-op when already built).
    fn ensure_canons(&mut self, segments: &[Arc<JsonTree>]) {
        while self.canons.len() < segments.len() {
            self.canons
                .push(Arc::new(CanonTable::build(&segments[self.canons.len()])));
        }
    }

    /// Declares an index on `path_str`, building it over the current
    /// column. Returns `false` (and changes nothing) if already declared.
    pub(crate) fn create(
        &mut self,
        path_str: &str,
        segments: &[Arc<JsonTree>],
        doc_refs: &[DocRef],
    ) -> bool {
        if self.paths.iter().any(|p| p.name == path_str) {
            return false;
        }
        self.ensure_canons(segments);
        let path = Path::parse(path_str);
        let per_seg = group_by_segment(segments.len(), doc_refs);
        let segs = (0..segments.len())
            .map(|s| {
                Arc::new(build_posting(
                    &path,
                    &segments[s],
                    &self.canons[s],
                    &per_seg[s],
                ))
            })
            .collect();
        self.paths.push(PathIndex {
            name: path_str.to_owned(),
            path,
            segs,
        });
        true
    }

    /// Incremental maintenance for [`Collection::insert`]: the new
    /// single-document segment at `doc_refs[new_ordinal]` gets its canon
    /// table and one posting per declared index; existing postings are
    /// untouched. No-op while no index is declared.
    pub(crate) fn add_segment(
        &mut self,
        segments: &[Arc<JsonTree>],
        new_ordinal: usize,
        doc_refs: &[DocRef],
    ) {
        if self.paths.is_empty() {
            return;
        }
        let d = doc_refs[new_ordinal];
        debug_assert_eq!(
            d.seg as usize,
            self.canons.len(),
            "segments append one at a time"
        );
        let tree = &segments[d.seg as usize];
        self.canons.push(Arc::new(CanonTable::build(tree)));
        let canon = self.canons.last().expect("just pushed");
        let docs = [(new_ordinal as u32, d.node)];
        for pi in &mut self.paths {
            let posting = build_posting(&pi.path, tree, canon, &docs);
            pi.segs.push(Arc::new(posting));
        }
    }

    /// Full rebuild for [`Collection::compact`]: node ids and canon
    /// classes are all invalidated by the segment merge, so every table
    /// and posting is reconstructed from the new column.
    pub(crate) fn rebuild(&mut self, segments: &[Arc<JsonTree>], doc_refs: &[DocRef]) {
        if self.paths.is_empty() {
            return;
        }
        self.canons.clear();
        self.ensure_canons(segments);
        let per_seg = group_by_segment(segments.len(), doc_refs);
        let canons = &self.canons;
        for pi in &mut self.paths {
            pi.segs = (0..segments.len())
                .map(|s| {
                    Arc::new(build_posting(
                        &pi.path,
                        &segments[s],
                        &canons[s],
                        &per_seg[s],
                    ))
                })
                .collect();
        }
    }

    /// Splits a conjunctive filter into index probes + residual. `None`
    /// when nothing is index-answerable (callers fall back to the scan).
    /// Top-level `And`s are flattened through nesting; any other
    /// top-level shape is treated as a one-conjunct conjunction.
    pub(crate) fn plan<'f>(&self, filter: &'f Filter) -> Option<IndexPlan<'f>> {
        let mut probes = Vec::new();
        let mut residual = Vec::new();
        let mut stack: Vec<&'f Filter> = vec![filter];
        while let Some(f) = stack.pop() {
            match f {
                Filter::And(fs) => stack.extend(fs.iter()),
                Filter::Compare(p, Cmp::Eq, v) => match self.position(p) {
                    Some(i) => probes.push((i, Probe::Eq(v))),
                    None => residual.push(f),
                },
                Filter::Compare(p, cmp @ (Cmp::Gt | Cmp::Gte | Cmp::Lt | Cmp::Lte), v) => {
                    match self.position(p) {
                        Some(i) => probes.push((i, Probe::Range(*cmp, v))),
                        None => residual.push(f),
                    }
                }
                Filter::In(p, items, true) => match self.position(p) {
                    Some(i) => probes.push((i, Probe::In(items))),
                    None => residual.push(f),
                },
                other => residual.push(other),
            }
        }
        if probes.is_empty() {
            return None;
        }
        Some(IndexPlan { probes, residual })
    }

    /// Whether [`IndexSet::plan`] would find at least one probe for
    /// `filter` — the planner gate `jagg` consults before routing a
    /// leading `$match` through the index path.
    pub(crate) fn answers(&self, filter: &Filter) -> bool {
        !self.is_empty() && self.plan(filter).is_some()
    }

    /// Runs one probe of the index at `pi`, inserting every matching
    /// document ordinal into `out`.
    fn probe_into(
        &self,
        pi: usize,
        probe: &Probe<'_>,
        segments: &[Arc<JsonTree>],
        out: &mut BitSet,
    ) {
        let index = &self.paths[pi];
        for (seg, posting) in index.segs.iter().enumerate() {
            let tree = &segments[seg];
            match probe {
                Probe::Eq(v) => eq_hits(posting, &self.canons[seg], tree, v, out),
                Probe::In(items) => {
                    for v in items.iter() {
                        eq_hits(posting, &self.canons[seg], tree, v, out);
                    }
                }
                Probe::Range(cmp, v) => range_hits(posting, tree, *cmp, v, out),
            }
        }
    }

    /// Executes a plan: probes materialise bitmaps (byte budget charged
    /// per bitmap), intersect in place with early exit on empty, then the
    /// residual conjuncts run on survivors only (row budget charged, ctx
    /// polled per document). Output is in ascending ordinal — i.e.
    /// `(segment, doc)` — order, identical to the scan oracle.
    fn execute(
        &self,
        plan: &IndexPlan<'_>,
        segments: &[Arc<JsonTree>],
        doc_refs: &[DocRef],
        ctx: &QueryCtx,
    ) -> Result<Vec<DocRef>, QueryError> {
        let n = doc_refs.len();
        let bitmap_bytes = (n.div_ceil(64) * 8) as u64;
        let mut acc: Option<BitSet> = None;
        for (ordinal, (pi, probe)) in plan.probes.iter().enumerate() {
            ctx.charge_bytes(bitmap_bytes)?;
            // One probe answers the conjunct across *all* segments, so the
            // count is layout-invariant (same total before/after compact).
            ctx.record(Counter::IndexProbes, 1);
            ctx.span_open(SpanKind::Probe, ordinal as u32);
            let mut bm = BitSet::new(n);
            self.probe_into(*pi, probe, segments, &mut bm);
            ctx.span_close(SpanKind::Probe, ordinal as u32);
            match &mut acc {
                None => acc = Some(bm),
                Some(a) => {
                    ctx.record(Counter::BitmapIntersections, 1);
                    a.intersect_with(&bm);
                }
            }
            if acc.as_ref().expect("just set").is_empty() {
                break;
            }
        }
        let acc = acc.expect("plan holds at least one probe");
        let mut poll = ctx.poller();
        let mut out = Vec::new();
        let mut residual_evals = 0u64;
        for i in acc.iter() {
            poll.tick()?;
            let d = doc_refs[i];
            let tree = &segments[d.seg as usize];
            if !plan.residual.is_empty() {
                residual_evals += 1;
            }
            if plan.residual.iter().all(|f| f.matches_at(tree, d.node)) {
                out.push(d);
            }
        }
        ctx.record(Counter::ResidualEvals, residual_evals);
        ctx.charge_rows(out.len() as u64)?;
        Ok(out)
    }
}

/// `$eq` hits of one posting: classes the external constant into the
/// segment's canon table and reads the posting list. An un-interned
/// constant ([`CanonTable::class_of_json`] → `None`) is an absence proof —
/// nothing to insert.
fn eq_hits(posting: &SegPosting, canon: &CanonTable, tree: &JsonTree, v: &Json, out: &mut BitSet) {
    if let Some(class) = canon.class_of_json(tree, v) {
        if let Some(ords) = posting.eq.get(&class) {
            for &o in ords {
                out.insert(o as usize);
            }
        }
    }
}

/// Range hits of one posting: binary-searches the sorted column boundary
/// against the probe constant ([`cmp_node_json`] implements the same
/// total order the column is sorted by — pinned by the order-property
/// suite) and inserts the matching prefix/suffix.
fn range_hits(posting: &SegPosting, tree: &JsonTree, cmp: Cmp, v: &Json, out: &mut BitSet) {
    let s = &posting.sorted;
    let run = match cmp {
        Cmp::Gt => {
            &s[s.partition_point(|&(_, n)| cmp_node_json(tree, n, v) != Ordering::Greater)..]
        }
        Cmp::Gte => &s[s.partition_point(|&(_, n)| cmp_node_json(tree, n, v) == Ordering::Less)..],
        Cmp::Lt => &s[..s.partition_point(|&(_, n)| cmp_node_json(tree, n, v) == Ordering::Less)],
        Cmp::Lte => {
            &s[..s.partition_point(|&(_, n)| cmp_node_json(tree, n, v) != Ordering::Greater)]
        }
        Cmp::Eq | Cmp::Ne => unreachable!("not a range probe"),
    };
    for &(o, _) in run {
        out.insert(o as usize);
    }
}

impl Collection {
    /// Declares a secondary index on the dotted path `path` (hash +
    /// sorted-column, see the module docs), building it over the current
    /// column. Subsequent [`Collection::insert`]s maintain it
    /// incrementally; [`Collection::compact`] rebuilds it. Returns
    /// `false` if the path is already indexed.
    pub fn create_index(&mut self, path: &str) -> bool {
        let Collection {
            indexes,
            segments,
            doc_refs,
            ..
        } = self;
        indexes.create(path, segments, doc_refs)
    }

    /// Whether a secondary index is declared on `path`.
    pub fn has_index(&self, path: &str) -> bool {
        self.indexes.declared().any(|p| p == path)
    }

    /// Whether the declared indexes can answer at least part of `filter`
    /// — i.e. whether [`Collection::find_refs_indexed`] will probe rather
    /// than fall back to the scan.
    pub fn index_answerable(&self, filter: &Filter) -> bool {
        self.indexes.answers(filter)
    }

    /// [`Collection::find_refs`] answered by index probe: the conjunctive
    /// prefix the indexes can answer materialises document-set bitmaps
    /// (one per probe, ANDed in place), and only the surviving documents
    /// see the residual predicate. Falls back to the scan when no
    /// conjunct is index-answerable. Output is byte-identical to
    /// [`Collection::find_refs`] for every filter (differentially
    /// tested).
    pub fn find_refs_indexed(&self, filter: &Filter) -> Vec<DocRef> {
        expect_ungoverned(self.find_refs_indexed_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_refs_indexed`] under a [`QueryCtx`]: each
    /// materialised bitmap debits the byte budget, the residual pass
    /// polls per surviving document, and matches charge the row budget —
    /// the same observable governance surface as the scan path.
    pub fn find_refs_indexed_with_ctx(
        &self,
        filter: &Filter,
        ctx: &QueryCtx,
    ) -> Result<Vec<DocRef>, QueryError> {
        match self.indexes.plan(filter) {
            Some(plan) => self
                .indexes
                .execute(&plan, &self.segments, &self.doc_refs, ctx),
            None => self.find_refs_with_ctx(filter, ctx),
        }
    }

    /// [`Collection::find`] answered by index probe (scan fallback when
    /// nothing is index-answerable).
    pub fn find_indexed(&self, filter: &Filter) -> Vec<Json> {
        expect_ungoverned(self.find_indexed_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_indexed`] under a [`QueryCtx`].
    pub fn find_indexed_with_ctx(
        &self,
        filter: &Filter,
        ctx: &QueryCtx,
    ) -> Result<Vec<Json>, QueryError> {
        let refs = self.find_refs_indexed_with_ctx(filter, ctx)?;
        self.materialize_refs(ctx, refs, |d| self.json_of(d))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Collection, Filter};

    fn coll() -> Collection {
        Collection::parse_str(
            r#"[
                {"name": {"first": "Sue"}, "age": 28, "tags": ["a", "b"]},
                {"name": {"first": "John"}, "age": 32},
                {"name": {"first": "Ann"}, "age": 28},
                {"age": 99},
                {"name": {"first": "Sue"}, "age": 40}
            ]"#,
        )
        .unwrap()
    }

    fn f(src: &str) -> Filter {
        Filter::parse_str(src).unwrap()
    }

    #[test]
    fn create_is_idempotent() {
        let mut c = coll();
        assert!(c.create_index("age"));
        assert!(!c.create_index("age"));
        assert!(c.has_index("age"));
        assert!(!c.has_index("name.first"));
    }

    #[test]
    fn eq_probe_matches_scan() {
        let mut c = coll();
        c.create_index("name.first");
        c.create_index("age");
        for src in [
            r#"{"name.first": "Sue"}"#,
            r#"{"age": {"$eq": 28}}"#,
            r#"{"name.first": "Sue", "age": {"$gte": 30}}"#,
            r#"{"age": {"$in": [28, 99]}}"#,
            r#"{"age": {"$gt": 28, "$lte": 99}}"#,
            r#"{"name.first": "Nobody"}"#,
            r#"{"age": {"$lt": 5}}"#,
        ] {
            let q = f(src);
            assert!(c.index_answerable(&q), "{src}");
            assert_eq!(c.find_refs_indexed(&q), c.find_refs(&q), "{src}");
        }
    }

    #[test]
    fn residual_conjuncts_apply() {
        let mut c = coll();
        c.create_index("age");
        // "name.first" is not indexed: it must run as residual on the
        // probe survivors.
        let q = f(r#"{"age": 28, "name.first": "Ann"}"#);
        assert!(c.index_answerable(&q));
        let hits = c.find_indexed(&q);
        assert_eq!(hits, c.find(&q));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unanswerable_falls_back_to_scan() {
        let mut c = coll();
        c.create_index("age");
        for src in [
            r#"{"age": {"$ne": 28}}"#,
            r#"{"age": {"$nin": [28]}}"#,
            r#"{"$or": [{"age": 28}, {"age": 99}]}"#,
            r#"{"age": {"$exists": "true"}}"#,
        ] {
            let q = f(src);
            assert!(!c.index_answerable(&q), "{src}");
            assert_eq!(c.find_refs_indexed(&q), c.find_refs(&q), "{src}");
        }
    }

    #[test]
    fn incremental_insert_and_compact_maintain_indexes() {
        let mut c = coll();
        c.create_index("age");
        c.insert(&jsondata::parse(r#"{"name": {"first": "Zoe"}, "age": 28}"#).unwrap());
        let q = f(r#"{"age": 28}"#);
        assert_eq!(c.find_refs_indexed(&q).len(), 3);
        assert_eq!(c.find_refs_indexed(&q), c.find_refs(&q));
        c.compact();
        assert_eq!(c.find_refs_indexed(&q), c.find_refs(&q));
        assert_eq!(c.find_indexed(&q).len(), 3);
    }

    #[test]
    fn empty_collection_probes() {
        let mut c = Collection::parse_str("[]").unwrap();
        c.create_index("age");
        let q = f(r#"{"age": 28}"#);
        assert!(c.index_answerable(&q));
        assert!(c.find_refs_indexed(&q).is_empty());
    }

    #[test]
    fn governed_probe_charges_budgets() {
        use jguard::{QueryCtx, QueryError, Resource};
        let mut c = coll();
        c.create_index("age");
        let q = f(r#"{"age": 28}"#);
        // A one-byte budget cannot pay for the probe bitmap.
        let ctx = QueryCtx::new().with_byte_budget(1);
        match c.find_refs_indexed_with_ctx(&q, &ctx) {
            Err(QueryError::BudgetExceeded {
                resource: Resource::Bytes,
            }) => {}
            other => panic!("expected byte-budget error, got {other:?}"),
        }
        // An ample budget answers normally.
        let ctx = QueryCtx::new().with_byte_budget(1 << 20);
        assert_eq!(
            c.find_refs_indexed_with_ctx(&q, &ctx).unwrap(),
            c.find_refs(&q)
        );
    }
}
