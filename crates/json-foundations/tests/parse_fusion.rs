//! Differential tests for the fused streaming parser: `parse_to_tree(s)`
//! must be **node-for-node identical** to `JsonTree::build(&parse(s)?)` —
//! same CSR layout, same symbol table, same canonical-label vector — and
//! must report the **identical `ParseError`** (kind *and* position) on
//! every malformed input. Both paths reduce to the same `TreeBuilder`
//! event core; this suite pins that equivalence from the outside.

use jsondata::serialize::{to_string, to_string_pretty};
use jsondata::{
    gen, parse, parse_to_tree, parse_to_tree_into, parse_to_tree_with_limits, parse_with_limits,
    CanonTable, Interner, JsonTree, ParseLimits,
};

/// Asserts full structural identity between the fused and two-pass trees of
/// one valid document, plus canon-signature agreement and value round-trip.
fn assert_fusion_identical(src: &str) {
    let doc = parse(src).unwrap_or_else(|e| panic!("corpus doc must parse: {src:?}: {e}"));
    let two_pass = JsonTree::build(&doc);
    let fused = parse_to_tree(src).unwrap_or_else(|e| panic!("fused parse failed on {src:?}: {e}"));
    assert!(
        fused.identical(&two_pass),
        "fused and two-pass trees differ for {src:?}\nfused: {fused:?}\ntwo-pass: {two_pass:?}"
    );
    // Canonical subtree labels are a function of the arena layout; identical
    // trees must produce byte-identical class vectors.
    assert_eq!(
        CanonTable::build(&fused).classes(),
        CanonTable::build(&two_pass).classes(),
        "canon classes differ for {src:?}"
    );
    // And the tree still denotes the parsed value.
    assert_eq!(fused.to_json(), doc, "to_json round-trip for {src:?}");
}

/// Asserts both paths reject `src` with the identical error.
fn assert_same_error(src: &str) {
    let e_value = parse(src).expect_err("corpus doc must be malformed");
    let e_fused = parse_to_tree(src).expect_err("fused parse must also reject");
    assert_eq!(e_value, e_fused, "error mismatch for {src:?}");
}

#[test]
fn hand_written_corpus_is_node_for_node_identical() {
    let corpus: &[&str] = &[
        // Scalars.
        "0",
        "42",
        "18446744073709551615", // u64::MAX
        r#""""#,
        r#""plain ascii""#,
        // Unicode keys and atoms, multi-byte runs.
        r#"{"čšž": "中文", "ключ": ["δ", "ε"], "😀": 7}"#,
        "\"čšž — 中文 😀\"",
        // Escapes in keys and values, incl. surrogate pairs.
        r#"{"A\n\t": "\\\"\/\b\f\n\r\t", "😀": "é"}"#,
        r#""long clean prefix before the first \u00e9 escape""#,
        r#""\ud83d\ude00 surrogate pair""#,
        // Empty containers, nested mixes.
        "{}",
        "[]",
        r#"{"e": {}, "a": []}"#,
        r#"[[], {}, [[]], [{}], {"x": []}]"#,
        // Key order vs symbol order: later keys re-using earlier symbols
        // force sorted spans to differ from document order.
        r#"{"b": 1, "a": 2}"#,
        r#"{"a": {"z": 1}, "x": {"b": 2, "z": 3}}"#,
        r#"["z", {"b": 1, "z": 2}, {"z": 3, "b": 4}]"#,
        // Keys shared with string atoms (one symbol table for both).
        r#"{"yoga": ["yoga", "fishing"], "fishing": "yoga"}"#,
        // The paper's Figure 1.
        r#"{
            "name": {"first": "John", "last": "Doe"},
            "age": 32,
            "hobbies": ["fishing", "yoga"]
        }"#,
        // Deep nesting (well under the default limit).
        &("[".repeat(100) + "7" + &"]".repeat(100)),
        &(r#"{"k":"#.repeat(60).to_string() + "1" + &"}".repeat(60)),
        // Duplicate *symbols across siblings* (legal — only same-object
        // duplicates are errors).
        r#"[{"k": 1}, {"k": 2}, {"k": 3}]"#,
        // Whitespace everywhere.
        " \t\r\n{ \"a\" : [ 1 , 2 ] } \n",
        "\n[\r\n1\t,    2]   ",
    ];
    for src in corpus {
        assert_fusion_identical(src);
    }
}

#[test]
fn malformed_corpus_produces_identical_errors() {
    let corpus: &[&str] = &[
        // Eof at every structural point.
        "",
        "  ",
        "{",
        "{\"a\"",
        "{\"a\":",
        "{\"a\": 1",
        "{\"a\": 1,",
        "[",
        "[1",
        "[1,",
        "\"abc",
        "\"abc\\",
        "\"abc\\u12",
        // Out-of-fragment constructs.
        "null",
        "true",
        "false",
        "-3",
        "3.5",
        "3e2",
        "012",
        "99999999999999999999999",
        "nul",
        "tru",
        // Structure errors.
        "{,}",
        "{1: 2}",
        "{\"a\" 1}",
        "{\"a\": 1,}",
        "{\"a\": 1 \"b\": 2}",
        "[1 2]",
        "[1,]",
        "[1, 2)",
        "1 2",
        "{} {}",
        "]",
        "}",
        ":",
        "%",
        "é",
        // String errors.
        "\"a\u{0001}b\"",
        r#""\q""#,
        r#""\ud800""#,
        r#""\udc00""#,
        r#""\ud800A""#,
        r#""\ud800x""#,
        r#""\uzzzz""#,
        // Duplicate keys, shallow and nested, with escape-built duplicates.
        r#"{"a": 1, "a": 2}"#,
        r#"{"k": {"x": 1, "x": 2}}"#,
        r#"[1, {"dup": [], "dup": {}}]"#,
        // Error *after* substantial valid prefix (positions must agree deep
        // into the document).
        r#"{"a": [1, 2, {"b": "c"}], "d": nope}"#,
        "{\n  \"a\": null\n}",
    ];
    for src in corpus {
        assert_same_error(src);
    }
}

#[test]
fn parse_limits_edges_agree() {
    let cases: &[(&str, usize)] = &[
        // Scalars parse at depth 0; any nesting exceeds it.
        ("7", 0),
        ("[]", 0),
        ("{}", 0),
        ("[7]", 0),
        (r#"{"k": 1}"#, 0),
        // Exactly at and one past the limit.
        ("[[3]]", 2),
        ("[[[3]]]", 2),
        ("[[[", 2),
        (r#"{"a": {"b": {"c": 1}}}"#, 3),
        (r#"{"a": {"b": {"c": {}}}}"#, 3),
        (r#"{"a": {"b": {"c": {"d": 1}}}}"#, 3),
    ];
    for &(src, max_depth) in cases {
        let limits = ParseLimits::depth(max_depth);
        let via_value = parse_with_limits(src, limits);
        let via_tree = parse_to_tree_with_limits(src, limits);
        match (via_value, via_tree) {
            (Ok(doc), Ok(tree)) => {
                assert!(
                    tree.identical(&JsonTree::build(&doc)),
                    "trees differ for {src:?} at depth {max_depth}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "errors differ for {src:?} at {max_depth}"),
            (a, b) => panic!(
                "accept/reject mismatch for {src:?} at depth {max_depth}: value={a:?} tree={}",
                if b.is_ok() { "Ok" } else { "Err" }
            ),
        }
    }
    // The default-limit boundary itself.
    let at_limit = "[".repeat(512) + "1" + &"]".repeat(512);
    let over_limit = "[".repeat(513) + "1" + &"]".repeat(513);
    assert!(parse_to_tree(&at_limit).is_ok());
    assert_eq!(
        parse(&over_limit).unwrap_err(),
        parse_to_tree(&over_limit).unwrap_err()
    );
}

#[test]
fn random_documents_fuse_identically() {
    // Property sweep: random documents serialized both compactly and
    // pretty-printed must fuse to the identical tree, and the tree must
    // round-trip to the generated value.
    for seed in 0..300u64 {
        let doc = gen::random_json(&gen::GenConfig::sized(seed, 120));
        for src in [to_string(&doc), to_string_pretty(&doc)] {
            let fused = parse_to_tree(&src).expect("serialized docs parse");
            let two_pass = JsonTree::build(&parse(&src).unwrap());
            assert!(
                fused.identical(&two_pass),
                "seed {seed}: fused differs on {src}"
            );
            assert_eq!(fused.to_json(), doc, "seed {seed}: round-trip on {src}");
            assert_eq!(
                CanonTable::build(&fused).classes(),
                CanonTable::build(&two_pass).classes(),
                "seed {seed}: canon classes on {src}"
            );
        }
    }
}

#[test]
fn random_unicode_heavy_documents_fuse_identically() {
    // Push multi-byte keys/atoms and escape-heavy serialization through the
    // lexer's borrowed and owned string paths.
    let cfg_base = gen::GenConfig::sized(0, 80);
    for seed in 0..120u64 {
        let cfg = gen::GenConfig {
            seed,
            key_pool: [
                "α",
                "βγ",
                "中文",
                "k\n",
                "tab\t",
                "q\"uote",
                "back\\slash",
                "a",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            string_pool: ["δ", "x\ty", "line\nbreak", "中 文", "\u{8}\u{c}", ""]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..cfg_base.clone()
        };
        let doc = gen::random_json(&cfg);
        let src = to_string(&doc);
        let fused = parse_to_tree(&src).expect("escaped serialization parses");
        let two_pass = JsonTree::build(&parse(&src).unwrap());
        assert!(fused.identical(&two_pass), "seed {seed}: {src}");
        assert_eq!(fused.to_json(), doc, "seed {seed}: {src}");
    }
}

#[test]
fn shared_interner_symbols_are_stable_across_documents() {
    let limits = ParseLimits::default();
    for seed in 0..60u64 {
        let doc_a = gen::random_json(&gen::GenConfig::sized(seed, 60));
        let doc_b = gen::random_json(&gen::GenConfig::sized(seed + 1000, 60));
        let (src_a, src_b) = (to_string(&doc_a), to_string(&doc_b));

        let mut shared = Interner::new();
        let t_a = parse_to_tree_into(&src_a, limits, &mut shared).unwrap();
        let t_b = parse_to_tree_into(&src_b, limits, &mut shared).unwrap();

        // Sym stability: every string interned by both trees carries the
        // same symbol, and t_a's table is a prefix of t_b's.
        for (sym, s) in t_a.interner().iter() {
            assert_eq!(t_b.sym(s), Some(sym), "seed {seed}: symbol for {s:?}");
            assert_eq!(shared.lookup(s), Some(sym));
        }
        assert!(t_a.interner().len() <= t_b.interner().len());

        // The shared-interner tree is *not* identical to a fresh-interner
        // parse in general, but denotes the same value and matches the
        // two-pass shared-interner construction.
        let mut shared2 = Interner::new();
        let two_a = JsonTree::build_into(&parse(&src_a).unwrap(), &mut shared2);
        let two_b = JsonTree::build_into(&parse(&src_b).unwrap(), &mut shared2);
        assert!(t_a.identical(&two_a), "seed {seed}: shared doc A");
        assert!(t_b.identical(&two_b), "seed {seed}: shared doc B");
        assert_eq!(t_a.to_json(), doc_a);
        assert_eq!(t_b.to_json(), doc_b);
    }
}

#[test]
fn shared_interner_survives_parse_errors() {
    let limits = ParseLimits::default();
    let mut shared = Interner::new();
    let t1 = parse_to_tree_into(r#"{"k": "v"}"#, limits, &mut shared).unwrap();
    // A malformed document must not lose the shared table (it may add
    // symbols from the well-formed prefix).
    let before = shared.lookup("k");
    assert!(parse_to_tree_into(r#"{"new": "w", "bad" 1}"#, limits, &mut shared).is_err());
    assert_eq!(
        shared.lookup("k"),
        before,
        "existing symbols survive errors"
    );
    let t2 = parse_to_tree_into(r#"{"v": "k"}"#, limits, &mut shared).unwrap();
    assert_eq!(t1.sym("k"), t2.sym("k"));
    assert_eq!(t1.sym("v"), t2.sym("v"));
}

#[test]
fn fused_tree_structural_invariants_hold() {
    // The invariants the engines rely on, checked on fused-built trees
    // directly: pre-order ids, contiguous subtrees, symbol-sorted object
    // spans, slot/parent consistency.
    for seed in 0..40u64 {
        let doc = gen::random_json(&gen::GenConfig::sized(seed, 150));
        let tree = parse_to_tree(&to_string(&doc)).unwrap();
        for n in tree.node_ids() {
            let syms = tree.obj_syms(n);
            assert!(syms.windows(2).all(|w| w[0] < w[1]), "sorted object span");
            for (_, c) in tree.children(n) {
                assert!(c > n, "pre-order ids");
                assert_eq!(tree.parent(c), Some(n), "parent pointers");
            }
            // Subtree contiguity: children fall inside [n, n + size).
            let hi = n.index() + tree.subtree_size(n);
            for (_, c) in tree.children(n) {
                assert!(c.index() < hi, "children inside the contiguous block");
            }
        }
        assert_eq!(tree.to_json(), doc);
    }
}

#[test]
fn duplicate_key_positions_agree_after_unicode_prefixes() {
    // Position bookkeeping (line/col in scalar values) must agree between
    // the paths even when multi-byte characters and escapes precede the
    // error.
    let srcs = [
        "{\"中文\": 1,\n \"中文\": 2}",
        "{\"a\": \"😀😀\", \"a\": 1}",
        "{\"x\": \"multi\nline is illegal\"}",
        "{\"k\": \"ok\", \"\\u4e2d\\u6587\": 1, \"中文\": 2}",
    ];
    for src in srcs {
        let a = parse(src);
        let b = parse_to_tree(src).map(|t| t.to_json());
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{src:?}"),
            (Err(x), Err(y)) => assert_eq!(x, y, "{src:?}"),
            other => panic!("accept/reject mismatch on {src:?}: {other:?}"),
        }
    }
}
