//! The precomputed DFA-over-symbols tier of edge matching.
//!
//! With every key and string atom of a tree interned to a dense `u32`
//! symbol (`jsondata::intern`), the set of symbols matching a regex is a
//! *subset of a known finite universe* — so instead of deciding membership
//! lazily per first-seen symbol (the [`KeyMatchMemo`] tier), a regex can be
//! compiled **once per (query, tree)** to a [`Dfa`] and evaluated over the
//! whole symbol table in one pass, producing a dense [`SymBitset`] with one
//! bit per symbol. Every edge test in the evaluation inner loops then
//! becomes a single bit load — no tri-state branch, no string resolution,
//! no NFA run.
//!
//! Determinisation can blow up (the classical `(a|b)*a(a|b)^n` family needs
//! `2^(n+1)` states), so [`SymMatcher::compile`] caps subset construction at
//! [`MAX_EDGE_DFA_STATES`] and falls back to the lazy [`KeyMatchMemo`] tier
//! for the offending regex — chosen per regex at compile time, never probed
//! again in the loop.
//!
//! Cost model: the eager pass is `O(total interned bytes)` per distinct
//! regex — the same order as building the tree — and each DFA step is a
//! table walk, far cheaper than the memo tier's NFA simulation. Whole-tree
//! evaluations (the logic engines' node-set semantics) always amortise it.
//! A *selective* traversal that resolves only a handful of symbols (e.g. a
//! single-path query over a huge, already-built tree) can prefer
//! [`EdgeStrategy::LazyMemo`], which bounds work to the symbols actually
//! tested.
//!
//! A bitset is built against a *snapshot* of the symbol table (symbols
//! `0..len` at compile time). Symbols interned later are still answered
//! correctly — by a direct DFA run — and [`SymMatcher::extend`] appends
//! their verdicts so they rejoin the bit-test fast path.

use crate::dfa::Dfa;
use crate::memo::{KeyMatchMemo, RegexKeyedVec};
use crate::nfa::Nfa;
use crate::Regex;

/// State cap for edge-matcher DFAs. Deliberately far below
/// [`crate::dfa::MAX_DFA_STATES`]: a schema/formula regex that needs more
/// than a few thousand states is adversarial, and the lazy memo tier
/// bounds its cost to one NFA run per *tested* symbol instead of an eager
/// pass over the whole table.
pub const MAX_EDGE_DFA_STATES: usize = 1 << 12;

/// A dense bitset over symbol indexes (one bit per interned string).
#[derive(Debug, Clone, Default)]
pub struct SymBitset {
    words: Vec<u64>,
    len: usize,
}

impl SymBitset {
    /// An empty bitset covering no symbols.
    pub fn new() -> SymBitset {
        SymBitset::default()
    }

    /// Builds the match set of `dfa` over a symbol-table snapshot: bit `i`
    /// is the verdict for the `i`-th string yielded by `strings`.
    pub fn matching<'a>(dfa: &Dfa, strings: impl Iterator<Item = &'a str>) -> SymBitset {
        let mut out = SymBitset::new();
        for s in strings {
            out.push(dfa.is_match(s));
        }
        out
    }

    /// Number of symbols covered (bits, set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset covers no symbols.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The verdict bit for symbol `i`. Symbols beyond the snapshot answer
    /// `false`; callers that can intern new symbols must consult the DFA
    /// for those (see [`SymMatcher::matches_sym`]).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "symbol {i} outside snapshot of {}", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Appends the verdict for the next symbol (index `self.len()`).
    pub fn push(&mut self, v: bool) {
        let i = self.len;
        if i >> 6 == self.words.len() {
            self.words.push(0);
        }
        if v {
            self.words[i >> 6] |= 1 << (i & 63);
        }
        self.len += 1;
    }

    /// Number of matching symbols.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// How an evaluation context decides regex edge tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeStrategy {
    /// Compile each regex to a DFA and precompute a [`SymBitset`] over the
    /// symbol table (falling back per regex on [`MAX_EDGE_DFA_STATES`]).
    #[default]
    DfaBitset,
    /// Always use the lazy per-symbol [`KeyMatchMemo`] tier (kept for
    /// benchmark ablations and differential tests).
    LazyMemo,
}

/// A per-regex edge matcher: the precomputed bitset tier with its source
/// DFA, or the lazy memo fallback.
pub struct SymMatcher {
    repr: Repr,
}

enum Repr {
    /// Bitset over the symbol snapshot; the DFA stays around to answer
    /// symbols interned after the snapshot and to extend the bitset.
    Bits { dfa: Dfa, bits: SymBitset },
    /// Lazy tri-state memo (regex too large to determinise).
    Memo(KeyMatchMemo),
}

impl SymMatcher {
    /// Compiles `e` for a symbol-table snapshot: determinise (capped at
    /// [`MAX_EDGE_DFA_STATES`]) and precompute the bitset, or fall back to
    /// the lazy memo tier if determinisation blows up.
    pub fn compile<'a>(e: &Regex, strings: impl Iterator<Item = &'a str>) -> SymMatcher {
        let nfa = Nfa::from_regex(e);
        match Dfa::try_from_nfa_capped(&nfa, MAX_EDGE_DFA_STATES) {
            Ok(dfa) => {
                let bits = SymBitset::matching(&dfa, strings);
                SymMatcher {
                    repr: Repr::Bits { dfa, bits },
                }
            }
            Err(_) => SymMatcher {
                repr: Repr::Memo(KeyMatchMemo::new(e.compile())),
            },
        }
    }

    /// A matcher pinned to the lazy memo tier (the [`EdgeStrategy::LazyMemo`]
    /// ablation path).
    pub fn lazy_memo(e: &Regex) -> SymMatcher {
        SymMatcher {
            repr: Repr::Memo(KeyMatchMemo::new(e.compile())),
        }
    }

    /// Whether this matcher runs on the precomputed bitset tier.
    pub fn is_bitset(&self) -> bool {
        matches!(self.repr, Repr::Bits { .. })
    }

    /// The precomputed bitset, if this matcher has one.
    pub fn bitset(&self) -> Option<&SymBitset> {
        match &self.repr {
            Repr::Bits { bits, .. } => Some(bits),
            Repr::Memo(_) => None,
        }
    }

    /// Membership of the string behind symbol `sym`. On the bitset tier this
    /// is a single bit load and `resolve` is never called; symbols interned
    /// after the snapshot fall back to one direct DFA run. On the memo tier
    /// it is the tri-state table probe with a lazy NFA run.
    #[inline]
    pub fn matches_sym<'s>(&mut self, sym: usize, resolve: impl FnOnce() -> &'s str) -> bool {
        match &mut self.repr {
            Repr::Bits { dfa, bits } => {
                if sym < bits.len() {
                    bits.contains(sym)
                } else {
                    dfa.is_match(resolve())
                }
            }
            Repr::Memo(m) => m.matches_str(sym, resolve()),
        }
    }

    /// Direct membership on a resolved string (no caching).
    pub fn is_match(&self, s: &str) -> bool {
        match &self.repr {
            Repr::Bits { dfa, .. } => dfa.is_match(s),
            Repr::Memo(m) => m.is_match(s),
        }
    }

    /// Appends verdicts for symbols interned after the snapshot this
    /// matcher was compiled against (`strings` must yield exactly the new
    /// strings, in symbol order). No-op on the memo tier, which is lazy by
    /// construction.
    pub fn extend<'a>(&mut self, strings: impl Iterator<Item = &'a str>) {
        if let Repr::Bits { dfa, bits } = &mut self.repr {
            for s in strings {
                bits.push(dfa.is_match(s));
            }
        }
    }
}

/// A stable handle to a matcher within one [`SymMatcherTable`] — lets hot
/// loops (e.g. the PDL product BFS) pre-resolve a regex once and then fetch
/// its matcher by vector index, with no AST hashing per edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherId(usize);

/// The per-(query, tree) collection of [`SymMatcher`]s shared by the
/// evaluation contexts of the logic crates.
///
/// Lookups go through the shared single-probe structure
/// (`crate::memo::RegexKeyedVec`): one AST hash + one `u64` map probe + one
/// AST equality check on a hit.
pub struct SymMatcherTable {
    strategy: EdgeStrategy,
    matchers: RegexKeyedVec<SymMatcher>,
}

impl Default for SymMatcherTable {
    fn default() -> Self {
        SymMatcherTable::new()
    }
}

impl SymMatcherTable {
    /// An empty table using the default [`EdgeStrategy::DfaBitset`] tier.
    pub fn new() -> SymMatcherTable {
        SymMatcherTable::with_strategy(EdgeStrategy::default())
    }

    /// An empty table with an explicit strategy.
    pub fn with_strategy(strategy: EdgeStrategy) -> SymMatcherTable {
        SymMatcherTable {
            strategy,
            matchers: RegexKeyedVec::default(),
        }
    }

    /// The strategy this table compiles new regexes with.
    pub fn strategy(&self) -> EdgeStrategy {
        self.strategy
    }

    /// Number of distinct regexes compiled so far.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// Whether no regex has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.matchers.len() == 0
    }

    /// The id of the matcher for `e`, compiling it on first sight against
    /// the symbol snapshot produced by `strings` (only invoked on a miss).
    pub fn id<'a, I>(&mut self, e: &Regex, strings: impl FnOnce() -> I) -> MatcherId
    where
        I: Iterator<Item = &'a str>,
    {
        let strategy = self.strategy;
        MatcherId(self.matchers.slot_or_insert_with(e, |e| match strategy {
            EdgeStrategy::DfaBitset => SymMatcher::compile(e, strings()),
            EdgeStrategy::LazyMemo => SymMatcher::lazy_memo(e),
        }))
    }

    /// The matcher behind an id (a plain vector index; no hashing).
    #[inline]
    pub fn get_mut(&mut self, id: MatcherId) -> &mut SymMatcher {
        self.matchers.get_mut(id.0)
    }

    /// Convenience: the matcher for `e` (one table probe; loops over many
    /// edges should fetch this once, or pre-resolve ids with
    /// [`SymMatcherTable::id`]).
    pub fn matcher<'a, I>(&mut self, e: &Regex, strings: impl FnOnce() -> I) -> &mut SymMatcher
    where
        I: Iterator<Item = &'a str>,
    {
        let id = self.id(e, strings);
        self.get_mut(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_push_and_contains() {
        let mut b = SymBitset::new();
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        for i in 0..200 {
            assert_eq!(b.contains(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), 67);
        assert!(SymBitset::new().is_empty());
    }

    #[test]
    fn compiled_matcher_agrees_with_nfa() {
        let e = Regex::parse("a(b|c)a|[x-z]+").unwrap();
        let compiled = e.compile();
        let keys = ["aba", "aca", "ada", "", "xyz", "xa", "zzz", "日本"];
        let mut m = SymMatcher::compile(&e, keys.iter().copied());
        assert!(m.is_bitset());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                m.matches_sym(i, || k),
                compiled.is_match(k),
                "key {k} (sym {i})"
            );
        }
    }

    #[test]
    fn out_of_snapshot_symbols_fall_back_to_dfa_and_extend() {
        let e = Regex::parse("k[0-9]+").unwrap();
        let snapshot = ["k1", "nope"];
        let mut m = SymMatcher::compile(&e, snapshot.iter().copied());
        // Symbols 2 and 3 were interned after the snapshot.
        assert!(m.matches_sym(2, || "k42"));
        assert!(!m.matches_sym(3, || "zzz"));
        assert_eq!(m.bitset().unwrap().len(), 2);
        m.extend(["k42", "zzz"].into_iter());
        assert_eq!(m.bitset().unwrap().len(), 4);
        assert!(m.matches_sym(2, || unreachable!("bit test must not resolve")));
    }

    #[test]
    fn blowup_regex_falls_back_to_memo() {
        // (a|b)*a(a|b)^12 needs 2^13 DFA states, above MAX_EDGE_DFA_STATES.
        let e = Regex::parse("(a|b)*a(a|b){12}").unwrap();
        let compiled = e.compile();
        let keys = ["aabababababab", "bbbbbbbbbbbbb", "a", ""];
        let mut m = SymMatcher::compile(&e, keys.iter().copied());
        assert!(!m.is_bitset(), "fallback expected");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(m.matches_sym(i, || k), compiled.is_match(k), "key {k}");
        }
    }

    #[test]
    fn table_single_probe_per_regex() {
        let mut t = SymMatcherTable::new();
        let e1 = Regex::parse("a+").unwrap();
        let e2 = Regex::parse("b+").unwrap();
        let strings = ["aa", "bb"];
        let id1 = t.id(&e1, || strings.iter().copied());
        let id2 = t.id(&e2, || strings.iter().copied());
        assert_ne!(id1, id2);
        assert_eq!(t.id(&e1, || strings.iter().copied()), id1, "stable id");
        assert_eq!(t.len(), 2);
        assert!(t.get_mut(id1).matches_sym(0, || "aa"));
        assert!(!t.get_mut(id1).matches_sym(1, || "bb"));
        assert!(t.get_mut(id2).matches_sym(1, || "bb"));
    }

    #[test]
    fn lazy_strategy_pins_memo_tier() {
        let mut t = SymMatcherTable::with_strategy(EdgeStrategy::LazyMemo);
        let e = Regex::parse("a+").unwrap();
        let m = t.matcher(&e, || ["aa"].into_iter());
        assert!(!m.is_bitset());
        assert!(m.matches_sym(0, || "aa"));
        assert!(!m.matches_sym(1, || "xx"));
    }
}
