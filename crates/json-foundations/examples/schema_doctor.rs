//! Static analysis of schemas and queries — the satisfiability machinery of
//! Propositions 2, 5, 7 at work: detect dead schemas (no document can ever
//! validate), dead query filters, and produce example documents for live
//! ones.
//!
//! ```sh
//! cargo run --example schema_doctor
//! ```

use json_foundations::nav::sat::det::sat_deterministic;
use json_foundations::nav::SatResult;
use json_foundations::schema::{schema_to_jsl, Schema};
use json_foundations::schema_logic::{sat_recursive, JslSatResult, SatConfig};

fn diagnose_schema(label: &str, src: &str) {
    let schema = Schema::parse_str(src).expect("schema parses");
    let delta = schema_to_jsl(&schema).expect("fragment translates");
    match sat_recursive(&delta, SatConfig::default()) {
        JslSatResult::Sat(example) => {
            println!("{label}: LIVE — example document: {example}");
        }
        JslSatResult::Unsat => {
            println!("{label}: DEAD — no document can ever validate");
        }
        JslSatResult::Unknown(why) => println!("{label}: UNDECIDED ({why})"),
    }
}

fn main() {
    println!("== schema liveness (Prop 7 satisfiability) ==");
    diagnose_schema(
        "sane person schema     ",
        r#"{"type": "object", "required": ["name"],
            "properties": {"name": {"type": "string", "pattern": "[A-Z][a-z]+"}}}"#,
    );
    diagnose_schema(
        "impossible number      ",
        r#"{"type": "number", "minimum": 15, "maximum": 20, "multipleOf": 7}"#,
    );
    diagnose_schema(
        "contradictory key      ",
        // The key `a` must validate against both an array and an object
        // schema — the paper's key-determinism clash.
        r#"{"type": "object", "allOf": [
            {"properties": {"a": {"type": "array"}}, "required": ["a"]},
            {"properties": {"a": {"type": "object"}}}
        ]}"#,
    );
    diagnose_schema(
        "self-contradictory     ",
        r#"{"allOf": [{"type": "string"}, {"not": {"type": "string"}}]}"#,
    );
    diagnose_schema(
        "paper string example   ",
        r#"{"type": "string", "pattern": "(0|1)+"}"#,
    );

    println!("\n== query-filter liveness (Prop 2 satisfiability) ==");
    let filters = [
        (
            "reachable condition ",
            r#"eqdoc(@"name" ; @"first", "Sue") & [@"hobbies" ; @1]"#,
        ),
        (
            "kind clash          ",
            r#"[@"a" ; <[@0]>] & [@"a" ; <[@"b"]>]"#,
        ),
        (
            "equality contradiction",
            r#"eqdoc(@"x", 1) & eqdoc(@"x", 2)"#,
        ),
        ("negation squeeze    ", r#"[@"arr" ; @2] & ![@"arr" ; @5]"#),
    ];
    for (label, src) in filters {
        let phi = jnl::parse_unary(src).expect("JNL parses");
        match sat_deterministic(&phi) {
            SatResult::Sat(witness) => {
                println!("{label}: SATISFIABLE — witness {witness}");
            }
            SatResult::Unsat => println!("{label}: UNSATISFIABLE"),
            SatResult::Unknown(why) => println!("{label}: UNKNOWN ({why})"),
        }
    }
}
