//! S2: the key-interning experiment — `Sym`-based hot paths against the
//! frozen pre-interning string implementations of `bench::baseline`.
//!
//! Three measurements: `child_by_key` (hit and miss) on a wide object, E1
//! deterministic JNL evaluation, and E7 JSL `Arr ∧ Unique` under the
//! canonical strategy. The harness twin (`harness s2`) emits the same
//! comparisons as `BENCH_interning.json`.

use bench::baseline::{e7_canonical_strings, linear_eval_strings, StringChildIndex};
use bench::{e1_formula, e7_formula, scaling_doc};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsl::{EvalOptions, UniqueStrategy};
use jsondata::JsonTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("s2_interning");
    g.sample_size(10);

    // Key lookup: interner probe + Sym binary search vs string binary search.
    let n_keys = 4096usize;
    let tree = JsonTree::build(&jsondata::gen::wide_object(n_keys));
    let index = StringChildIndex::build(&tree);
    let root = tree.root();
    let hits: Vec<String> = (0..n_keys).map(|i| format!("k{i}")).collect();
    let misses: Vec<String> = (0..n_keys).map(|i| format!("m{i}")).collect();
    for (label, keys) in [("hit", &hits), ("miss", &misses)] {
        g.bench_with_input(BenchmarkId::new("lookup_interned", label), keys, |b, ks| {
            b.iter(|| {
                ks.iter()
                    .filter(|k| tree.child_by_key(root, k).is_some())
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("lookup_baseline", label), keys, |b, ks| {
            b.iter(|| {
                ks.iter()
                    .filter(|k| index.child_by_key(root, k).is_some())
                    .count()
            })
        });
    }

    // E1: deterministic JNL evaluation.
    let phi = e1_formula();
    for exp in [12u32, 14] {
        let doc = scaling_doc(1 << exp, 1);
        let t = JsonTree::build(&doc);
        let idx = StringChildIndex::build(&t);
        g.bench_with_input(
            BenchmarkId::new("e1_interned", t.node_count()),
            &t,
            |b, t| b.iter(|| jnl::eval::linear::eval(t, &phi).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("e1_baseline", t.node_count()),
            &t,
            |b, t| b.iter(|| linear_eval_strings(t, &idx, &phi)),
        );
    }

    // E7: JSL Arr ∧ Unique, canonical strategy.
    let e7_phi = e7_formula();
    let canonical = EvalOptions {
        unique: UniqueStrategy::Canonical,
        ..Default::default()
    };
    for exp in [11u32, 13] {
        let n = 1usize << exp;
        let t = JsonTree::build(&jsondata::gen::wide_array(n));
        g.bench_with_input(BenchmarkId::new("e7_interned", n), &t, |b, t| {
            b.iter(|| jsl::eval::evaluate_with(t, &e7_phi, canonical))
        });
        g.bench_with_input(BenchmarkId::new("e7_baseline", n), &t, |b, t| {
            b.iter(|| e7_canonical_strings(t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
