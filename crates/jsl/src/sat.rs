//! Satisfiability for JSL (Propositions 7 and 10) and, through the
//! Theorem 2 translation, for non-deterministic JNL (Proposition 5).
//!
//! The engine is a modal tableau with theory reasoning at the leaves:
//!
//! * boolean structure branches; recursive definitions unfold lazily (their
//!   well-formedness guarantees local termination);
//! * at each node the solver branches on the node kind, then discharges
//!   the accumulated atoms: **string** constraints through DFA language
//!   algebra (intersection/complement/witness), **number** constraints
//!   through bounded window scanning over the periodic structure of
//!   `MultOf`, **object** constraints by carving the key space into Venn
//!   regions of the mentioned regexes and assigning diamonds to regions,
//!   and **array** constraints by branching over candidate lengths and
//!   positions;
//! * non-recursive formulas need models no taller than their modal depth,
//!   so the search is complete for them (Prop 7); recursive formulas are
//!   explored to a configurable height cap (Prop 10's procedure is
//!   EXPTIME-complete — the cap makes the implementation a semi-decision
//!   procedure that reports [`JslSatResult::Unknown`] when it bites);
//! * every witness is **re-verified** with the production evaluator before
//!   `Sat` is reported, and any verification mismatch downgrades a would-be
//!   `Unsat` to `Unknown`, keeping both verdicts sound.

use std::collections::{BTreeSet, HashMap};

use jsondata::{Interner, Json, JsonTree, Sym};
use relex::{Dfa, Regex};

use crate::ast::{Jsl, NodeTest};
use crate::recursive::RecursiveJsl;

/// Outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq)]
pub enum JslSatResult {
    /// Satisfiable; the witness has been re-verified by the evaluator.
    Sat(Json),
    /// No model exists (within the complete fragment).
    Unsat,
    /// Gave up: height cap, branch budget, or heuristic gap (explained).
    Unknown(String),
}

impl JslSatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, JslSatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, JslSatResult::Unsat)
    }
}

/// Tuning knobs for the tableau.
#[derive(Debug, Clone, Copy)]
pub struct SatConfig {
    /// Model-height cap; `None` derives it (modal depth for non-recursive
    /// input, 24 for recursive input).
    pub max_height: Option<usize>,
    /// Budget on explored branches.
    pub branch_budget: usize,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            max_height: None,
            branch_budget: 400_000,
        }
    }
}

/// Satisfiability of a plain (non-recursive) JSL formula — Proposition 7.
pub fn sat_jsl(phi: &Jsl) -> JslSatResult {
    sat_recursive(&RecursiveJsl::plain(phi.clone()), SatConfig::default())
}

/// Satisfiability of a recursive JSL expression — Proposition 10's
/// decision problem, explored to a height cap.
pub fn sat_recursive(delta: &RecursiveJsl, cfg: SatConfig) -> JslSatResult {
    if let Err(e) = delta.well_formed() {
        return JslSatResult::Unknown(format!("ill-formed expression: {e}"));
    }
    let height = cfg.max_height.unwrap_or_else(|| {
        if delta.defs.is_empty() {
            delta.base.modal_depth()
        } else {
            24
        }
    });
    let defs: HashMap<&str, &Jsl> = delta.defs.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let mut solver = Tableau {
        defs,
        budget: cfg.branch_budget,
        capped: false,
        mismatch: false,
        ill_formed: None,
        dfa_cache: HashMap::new(),
        syms: Interner::new(),
        delta,
    };
    match solver.solve(vec![Lit::pos(delta.base.clone())], height) {
        Some(witness) => {
            // Final verification with the production evaluator (fail-closed:
            // an ill-formed Δ downgrades to Unknown, never a panic).
            let tree = JsonTree::build(&witness);
            match delta.try_check_root(&tree) {
                Ok(true) => JslSatResult::Sat(witness),
                Ok(false) => JslSatResult::Unknown(
                    "internal: constructed witness failed verification".to_owned(),
                ),
                Err(e) => JslSatResult::Unknown(format!("ill-formed expression: {e}")),
            }
        }
        None if solver.ill_formed.is_some() => JslSatResult::Unknown(format!(
            "{} reached during search",
            solver.ill_formed.expect("checked")
        )),
        None if solver.capped => JslSatResult::Unknown(format!(
            "no model within height {height} / branch budget (recursive formulas may need deeper models)"
        )),
        None if solver.mismatch => JslSatResult::Unknown(
            "search exhausted but a candidate failed verification (heuristic gap)".to_owned(),
        ),
        None => JslSatResult::Unsat,
    }
}

/// A signed formula.
#[derive(Debug, Clone)]
struct Lit {
    phi: Jsl,
    positive: bool,
}

impl Lit {
    fn pos(phi: Jsl) -> Lit {
        Lit {
            phi,
            positive: true,
        }
    }

    fn neg(phi: Jsl) -> Lit {
        Lit {
            phi,
            positive: false,
        }
    }
}

/// Atoms accumulated at one tableau node.
#[derive(Debug, Default, Clone)]
struct NodeAtoms {
    kind_pos: Vec<NodeKindReq>,
    // Value constraints (apply when the kind matches; contradict otherwise).
    patterns_pos: Vec<Regex>,
    patterns_neg: Vec<Regex>,
    /// Positive `Min(i)` (implies the node is a number).
    min_pos: Option<u64>,
    /// Positive `Max(i)` (implies the node is a number).
    max_pos: Option<u64>,
    /// Negated `Min(i)`: *if* a number, value < i.
    neg_min: Vec<u64>,
    /// Negated `Max(i)`: *if* a number, value > i.
    neg_max: Vec<u64>,
    mult_pos: Vec<u64>,
    mult_neg: Vec<u64>,
    num_neq: Vec<u64>,
    minch: u64,
    maxch: Option<u64>,
    unique_pos: bool,
    unique_neg: bool,
    eq_docs: Vec<Json>,
    neq_docs: Vec<Json>,
    // Modal obligations.
    dia_key: Vec<(Regex, Jsl)>,
    box_key: Vec<(Regex, Jsl)>,
    dia_rng: Vec<(u64, Option<u64>, Jsl)>,
    box_rng: Vec<(u64, Option<u64>, Jsl)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKindReq {
    Obj,
    Arr,
    Str,
    Int,
    NotObj,
    NotArr,
    NotStr,
    NotInt,
}

struct Tableau<'a> {
    defs: HashMap<&'a str, &'a Jsl>,
    budget: usize,
    capped: bool,
    mismatch: bool,
    /// First ill-formedness (dangling definition name, cycle) encountered
    /// during search. The `sat_recursive` entry guards with
    /// `well_formed()` so this stays `None` there, but any branch that
    /// does hit one fails closed (the branch is abandoned, the exhausted
    /// search reports `Unknown`) instead of panicking across the governed
    /// boundary.
    ill_formed: Option<String>,
    dfa_cache: HashMap<Regex, Dfa>,
    /// Query-owned symbol table for witness generation: every object key a
    /// realized witness uses is interned once, so key accumulation and
    /// cross-region dedup compare `Sym`s; strings materialise only when the
    /// final `Json` object is assembled.
    syms: Interner,
    delta: &'a RecursiveJsl,
}

impl<'a> Tableau<'a> {
    fn dfa(&mut self, e: &Regex) -> Dfa {
        self.dfa_cache
            .entry(e.clone())
            .or_insert_with(|| e.to_dfa())
            .clone()
    }

    /// Satisfies the literal set at one node, building a subtree of height
    /// ≤ `height`.
    fn solve(&mut self, mut work: Vec<Lit>, height: usize) -> Option<Json> {
        if self.budget == 0 {
            self.capped = true;
            return None;
        }
        self.budget -= 1;

        let mut atoms = NodeAtoms::default();
        // Saturate boolean structure; branch on disjunctions.
        while let Some(lit) = work.pop() {
            match (lit.phi, lit.positive) {
                (Jsl::True, true) => {}
                (Jsl::True, false) => return None,
                (Jsl::Not(p), sign) => work.push(Lit {
                    phi: *p,
                    positive: !sign,
                }),
                (Jsl::And(ps), true) => work.extend(ps.into_iter().map(Lit::pos)),
                (Jsl::And(ps), false) => {
                    // ¬(∧) → branch on which conjunct fails.
                    for p in ps {
                        let mut w2 = work.clone();
                        w2.push(Lit::neg(p));
                        if let Some(m) = self.solve_with_atoms(w2, atoms.clone(), height) {
                            return Some(m);
                        }
                    }
                    return None;
                }
                (Jsl::Or(ps), true) => {
                    for p in ps {
                        let mut w2 = work.clone();
                        w2.push(Lit::pos(p));
                        if let Some(m) = self.solve_with_atoms(w2, atoms.clone(), height) {
                            return Some(m);
                        }
                    }
                    return None;
                }
                (Jsl::Or(ps), false) => work.extend(ps.into_iter().map(Lit::neg)),
                (Jsl::Var(v), sign) => {
                    // A dangling name fails the branch closed (recorded so
                    // exhaustion reports Unknown, not an unsound Unsat).
                    let Some(def) = self.defs.get(v.as_str()) else {
                        self.ill_formed
                            .get_or_insert_with(|| format!("undefined definition ${v}"));
                        return None;
                    };
                    let def = (*def).clone();
                    work.push(Lit {
                        phi: def,
                        positive: sign,
                    });
                }
                (Jsl::Test(t), sign) => {
                    if !accumulate_test(&mut atoms, t, sign) {
                        return None;
                    }
                }
                (Jsl::DiamondKey(e, p), true) => atoms.dia_key.push((e, *p)),
                (Jsl::DiamondKey(e, p), false) => atoms.box_key.push((e, Jsl::not(*p))),
                (Jsl::BoxKey(e, p), true) => atoms.box_key.push((e, *p)),
                (Jsl::BoxKey(e, p), false) => atoms.dia_key.push((e, Jsl::not(*p))),
                (Jsl::DiamondRange(i, j, p), true) => atoms.dia_rng.push((i, j, *p)),
                (Jsl::DiamondRange(i, j, p), false) => atoms.box_rng.push((i, j, Jsl::not(*p))),
                (Jsl::BoxRange(i, j, p), true) => atoms.box_rng.push((i, j, *p)),
                (Jsl::BoxRange(i, j, p), false) => atoms.dia_rng.push((i, j, Jsl::not(*p))),
            }
        }
        self.close_node(atoms, height)
    }

    fn solve_with_atoms(
        &mut self,
        mut work: Vec<Lit>,
        atoms: NodeAtoms,
        height: usize,
    ) -> Option<Json> {
        // Re-inject accumulated atoms as literals to keep one code path.
        reinject(&mut work, atoms);
        self.solve(work, height)
    }

    /// All boolean work done: pick a kind and discharge the atoms.
    fn close_node(&mut self, atoms: NodeAtoms, height: usize) -> Option<Json> {
        use NodeKindReq::*;
        let mut allowed = vec![
            KindChoice::Str,
            KindChoice::Int,
            KindChoice::Obj,
            KindChoice::Arr,
        ];
        for req in &atoms.kind_pos {
            allowed.retain(|k| match req {
                Obj => *k == KindChoice::Obj,
                Arr => *k == KindChoice::Arr,
                Str => *k == KindChoice::Str,
                Int => *k == KindChoice::Int,
                NotObj => *k != KindChoice::Obj,
                NotArr => *k != KindChoice::Arr,
                NotStr => *k != KindChoice::Str,
                NotInt => *k != KindChoice::Int,
            });
        }
        // Exact-document bindings restrict the kind immediately.
        if let Some(first) = atoms.eq_docs.first() {
            if atoms.eq_docs.iter().any(|d| d != first) {
                return None;
            }
            let k = match first {
                Json::Object(_) => KindChoice::Obj,
                Json::Array(_) => KindChoice::Arr,
                Json::Str(_) => KindChoice::Str,
                Json::Num(_) => KindChoice::Int,
            };
            allowed.retain(|kk| *kk == k);
            if allowed.is_empty() {
                return None;
            }
            // Check every remaining constraint by direct evaluation on the
            // bound document.
            let doc = first.clone();
            return self.verify_atoms_on(&doc, &atoms).then_some(doc);
        }
        for kind in allowed {
            let result = match kind {
                KindChoice::Str => self.close_string(&atoms),
                KindChoice::Int => self.close_number(&atoms),
                KindChoice::Obj => self.close_object(&atoms, height),
                KindChoice::Arr => self.close_array(&atoms, height),
            };
            if let Some(doc) = result {
                // Local re-verification of the atoms (covers ¬EqDoc,
                // Unique interplay, …).
                if self.verify_atoms_on(&doc, &atoms) {
                    return Some(doc);
                }
                self.mismatch = true;
            }
        }
        None
    }

    /// Direct evaluation of all accumulated atoms against a concrete
    /// document (sound closure of every heuristic above).
    fn verify_atoms_on(&mut self, doc: &Json, atoms: &NodeAtoms) -> bool {
        let tree = JsonTree::build(doc);
        let mut parts: Vec<Jsl> = Vec::new();
        collect_atom_formulas(atoms, &mut parts);
        let phi = Jsl::and(parts);
        let delta = RecursiveJsl {
            defs: self.delta.defs.clone(),
            base: phi,
        };
        match delta.try_check_root(&tree) {
            Ok(holds) => holds,
            Err(e) => {
                // Fail closed: the candidate is rejected and the defect
                // recorded, instead of unwinding mid-search.
                self.ill_formed.get_or_insert_with(|| e.to_string());
                false
            }
        }
    }

    fn close_string(&mut self, atoms: &NodeAtoms) -> Option<Json> {
        // Structural demands no string can meet.
        if atoms.unique_pos
            || atoms.minch > 0
            || !atoms.dia_key.is_empty()
            || !atoms.dia_rng.is_empty()
            || atoms.min_pos.is_some()
            || atoms.max_pos.is_some()
            || !atoms.mult_pos.is_empty()
        {
            return None;
        }
        let mut lang = Regex::sigma_star().to_dfa();
        for e in &atoms.patterns_pos {
            let d = self.dfa(e);
            lang = lang.intersect(&d);
        }
        for e in &atoms.patterns_neg {
            let d = self.dfa(e);
            lang = lang.intersect(&d.complement());
        }
        for d in &atoms.neq_docs {
            if let Json::Str(s) = d {
                let lit = Regex::literal(s).to_dfa();
                lang = lang.intersect(&lit.complement());
            }
        }
        lang.example().map(Json::Str)
    }

    fn close_number(&mut self, atoms: &NodeAtoms) -> Option<Json> {
        if !atoms.patterns_pos.is_empty()
            || atoms.unique_pos
            || atoms.minch > 0
            || !atoms.dia_key.is_empty()
            || !atoms.dia_rng.is_empty()
        {
            return None;
        }
        // Lower bound: positive Min and negated Max (value > i).
        let mut lo = atoms.min_pos.unwrap_or(0);
        for i in &atoms.neg_max {
            lo = lo.max(i + 1);
        }
        // Upper bound: positive Max and negated Min (value < i).
        let mut hi_opt = atoms.max_pos;
        for i in &atoms.neg_min {
            if *i == 0 {
                return None; // value < 0 impossible for naturals
            }
            hi_opt = Some(hi_opt.map_or(i - 1, |h| h.min(i - 1)));
        }
        // Window: one period of every multiplier past all point
        // disequalities suffices because the constraint set is eventually
        // periodic.
        let period: u64 = atoms
            .mult_pos
            .iter()
            .chain(atoms.mult_neg.iter())
            .product::<u64>()
            .clamp(1, 1 << 20);
        let window = period + atoms.num_neq.len() as u64 + atoms.neq_docs.len() as u64 + 2;
        let hi = hi_opt.unwrap_or(lo.saturating_add(window));
        let mut v = lo;
        while v <= hi {
            let ok = atoms.mult_pos.iter().all(|m| {
                if *m == 0 {
                    v == 0
                } else {
                    v.is_multiple_of(*m)
                }
            }) && atoms.mult_neg.iter().all(|m| {
                if *m == 0 {
                    v != 0
                } else {
                    !v.is_multiple_of(*m)
                }
            }) && !atoms.num_neq.contains(&v)
                && !atoms.neq_docs.contains(&Json::Num(v));
            if ok {
                return Some(Json::Num(v));
            }
            v += 1;
        }
        None
    }

    fn close_object(&mut self, atoms: &NodeAtoms, height: usize) -> Option<Json> {
        if !atoms.patterns_pos.is_empty()
            || atoms.min_pos.is_some()
            || atoms.max_pos.is_some()
            || !atoms.mult_pos.is_empty()
            || atoms.unique_pos
            || !atoms.dia_rng.is_empty()
        {
            return None;
        }
        if !atoms.dia_key.is_empty() && height == 0 {
            self.capped = true;
            return None;
        }
        // Carve the key space into Venn regions over every distinct regex
        // mentioned at this node. Each diamond and box resolves to the
        // *index* of its regex here, once — the only place regex structures
        // are ever compared. Expansion below answers every region-membership
        // question with one shift-and-mask over those indices, and every
        // region DFA is computed at most once per mask (cached in the
        // [`KeySpace`]); keys stay interned `Sym`s until final assembly.
        let mut regexes: Vec<Regex> = Vec::new();
        let mut dia_idx: Vec<usize> = Vec::with_capacity(atoms.dia_key.len());
        let mut box_idx: Vec<usize> = Vec::with_capacity(atoms.box_key.len());
        for (list, out) in [
            (&atoms.dia_key, &mut dia_idx),
            (&atoms.box_key, &mut box_idx),
        ] {
            for (e, _) in list.iter() {
                let i = regexes.iter().position(|x| x == e).unwrap_or_else(|| {
                    regexes.push(e.clone());
                    regexes.len() - 1
                });
                out.push(i);
            }
        }
        if regexes.len() > 12 {
            self.capped = true;
            return None;
        }
        let dfas: Vec<Dfa> = regexes.iter().map(|e| self.dfa(e)).collect();
        let mut space = KeySpace {
            n_regexes: regexes.len(),
            dfas,
            sigma: Regex::sigma_star().to_dfa(),
            dia_idx,
            box_idx,
            regions: HashMap::new(),
        };

        // Assign each diamond to a Venn region compatible with its regex,
        // trying (a) pairwise-distinct keys, then (b) merging diamonds that
        // share a region. Regions are enumerated as bitmasks over `regexes`.
        let n_dia = atoms.dia_key.len();
        let mut assignment: Vec<u32> = vec![0; n_dia]; // region mask per diamond
        self.assign_diamonds(atoms, &mut space, &mut assignment, 0, height)
    }

    fn assign_diamonds(
        &mut self,
        atoms: &NodeAtoms,
        space: &mut KeySpace,
        assignment: &mut Vec<u32>,
        next: usize,
        height: usize,
    ) -> Option<Json> {
        if self.budget == 0 {
            self.capped = true;
            return None;
        }
        if next == atoms.dia_key.len() {
            return self.realize_object(atoms, space, assignment, height);
        }
        let d_idx = space.dia_idx[next];
        // Enumerate region masks containing d_idx.
        for mask in 0u32..(1 << space.n_regexes) {
            if mask & (1 << d_idx) == 0 {
                continue;
            }
            // Region emptiness check.
            if space.region(mask).is_empty() {
                continue;
            }
            self.budget = self.budget.saturating_sub(1);
            assignment[next] = mask;
            if let Some(doc) = self.assign_diamonds(atoms, space, assignment, next + 1, height) {
                return Some(doc);
            }
        }
        None
    }

    /// Materialises an object for a fixed diamond→region assignment.
    fn realize_object(
        &mut self,
        atoms: &NodeAtoms,
        space: &mut KeySpace,
        assignment: &[u32],
        height: usize,
    ) -> Option<Json> {
        // Group diamonds by region; each group first tries distinct keys,
        // falling back to a single shared key (covers MaxCh pressure).
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for (d, &mask) in assignment.iter().enumerate() {
            groups.entry(mask).or_default().push(d);
        }
        let mut pairs: Vec<(Sym, Json)> = Vec::new();
        // Keys already placed, by symbol — carried incrementally so every
        // dedup below is a `Sym` set probe, never a string comparison.
        let mut used: BTreeSet<Sym> = BTreeSet::new();
        for (&mask, dias) in &groups {
            let keys: Vec<Sym> = space
                .region(mask)
                .examples(dias.len())
                .iter()
                .map(|k| self.syms.intern(k))
                .collect();
            if keys.is_empty() {
                return None;
            }
            // Box bodies applying to this region: every box whose regex
            // index lands in the mask.
            let box_bodies: Vec<&Jsl> = atoms
                .box_key
                .iter()
                .enumerate()
                .filter(|(b, _)| space.box_applies(*b, mask))
                .map(|(_, (_, p))| p)
                .collect();
            if keys.len() >= dias.len() {
                // Distinct keys: one child per diamond.
                for (d, &key) in dias.iter().zip(keys.iter()) {
                    let mut lits = vec![Lit::pos(atoms.dia_key[*d].1.clone())];
                    lits.extend(box_bodies.iter().map(|b| Lit::pos((*b).clone())));
                    let child = self.solve(lits, height - 1)?;
                    pairs.push((key, child));
                    used.insert(key);
                }
            } else {
                // Shared key: all diamond bodies conjoined.
                let mut lits: Vec<Lit> = dias
                    .iter()
                    .map(|d| Lit::pos(atoms.dia_key[*d].1.clone()))
                    .collect();
                lits.extend(box_bodies.iter().map(|b| Lit::pos((*b).clone())));
                let child = self.solve(lits, height - 1)?;
                pairs.push((keys[0], child));
                used.insert(keys[0]);
            }
        }
        // MinCh padding: add children from the all-complement region when
        // possible, else from any region whose boxes are satisfiable.
        let have = pairs.len() as u64;
        if atoms.minch > have {
            let needed = (atoms.minch - have) as usize;
            let candidates: Vec<Sym> = space
                .region(0)
                .examples(needed)
                .iter()
                .map(|k| self.syms.intern(k))
                .collect();
            if candidates.len() >= needed {
                for key in candidates {
                    pairs.push((key, Json::Num(0)));
                }
            } else if space.n_regexes == 0 {
                return None; // Σ* region is infinite; unreachable
            } else {
                // Pad inside a box-covered region: children must satisfy the
                // applicable boxes. Dedup against already-used keys by
                // symbol: a candidate that was never interned cannot collide.
                let mut padded = candidates.len();
                for key in candidates {
                    pairs.push((key, Json::Num(0)));
                    used.insert(key);
                }
                'outer: for mask in 1u32..(1 << space.n_regexes) {
                    if padded >= needed {
                        break;
                    }
                    let ks: Vec<Sym> = space
                        .region(mask)
                        .examples(needed + used.len())
                        .into_iter()
                        .map(|k| self.syms.intern(&k))
                        .filter(|s| !used.contains(s))
                        .collect();
                    for key in ks {
                        if padded >= needed {
                            break 'outer;
                        }
                        let box_bodies: Vec<Lit> = atoms
                            .box_key
                            .iter()
                            .enumerate()
                            .filter(|(b, _)| space.box_applies(*b, mask))
                            .map(|(_, (_, p))| Lit::pos(p.clone()))
                            .collect();
                        if height == 0 {
                            self.capped = true;
                            return None;
                        }
                        let child = self.solve(box_bodies, height - 1)?;
                        pairs.push((key, child));
                        used.insert(key);
                        padded += 1;
                    }
                }
                if padded < needed {
                    return None;
                }
            }
        }
        if let Some(maxch) = atoms.maxch {
            if pairs.len() as u64 > maxch {
                return None;
            }
        }
        // Key collisions across regions are impossible (regions are
        // disjoint), but shared-key groups may collide with padding — the
        // object constructor rejects duplicates, treat as branch failure.
        // Symbols resolve back to strings only here, at assembly.
        let pairs: Vec<(String, Json)> = pairs
            .into_iter()
            .map(|(k, v)| (self.syms.resolve(k).to_owned(), v))
            .collect();
        Json::object(pairs).ok()
    }

    fn close_array(&mut self, atoms: &NodeAtoms, height: usize) -> Option<Json> {
        if !atoms.patterns_pos.is_empty()
            || atoms.min_pos.is_some()
            || atoms.max_pos.is_some()
            || !atoms.mult_pos.is_empty()
            || !atoms.dia_key.is_empty()
        {
            return None;
        }
        if !atoms.dia_rng.is_empty() && height == 0 {
            self.capped = true;
            return None;
        }
        // Candidate lengths: boundary values of every constraint.
        let mut candidates: Vec<u64> = vec![0, atoms.minch];
        if atoms.unique_neg {
            candidates.push(2);
            candidates.push(atoms.minch.max(2));
        }
        for (i, j, _) in atoms.dia_rng.iter().chain(atoms.box_rng.iter()) {
            candidates.push(i + 1);
            if let Some(j) = j {
                candidates.push(j + 1);
            }
        }
        if let Some(m) = atoms.maxch {
            candidates.push(m);
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&l| l >= atoms.minch && atoms.maxch.is_none_or(|m| l <= m));

        'lens: for &len in &candidates {
            if self.budget == 0 {
                self.capped = true;
                return None;
            }
            self.budget -= 1;
            // Every diamond needs a position within [i, min(j, len-1)].
            let mut pos_of: Vec<u64> = Vec::new();
            for (i, j, _) in &atoms.dia_rng {
                let hi = j.map_or(len.saturating_sub(1), |j| j.min(len.saturating_sub(1)));
                if len == 0 || *i > hi {
                    continue 'lens;
                }
                // Leftmost position; diamonds at the same position conjoin.
                pos_of.push(*i);
            }
            let mut items: Vec<Json> = Vec::with_capacity(len as usize);
            let mut ok = true;
            for p in 0..len {
                let mut lits: Vec<Lit> = Vec::new();
                for (d, (_, _, body)) in atoms.dia_rng.iter().enumerate() {
                    if pos_of[d] == p {
                        lits.push(Lit::pos(body.clone()));
                    }
                }
                for (i, j, body) in &atoms.box_rng {
                    if p >= *i && j.is_none_or(|j| p <= j) {
                        lits.push(Lit::pos(body.clone()));
                    }
                }
                if atoms.unique_pos {
                    // Make padding positions distinct by default.
                    lits.push(Lit::pos(Jsl::True));
                }
                if height == 0 && !lits.is_empty() {
                    // Children must exist but we cannot descend.
                    if lits.iter().any(|l| !matches!(l.phi, Jsl::True)) {
                        self.capped = true;
                        ok = false;
                        break;
                    }
                }
                let child = if height == 0 {
                    Json::Num(p)
                } else {
                    match self.solve(lits, height - 1) {
                        Some(c) => c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                };
                items.push(child);
            }
            if !ok {
                continue;
            }
            if atoms.unique_pos {
                // Perturb duplicate unconstrained numeric padding.
                make_distinct(&mut items);
            }
            if atoms.unique_neg && items.len() >= 2 {
                // Force a duplicate if two unconstrained slots exist — the
                // verification pass will reject if this breaks something.
                let last = items.len() - 1;
                items[last] = items[0].clone();
            }
            return Some(Json::Array(items));
        }
        None
    }
}

/// The carved key space of one object node: the Venn-region machinery
/// shared by diamond assignment and object realization. Every diamond and
/// box is pre-resolved to the index of its regex in the distinct-regex
/// list, so expansion decides region membership with one shift-and-mask
/// over small integers — regex structures (and the key strings inside
/// them) are compared exactly once, at construction — and each region's
/// DFA is built at most once per mask. Witness keys themselves live as
/// tableau-interner `Sym`s until final object assembly.
struct KeySpace {
    /// Number of distinct regexes (the mask width).
    n_regexes: usize,
    /// DFA per distinct regex, aligned with the mask bits.
    dfas: Vec<Dfa>,
    /// Σ* — the universe the regions partition.
    sigma: Dfa,
    /// Regex index per diamond (aligned with `NodeAtoms::dia_key`).
    dia_idx: Vec<usize>,
    /// Regex index per box (aligned with `NodeAtoms::box_key`).
    box_idx: Vec<usize>,
    /// Region DFA per mask, computed on first use.
    regions: HashMap<u32, Dfa>,
}

impl KeySpace {
    /// The DFA of the Venn region selected by `mask`: keys inside every
    /// masked regex's language and outside every unmasked one's.
    fn region(&mut self, mask: u32) -> &Dfa {
        if !self.regions.contains_key(&mask) {
            let mut acc = self.sigma.clone();
            for (i, d) in self.dfas.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    acc = acc.intersect(d);
                } else {
                    acc = acc.intersect(&d.complement());
                }
            }
            self.regions.insert(mask, acc);
        }
        self.regions.get(&mask).expect("just inserted")
    }

    /// Whether box `b` applies to region `mask` (its regex bit is set).
    fn box_applies(&self, b: usize, mask: u32) -> bool {
        mask & (1 << self.box_idx[b]) != 0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KindChoice {
    Obj,
    Arr,
    Str,
    Int,
}

fn accumulate_test(atoms: &mut NodeAtoms, t: NodeTest, sign: bool) -> bool {
    use NodeKindReq::*;
    match (t, sign) {
        (NodeTest::Obj, true) => atoms.kind_pos.push(Obj),
        (NodeTest::Obj, false) => atoms.kind_pos.push(NotObj),
        (NodeTest::Arr, true) => atoms.kind_pos.push(Arr),
        (NodeTest::Arr, false) => atoms.kind_pos.push(NotArr),
        (NodeTest::Str, true) => atoms.kind_pos.push(Str),
        (NodeTest::Str, false) => atoms.kind_pos.push(NotStr),
        (NodeTest::Int, true) => atoms.kind_pos.push(Int),
        (NodeTest::Int, false) => atoms.kind_pos.push(NotInt),
        (NodeTest::Pattern(e), true) => {
            atoms.kind_pos.push(Str);
            atoms.patterns_pos.push(e);
        }
        // ¬Pattern(e): not a string, or a string outside L(e). Model as a
        // negative pattern that only bites for strings (handled per kind).
        (NodeTest::Pattern(e), false) => atoms.patterns_neg.push(e),
        (NodeTest::Min(i), true) => {
            atoms.kind_pos.push(Int);
            atoms.min_pos = Some(atoms.min_pos.map_or(i, |m| m.max(i)));
        }
        (NodeTest::Min(i), false) => {
            // ¬Min(i): either not a number, or value < i. A natural below 0
            // is impossible, so ¬Min(0) rules the number kind out entirely;
            // otherwise record the bound for close_number only.
            if i == 0 {
                atoms.kind_pos.push(NotInt);
            } else {
                atoms.neg_min.push(i);
            }
        }
        (NodeTest::Max(i), true) => {
            atoms.kind_pos.push(Int);
            atoms.max_pos = Some(atoms.max_pos.map_or(i, |m| m.min(i)));
        }
        (NodeTest::Max(i), false) => {
            atoms.neg_max.push(i);
        }
        (NodeTest::MultOf(i), true) => {
            atoms.kind_pos.push(Int);
            atoms.mult_pos.push(i);
        }
        (NodeTest::MultOf(i), false) => atoms.mult_neg.push(i),
        (NodeTest::MinCh(i), true) => atoms.minch = atoms.minch.max(i),
        (NodeTest::MinCh(i), false) => {
            if i == 0 {
                return false;
            }
            atoms.maxch = Some(atoms.maxch.map_or(i - 1, |m| m.min(i - 1)));
        }
        (NodeTest::MaxCh(i), true) => {
            atoms.maxch = Some(atoms.maxch.map_or(i, |m| m.min(i)));
        }
        (NodeTest::MaxCh(i), false) => atoms.minch = atoms.minch.max(i + 1),
        (NodeTest::Unique, true) => {
            atoms.kind_pos.push(Arr);
            atoms.unique_pos = true;
        }
        (NodeTest::Unique, false) => atoms.unique_neg = true,
        (NodeTest::EqDoc(d), true) => atoms.eq_docs.push(d),
        (NodeTest::EqDoc(d), false) => {
            if let Json::Num(v) = &d {
                atoms.num_neq.push(*v);
            }
            atoms.neq_docs.push(d);
        }
    }
    true
}

/// Serialises atoms back into a conjunction (for re-verification).
fn collect_atom_formulas(atoms: &NodeAtoms, out: &mut Vec<Jsl>) {
    use NodeKindReq::*;
    for k in &atoms.kind_pos {
        out.push(match k {
            Obj => Jsl::Test(NodeTest::Obj),
            Arr => Jsl::Test(NodeTest::Arr),
            Str => Jsl::Test(NodeTest::Str),
            Int => Jsl::Test(NodeTest::Int),
            NotObj => Jsl::not(Jsl::Test(NodeTest::Obj)),
            NotArr => Jsl::not(Jsl::Test(NodeTest::Arr)),
            NotStr => Jsl::not(Jsl::Test(NodeTest::Str)),
            NotInt => Jsl::not(Jsl::Test(NodeTest::Int)),
        });
    }
    for e in &atoms.patterns_pos {
        out.push(Jsl::Test(NodeTest::Pattern(e.clone())));
    }
    for e in &atoms.patterns_neg {
        out.push(Jsl::not(Jsl::Test(NodeTest::Pattern(e.clone()))));
    }
    if let Some(m) = atoms.min_pos {
        out.push(Jsl::Test(NodeTest::Min(m)));
    }
    if let Some(m) = atoms.max_pos {
        out.push(Jsl::Test(NodeTest::Max(m)));
    }
    for i in &atoms.neg_min {
        out.push(Jsl::not(Jsl::Test(NodeTest::Min(*i))));
    }
    for i in &atoms.neg_max {
        out.push(Jsl::not(Jsl::Test(NodeTest::Max(*i))));
    }
    for m in &atoms.mult_pos {
        out.push(Jsl::Test(NodeTest::MultOf(*m)));
    }
    for m in &atoms.mult_neg {
        out.push(Jsl::not(Jsl::Test(NodeTest::MultOf(*m))));
    }
    if atoms.minch > 0 {
        out.push(Jsl::Test(NodeTest::MinCh(atoms.minch)));
    }
    if let Some(m) = atoms.maxch {
        out.push(Jsl::Test(NodeTest::MaxCh(m)));
    }
    if atoms.unique_pos {
        out.push(Jsl::Test(NodeTest::Unique));
    }
    if atoms.unique_neg {
        out.push(Jsl::not(Jsl::Test(NodeTest::Unique)));
    }
    for d in &atoms.eq_docs {
        out.push(Jsl::Test(NodeTest::EqDoc(d.clone())));
    }
    for d in &atoms.neq_docs {
        out.push(Jsl::not(Jsl::Test(NodeTest::EqDoc(d.clone()))));
    }
    for (e, p) in &atoms.dia_key {
        out.push(Jsl::DiamondKey(e.clone(), Box::new(p.clone())));
    }
    for (e, p) in &atoms.box_key {
        out.push(Jsl::BoxKey(e.clone(), Box::new(p.clone())));
    }
    for (i, j, p) in &atoms.dia_rng {
        out.push(Jsl::DiamondRange(*i, *j, Box::new(p.clone())));
    }
    for (i, j, p) in &atoms.box_rng {
        out.push(Jsl::BoxRange(*i, *j, Box::new(p.clone())));
    }
}

fn reinject(work: &mut Vec<Lit>, atoms: NodeAtoms) {
    let mut parts = Vec::new();
    collect_atom_formulas(&atoms, &mut parts);
    work.extend(parts.into_iter().map(Lit::pos));
}

fn make_distinct(items: &mut [Json]) {
    // Bump duplicate free-standing numbers upward.
    let mut seen: Vec<Json> = Vec::new();
    let mut next_free = 1_000_000u64;
    for item in items.iter_mut() {
        if seen.contains(item) && matches!(item, Json::Num(_)) {
            *item = Json::Num(next_free);
            next_free += 1;
        }
        seen.push(item.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Jsl as J;
    use crate::ast::NodeTest as T;

    fn assert_sat(phi: J) -> Json {
        match sat_jsl(&phi) {
            JslSatResult::Sat(w) => {
                let t = JsonTree::build(&w);
                assert!(crate::eval::check_root(&t, &phi), "witness {w} fails {phi}");
                w
            }
            other => panic!("expected Sat for {phi}, got {other:?}"),
        }
    }

    fn assert_unsat(phi: J) {
        assert_eq!(sat_jsl(&phi), JslSatResult::Unsat, "{phi}");
    }

    #[test]
    fn string_constraints() {
        let w = assert_sat(J::and(vec![
            J::Test(T::Pattern(Regex::parse("(0|1)+").unwrap())),
            J::not(J::Test(T::EqDoc(Json::Str("0".into())))),
        ]));
        assert!(w.is_string());
        assert_unsat(J::and(vec![
            J::Test(T::Pattern(Regex::parse("a+").unwrap())),
            J::Test(T::Pattern(Regex::parse("b+").unwrap())),
        ]));
    }

    #[test]
    fn number_constraints() {
        let w = assert_sat(J::and(vec![
            J::Test(T::Min(10)),
            J::Test(T::Max(20)),
            J::Test(T::MultOf(7)),
        ]));
        assert_eq!(w, Json::Num(14));
        assert_unsat(J::and(vec![
            J::Test(T::Min(15)),
            J::Test(T::Max(20)),
            J::Test(T::MultOf(7)),
        ]));
        // ¬MultOf windows.
        assert_sat(J::and(vec![
            J::Test(T::Int),
            J::not(J::Test(T::MultOf(2))),
            J::Test(T::Min(100)),
        ]));
    }

    #[test]
    fn object_constraints() {
        // The paper's Prop-2-style clash, in JSL form: a key that must be
        // both an array and an object.
        assert_unsat(J::and(vec![
            J::diamond_key("a", J::Test(T::Arr)),
            J::box_key("a", J::Test(T::Obj)),
        ]));
        let w = assert_sat(J::and(vec![
            J::diamond_key("name", J::Test(T::Str)),
            J::diamond_key("age", J::Test(T::Min(18))),
            J::Test(T::MinCh(3)),
        ]));
        assert!(w.as_object().unwrap().len() >= 3);
    }

    #[test]
    fn regex_diamonds_and_boxes() {
        // ◇_{a(b|c)a}⊤ ∧ □_{Σ*} MultOf(2): some abc-key child; all children
        // even numbers.
        let w = assert_sat(J::and(vec![
            J::DiamondKey(Regex::parse("a(b|c)a").unwrap(), Box::new(J::True)),
            J::box_any_key(J::and(vec![J::Test(T::Int), J::Test(T::MultOf(2))])),
        ]));
        let o = w.as_object().unwrap();
        assert!(o.iter().any(|(k, _)| k == "aba" || k == "aca"));
        for (_, v) in o.iter() {
            assert!(v.as_num().unwrap() % 2 == 0);
        }
    }

    #[test]
    fn pspace_universality_style_unsat() {
        // [X_{Σ*}]⊥ ∧ ◇_e ⊤ is unsat for any e: the box forbids all
        // children, the diamond demands one.
        assert_unsat(J::and(vec![
            J::box_any_key(J::falsity()),
            J::DiamondKey(Regex::parse("x+").unwrap(), Box::new(J::True)),
        ]));
    }

    #[test]
    fn array_constraints() {
        let w = assert_sat(J::and(vec![
            J::Test(T::Arr),
            J::DiamondRange(2, Some(2), Box::new(J::Test(T::EqDoc(Json::Num(9))))),
            J::BoxRange(0, None, Box::new(J::Test(T::Int))),
        ]));
        assert_eq!(w.index(2), Some(&Json::Num(9)));
        // MaxCh below a required position.
        assert_unsat(J::and(vec![
            J::DiamondRange(5, Some(5), Box::new(J::True)),
            J::Test(T::MaxCh(3)),
        ]));
    }

    #[test]
    fn unique_interaction() {
        let w = assert_sat(J::and(vec![
            J::Test(T::Unique),
            J::Test(T::MinCh(3)),
            J::BoxRange(0, None, Box::new(J::Test(T::Int))),
        ]));
        let items = w.as_array().unwrap();
        assert!(items.len() >= 3);
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                assert_ne!(items[i], items[j]);
            }
        }
        // ¬Unique with two forced-equal children.
        let w = assert_sat(J::and(vec![
            J::Test(T::Arr),
            J::Test(T::MinCh(2)),
            J::not(J::Test(T::Unique)),
        ]));
        let items = w.as_array().unwrap();
        assert!(items
            .iter()
            .any(|x| items.iter().filter(|y| *y == x).count() > 1));
    }

    #[test]
    fn eq_doc_binding_checks_other_constraints() {
        let doc = jsondata::parse(r#"{"a": 1}"#).unwrap();
        assert_sat(J::and(vec![
            J::Test(T::EqDoc(doc.clone())),
            J::diamond_key("a", J::Test(T::Int)),
        ]));
        assert_unsat(J::and(vec![
            J::Test(T::EqDoc(doc)),
            J::diamond_key("b", J::True),
        ]));
    }

    #[test]
    fn recursive_even_depth_is_satisfiable() {
        let delta = RecursiveJsl {
            defs: vec![
                ("g1".into(), J::box_any_key(J::Var("g2".into()))),
                (
                    "g2".into(),
                    J::and(vec![
                        J::diamond_any_key(J::True),
                        J::box_any_key(J::Var("g1".into())),
                    ]),
                ),
            ],
            base: J::and(vec![
                J::Var("g1".into()),
                // Force at least one level to make the model interesting.
                J::diamond_any_key(J::True),
            ]),
        };
        match sat_recursive(&delta, SatConfig::default()) {
            JslSatResult::Sat(w) => {
                let t = JsonTree::build(&w);
                assert!(delta.check_root(&t));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn deep_recursive_demand_hits_cap_gracefully() {
        // γ = ◇_a γ: every model would be infinite; the solver must report
        // Unknown (cap), never Sat.
        let delta = RecursiveJsl {
            defs: vec![("g".into(), J::diamond_key("a", J::Var("g".into())))],
            base: J::Var("g".into()),
        };
        match sat_recursive(
            &delta,
            SatConfig {
                max_height: Some(6),
                ..Default::default()
            },
        ) {
            JslSatResult::Unknown(_) => {}
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn kind_clashes_unsat() {
        assert_unsat(J::and(vec![J::Test(T::Str), J::Test(T::Int)]));
        assert_unsat(J::and(vec![J::Test(T::Obj), J::Test(T::Min(0))]));
        assert_unsat(J::and(vec![J::Test(T::Str), J::Test(T::MinCh(1))]));
    }

    #[test]
    fn maxch_zero_forces_empty_containers() {
        let w = assert_sat(J::and(vec![J::Test(T::Obj), J::Test(T::MaxCh(0))]));
        assert_eq!(w, Json::empty_object());
        assert_unsat(J::and(vec![
            J::Test(T::Obj),
            J::Test(T::MaxCh(0)),
            J::diamond_any_key(J::True),
        ]));
    }
}
