//! A minimal fixed-size bitset used by the cubic (relation-based) evaluator.
//! Implemented in-repo because no offline crate provides one and the
//! Proposition 3 algorithm is defined over node-set rows.

/// A fixed-capacity bitset over `0..len`.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (b, m) = (i / 64, 1u64 << (i % 64));
        let newly = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        newly
    }

    /// Membership.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.blocks[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns whether anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns whether anything changed. The in-place
    /// intersection the index planners use to AND document-set bitmaps.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Whether `self ∩ other` is non-empty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates over set members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + t)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        assert!(!a.intersects(&b));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "idempotent");
        assert!(a.contains(70));
        b.insert(3);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersect_with_keeps_common_members() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in [0, 5, 64, 129] {
            a.insert(i);
        }
        for i in [5, 64, 100] {
            b.insert(i);
        }
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 64]);
        assert!(!a.intersect_with(&b), "idempotent");
        let empty = BitSet::new(130);
        assert!(a.intersect_with(&empty));
        assert!(a.is_empty());
    }
}
