//! Error types shared across the crate.

use std::fmt;

/// A position in a source text (1-based line/column, 0-based byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in unicode scalar values).
    pub col: u32,
    /// 0-based byte offset.
    pub offset: usize,
}

impl Position {
    /// The start of a document.
    pub fn start() -> Position {
        Position {
            line: 1,
            col: 1,
            offset: 0,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// Errors raised while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem was detected.
    pub position: Position,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended while a value was still open.
    UnexpectedEof,
    /// A character that cannot start or continue the expected token.
    UnexpectedChar(char),
    /// A control character appeared unescaped inside a string.
    ControlCharInString(char),
    /// A malformed `\` escape sequence.
    BadEscape(String),
    /// A malformed or unpaired `\uXXXX` escape.
    BadUnicodeEscape(String),
    /// Number with a leading zero such as `012`.
    LeadingZero,
    /// Number too large for the model's `u64` naturals.
    NumberOverflow,
    /// The paper's model (§2) excludes negative numbers.
    NegativeNumber,
    /// The paper's model (§2) excludes fractional/exponent numbers.
    NonNaturalNumber,
    /// The paper's model (§2) excludes the literals `true`, `false`, `null`.
    UnsupportedLiteral(&'static str),
    /// Two pairs with the same key in one object (violates §2).
    DuplicateKey(String),
    /// Nesting depth exceeded the configured limit.
    TooDeep(usize),
    /// Input byte length exceeded the configured limit (checked before
    /// any parsing work).
    TooLarge(usize),
    /// Input continued after the first complete value.
    TrailingContent,
    /// Invalid UTF-8 (only reachable through the byte-level entry points).
    InvalidUtf8,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ParseErrorKind::*;
        match &self.kind {
            UnexpectedEof => write!(f, "unexpected end of input at {}", self.position),
            UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} at {}", self.position)
            }
            ControlCharInString(c) => write!(
                f,
                "unescaped control character {:#04x} in string at {}",
                *c as u32, self.position
            ),
            BadEscape(s) => write!(f, "invalid escape sequence `\\{s}` at {}", self.position),
            BadUnicodeEscape(s) => {
                write!(f, "invalid unicode escape `{s}` at {}", self.position)
            }
            LeadingZero => write!(f, "numbers may not have leading zeros ({})", self.position),
            NumberOverflow => write!(
                f,
                "number exceeds the u64 naturals of the formal model at {}",
                self.position
            ),
            NegativeNumber => write!(
                f,
                "negative numbers are outside the paper's JSON fragment (§2) at {}",
                self.position
            ),
            NonNaturalNumber => write!(
                f,
                "fractional/exponent numbers are outside the paper's JSON fragment (§2) at {}",
                self.position
            ),
            UnsupportedLiteral(l) => write!(
                f,
                "literal `{l}` is outside the paper's JSON fragment (§2: objects, arrays, strings, naturals) at {}",
                self.position
            ),
            DuplicateKey(k) => write!(
                f,
                "duplicate object key {k:?} at {} (JSON objects must have pairwise distinct keys)",
                self.position
            ),
            TooDeep(limit) => write!(
                f,
                "nesting depth exceeds the limit of {limit} at {}",
                self.position
            ),
            TooLarge(limit) => write!(f, "input exceeds the size limit of {limit} bytes"),
            TrailingContent => {
                write!(f, "unexpected content after the JSON value at {}", self.position)
            }
            InvalidUtf8 => write!(f, "invalid UTF-8 at {}", self.position),
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors raised by programmatic construction or navigation of JSON values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Two pairs with the same key in one object.
    DuplicateKey(String),
    /// A navigation step applied to a value of the wrong kind.
    NotAnObject,
    /// A positional step applied to a non-array.
    NotAnArray,
    /// Key lookup failed.
    NoSuchKey(String),
    /// Index lookup failed.
    IndexOutOfBounds(i64, usize),
    /// A JSON Pointer segment could not be resolved.
    PointerUnresolved(String),
    /// A JSON Pointer was syntactically malformed.
    PointerSyntax(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::DuplicateKey(k) => write!(f, "duplicate object key {k:?}"),
            JsonError::NotAnObject => write!(f, "value is not an object"),
            JsonError::NotAnArray => write!(f, "value is not an array"),
            JsonError::NoSuchKey(k) => write!(f, "no such key {k:?}"),
            JsonError::IndexOutOfBounds(i, len) => {
                write!(f, "index {i} out of bounds for array of length {len}")
            }
            JsonError::PointerUnresolved(p) => write!(f, "JSON pointer {p:?} does not resolve"),
            JsonError::PointerSyntax(p) => write!(f, "malformed JSON pointer {p:?}"),
        }
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_positions() {
        let e = ParseError {
            position: Position {
                line: 3,
                col: 7,
                offset: 42,
            },
            kind: ParseErrorKind::UnexpectedChar('%'),
        };
        let msg = e.to_string();
        assert!(msg.contains("line 3"));
        assert!(msg.contains("column 7"));
        assert!(msg.contains('%'));
    }

    #[test]
    fn display_unsupported_literal_names_fragment() {
        let e = ParseError {
            position: Position::start(),
            kind: ParseErrorKind::UnsupportedLiteral("null"),
        };
        assert!(e.to_string().contains("§2"));
    }
}
