//! `EXPLAIN` / `EXPLAIN ANALYZE` for aggregation pipelines.
//!
//! [`explain`] describes the plan the tree-backed executor would run,
//! without executing anything: one node per stage, the leading-`$match`
//! route (delegated to [`Collection::explain`] — the executor and the
//! plan share one routing function, so they cannot disagree), and the
//! top-k fusion the executor applies to `$sort` blocks whose output is
//! immediately cut to `skip + limit` rows.
//!
//! [`explain_analyze`] executes the pipeline under a fresh
//! [`QueryMetrics`] sink with per-stage tracing and annotates the plan
//! with actual row counts, per-stage wall time, and the full counter
//! snapshot. Fused blocks are expanded back into their constituent
//! stages — `$sort` preserves cardinality and the pagination arithmetic
//! is exact — so the reported per-stage cardinalities equal the
//! reference executor's ([`crate::reference::stage_cardinalities`]),
//! which the `s10` bench gate asserts on every S5 pipeline.
//!
//! Static-analysis findings (`jstat` prunes and advisories) attach to a
//! plan through [`PipelineExplain::add_note`] — the analyzer sits above
//! this crate in the dependency order, so the annotation flows from the
//! caller.

use std::sync::Arc;
use std::time::Instant;

use jguard::{QueryCtx, QueryError};
use jsondata::Json;
use jtrace::{QueryMetrics, Snapshot, ALL_COUNTERS};
use mongofind::{Collection, FindExplain};

use crate::exec::{aggregate_traced_with_ctx, clamp_len, stage_label};
use crate::pipeline::{
    Accumulator, GroupSpec, IdExpr, Pipeline, ProjectField, SortOrder, Stage, ValueExpr,
};

/// One plan node: a pipeline stage as the executor will run it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageExplain {
    /// Operator name (`"$match"`, `"$group"`, …).
    pub label: &'static str,
    /// Rendered operand (filter text, sort spec, group summary, …).
    pub detail: String,
    /// Whether the stage is absorbed into a top-k fused block.
    pub fused: bool,
}

/// The `EXPLAIN` plan of one pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineExplain {
    /// One node per pipeline stage, in order.
    pub stages: Vec<StageExplain>,
    /// The leading-`$match` route plan, when the pipeline opens with a
    /// `$match` (the fast path straight off the collection).
    pub match_plan: Option<FindExplain>,
    /// Free-form annotations: fusion notes from the planner, plus
    /// whatever the caller attaches (e.g. `jstat` diagnostics).
    pub notes: Vec<String>,
}

impl PipelineExplain {
    /// Attaches an annotation (rendered into text and JSON output).
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Machine-stable JSON rendering of the plan.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("query".into(), Json::str("aggregate")),
            (
                "stages".into(),
                Json::array(self.stages.iter().map(|s| {
                    Json::object(vec![
                        ("stage".into(), Json::str(s.label)),
                        ("detail".into(), Json::str(&s.detail)),
                        ("fused".into(), Json::Num(u64::from(s.fused))),
                    ])
                    .expect("distinct literal keys")
                })),
            ),
        ];
        if let Some(mp) = &self.match_plan {
            pairs.push(("match_plan".into(), mp.to_json()));
        }
        if !self.notes.is_empty() {
            pairs.push((
                "notes".into(),
                Json::array(self.notes.iter().map(Json::str)),
            ));
        }
        Json::object(pairs).expect("distinct literal keys")
    }

    /// Human-readable rendering, one plan node per line (pinned by the
    /// explain snapshot tests).
    pub fn render_text(&self) -> String {
        let mut out = format!("aggregate ({} stages)\n", self.stages.len());
        for (i, s) in self.stages.iter().enumerate() {
            let fused = if s.fused { "  [fused: top-k]" } else { "" };
            out.push_str(&format!("  [{i}] {}: {}{fused}\n", s.label, s.detail));
        }
        if let Some(mp) = &self.match_plan {
            out.push_str("  leading $match plan:\n");
            for line in mp.render_text().lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// What one stage actually did: produced by the traced executor
/// ([`explain_analyze`]), one entry per pipeline stage with fused blocks
/// expanded back to their constituents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageActual {
    /// Operator name, matching the plan node.
    pub label: &'static str,
    /// Rows leaving the stage.
    pub rows_out: usize,
    /// Wall time of the stage in microseconds (a fused block's time
    /// lands on its `$sort`; the interior pagination reports `0`).
    pub wall_us: u64,
}

/// The `EXPLAIN ANALYZE` result: the plan plus what execution recorded.
#[derive(Debug, Clone)]
pub struct PipelineAnalyze {
    /// The plan, as [`explain`] would have produced it.
    pub plan: PipelineExplain,
    /// Per-stage actuals, parallel to `plan.stages`.
    pub stages: Vec<StageActual>,
    /// Output documents the pipeline produced.
    pub rows: usize,
    /// End-to-end wall time in microseconds.
    pub wall_us: u64,
    /// Counter snapshot of the execution's private metrics sink.
    pub counters: Snapshot,
    /// Span events the execution recorded into its ring.
    pub spans_recorded: u64,
    /// Span events lost to ring wrap-around — the honesty counter: a
    /// nonzero value means the trace is a suffix, not the whole story.
    pub spans_dropped: u64,
}

impl PipelineAnalyze {
    /// Machine-stable JSON rendering: the plan annotated with actuals.
    pub fn to_json(&self) -> Json {
        let Json::Object(plan) = self.plan.to_json() else {
            unreachable!("plans render to objects")
        };
        let mut pairs: Vec<(String, Json)> = plan
            .pairs()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        pairs.push((
            "actual_stages".into(),
            Json::array(self.stages.iter().map(|s| {
                Json::object(vec![
                    ("stage".into(), Json::str(s.label)),
                    ("rows".into(), Json::Num(s.rows_out as u64)),
                    ("wall_us".into(), Json::Num(s.wall_us)),
                ])
                .expect("distinct literal keys")
            })),
        ));
        pairs.push(("rows".into(), Json::Num(self.rows as u64)));
        pairs.push(("wall_us".into(), Json::Num(self.wall_us)));
        let counters: Vec<(String, Json)> = ALL_COUNTERS
            .iter()
            .map(|&c| (c.name().to_owned(), Json::Num(self.counters.get(c))))
            .collect();
        pairs.push((
            "counters".into(),
            Json::object(counters).expect("counter names are distinct"),
        ));
        pairs.push((
            "spans".into(),
            Json::object(vec![
                ("recorded".into(), Json::Num(self.spans_recorded)),
                ("dropped".into(), Json::Num(self.spans_dropped)),
            ])
            .expect("distinct literal keys"),
        ));
        Json::object(pairs).expect("annotation keys disjoint from plan keys")
    }

    /// Human-readable rendering: the plan text plus per-stage actuals,
    /// nonzero counters, and the span recorded/dropped tallies.
    pub fn render_text(&self) -> String {
        let mut out = self.plan.render_text();
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "  actual[{i}] {}: rows={}, wall_us={}\n",
                s.label, s.rows_out, s.wall_us
            ));
        }
        out.push_str(&format!(
            "  actual: rows={}, wall_us={}\n",
            self.rows, self.wall_us
        ));
        let nz = self.counters.nonzero();
        if !nz.is_empty() {
            let parts: Vec<String> = nz.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("  counters: {}\n", parts.join(", ")));
        }
        out.push_str(&format!(
            "  spans: recorded={}, dropped={}\n",
            self.spans_recorded, self.spans_dropped
        ));
        out
    }
}

fn render_expr(e: &ValueExpr) -> String {
    match e {
        ValueExpr::Const(c) => c.to_string(),
        ValueExpr::Field(p) => format!("${p}"),
    }
}

fn render_id(id: &IdExpr) -> String {
    match id {
        IdExpr::Const(c) => c.to_string(),
        IdExpr::Field(p) => format!("${p}"),
        IdExpr::Doc(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(name, e)| format!("{name}: {}", render_expr(e)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
    }
}

fn render_acc(acc: &Accumulator) -> String {
    match acc {
        Accumulator::Sum(e) => format!("$sum({})", render_expr(e)),
        Accumulator::Avg(e) => format!("$avg({})", render_expr(e)),
        Accumulator::Min(e) => format!("$min({})", render_expr(e)),
        Accumulator::Max(e) => format!("$max({})", render_expr(e)),
        Accumulator::Count => "$count".into(),
        Accumulator::Push(e) => format!("$push({})", render_expr(e)),
        Accumulator::First(e) => format!("$first({})", render_expr(e)),
        Accumulator::Last(e) => format!("$last({})", render_expr(e)),
    }
}

fn render_group(spec: &GroupSpec) -> String {
    let accs: Vec<String> = spec
        .accs
        .iter()
        .map(|(name, acc)| format!("{name}: {}", render_acc(acc)))
        .collect();
    if accs.is_empty() {
        format!("_id: {}", render_id(&spec.id))
    } else {
        format!("_id: {}, {}", render_id(&spec.id), accs.join(", "))
    }
}

fn stage_detail(stage: &Stage) -> String {
    match stage {
        Stage::Match(f) => f.to_string(),
        Stage::Project(spec) => {
            let parts: Vec<String> = spec
                .iter()
                .map(|(p, field)| match field {
                    ProjectField::Include => p.to_string(),
                    ProjectField::Expr(e) => format!("{p} = {}", render_expr(e)),
                })
                .collect();
            parts.join(", ")
        }
        Stage::Unwind(p) => format!("${p}"),
        Stage::Group(spec) => render_group(spec),
        Stage::Sort(spec) => {
            let parts: Vec<String> = spec
                .iter()
                .map(|(p, order)| {
                    let dir = match order {
                        SortOrder::Asc => "asc",
                        SortOrder::Desc => "desc",
                    };
                    format!("{p} {dir}")
                })
                .collect();
            parts.join(", ")
        }
        Stage::Skip(n) | Stage::Limit(n) => n.to_string(),
        Stage::Count(label) => label.clone(),
    }
}

/// `EXPLAIN`: the plan for `pipeline` over `coll`, without executing
/// anything. Fusion detection mirrors the executor's scan exactly (the
/// same left-to-right cursor with consumed stages skipped).
pub fn explain(coll: &Collection, pipeline: &Pipeline) -> PipelineExplain {
    let stages = &pipeline.stages;
    let mut notes = Vec::new();
    let mut fused = vec![false; stages.len()];
    let mut i = 0;
    while i < stages.len() {
        if let Stage::Sort(_) = &stages[i] {
            let consumed = match (stages.get(i + 1), stages.get(i + 2)) {
                (Some(Stage::Limit(k)), _) => {
                    notes.push(format!(
                        "top-k fusion: $sort+$limit run as a bounded heap (skip=0, limit={})",
                        clamp_len(*k)
                    ));
                    Some(2)
                }
                (Some(Stage::Skip(s)), Some(Stage::Limit(k))) => {
                    notes.push(format!(
                        "top-k fusion: $sort+$skip+$limit run as a bounded heap (skip={}, limit={})",
                        clamp_len(*s),
                        clamp_len(*k)
                    ));
                    Some(3)
                }
                _ => None,
            };
            if let Some(c) = consumed {
                for flag in &mut fused[i..i + c] {
                    *flag = true;
                }
                i += c;
                continue;
            }
        }
        i += 1;
    }
    let match_plan = match stages.first() {
        Some(Stage::Match(f)) => Some(coll.explain(f)),
        _ => None,
    };
    let nodes = stages
        .iter()
        .zip(&fused)
        .map(|(stage, &fused)| StageExplain {
            label: stage_label(stage),
            detail: stage_detail(stage),
            fused,
        })
        .collect();
    PipelineExplain {
        stages: nodes,
        match_plan,
        notes,
    }
}

/// `EXPLAIN ANALYZE`: plans, then executes the pipeline under a fresh
/// private span-recording [`QueryMetrics`] sink with per-stage tracing,
/// and returns the plan annotated with actual cardinalities, wall
/// times, counters, and the span ring's recorded/dropped tallies.
pub fn explain_analyze(
    coll: &Collection,
    pipeline: &Pipeline,
) -> Result<PipelineAnalyze, QueryError> {
    let plan = explain(coll, pipeline);
    let sink = Arc::new(QueryMetrics::with_spans(mongofind::ANALYZE_SPAN_CAPACITY));
    let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
    let mut stages = Vec::new();
    let start = Instant::now();
    let out = aggregate_traced_with_ctx(coll, pipeline, &ctx, &mut stages)?;
    let wall_us = start.elapsed().as_micros() as u64;
    let spans = sink.spans().expect("sink was built with a span ring");
    Ok(PipelineAnalyze {
        plan,
        stages,
        rows: out.len(),
        wall_us,
        counters: sink.snapshot(),
        spans_recorded: spans.recorded(),
        spans_dropped: spans.dropped(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;

    fn coll() -> Collection {
        Collection::from_array(
            &parse(
                r#"[
                {"name": {"first": "Sue", "last": "Kim"}, "age": 28, "hobbies": ["yoga", "chess"]},
                {"name": {"first": "John", "last": "Doe"}, "age": 32, "hobbies": ["golf"]},
                {"name": {"first": "Ada", "last": "Kim"}, "age": 41, "hobbies": ["chess"]},
                {"name": {"first": "Bo", "last": "Chen"}, "age": 35, "hobbies": []}
            ]"#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn explain_marks_topk_fusion_and_match_route() {
        let c = coll();
        let p = Pipeline::parse_str(
            r#"[
                {"$match": {"age": {"$gte": 30}}},
                {"$sort": {"age": 0}},
                {"$skip": 1},
                {"$limit": 1}
            ]"#,
        )
        .unwrap();
        let ex = explain(&c, &p);
        assert_eq!(ex.stages.len(), 4);
        assert!(!ex.stages[0].fused);
        assert!(ex.stages[1].fused && ex.stages[2].fused && ex.stages[3].fused);
        assert_eq!(ex.match_plan.as_ref().unwrap().route.name(), "scan");
        assert_eq!(ex.notes.len(), 1);
        let text = ex.render_text();
        assert!(text.contains("[fused: top-k]"), "{text}");
        assert!(text.contains("leading $match plan:"), "{text}");
    }

    #[test]
    fn analyze_cardinalities_match_reference_through_fusion() {
        let c = coll();
        for src in [
            r#"[{"$match": {"age": {"$gte": 30}}}, {"$sort": {"age": 0}}, {"$skip": 1}, {"$limit": 1}]"#,
            r#"[{"$unwind": "$hobbies"}, {"$group": {"_id": "$hobbies", "n": {"$sum": 1}}}]"#,
            r#"[{"$sort": {"age": 1}}, {"$limit": 2}, {"$project": {"age": 1}}]"#,
            r#"[{"$match": {"name.last": "Kim"}}, {"$count": "kims"}]"#,
        ] {
            let p = Pipeline::parse_str(src).unwrap();
            let an = explain_analyze(&c, &p).unwrap();
            let expected = crate::reference::stage_cardinalities(c.docs(), &p);
            let got: Vec<usize> = an.stages.iter().map(|s| s.rows_out).collect();
            assert_eq!(got, expected, "{src}");
            assert_eq!(an.rows, *expected.last().unwrap(), "{src}");
        }
    }

    #[test]
    fn analyze_json_reports_stages_and_counters() {
        let c = coll();
        let p =
            Pipeline::parse_str(r#"[{"$match": {"age": {"$gte": 30}}}, {"$limit": 2}]"#).unwrap();
        let an = explain_analyze(&c, &p).unwrap();
        let json = an.to_json();
        let obj = json.as_object().unwrap();
        assert!(obj.get("actual_stages").is_some());
        assert!(obj.get("counters").is_some());
        let text = an.render_text();
        assert!(text.contains("actual[0] $match"), "{text}");
    }

    #[test]
    fn analyze_reports_span_honesty() {
        let c = coll();
        let p =
            Pipeline::parse_str(r#"[{"$match": {"age": {"$gte": 30}}}, {"$limit": 2}]"#).unwrap();
        let an = explain_analyze(&c, &p).unwrap();
        // Per-stage tracing opens a span per stage; one small pipeline
        // never overflows the analyze ring.
        assert!(an.spans_recorded > 0);
        assert_eq!(an.spans_dropped, 0);
        let text = an.render_text();
        assert!(text.contains("spans: recorded="), "{text}");
        let spans = an
            .to_json()
            .as_object()
            .and_then(|o| o.get("spans"))
            .and_then(Json::as_object)
            .cloned()
            .expect("spans object");
        assert_eq!(spans.get("recorded"), Some(&Json::Num(an.spans_recorded)));
        assert_eq!(spans.get("dropped"), Some(&Json::Num(0)));
    }
}
