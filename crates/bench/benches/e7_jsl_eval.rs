//! E7 (Prop 6): JSL evaluation with the `Unique` strategy ablation —
//! naive pairwise (the paper's quadratic bound) vs canonical labels.

use bench::{e7_doc, e7_formula};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsl::{EvalOptions, UniqueStrategy};
use jsondata::JsonTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_jsl_eval");
    g.sample_size(10);
    let phi = e7_formula();
    for exp in [8u32, 10, 12] {
        let n = 1usize << exp;
        let doc = e7_doc(n, n / 2);
        let tree = JsonTree::build(&doc);
        g.bench_with_input(
            BenchmarkId::new("unique_naive_pairwise", n),
            &tree,
            |b, t| {
                b.iter(|| {
                    jsl::eval::evaluate_with(
                        t,
                        &phi,
                        EvalOptions {
                            unique: UniqueStrategy::NaivePairwise,
                            ..Default::default()
                        },
                    )
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("unique_canonical", n), &tree, |b, t| {
            b.iter(|| {
                jsl::eval::evaluate_with(
                    t,
                    &phi,
                    EvalOptions {
                        unique: UniqueStrategy::Canonical,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
