//! # jstat — static analysis for pipelines, queries and schemas
//!
//! The execution stack decides satisfiability (`jnl::sat`, Prop 2),
//! containment (`jnl::sat::containment`, Prop 5 via sat) and schema
//! satisfiability (`jsl::sat`, Props 7/10) — this crate points those
//! decision procedures *at the workload itself*, before anything runs.
//! [`Analyze::analyze`] walks a parsed [`jagg::Pipeline`] (optionally
//! against the collection's declared [`jsl::RecursiveJsl`] schema) and
//! emits structured [`Diagnostic`]s with stable lint codes:
//!
//! | code | name | meaning |
//! |------|------|---------|
//! | `J001` | `unsat-match` | the `$match` filter is unsatisfiable — the stage (and everything after it) produces nothing |
//! | `J002` | `tautological-match` | every document matches — the stage is a no-op |
//! | `J003` | `stage-shadowed` | an earlier `$match` already implies this one (containment) |
//! | `J004` | `dead-path` | a `$match`/`$project`/`$sort`/`$unwind` path is unsatisfiable under the declared schema |
//! | `J005` | `degenerate-stage` | `$limit 0`, a `$skip` past the row bound, or consecutive `$sort`s |
//!
//! ## The soundness contract
//!
//! Every diagnostic carrying a rewrite [`Action`] is **provably** dead,
//! never heuristic: each one is backed by an `Unsat` verdict from a
//! decision procedure whose negative answers are sound (witnessed sat
//! results on the other side are re-verified by evaluation), or by an
//! exact row-count argument (`$limit`/`$skip`). Where the bridge from
//! filter surface syntax to logic is approximate — [`mongofind::Filter::to_jnl`]
//! over-approximates ranges to path existence — the analyzer only uses
//! the direction that stays sound: over-approximations can prove a
//! filter unsatisfiable (`J001`) but are never trusted to prove it total
//! (`J002`) or implied (`J003`); those require [`mongofind::Filter::jnl_exact`].
//! Schema-conditional lints (`J004`) are sound *relative to the declared
//! schema*: attaching a schema to a collection is a promise that the
//! documents conform, not a check.
//!
//! Consequently [`Analyze::prune`] — which deletes provably-dead stages
//! and short-circuits unsatisfiable prefixes to the empty result — is a
//! semantics-preserving rewrite, pinned by the rewrite-equivalence
//! property suite (`tests/rewrite_equivalence.rs`): pruned and unpruned
//! pipelines are output-identical through both `jagg::exec` and the
//! `jagg::reference` oracle on generated pipelines × generated
//! collections.
//!
//! ```
//! use jagg::Pipeline;
//! use jstat::Analyze;
//!
//! let pipe = Pipeline::parse_str(
//!     r#"[{"$match": {"k": 1}}, {"$match": {"k": {"$exists": "true"}}}, {"$limit": 0}]"#,
//! )
//! .unwrap();
//! let report = pipe.analyze(None);
//! assert_eq!(report.diagnostics.len(), 2); // J003 (shadowed) + J005 ($limit 0)
//! let pruned = pipe.prune(&report);
//! assert_eq!(pruned.stages.len(), 2); // [$match {"k": 1}, $limit 0]
//! ```

use std::fmt;

use jagg::pipeline::{Pipeline, ProjectField, SortOrder, Stage, ValueExpr};
use jnl::ast::Unary;
use jnl::{contained_in, sat_deterministic};
use jsl::ast::Jsl;
use jsl::translate::jnl_to_jsl_cps;
use jsl::{sat_recursive, RecursiveJsl, SatConfig};
use mongofind::{Filter, Path};

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

/// Stable lint codes (see the crate docs for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// `J001` — the `$match` filter is unsatisfiable.
    UnsatMatch,
    /// `J002` — every document matches the filter.
    TautologicalMatch,
    /// `J003` — an earlier `$match` already implies this one.
    StageShadowed,
    /// `J004` — a path is unsatisfiable under the declared schema.
    DeadPath,
    /// `J005` — a row-count degenerate stage.
    DegenerateStage,
}

impl LintCode {
    /// The stable code string (`"J001"` …).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnsatMatch => "J001",
            LintCode::TautologicalMatch => "J002",
            LintCode::StageShadowed => "J003",
            LintCode::DeadPath => "J004",
            LintCode::DegenerateStage => "J005",
        }
    }

    /// The human-readable lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UnsatMatch => "unsat-match",
            LintCode::TautologicalMatch => "tautological-match",
            LintCode::StageShadowed => "stage-shadowed",
            LintCode::DeadPath => "dead-path",
            LintCode::DegenerateStage => "degenerate-stage",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// What [`Analyze::prune`] is entitled to do about a diagnostic.
///
/// Every non-[`Action::Advisory`] variant is backed by a proof (see the
/// crate-level soundness contract) that applying it preserves the
/// pipeline's output exactly.
#[derive(Debug, Clone)]
pub enum Action {
    /// The pipeline's output is provably empty from this stage on:
    /// truncate here and short-circuit to the empty result.
    EmptyResult,
    /// The stage is provably a no-op: delete it.
    DeleteStage,
    /// Replace the stage with a smaller equivalent (e.g. a `$sort` or
    /// `$project` with its dead entries removed).
    Replace(Stage),
    /// Informational only — nothing is provably dead.
    Advisory,
}

/// One finding: a lint code, the stage it anchors to, a message, and the
/// rewrite it licenses.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Index of the stage in [`Pipeline::stages`] (0 for whole-query or
    /// whole-schema diagnostics).
    pub stage: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The licensed rewrite.
    pub action: Action,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rewrite = match &self.action {
            Action::EmptyResult => "empty result",
            Action::DeleteStage => "delete stage",
            Action::Replace(_) => "shrink stage",
            Action::Advisory => "advisory",
        };
        write!(
            f,
            "{} (stage {}): {} [{}]",
            self.code, self.stage, self.message, rewrite
        )
    }
}

/// The result of an analysis: every diagnostic, in stage order.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The findings, ordered by stage index.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any diagnostic with this code fired.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Whether any diagnostic licenses a rewrite (non-advisory).
    pub fn has_rewrite(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| !matches!(d.action, Action::Advisory))
    }

    fn push(&mut self, code: LintCode, stage: usize, message: impl Into<String>, action: Action) {
        self.diagnostics.push(Diagnostic {
            code,
            stage,
            message: message.into(),
            action,
        });
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "clean: no findings");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Attaches a report's findings to an `EXPLAIN` plan as notes — the
/// analyzer sits *above* the execution crate in the dependency order, so
/// the annotation flows this way (the plan cannot pull it in). Each
/// diagnostic renders as its [`Diagnostic`] `Display` line prefixed with
/// `jstat:`, so a plan reader sees the licensed prunes next to the stages
/// they anchor to.
pub fn annotate_explain(plan: &mut jagg::PipelineExplain, report: &Report) {
    for d in &report.diagnostics {
        plan.add_note(format!("jstat: {d}"));
    }
}

// ---------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------

/// Static analysis over [`jagg::Pipeline`] — an extension trait because
/// the execution crate cannot depend on its analyzer.
pub trait Analyze {
    /// Lints the pipeline, optionally against the collection's declared
    /// schema (enables the `J004` dead-path checks).
    fn analyze(&self, schema: Option<&RecursiveJsl>) -> Report;

    /// Applies the rewrites a report licenses: provably-dead stages are
    /// deleted or shrunk, and an [`Action::EmptyResult`] truncates the
    /// pipeline to its live prefix followed by `$limit 0`. The report
    /// must come from [`Analyze::analyze`] on this same pipeline.
    fn prune(&self, report: &Report) -> Pipeline;
}

/// A dotted path whose JNL compilation ([`Path::to_binary`]) is *exact*:
/// no numeric segments, so [`Path::resolve`] succeeds iff the existence
/// formula `[α]` holds. (Numeric segments index arrays in JNL but also
/// match object keys in `resolve` — the same gate `Filter::jnl_exact`
/// applies.)
fn path_exact(p: &Path) -> bool {
    p.0.iter().all(|seg| seg.parse::<u64>().is_err())
}

/// Whether `schema ∧ φ` is *provably* unsatisfiable: translate the JNL
/// query into JSL (Theorem 2) and conjoin it with the schema base under
/// the schema's own definitions. Translation failures and `Unknown`
/// verdicts (budget or height caps) report `false` — no lint.
fn dead_under_schema(schema: &RecursiveJsl, phi: &Unary) -> bool {
    let Ok(translated) = jnl_to_jsl_cps(phi) else {
        return false;
    };
    let combined = RecursiveJsl {
        defs: schema.defs.clone(),
        base: Jsl::and(vec![schema.base.clone(), translated]),
    };
    sat_recursive(&combined, SatConfig::default()).is_unsat()
}

/// Whether the path provably never exists in any schema-conforming
/// document.
fn path_dead(schema: &RecursiveJsl, p: &Path) -> bool {
    path_exact(p) && dead_under_schema(schema, &Unary::exists(p.to_binary()))
}

/// Walk state threaded through the stage scan.
struct Scan {
    /// Rows entering the current stage are still unmodified documents of
    /// the original collection — the precondition for every
    /// schema-conditional (`J004`) lint. Cleared by any stage that
    /// reshapes documents (`$project`, `$unwind`, `$group`, `$count`).
    originals: bool,
    /// `(stage index, to_jnl)` of every `$match` whose formula still
    /// holds of all surviving rows. The `to_jnl` over-approximation is
    /// sound on this side: passing a filter implies its formula. Cleared
    /// by reshaping stages.
    prior: Vec<(usize, Unary)>,
    /// A sound upper bound on the number of rows entering the current
    /// stage, when one is known (`$limit` establishes it; `$unwind`
    /// destroys it).
    row_bound: Option<u64>,
    /// The immediately preceding stage, if it was a `$sort` (index and
    /// key list) — the `J005` consecutive-sort window.
    last_sort: Option<(usize, Vec<(Path, SortOrder)>)>,
}

impl Analyze for Pipeline {
    fn analyze(&self, schema: Option<&RecursiveJsl>) -> Report {
        let mut report = Report::default();
        let mut scan = Scan {
            originals: true,
            prior: Vec::new(),
            row_bound: None,
            last_sort: None,
        };
        for (i, stage) in self.stages.iter().enumerate() {
            analyze_stage(&mut report, &mut scan, schema, i, stage);
        }
        report
    }

    fn prune(&self, report: &Report) -> Pipeline {
        let mut stages: Vec<Stage> = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            let mut delete = false;
            let mut replacement: Option<&Stage> = None;
            for d in report.diagnostics.iter().filter(|d| d.stage == i) {
                match &d.action {
                    Action::EmptyResult => {
                        // Everything from this stage on is provably
                        // empty; `$limit 0` short-circuits both
                        // executors without changing the (empty) output.
                        stages.push(Stage::Limit(0));
                        return Pipeline { stages };
                    }
                    Action::DeleteStage => delete = true,
                    Action::Replace(s) => replacement = Some(s),
                    Action::Advisory => {}
                }
            }
            if delete {
                continue;
            }
            match replacement {
                Some(s) => stages.push(s.clone()),
                None => stages.push(stage.clone()),
            }
        }
        Pipeline { stages }
    }
}

fn analyze_stage(
    report: &mut Report,
    scan: &mut Scan,
    schema: Option<&RecursiveJsl>,
    i: usize,
    stage: &Stage,
) {
    let sort_window = scan.last_sort.take();
    match stage {
        Stage::Match(f) => analyze_match(report, scan, schema, i, f),
        Stage::Project(spec) => {
            if let Some(schema) = schema.filter(|_| scan.originals) {
                analyze_project(report, schema, i, spec);
            }
            scan.originals = false;
            scan.prior.clear();
        }
        Stage::Unwind(p) => {
            if let Some(schema) = schema.filter(|_| scan.originals) {
                if path_dead(schema, p) {
                    report.push(
                        LintCode::DeadPath,
                        i,
                        format!(
                            "$unwind path \"{p}\" never exists under the declared schema; \
                             every document unwinds to nothing"
                        ),
                        Action::EmptyResult,
                    );
                }
            }
            scan.originals = false;
            scan.prior.clear();
            scan.row_bound = None;
        }
        Stage::Group(_) => {
            // n rows form at most n groups: the row bound survives.
            scan.originals = false;
            scan.prior.clear();
        }
        Stage::Sort(spec) => {
            analyze_sort(report, scan, schema, i, spec, sort_window);
            scan.last_sort = Some((i, spec.clone()));
        }
        Stage::Skip(n) => {
            if let Some(bound) = scan.row_bound {
                if *n >= bound {
                    report.push(
                        LintCode::DegenerateStage,
                        i,
                        format!("$skip {n} discards all rows (at most {bound} reach it)"),
                        Action::EmptyResult,
                    );
                }
            }
            scan.row_bound = scan.row_bound.map(|b| b.saturating_sub(*n));
        }
        Stage::Limit(n) => {
            if *n == 0 {
                report.push(
                    LintCode::DegenerateStage,
                    i,
                    "$limit 0 discards all rows".to_owned(),
                    Action::EmptyResult,
                );
            }
            scan.row_bound = Some(scan.row_bound.map_or(*n, |b| b.min(*n)));
        }
        Stage::Count(_) => {
            scan.originals = false;
            scan.prior.clear();
            scan.row_bound = Some(1);
        }
    }
}

fn analyze_match(
    report: &mut Report,
    scan: &mut Scan,
    schema: Option<&RecursiveJsl>,
    i: usize,
    f: &Filter,
) {
    let phi = f.to_jnl();
    let exact = f.jnl_exact();

    // J001 — sound even for approximate filters: matching implies the
    // formula, so an unsatisfiable formula means nothing matches.
    if sat_deterministic(&phi).is_unsat() {
        report.push(
            LintCode::UnsatMatch,
            i,
            "no document can satisfy this filter".to_owned(),
            Action::EmptyResult,
        );
        scan.prior.push((i, phi));
        return;
    }

    // J004 — dead under the declared schema. Needs exactness (the
    // formula must *under*-approximate too) and unmodified documents.
    if exact && scan.originals {
        if let Some(schema) = schema {
            if dead_under_schema(schema, &phi) {
                report.push(
                    LintCode::DeadPath,
                    i,
                    "no document satisfying the declared schema can match this filter".to_owned(),
                    Action::EmptyResult,
                );
                scan.prior.push((i, phi));
                return;
            }
        }
    }

    // J002 — tautological: ¬φ unsatisfiable means every document
    // matches. Needs exactness (φ true must imply the filter matches).
    if exact && sat_deterministic(&Unary::not(phi.clone())).is_unsat() {
        report.push(
            LintCode::TautologicalMatch,
            i,
            "every document matches this filter; the stage is a no-op".to_owned(),
            Action::DeleteStage,
        );
        scan.prior.push((i, phi));
        return;
    }

    // J003 — shadowed by an earlier $match: rows reaching this stage
    // already satisfy some earlier formula ψ (over-approximation is
    // sound on that side); if ψ ⊑ φ and φ is exact, every row matches.
    if exact {
        for (j, psi) in &scan.prior {
            if contained_in(psi.clone(), phi.clone()).is_contained() {
                report.push(
                    LintCode::StageShadowed,
                    i,
                    format!("already implied by the $match at stage {j}"),
                    Action::DeleteStage,
                );
                scan.prior.push((i, phi));
                return;
            }
        }
    }

    scan.prior.push((i, phi));
}

fn analyze_project(
    report: &mut Report,
    schema: &RecursiveJsl,
    i: usize,
    spec: &[(Path, ProjectField)],
) {
    // An entry whose *source* path provably never exists contributes no
    // output field on any schema-conforming document — drop it.
    let mut dead: Vec<String> = Vec::new();
    let mut kept: Vec<(Path, ProjectField)> = Vec::new();
    for (path, field) in spec {
        let source = match field {
            ProjectField::Include => Some(path),
            ProjectField::Expr(ValueExpr::Field(src)) => Some(src),
            ProjectField::Expr(ValueExpr::Const(_)) => None,
        };
        match source {
            Some(src) if path_dead(schema, src) => dead.push(src.to_string()),
            _ => kept.push((path.clone(), field.clone())),
        }
    }
    if !dead.is_empty() {
        report.push(
            LintCode::DeadPath,
            i,
            format!(
                "$project source path(s) {} never exist under the declared schema",
                dead.join(", ")
            ),
            Action::Replace(Stage::Project(kept)),
        );
    }
}

fn analyze_sort(
    report: &mut Report,
    scan: &mut Scan,
    schema: Option<&RecursiveJsl>,
    i: usize,
    spec: &[(Path, SortOrder)],
    sort_window: Option<(usize, Vec<(Path, SortOrder)>)>,
) {
    // J005 — consecutive $sorts. If the earlier key list is a prefix of
    // this one, rows tied on all our keys are tied on all of the earlier
    // sort's keys too, so (both sorts being stable) the earlier sort
    // cannot influence the final order: delete it. Otherwise the earlier
    // sort only rearranges our ties — worth a note, not provably dead.
    if let Some((j, prev)) = sort_window {
        let is_prefix = prev.len() <= spec.len()
            && prev
                .iter()
                .zip(spec.iter())
                .all(|((pp, po), (sp, so))| pp == sp && po == so);
        if is_prefix {
            report.push(
                LintCode::DegenerateStage,
                j,
                format!("$sort immediately overwritten by the $sort at stage {i}, whose key list extends it"),
                Action::DeleteStage,
            );
        } else {
            report.push(
                LintCode::DegenerateStage,
                j,
                format!("$sort only affects tie-breaking of the $sort at stage {i}"),
                Action::Advisory,
            );
        }
    }

    // J004 — sort keys that never exist. Missing keys compare equal, so
    // a provably-absent key never separates two rows: drop it; if every
    // key is dead the stage is an identity (stable sort, all tied).
    if let Some(schema) = schema.filter(|_| scan.originals) {
        let kept: Vec<(Path, SortOrder)> = spec
            .iter()
            .filter(|(p, _)| !path_dead(schema, p))
            .cloned()
            .collect();
        if kept.len() < spec.len() {
            let dead: Vec<String> = spec
                .iter()
                .filter(|(p, _)| kept.iter().all(|(k, _)| k != p))
                .map(|(p, _)| p.to_string())
                .collect();
            let (message, action) = if kept.is_empty() {
                (
                    format!(
                        "every $sort key ({}) is absent under the declared schema; \
                         the stable sort is an identity",
                        dead.join(", ")
                    ),
                    Action::DeleteStage,
                )
            } else {
                (
                    format!(
                        "$sort key(s) {} never exist under the declared schema",
                        dead.join(", ")
                    ),
                    Action::Replace(Stage::Sort(kept)),
                )
            };
            report.push(LintCode::DeadPath, i, message, action);
        }
    }
}

// ---------------------------------------------------------------------
// Query- and schema-level entry points
// ---------------------------------------------------------------------

/// Lints a raw JNL query: `J001` when unsatisfiable, `J002` when valid
/// (its negation is unsatisfiable). Diagnostics anchor to stage 0.
pub fn analyze_query(phi: &Unary) -> Report {
    let mut report = Report::default();
    if sat_deterministic(phi).is_unsat() {
        report.push(
            LintCode::UnsatMatch,
            0,
            "query is unsatisfiable: it selects nothing on every document".to_owned(),
            Action::EmptyResult,
        );
    } else if sat_deterministic(&Unary::not(phi.clone())).is_unsat() {
        report.push(
            LintCode::TautologicalMatch,
            0,
            "query is valid: it holds on every document".to_owned(),
            Action::Advisory,
        );
    }
    report
}

/// Lints a JSL schema: ill-formedness and unsatisfiability (a schema no
/// document can conform to makes every query against the collection
/// dead). Diagnostics anchor to stage 0 and are advisory — a schema is
/// not a pipeline stage.
pub fn analyze_schema(delta: &RecursiveJsl) -> Report {
    let mut report = Report::default();
    if let Err(e) = delta.well_formed() {
        report.push(
            LintCode::DeadPath,
            0,
            format!("schema is ill-formed: {e}"),
            Action::Advisory,
        );
        return report;
    }
    if sat_recursive(delta, SatConfig::default()).is_unsat() {
        report.push(
            LintCode::DeadPath,
            0,
            "schema is unsatisfiable: no document conforms, so every query against it is dead"
                .to_owned(),
            Action::Advisory,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnl::ast::Binary;
    use jsondata::{parse, Json};

    fn pipe(src: &str) -> Pipeline {
        Pipeline::parse_str(src).expect("test pipeline parses")
    }

    fn docs(src: &str) -> Vec<Json> {
        parse(src).unwrap().as_array().unwrap().to_vec()
    }

    /// A schema stating "the key `q` never exists", built through the
    /// same Theorem 2 translation the analyzer uses.
    fn no_key_q_schema() -> RecursiveJsl {
        let phi = Unary::not(Unary::exists(Binary::key("q")));
        RecursiveJsl::plain(jnl_to_jsl_cps(&phi).expect("translates"))
    }

    fn assert_equiv(p: &Pipeline, schema: Option<&RecursiveJsl>, collection: &str) {
        let report = p.analyze(schema);
        let pruned = p.prune(&report);
        let rows = docs(collection);
        assert_eq!(
            jagg::reference::aggregate(&rows, p),
            jagg::reference::aggregate(&rows, &pruned),
            "prune changed the output"
        );
    }

    #[test]
    fn annotate_explain_attaches_findings_as_notes() {
        let p = pipe(r#"[{"$match": {"$and": [{"k": 1}, {"k": 2}]}}, {"$sort": {"k": 1}}]"#);
        let coll = mongofind::Collection::from_array(&parse(r#"[{"k": 1}]"#).unwrap()).unwrap();
        let mut plan = jagg::explain(&coll, &p);
        let report = p.analyze(None);
        assert!(!report.is_clean());
        annotate_explain(&mut plan, &report);
        assert_eq!(plan.notes.len(), report.diagnostics.len());
        let text = plan.render_text();
        assert!(text.contains("note: jstat: J001"), "{text}");
    }

    #[test]
    fn j001_unsat_match_short_circuits() {
        let p = pipe(r#"[{"$match": {"$and": [{"k": 1}, {"k": 2}]}}, {"$sort": {"k": 1}}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::UnsatMatch), "{report}");
        let pruned = p.prune(&report);
        assert_eq!(pruned.stages.len(), 1);
        assert!(matches!(pruned.stages[0], Stage::Limit(0)));
        assert_equiv(&p, None, r#"[{"k": 1}, {"k": 2}, {"x": 9}]"#);
    }

    #[test]
    fn j002_tautological_match_deleted() {
        let p = pipe(
            r#"[{"$match": {"$or": [{"k": {"$exists": "true"}}, {"k": {"$exists": "false"}}]}}]"#,
        );
        let report = p.analyze(None);
        assert!(report.has(LintCode::TautologicalMatch), "{report}");
        assert_eq!(p.prune(&report).stages.len(), 0);
        assert_equiv(&p, None, r#"[{"k": 1}, {"x": 2}]"#);
    }

    #[test]
    fn j003_shadowed_match_deleted() {
        let p = pipe(r#"[{"$match": {"k": 5}}, {"$match": {"k": {"$exists": "true"}}}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::StageShadowed), "{report}");
        assert_eq!(report.diagnostics[0].stage, 1);
        assert_eq!(p.prune(&report).stages.len(), 1);
        assert_equiv(&p, None, r#"[{"k": 5}, {"k": 6}, {"x": 1}]"#);
    }

    #[test]
    fn j003_not_fired_across_reshaping_stages() {
        // $project reshapes documents, so the earlier $match's formula no
        // longer holds of the rows reaching the later one.
        let p = pipe(
            r#"[{"$match": {"k": 5}}, {"$project": {"x": "$x"}},
                {"$match": {"k": {"$exists": "true"}}}]"#,
        );
        assert!(!p.analyze(None).has(LintCode::StageShadowed));
    }

    #[test]
    fn j003_approximate_earlier_match_still_shadows() {
        // {"k": {"$gte": 3}} over-approximates to [@k] — which is sound
        // as the *earlier* side of the containment.
        let p = pipe(r#"[{"$match": {"k": {"$gte": 3}}}, {"$match": {"k": {"$exists": "true"}}}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::StageShadowed), "{report}");
        assert_equiv(&p, None, r#"[{"k": 5}, {"k": 1}, {"x": 1}]"#);
    }

    #[test]
    fn j003_needs_exact_later_match() {
        // The later filter is approximate ($gte): its formula holding
        // does not imply it matches, so no deletion is licensed.
        let p = pipe(r#"[{"$match": {"k": 5}}, {"$match": {"k": {"$gte": 3}}}]"#);
        assert!(!p.analyze(None).has(LintCode::StageShadowed));
    }

    #[test]
    fn j004_match_dead_under_schema() {
        let schema = no_key_q_schema();
        let p = pipe(r#"[{"$match": {"q": 1}}, {"$count": "n"}]"#);
        let report = p.analyze(Some(&schema));
        assert!(report.has(LintCode::DeadPath), "{report}");
        let pruned = p.prune(&report);
        assert!(matches!(pruned.stages[0], Stage::Limit(0)));
        // Schema-conforming collection: no "q" keys anywhere.
        assert_equiv(&p, Some(&schema), r#"[{"k": 1}, {"x": 2}]"#);
    }

    #[test]
    fn j004_needs_original_documents() {
        // After $project the rows are reshaped; the schema no longer
        // describes them, so no J004 may fire on the later $match.
        let schema = no_key_q_schema();
        let p = pipe(r#"[{"$project": {"q": {"$literal": 1}}}, {"$match": {"q": 1}}]"#);
        let report = p.analyze(Some(&schema));
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::DeadPath && d.stage == 1),
            "{report}"
        );
        assert_equiv(&p, Some(&schema), r#"[{"k": 1}, {"x": 2}]"#);
    }

    #[test]
    fn j004_project_and_sort_entries_shrink() {
        let schema = no_key_q_schema();
        let p = pipe(r#"[{"$sort": {"q": 1, "k": 1}}, {"$project": {"k": 1, "q": 1}}]"#);
        let report = p.analyze(Some(&schema));
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DeadPath)
            .collect();
        assert_eq!(dead.len(), 2, "{report}");
        let pruned = p.prune(&report);
        match &pruned.stages[0] {
            Stage::Sort(keys) => assert_eq!(keys.len(), 1),
            other => panic!("expected shrunk $sort, got {other:?}"),
        }
        match &pruned.stages[1] {
            Stage::Project(spec) => assert_eq!(spec.len(), 1),
            other => panic!("expected shrunk $project, got {other:?}"),
        }
        assert_equiv(&p, Some(&schema), r#"[{"k": 3}, {"k": 1}, {"x": 0}]"#);
    }

    #[test]
    fn j004_dead_unwind_empties_the_pipeline() {
        let schema = no_key_q_schema();
        let p = pipe(r#"[{"$unwind": "$q"}, {"$count": "n"}]"#);
        let report = p.analyze(Some(&schema));
        assert!(report.has(LintCode::DeadPath), "{report}");
        assert!(matches!(p.prune(&report).stages[0], Stage::Limit(0)));
        assert_equiv(&p, Some(&schema), r#"[{"k": [1, 2]}, {"x": 2}]"#);
    }

    #[test]
    fn j005_limit_zero_and_skip_past_limit() {
        let p = pipe(r#"[{"$limit": 0}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::DegenerateStage));
        assert_equiv(&p, None, r#"[{"k": 1}]"#);

        let p = pipe(r#"[{"$limit": 3}, {"$sort": {"k": 1}}, {"$skip": 3}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::DegenerateStage), "{report}");
        assert!(matches!(
            p.prune(&report).stages.last(),
            Some(Stage::Limit(0))
        ));
        assert_equiv(&p, None, r#"[{"k": 2}, {"k": 1}, {"k": 3}, {"k": 0}]"#);

        // $skip strictly under the bound: no lint.
        let p = pipe(r#"[{"$limit": 3}, {"$skip": 2}]"#);
        assert!(p.analyze(None).is_clean());
    }

    #[test]
    fn j005_consecutive_sorts() {
        // Prefix: the earlier sort is provably dead.
        let p = pipe(r#"[{"$sort": {"k": 1}}, {"$sort": {"k": 1, "x": 0}}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::DegenerateStage), "{report}");
        assert!(report.has_rewrite());
        assert_eq!(p.prune(&report).stages.len(), 1);
        assert_equiv(
            &p,
            None,
            r#"[{"k": 2, "x": 1}, {"k": 1, "x": 2}, {"k": 1, "x": 3}, {"x": 4}]"#,
        );

        // Not a prefix: advisory only, nothing pruned.
        let p = pipe(r#"[{"$sort": {"x": 1}}, {"$sort": {"k": 1}}]"#);
        let report = p.analyze(None);
        assert!(report.has(LintCode::DegenerateStage));
        assert!(!report.has_rewrite());
        assert_eq!(p.prune(&report).stages.len(), 2);
    }

    #[test]
    fn row_bound_survives_group_but_not_unwind() {
        // $group keeps the bound: 2 rows form at most 2 groups.
        let p = pipe(r#"[{"$limit": 2}, {"$group": {"_id": "$k"}}, {"$skip": 2}]"#);
        assert!(p.analyze(None).has(LintCode::DegenerateStage));

        // $unwind destroys it: no lint may fire.
        let p = pipe(r#"[{"$limit": 2}, {"$unwind": "$k"}, {"$skip": 2}]"#);
        assert!(p.analyze(None).is_clean());
    }

    #[test]
    fn clean_pipeline_is_untouched() {
        let p =
            pipe(r#"[{"$match": {"k": {"$exists": "true"}}}, {"$sort": {"k": 0}}, {"$limit": 2}]"#);
        let report = p.analyze(None);
        assert!(report.is_clean(), "{report}");
        let pruned = p.prune(&report);
        assert_eq!(pruned.stages.len(), p.stages.len());
    }

    #[test]
    fn query_level_entry_points() {
        let phi = Unary::and(vec![
            Unary::eq_doc(Binary::key("k"), Json::Num(1)),
            Unary::eq_doc(Binary::key("k"), Json::Num(2)),
        ]);
        assert!(analyze_query(&phi).has(LintCode::UnsatMatch));

        let valid = Unary::or(vec![
            Unary::exists(Binary::key("k")),
            Unary::not(Unary::exists(Binary::key("k"))),
        ]);
        assert!(analyze_query(&valid).has(LintCode::TautologicalMatch));

        assert!(analyze_query(&Unary::exists(Binary::key("k"))).is_clean());
    }

    #[test]
    fn schema_level_entry_points() {
        // Satisfiable schema: clean.
        assert!(analyze_schema(&no_key_q_schema()).is_clean());

        // Unsatisfiable schema: [@q] ∧ ¬[@q].
        let phi = Unary::and(vec![
            Unary::exists(Binary::key("q")),
            Unary::not(Unary::exists(Binary::key("q"))),
        ]);
        let delta = RecursiveJsl::plain(jnl_to_jsl_cps(&phi).unwrap());
        assert!(analyze_schema(&delta).has(LintCode::DeadPath));

        // Ill-formed: free variable.
        let delta = RecursiveJsl::plain(Jsl::Var("loop".to_owned()));
        assert!(analyze_schema(&delta).has(LintCode::DeadPath));
    }
}
