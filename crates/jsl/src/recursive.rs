//! Recursive JSL (§5.3): definitions `γᵢ = φᵢ` with a base expression,
//! well-formedness via the precedence graph, the paper's `unfold`
//! semantics, and the Proposition 9 PTIME evaluation algorithm.

use std::collections::HashMap;
use std::fmt;

use jsondata::{JsonTree, NodeId};

use crate::ast::Jsl;
use crate::eval::{EvalOptions, JslContext, NodeSet};

/// A recursive JSL expression: ordered definitions plus a base expression
/// (display form (1) of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveJsl {
    /// Definitions `γ = φ` in declaration order.
    pub defs: Vec<(String, Jsl)>,
    /// The base expression `ψ`.
    pub base: Jsl,
}

/// Why an expression is not well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormednessError {
    /// The precedence graph has a cycle through these symbols.
    PrecedenceCycle(Vec<String>),
    /// A formula references an undefined symbol.
    UndefinedSymbol(String),
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::PrecedenceCycle(syms) => {
                write!(f, "precedence cycle through {}", syms.join(" → "))
            }
            WellFormednessError::UndefinedSymbol(s) => write!(f, "undefined symbol ${s}"),
        }
    }
}

impl std::error::Error for WellFormednessError {}

impl RecursiveJsl {
    /// A non-recursive expression (no definitions).
    pub fn plain(base: Jsl) -> RecursiveJsl {
        RecursiveJsl {
            defs: Vec::new(),
            base,
        }
    }

    /// Total size.
    pub fn size(&self) -> usize {
        self.base.size() + self.defs.iter().map(|(_, p)| 1 + p.size()).sum::<usize>()
    }

    /// The precedence graph: an edge `γᵢ → γⱼ` whenever `γⱼ` occurs in `φᵢ`
    /// **not** under the scope of a modal operator.
    pub fn precedence_edges(&self) -> Vec<(String, String)> {
        let mut edges = Vec::new();
        for (name, phi) in &self.defs {
            let mut exposed = Vec::new();
            exposed_vars(phi, &mut exposed);
            for v in exposed {
                edges.push((name.clone(), v.to_owned()));
            }
        }
        edges
    }

    /// Checks well-formedness: every referenced symbol is defined and the
    /// precedence graph is acyclic.
    pub fn well_formed(&self) -> Result<(), WellFormednessError> {
        let index: HashMap<&str, usize> = self
            .defs
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.as_str(), i))
            .collect();
        // Undefined symbols anywhere (including under modalities and base).
        for (_, phi) in &self.defs {
            for v in phi.vars() {
                if !index.contains_key(v) {
                    return Err(WellFormednessError::UndefinedSymbol(v.to_owned()));
                }
            }
        }
        for v in self.base.vars() {
            if !index.contains_key(v) {
                return Err(WellFormednessError::UndefinedSymbol(v.to_owned()));
            }
        }
        // Cycle detection on the precedence graph.
        let n = self.defs.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in self.precedence_edges() {
            adj[index[a.as_str()]].push(index[b.as_str()]);
        }
        // Iterative DFS 3-colouring.
        let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
        for start in 0..n {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < adj[u].len() {
                    let v = adj[u][*next];
                    *next += 1;
                    match colour[v] {
                        0 => {
                            colour[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => {
                            let names = stack
                                .iter()
                                .map(|&(i, _)| self.defs[i].0.clone())
                                .chain(std::iter::once(self.defs[v].0.clone()))
                                .collect();
                            return Err(WellFormednessError::PrecedenceCycle(names));
                        }
                        _ => {}
                    }
                } else {
                    colour[u] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Topological order of definitions under the precedence graph: if
    /// `γᵢ → γⱼ` (γᵢ *uses* γⱼ exposed), then γⱼ comes first.
    fn topo_order(&self) -> Vec<usize> {
        let index: HashMap<&str, usize> = self
            .defs
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.as_str(), i))
            .collect();
        let n = self.defs.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (a, b) in self.precedence_edges() {
            // b must be evaluated before a.
            adj[index[b.as_str()]].push(index[a.as_str()]);
            indeg[index[a.as_str()]] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            out.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        debug_assert_eq!(out.len(), n, "well-formedness implies acyclicity");
        out
    }

    /// The paper's `unfold_J(ψ)` rewriting: substitute definitions until
    /// every symbol sits under at least `height + 1` modal operators, then
    /// replace remaining symbols by `⊥`. Exponential in general — kept as
    /// the executable *definition* of the semantics and the E9 baseline.
    ///
    /// Fails (returns `None`) if the unfolded formula would exceed
    /// `max_size` syntax nodes.
    pub fn unfold(&self, height: usize, max_size: usize) -> Option<Jsl> {
        let index: HashMap<&str, &Jsl> = self.defs.iter().map(|(n, p)| (n.as_str(), p)).collect();
        let mut size_left = max_size;
        unfold_rec(&self.base, &index, height + 1, &mut size_left)
    }

    /// The Proposition 9 evaluation: one bottom-up pass labelling every node
    /// with the truth of every definition symbol, definitions resolved in
    /// precedence (topological) order per node. `O(|J| · |Δ|)` modulo
    /// regex matching and `Unique`.
    ///
    /// Panics on an ill-formed expression; governed boundaries use
    /// [`RecursiveJsl::try_evaluate`] instead, which fails closed with a
    /// structured [`WellFormednessError`].
    pub fn evaluate(&self, tree: &JsonTree) -> NodeSet {
        self.evaluate_with(tree, EvalOptions::default())
    }

    /// As [`RecursiveJsl::evaluate`] with explicit options.
    pub fn evaluate_with(&self, tree: &JsonTree, options: EvalOptions) -> NodeSet {
        match self.try_evaluate_with(tree, options) {
            Ok(set) => set,
            Err(e) => panic!("expression must be well-formed: {e}"),
        }
    }

    /// [`RecursiveJsl::evaluate`] that fails closed instead of panicking:
    /// an ill-formed expression (dangling symbol, precedence cycle —
    /// e.g. a schema whose `$ref` names an undefined definition) comes
    /// back as a structured [`WellFormednessError`], never an unwind
    /// across the governed boundary (docs/robustness.md).
    pub fn try_evaluate(&self, tree: &JsonTree) -> Result<NodeSet, WellFormednessError> {
        self.try_evaluate_with(tree, EvalOptions::default())
    }

    /// As [`RecursiveJsl::try_evaluate`] with explicit options.
    pub fn try_evaluate_with(
        &self,
        tree: &JsonTree,
        options: EvalOptions,
    ) -> Result<NodeSet, WellFormednessError> {
        self.well_formed()?;
        let mut ctx = JslContext::with_options(tree, options);
        let index: HashMap<&str, usize> = self
            .defs
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.as_str(), i))
            .collect();
        let order = self.topo_order();
        let nodes = tree.node_count();
        // labels[d][n]: does definition d hold at node n?
        let mut labels: Vec<Vec<bool>> = vec![vec![false; nodes]; self.defs.len()];
        for n in tree.bottom_up() {
            for &d in &order {
                let phi = &self.defs[d].1;
                labels[d][n.index()] = eval_at(&mut ctx, n, phi, &index, &labels);
            }
        }
        Ok((0..nodes)
            .map(|i| eval_at(&mut ctx, NodeId::from_index(i), &self.base, &index, &labels))
            .collect())
    }

    /// `J |ù Δ`: the base expression at the root.
    pub fn check_root(&self, tree: &JsonTree) -> bool {
        self.evaluate(tree)[tree.root().index()]
    }

    /// [`RecursiveJsl::check_root`] that fails closed on an ill-formed
    /// expression instead of panicking.
    pub fn try_check_root(&self, tree: &JsonTree) -> Result<bool, WellFormednessError> {
        Ok(self.try_evaluate(tree)?[tree.root().index()])
    }
}

/// Variables occurring *not* under a modal operator.
fn exposed_vars<'a>(phi: &'a Jsl, out: &mut Vec<&'a str>) {
    match phi {
        Jsl::Var(v) => out.push(v),
        Jsl::True | Jsl::Test(_) => {}
        Jsl::Not(p) => exposed_vars(p, out),
        Jsl::And(ps) | Jsl::Or(ps) => ps.iter().for_each(|p| exposed_vars(p, out)),
        // Modal operators shield their bodies.
        Jsl::DiamondKey(_, _)
        | Jsl::BoxKey(_, _)
        | Jsl::DiamondRange(_, _, _)
        | Jsl::BoxRange(_, _, _) => {}
    }
}

fn unfold_rec(
    phi: &Jsl,
    defs: &HashMap<&str, &Jsl>,
    depth_left: usize,
    size_left: &mut usize,
) -> Option<Jsl> {
    if *size_left == 0 {
        return None;
    }
    *size_left -= 1;
    Some(match phi {
        Jsl::Var(v) => {
            if depth_left == 0 {
                Jsl::falsity()
            } else {
                let def = defs.get(v.as_str()).expect("well-formed: defined symbol");
                unfold_rec(def, defs, depth_left, size_left)?
            }
        }
        Jsl::True => Jsl::True,
        Jsl::Test(t) => Jsl::Test(t.clone()),
        Jsl::Not(p) => Jsl::Not(Box::new(unfold_rec(p, defs, depth_left, size_left)?)),
        Jsl::And(ps) => Jsl::And(
            ps.iter()
                .map(|p| unfold_rec(p, defs, depth_left, size_left))
                .collect::<Option<Vec<_>>>()?,
        ),
        Jsl::Or(ps) => Jsl::Or(
            ps.iter()
                .map(|p| unfold_rec(p, defs, depth_left, size_left))
                .collect::<Option<Vec<_>>>()?,
        ),
        Jsl::DiamondKey(e, p) => Jsl::DiamondKey(
            e.clone(),
            Box::new(unfold_rec(p, defs, depth_left - 1, size_left)?),
        ),
        Jsl::BoxKey(e, p) => Jsl::BoxKey(
            e.clone(),
            Box::new(unfold_rec(p, defs, depth_left - 1, size_left)?),
        ),
        Jsl::DiamondRange(i, j, p) => Jsl::DiamondRange(
            *i,
            *j,
            Box::new(unfold_rec(p, defs, depth_left - 1, size_left)?),
        ),
        Jsl::BoxRange(i, j, p) => Jsl::BoxRange(
            *i,
            *j,
            Box::new(unfold_rec(p, defs, depth_left - 1, size_left)?),
        ),
    })
}

/// Evaluates a formula at a single node, resolving `Var` through the label
/// table (children are fully labelled; same-node references are resolved by
/// the topological evaluation order — this is exactly what well-formedness
/// guarantees).
fn eval_at(
    ctx: &mut JslContext<'_>,
    n: NodeId,
    phi: &Jsl,
    index: &HashMap<&str, usize>,
    labels: &[Vec<bool>],
) -> bool {
    match phi {
        Jsl::True => true,
        Jsl::Var(v) => labels[index[v.as_str()]][n.index()],
        Jsl::Not(p) => !eval_at(ctx, n, p, index, labels),
        Jsl::And(ps) => ps.iter().all(|p| eval_at(ctx, n, p, index, labels)),
        Jsl::Or(ps) => ps.iter().any(|p| eval_at(ctx, n, p, index, labels)),
        Jsl::Test(t) => ctx.node_test(t, n),
        Jsl::DiamondKey(e, p) => {
            // Key filtering goes through the context's per-regex edge
            // matcher: the regex is compiled once per (query, tree) and each
            // edge test is a bit load on the default tier, not a per-visit
            // automaton run.
            let tree = ctx.tree;
            let matcher = ctx.matcher_for(e);
            let children: Vec<NodeId> = tree
                .obj_entries(n)
                .filter(|(k, _)| matcher.matches_sym(k.index(), || tree.resolve(*k)))
                .map(|(_, c)| c)
                .collect();
            children.iter().any(|c| eval_at(ctx, *c, p, index, labels))
        }
        Jsl::BoxKey(e, p) => {
            let tree = ctx.tree;
            let matcher = ctx.matcher_for(e);
            let children: Vec<NodeId> = tree
                .obj_entries(n)
                .filter(|(k, _)| matcher.matches_sym(k.index(), || tree.resolve(*k)))
                .map(|(_, c)| c)
                .collect();
            children.iter().all(|c| eval_at(ctx, *c, p, index, labels))
        }
        Jsl::DiamondRange(i, j, p) => {
            let children: Vec<NodeId> = ctx
                .tree
                .arr_children(n)
                .iter()
                .enumerate()
                .filter(|(pos, _)| {
                    let pos = *pos as u64;
                    pos >= *i && j.is_none_or(|j| pos <= j)
                })
                .map(|(_, c)| *c)
                .collect();
            children.iter().any(|c| eval_at(ctx, *c, p, index, labels))
        }
        Jsl::BoxRange(i, j, p) => {
            let children: Vec<NodeId> = ctx
                .tree
                .arr_children(n)
                .iter()
                .enumerate()
                .filter(|(pos, _)| {
                    let pos = *pos as u64;
                    pos >= *i && j.is_none_or(|j| pos <= j)
                })
                .map(|(_, c)| *c)
                .collect();
            children.iter().all(|c| eval_at(ctx, *c, p, index, labels))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Jsl as J, NodeTest as T};
    use jsondata::{parse, Json};

    /// The paper's Example 2: every root-to-leaf path has even length.
    fn even_depth() -> RecursiveJsl {
        RecursiveJsl {
            defs: vec![
                ("g1".into(), J::box_any_key(J::Var("g2".into()))),
                (
                    "g2".into(),
                    J::and(vec![
                        J::diamond_any_key(J::True),
                        J::box_any_key(J::Var("g1".into())),
                    ]),
                ),
            ],
            base: J::Var("g1".into()),
        }
    }

    #[test]
    fn example2_is_well_formed() {
        let delta = even_depth();
        assert_eq!(delta.well_formed(), Ok(()));
        // Cycles exist in the *definitions*, but not in the precedence
        // graph: all references sit under modal operators.
        assert!(delta.precedence_edges().is_empty());
    }

    #[test]
    fn ill_formed_examples() {
        // γ1 = ¬γ1 (the paper's Example 3).
        let bad = RecursiveJsl {
            defs: vec![("g1".into(), J::not(J::Var("g1".into())))],
            base: J::Var("g1".into()),
        };
        assert!(matches!(
            bad.well_formed(),
            Err(WellFormednessError::PrecedenceCycle(_))
        ));
        // Undefined symbol.
        let undef = RecursiveJsl::plain(J::Var("nope".into()));
        assert!(matches!(
            undef.well_formed(),
            Err(WellFormednessError::UndefinedSymbol(_))
        ));
        // The fail-closed evaluation surfaces the same error as a value —
        // no panic crosses the caller (the governed-boundary contract).
        let t = JsonTree::build(&parse("{}").unwrap());
        assert_eq!(
            undef.try_check_root(&t),
            Err(WellFormednessError::UndefinedSymbol("nope".into()))
        );
        assert!(undef.try_evaluate(&t).is_err());
        // Acyclic exposed references are fine.
        let chain = RecursiveJsl {
            defs: vec![
                ("a".into(), J::Var("b".into())),
                ("b".into(), J::Test(T::Obj)),
            ],
            base: J::Var("a".into()),
        };
        assert_eq!(chain.well_formed(), Ok(()));
    }

    #[test]
    fn even_depth_evaluation() {
        let delta = even_depth();
        // Height-2 complete object tree: paths of length 2 — accepted.
        let ok = parse(r#"{"a": {"x": {}}, "b": {"y": {}}}"#).unwrap();
        assert!(delta.check_root(&JsonTree::build(&ok)));
        // A path of length 1 — rejected.
        let bad = parse(r#"{"a": {}}"#).unwrap();
        assert!(!delta.check_root(&JsonTree::build(&bad)));
        // Empty object (paths of length 0) — accepted.
        assert!(delta.check_root(&JsonTree::build(&parse("{}").unwrap())));
        // Mixed: one even path, one odd — rejected.
        let mixed = parse(r#"{"a": {"x": {}}, "b": {}}"#).unwrap();
        assert!(!delta.check_root(&JsonTree::build(&mixed)));
    }

    #[test]
    fn unfold_agrees_with_ptime_evaluation() {
        let delta = even_depth();
        for src in [
            "{}",
            r#"{"a": {}}"#,
            r#"{"a": {"x": {}}}"#,
            r#"{"a": {"x": {"y": {}}}}"#,
            r#"{"a": {"x": {}}, "b": {"y": {"z": {}}}}"#,
        ] {
            let tree = JsonTree::build(&parse(src).unwrap());
            let unfolded = delta.unfold(tree.height(), 1_000_000).expect("fits budget");
            let via_unfold = crate::eval::check_root(&tree, &unfolded);
            let via_ptime = delta.check_root(&tree);
            assert_eq!(via_unfold, via_ptime, "doc {src}");
        }
    }

    #[test]
    fn example5_complete_binary_trees() {
        // The paper's Example 5: γ = ¬◇_{0:0}⊤ ∨ (MinCh(2) ∧ MaxCh(2) ∧
        // ¬Unique ∧ □_{0:1}γ) — arrays encoding complete binary trees where
        // both children are equal (hence ¬Unique).
        let gamma = J::or(vec![
            J::and(vec![
                J::Test(T::Arr),
                J::not(J::DiamondRange(0, Some(0), Box::new(J::True))),
            ]),
            J::and(vec![
                J::Test(T::Arr),
                J::Test(T::MinCh(2)),
                J::Test(T::MaxCh(2)),
                J::not(J::Test(T::Unique)),
                J::BoxRange(0, Some(1), Box::new(J::Var("g".into()))),
            ]),
        ]);
        let delta = RecursiveJsl {
            defs: vec![("g".into(), gamma)],
            base: J::Var("g".into()),
        };
        assert_eq!(delta.well_formed(), Ok(()));
        // Complete binary tree of height 2 with equal siblings.
        let leaf = Json::Array(vec![]);
        let level1 = Json::Array(vec![leaf.clone(), leaf.clone()]);
        let level2 = Json::Array(vec![level1.clone(), level1.clone()]);
        assert!(delta.check_root(&JsonTree::build(&level2)));
        // Unequal siblings rejected.
        let uneq = Json::Array(vec![level1.clone(), leaf.clone()]);
        assert!(!delta.check_root(&JsonTree::build(&uneq)));
        // Single child rejected.
        let single = Json::Array(vec![leaf.clone()]);
        assert!(!delta.check_root(&JsonTree::build(&single)));
    }

    #[test]
    fn unfold_size_budget() {
        let delta = even_depth();
        // A tall tree with a tiny budget must fail.
        assert!(delta.unfold(64, 100).is_none());
    }

    #[test]
    fn exposed_same_level_references_resolve_in_topo_order() {
        // a = b ∧ Obj, b = MinCh(1): a references b at the same node.
        let delta = RecursiveJsl {
            defs: vec![
                (
                    "a".into(),
                    J::and(vec![J::Var("b".into()), J::Test(T::Obj)]),
                ),
                ("b".into(), J::Test(T::MinCh(1))),
            ],
            base: J::Var("a".into()),
        };
        assert_eq!(delta.well_formed(), Ok(()));
        let t = JsonTree::build(&parse(r#"{"k": 1}"#).unwrap());
        assert!(delta.check_root(&t));
        let t = JsonTree::build(&parse("{}").unwrap());
        assert!(!delta.check_root(&t));
    }
}
