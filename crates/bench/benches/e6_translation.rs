//! E6 (Thm 2): the three JNL→JSL translations on the blowup family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsl::translate::blowup_family;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_translation");
    g.sample_size(10);
    for k in [4usize, 8, 12] {
        let phi = blowup_family(k);
        g.bench_with_input(BenchmarkId::new("paper_literal", k), &phi, |b, p| {
            b.iter(|| jsl::jnl_to_jsl_paper(p).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("path_expansion", k), &phi, |b, p| {
            b.iter(|| jsl::jnl_to_jsl_paths(p).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("cps", k), &phi, |b, p| {
            b.iter(|| jsl::jnl_to_jsl_cps(p).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
