//! Aggregation pipelines over a collection — the MongoDB fragment
//! formalised in Botoeva–Corman–Townsend, *"Towards a Standard for JSON
//! Document Databases"*, executed natively on the collection's tree column
//! by the `jagg` engine (rows are tree cursors + `$unwind` overlay
//! bindings; documents materialise only at pipeline output).
//!
//! ```sh
//! cargo run --example aggregate
//! ```

use json_foundations::agg::{aggregate, reference, Pipeline};
use json_foundations::mongo::Collection;
use jsondata::gen::person_records;

fn main() {
    // Load 10k person records through the fused parser: one pass lexes,
    // interns and builds the persistent tree column the pipelines below
    // run against.
    let text = jsondata::serialize::to_string(&person_records(10_000, 42));
    let mut coll = Collection::parse_str(&text).expect("collection parses");
    println!(
        "collection: {} documents ({} tree nodes, {} interned symbols)\n",
        coll.len(),
        coll.tree().node_count(),
        coll.interner().len()
    );

    // Selection → unnest → grouping → sorting: which hobbies do the 40+
    // crowd actually have, and how old are their practitioners?
    // (Match_φ ∘ Unwind_p ∘ Group_{g;α} ∘ Sort_ω in the report's algebra.)
    let pipe = Pipeline::parse_str(
        r#"[
            {"$match":  {"age": {"$gte": 40}}},
            {"$unwind": "$hobbies"},
            {"$group":  {"_id": "$hobbies",
                         "n": {"$count": {}},
                         "avg_age": {"$avg": "$age"},
                         "youngest": {"$min": "$age"},
                         "oldest": {"$max": "$age"}}},
            {"$sort":   {"n": 0, "_id": 1}}
        ]"#,
    )
    .unwrap();
    println!("hobby demographics of the 40+ crowd:");
    for doc in aggregate(&coll, &pipe) {
        println!("  {doc}");
    }

    // The naive value-based reference executor defines the semantics; the
    // tree executor must agree output-for-output (CI-gated by harness s5).
    assert_eq!(
        aggregate(&coll, &pipe),
        reference::aggregate(coll.docs(), &pipe),
        "executors agree by construction"
    );
    println!("  (value-based reference executor agrees)\n");

    // Projection + pagination: the five oldest Sues, name and age only.
    let top = Pipeline::parse_str(
        r#"[
            {"$match":   {"name.first": "Sue"}},
            {"$project": {"name.first": 1, "age": 1}},
            {"$sort":    {"age": 0}},
            {"$limit":   5}
        ]"#,
    )
    .unwrap();
    println!("five oldest Sues:");
    for doc in aggregate(&coll, &top) {
        println!("  {doc}");
    }

    // Incremental insert appends a segment to the tree column through the
    // collection's shared interner; pipelines see the document at once.
    coll.insert_str(
        r#"{"name": {"first": "Sue", "last": "Zenith"}, "age": 99, "hobbies": ["chess"]}"#,
    )
    .unwrap();
    let count =
        Pipeline::parse_str(r#"[{"$match": {"age": {"$gte": 99}}}, {"$count": "sues_99"}]"#)
            .unwrap();
    println!("\nafter insert: {:?}", aggregate(&coll, &count));
}
