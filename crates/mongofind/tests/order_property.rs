//! Order-agreement property suite: the three implementations of the
//! dialect's total order must agree *exactly* before the sorted index
//! column may rely on any of them.
//!
//! * [`Json::total_cmp`] — value against value (the specification);
//! * [`mongofind::cmp_node_json`] — tree node against external value
//!   (what range probes binary-search with);
//! * [`mongofind::cmp_nodes`] — node against node of one tree (what the
//!   sorted column is built with).
//!
//! Any disagreement is an index-order bug: a column sorted by one
//! comparator but probed by another returns wrong ranges silently. The
//! audited edges: cross-kind rank boundaries (numbers < strings < arrays
//! < objects), object key order (string-sorted, *not* interning-order —
//! the classic trap, pinned by interning keys in adversarial order),
//! array prefixes, unicode strings, empty containers, and `u64` extremes.
//! This fragment has no floats (`Json::Num(u64)` only), so there is no
//! int/float edge to audit; the rank table is the cross-kind story.

use std::cmp::Ordering;

use jsondata::{gen, parse, Json, JsonTree};
use mongofind::{cmp_node_json, cmp_nodes};

/// Asserts all three comparators agree on `a` vs `b`.
fn assert_agree(a: &Json, b: &Json) {
    let spec = a.total_cmp(b);
    // Node-vs-value: build a tree holding both, compare each side's node
    // against the *other* side's value.
    let tree = JsonTree::build(&Json::Array(vec![a.clone(), b.clone()]));
    let kids = tree.arr_children(tree.root());
    let (na, nb) = (kids[0], kids[1]);
    assert_eq!(
        cmp_node_json(&tree, na, b),
        spec,
        "cmp_node_json(a, b) vs total_cmp: {a} <> {b}"
    );
    assert_eq!(
        cmp_node_json(&tree, nb, a),
        spec.reverse(),
        "cmp_node_json(b, a) vs total_cmp reversed: {a} <> {b}"
    );
    // Node-vs-node within the same tree.
    assert_eq!(cmp_nodes(&tree, na, nb), spec, "cmp_nodes: {a} <> {b}");
    assert_eq!(
        cmp_nodes(&tree, nb, na),
        spec.reverse(),
        "cmp_nodes reversed: {a} <> {b}"
    );
    // Reflexivity of each side against itself.
    assert_eq!(cmp_nodes(&tree, na, na), Ordering::Equal);
    assert_eq!(cmp_node_json(&tree, nb, b), Ordering::Equal);
}

/// Hand-picked values crossing every rank boundary and known edge.
fn edge_corpus() -> Vec<Json> {
    [
        "0",
        "1",
        "28",
        "18446744073709551615", // u64::MAX
        r#""""#,
        r#""0""#, // the string "0" vs the number 0: rank boundary
        r#""a""#,
        r#""Z""#,
        r#""Zürich""#,
        r#""zürich""#,
        r#""北京""#,
        r#""ø""#,
        "[]",
        "[1]",
        "[1, 2]",
        "[1, 2, 3]", // array prefix chain
        "[2]",
        r#"[1, "a"]"#,
        "[[]]",
        "[[1]]",
        "{}",
        r#"{"a": 1}"#,
        r#"{"a": 2}"#,
        r#"{"b": 1}"#,
        r#"{"a": 1, "b": 2}"#,
        r#"{"b": 2, "a": 1}"#, // same map, reversed source order
        r#"{"à": 1}"#,
        r#"{"a": {"b": []}}"#,
    ]
    .iter()
    .map(|s| parse(s).expect("edge corpus parses"))
    .collect()
}

#[test]
fn comparators_agree_on_edge_corpus_pairs() {
    let corpus = edge_corpus();
    for a in &corpus {
        for b in &corpus {
            assert_agree(a, b);
        }
    }
}

#[test]
fn comparators_agree_on_seeded_random_pairs() {
    let docs: Vec<Json> = (0..60u64)
        .map(|seed| gen::random_json(&gen::GenConfig::sized(seed, 40)))
        .collect();
    for (i, a) in docs.iter().enumerate() {
        for b in &docs[i..] {
            assert_agree(a, b);
        }
    }
}

#[test]
fn object_order_is_string_sorted_not_interning_order() {
    // Intern "z" long before "a" by building the tree from a document
    // that mentions "z" first: if any comparator ordered object keys by
    // Sym (interning order), {"z": 0} would sort before {"a": 0}.
    let doc = parse(r#"[{"z": 0}, {"a": 0}]"#).unwrap();
    let tree = JsonTree::build(&doc);
    let kids = tree.arr_children(tree.root());
    let (zn, an) = (kids[0], kids[1]);
    assert_eq!(cmp_nodes(&tree, an, zn), Ordering::Less, "\"a\" < \"z\"");
    assert_eq!(
        cmp_node_json(&tree, an, &parse(r#"{"z": 0}"#).unwrap()),
        Ordering::Less
    );
    let (a, z) = (parse(r#"{"a": 0}"#).unwrap(), parse(r#"{"z": 0}"#).unwrap());
    assert_eq!(a.total_cmp(&z), Ordering::Less);
}

#[test]
fn order_is_total_on_the_mixed_corpus() {
    // Sorting the whole mixed corpus by each comparator yields the same
    // permutation — the property the sorted column's binary search needs.
    let mut corpus = edge_corpus();
    corpus.extend((100..120u64).map(|s| gen::random_json(&gen::GenConfig::sized(s, 25))));
    let tree = JsonTree::build(&Json::Array(corpus.clone()));
    let kids: Vec<_> = tree.arr_children(tree.root()).to_vec();

    let mut by_value: Vec<usize> = (0..corpus.len()).collect();
    by_value.sort_by(|&i, &j| corpus[i].total_cmp(&corpus[j]).then(i.cmp(&j)));
    let mut by_node: Vec<usize> = (0..corpus.len()).collect();
    by_node.sort_by(|&i, &j| cmp_nodes(&tree, kids[i], kids[j]).then(i.cmp(&j)));
    assert_eq!(
        by_value, by_node,
        "total_cmp and cmp_nodes sort identically"
    );

    // And the node-vs-value comparator agrees pointwise with the sorted
    // order (the exact shape of a range probe's partition_point calls).
    for w in by_node.windows(2) {
        assert_ne!(
            cmp_node_json(&tree, kids[w[0]], &corpus[w[1]]),
            Ordering::Greater,
            "sorted neighbours must not invert under cmp_node_json"
        );
    }
}
