//! The paper's §4.1 MongoDB scenario: `db.collection.find(filter,
//! projection)` over a collection of person records (Example 1), evaluated
//! both natively and through the JNL compilation.
//!
//! ```sh
//! cargo run --example mongo_collection
//! ```

use json_foundations::mongo::{Collection, Filter, Projection};
use jsondata::gen::person_records;

fn main() {
    // Load the collection from text through the fused parser: one pass
    // lexes, interns and builds the persistent tree column every query
    // below runs against (no intermediate value tree).
    let text = jsondata::serialize::to_string(&person_records(10_000, 42));
    let coll = Collection::parse_str(&text).expect("array collection");
    println!(
        "collection: {} documents ({} tree nodes, {} interned symbols)\n",
        coll.len(),
        coll.tree().node_count(),
        coll.interner().len()
    );

    // The paper's Example 1: find the person named Sue.
    let filter = Filter::parse_str(r#"{"name.first": {"$eq": "Sue"}}"#).unwrap();
    let sues = coll.find(&filter);
    println!(
        "find({{name.first: {{$eq: \"Sue\"}}}})     → {} documents",
        sues.len()
    );
    println!("  compiled JNL filter: {}", filter.to_jnl());

    // The JNL engine answers identically (Prop 1 evaluation per document).
    let via_jnl = coll.find_via_jnl(&filter);
    assert_eq!(sues, via_jnl);
    println!("  JNL engine agrees on all documents\n");

    // Richer filters.
    let seniors =
        Filter::parse_str(r#"{"$and": [{"age": {"$gte": 65}}, {"hobbies": {"$size": 2}}]}"#)
            .unwrap();
    println!(
        "seniors with two hobbies              → {}",
        coll.find(&seniors).len()
    );

    let any =
        Filter::parse_str(r#"{"$or": [{"hobbies.0": "chess"}, {"hobbies.1": "chess"}]}"#).unwrap();
    println!(
        "chess in the first two hobby slots    → {}",
        coll.find(&any).len()
    );

    // Projection (§6 future work): keep only name.first and age.
    let projection = Projection::parse_str(r#"{"name.first": 1, "age": 1}"#).unwrap();
    let preview = coll.find_project(&filter, &projection);
    println!("\nprojected sample:");
    for doc in preview.iter().take(3) {
        println!("  {doc}");
    }
}
