//! A from-scratch JSON text parser for the paper's fragment, with two
//! construction targets sharing one lexer and one syntax driver.
//!
//! ## The two entry points
//!
//! * [`parse`] / [`parse_with_limits`] produce an owned [`Json`] **value** —
//!   use these when the document will be inspected or transformed as a
//!   value (schema inference, filter constants, witnesses, serialization).
//! * [`parse_to_tree`] / [`parse_to_tree_with_limits`] /
//!   [`parse_to_tree_into`] produce a [`JsonTree`] **directly** — the fused
//!   path for the dominant build-then-query pipeline. Lexing, interning and
//!   CSR assembly happen in one pass: keys and string atoms are interned the
//!   moment they are lexed and nodes stream into the tree's arena, so the
//!   intermediate `Json` (one heap allocation per node plus owned strings)
//!   is never materialised. `parse_to_tree(s)` is guaranteed to be
//!   [`JsonTree::identical`] to `JsonTree::build(&parse(s)?)` — both reduce
//!   to the same event core — and returns the same [`ParseError`] on every
//!   malformed input; `tests/parse_fusion.rs` asserts both properties
//!   differentially.
//!
//! [`parse_to_tree_into`] additionally threads a caller-owned [`Interner`]
//! through the parse, so a batch of documents loaded through one interner
//! assigns the same [`Sym`](crate::Sym) to the same string across all of
//! their trees (each tree carries a snapshot clone of the shared table; on a
//! parse error the shared table is preserved, though it may retain symbols
//! interned from the failed prefix).
//!
//! ## Shape
//!
//! The lexer recognises the complete RFC 8259 grammar so that
//! out-of-fragment constructs (`null`, `true`, `false`, negative or
//! fractional numbers) are reported with precise, targeted errors instead of
//! generic syntax noise. The syntax driver (`parse_document`) is a single
//! iterative loop over an explicit container stack — document depth never
//! becomes call-stack depth — parameterised by a `Sink` that receives the
//! document-order event stream: `JsonSink` folds events into a [`Json`],
//! and [`TreeBuilder`](crate::tree) (the same core [`JsonTree::build`]
//! replays values through) assembles CSR arrays. Nesting depth is limited by
//! [`ParseLimits`] (default 512).

use std::borrow::Cow;
use std::hash::{Hash, Hasher};

use crate::error::{ParseError, ParseErrorKind, Position};
use crate::fxhash::{FxHashSet, FxHasher};
use crate::intern::Interner;
use crate::tree::{JsonTree, TreeBuilder};
use crate::value::Json;

/// Resource limits applied while parsing.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum object/array nesting depth.
    pub max_depth: usize,
    /// Maximum input size in bytes, checked before any parsing work —
    /// the serving edge's cheap first line of defence against oversized
    /// documents. Unlimited by default.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_depth: 512,
            max_bytes: usize::MAX,
        }
    }
}

impl ParseLimits {
    /// Limits with the given depth cap and no size cap.
    pub fn depth(max_depth: usize) -> ParseLimits {
        ParseLimits {
            max_depth,
            ..ParseLimits::default()
        }
    }
}

/// Parses a complete JSON document with default limits.
///
/// ```
/// use jsondata::{parse, Json};
/// assert_eq!(parse("42").unwrap(), Json::Num(42));
/// assert_eq!(parse(r#""hi""#).unwrap(), Json::str("hi"));
/// assert!(parse("null").is_err()); // outside the paper's fragment
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses with explicit [`ParseLimits`].
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, ParseError> {
    let mut sink = JsonSink::default();
    parse_document(input, limits, &mut sink)?;
    Ok(sink.out.take().expect("driver completed a document"))
}

/// Parses a complete JSON document straight into a [`JsonTree`] (default
/// limits) — the fused single-pass path: no intermediate [`Json`] is built.
///
/// ```
/// use jsondata::parse_to_tree;
/// let tree = parse_to_tree(r#"{"name": {"first": "John"}, "age": 32}"#).unwrap();
/// let name = tree.child_by_key(tree.root(), "name").unwrap();
/// let first = tree.child_by_key(name, "first").unwrap();
/// assert_eq!(tree.str_value(first), Some("John"));
/// ```
pub fn parse_to_tree(input: &str) -> Result<JsonTree, ParseError> {
    parse_to_tree_with_limits(input, ParseLimits::default())
}

/// [`parse_to_tree`] with explicit [`ParseLimits`]. Limit and error
/// semantics match [`parse_with_limits`] exactly (same error kind at the
/// same position on every malformed input).
pub fn parse_to_tree_with_limits(input: &str, limits: ParseLimits) -> Result<JsonTree, ParseError> {
    let mut builder = TreeBuilder::new(Interner::new());
    parse_document(input, limits, &mut builder)?;
    Ok(builder.finish())
}

/// [`parse_to_tree_with_limits`] interning into a caller-owned shared table
/// — the batch-loading form: every document parsed through one `interner`
/// assigns the same [`Sym`](crate::Sym) to the same string, so symbols are
/// comparable across the resulting trees. Each returned tree carries a
/// snapshot clone of the shared table (cost `O(symbols interned so far)`);
/// on error the shared table is left usable (it may retain symbols from the
/// document's well-formed prefix).
pub fn parse_to_tree_into(
    input: &str,
    limits: ParseLimits,
    interner: &mut Interner,
) -> Result<JsonTree, ParseError> {
    let mut builder = TreeBuilder::new(std::mem::take(interner));
    match parse_document(input, limits, &mut builder) {
        Ok(()) => {
            let tree = builder.finish();
            *interner = tree.interner().clone();
            Ok(tree)
        }
        Err(e) => {
            *interner = builder.into_interner();
            Err(e)
        }
    }
}

/// Receiver of the document-order parse event stream. Exactly one value is
/// produced at the top level; containers arrive as balanced begin/end pairs
/// with member keys preceding member values.
pub(crate) trait Sink {
    fn num(&mut self, n: u64);
    fn str_atom(&mut self, s: &str);
    fn begin_object(&mut self);
    /// Records a member key of the innermost open object; `false` reports a
    /// duplicate (the driver raises [`ParseErrorKind::DuplicateKey`]).
    fn object_key(&mut self, key: &str) -> bool;
    fn end_object(&mut self);
    fn begin_array(&mut self);
    fn end_array(&mut self);
}

impl Sink for TreeBuilder {
    fn num(&mut self, n: u64) {
        TreeBuilder::num(self, n);
    }
    fn str_atom(&mut self, s: &str) {
        TreeBuilder::str_atom(self, s);
    }
    fn begin_object(&mut self) {
        TreeBuilder::begin_object(self);
    }
    fn object_key(&mut self, key: &str) -> bool {
        TreeBuilder::object_key(self, key)
    }
    fn end_object(&mut self) {
        TreeBuilder::end_object(self);
    }
    fn begin_array(&mut self) {
        TreeBuilder::begin_array(self);
    }
    fn end_array(&mut self) {
        TreeBuilder::end_array(self);
    }
}

/// Folds parse events into an owned [`Json`] value.
#[derive(Default)]
struct JsonSink {
    stack: Vec<JsonFrame>,
    pending_key: Option<String>,
    out: Option<Json>,
}

enum JsonFrame {
    Obj {
        /// The member key this object attaches under in its parent object
        /// (captured at `begin_object`, before the object's own keys start
        /// overwriting the pending slot).
        key: Option<String>,
        pairs: Vec<(String, Json)>,
        /// Duplicate-key detection: a set of key *hashes* keeps the probe
        /// allocation-free and the whole object near-linear (a hash hit —
        /// in practice only a true duplicate — is confirmed by one scan, so
        /// an adversarial collision degrades a single key to O(n), never
        /// the silent acceptance of a duplicate).
        seen: FxHashSet<u64>,
    },
    Arr {
        /// The member key this array attaches under, as above.
        key: Option<String>,
        items: Vec<Json>,
    },
}

impl JsonSink {
    /// Attaches a completed value: under `key` in the innermost open
    /// object, positionally in the innermost open array, or as the result.
    fn complete(&mut self, v: Json, key: Option<String>) {
        match self.stack.last_mut() {
            Some(JsonFrame::Obj { pairs, .. }) => {
                pairs.push((key.expect("member key before value"), v));
            }
            Some(JsonFrame::Arr { items, .. }) => items.push(v),
            None => self.out = Some(v),
        }
    }
}

impl Sink for JsonSink {
    fn num(&mut self, n: u64) {
        let key = self.pending_key.take();
        self.complete(Json::Num(n), key);
    }

    fn str_atom(&mut self, s: &str) {
        let key = self.pending_key.take();
        self.complete(Json::Str(s.to_owned()), key);
    }

    fn begin_object(&mut self) {
        self.stack.push(JsonFrame::Obj {
            key: self.pending_key.take(),
            pairs: Vec::new(),
            seen: FxHashSet::default(),
        });
    }

    fn object_key(&mut self, key: &str) -> bool {
        let Some(JsonFrame::Obj { pairs, seen, .. }) = self.stack.last_mut() else {
            unreachable!("object_key outside an object");
        };
        let mut h = FxHasher::default();
        key.hash(&mut h);
        if !seen.insert(h.finish()) && pairs.iter().any(|(k, _)| k == key) {
            return false;
        }
        self.pending_key = Some(key.to_owned());
        true
    }

    fn end_object(&mut self) {
        let Some(JsonFrame::Obj { key, pairs, .. }) = self.stack.pop() else {
            unreachable!("end_object without begin_object");
        };
        self.complete(
            Json::object(pairs).expect("duplicates checked during parse"),
            key,
        );
    }

    fn begin_array(&mut self) {
        self.stack.push(JsonFrame::Arr {
            key: self.pending_key.take(),
            items: Vec::new(),
        });
    }

    fn end_array(&mut self) {
        let Some(JsonFrame::Arr { key, items }) = self.stack.pop() else {
            unreachable!("end_array without begin_array");
        };
        self.complete(Json::Array(items), key);
    }
}

/// An enclosing container on the driver's explicit stack.
enum Frame {
    Obj,
    Arr,
}

/// The single syntax driver both construction targets run through: one
/// iterative loop, one error policy, one depth-limit policy — which is what
/// guarantees the fused and two-pass paths agree error-for-error.
fn parse_document<S: Sink>(
    input: &str,
    limits: ParseLimits,
    sink: &mut S,
) -> Result<(), ParseError> {
    let mut p = Parser::new(input, limits);
    if input.len() > p.limits.max_bytes {
        return Err(p.err(ParseErrorKind::TooLarge(p.limits.max_bytes)));
    }
    let mut frames: Vec<Frame> = Vec::new();
    p.skip_ws();
    'value: loop {
        // -- parse one value (containers descend instead of recursing) --
        if frames.len() > p.limits.max_depth {
            return Err(p.err(ParseErrorKind::TooDeep(p.limits.max_depth)));
        }
        match p.peek() {
            None => return Err(p.err(ParseErrorKind::UnexpectedEof)),
            Some(b'{') => {
                p.bump();
                sink.begin_object();
                p.skip_ws();
                if p.peek() == Some(b'}') {
                    p.bump();
                    sink.end_object();
                } else {
                    frames.push(Frame::Obj);
                    p.member_key(sink)?;
                    continue 'value;
                }
            }
            Some(b'[') => {
                p.bump();
                sink.begin_array();
                p.skip_ws();
                if p.peek() == Some(b']') {
                    p.bump();
                    sink.end_array();
                } else {
                    frames.push(Frame::Arr);
                    continue 'value;
                }
            }
            Some(b'"') => {
                let s = p.lex_string()?;
                sink.str_atom(&s);
            }
            Some(b'0'..=b'9') => {
                let n = p.lex_number()?;
                sink.num(n);
            }
            Some(b'-') => return Err(p.err(ParseErrorKind::NegativeNumber)),
            Some(b't') => return Err(p.reject_literal("true")),
            Some(b'f') => return Err(p.reject_literal("false")),
            Some(b'n') => return Err(p.reject_literal("null")),
            Some(b) => {
                let c = p.current_char(b);
                return Err(p.err(ParseErrorKind::UnexpectedChar(c)));
            }
        }
        // -- a value just finished; separators close or continue containers --
        loop {
            let Some(top) = frames.last() else {
                break 'value;
            };
            p.skip_ws();
            match (top, p.peek()) {
                (_, None) => return Err(p.err(ParseErrorKind::UnexpectedEof)),
                (Frame::Obj, Some(b',')) => {
                    p.bump();
                    p.skip_ws();
                    p.member_key(sink)?;
                    continue 'value;
                }
                (Frame::Obj, Some(b'}')) => {
                    p.bump();
                    sink.end_object();
                    frames.pop();
                }
                (Frame::Arr, Some(b',')) => {
                    p.bump();
                    p.skip_ws();
                    continue 'value;
                }
                (Frame::Arr, Some(b']')) => {
                    p.bump();
                    sink.end_array();
                    frames.pop();
                }
                (_, Some(b)) => {
                    let c = p.current_char(b);
                    return Err(p.err(ParseErrorKind::UnexpectedChar(c)));
                }
            }
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err(ParseErrorKind::TrailingContent));
    }
    Ok(())
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    limits: ParseLimits,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, limits: ParseLimits) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            limits,
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            col: self.col,
            offset: self.pos,
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            position: self.position(),
            kind,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Advances one byte, maintaining line/column. Only call when the byte at
    /// `pos` is ASCII; multi-byte characters go through `bump_char`.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_char(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += c.len_utf8();
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.bump(),
                _ => break,
            }
        }
    }

    fn current_char(&self, first: u8) -> char {
        if first.is_ascii() {
            first as char
        } else {
            self.src[self.pos..].chars().next().unwrap_or('\u{fffd}')
        }
    }

    fn reject_literal(&mut self, lit: &'static str) -> ParseError {
        if self.src[self.pos..].starts_with(lit) {
            self.err(ParseErrorKind::UnsupportedLiteral(lit))
        } else {
            let b = self.bytes[self.pos];
            self.err(ParseErrorKind::UnexpectedChar(b as char))
        }
    }

    /// Lexes one `"..."` member key plus the `:` separator, reporting it to
    /// the sink. Callers have already skipped leading whitespace.
    fn member_key<S: Sink>(&mut self, sink: &mut S) -> Result<(), ParseError> {
        if self.peek() != Some(b'"') {
            return Err(match self.peek() {
                None => self.err(ParseErrorKind::UnexpectedEof),
                Some(b) => {
                    let c = self.current_char(b);
                    self.err(ParseErrorKind::UnexpectedChar(c))
                }
            });
        }
        let key_pos = self.position();
        let key = self.lex_string()?;
        if !sink.object_key(&key) {
            return Err(ParseError {
                position: key_pos,
                kind: ParseErrorKind::DuplicateKey(key.into_owned()),
            });
        }
        self.skip_ws();
        match self.peek() {
            Some(b':') => self.bump(),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            Some(b) => {
                let c = self.current_char(b);
                return Err(self.err(ParseErrorKind::UnexpectedChar(c)));
            }
        }
        self.skip_ws();
        Ok(())
    }

    /// Lexes one string token (the opening `"` is at `pos`). Escape-free
    /// strings — the overwhelmingly common case — borrow straight from the
    /// source; the first `\` switches to an owned buffer.
    fn lex_string(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.bump(); // consume '"'
        let start = self.pos;
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            };
            match b {
                b'"' => {
                    let s = &self.src[start..self.pos];
                    self.bump();
                    return Ok(Cow::Borrowed(s));
                }
                b'\\' => break,
                0x00..=0x1f => {
                    return Err(self.err(ParseErrorKind::ControlCharInString(b as char)));
                }
                _ if b.is_ascii() => self.bump(),
                _ => {
                    let c = self.src[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err(ParseErrorKind::InvalidUtf8))?;
                    self.bump_char(c);
                }
            }
        }
        // Escaped string: copy the clean prefix, then decode escapes.
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.src[start..self.pos]);
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            };
            match b {
                b'"' => {
                    self.bump();
                    return Ok(Cow::Owned(out));
                }
                b'\\' => {
                    self.bump();
                    self.parse_escape(&mut out)?;
                }
                0x00..=0x1f => {
                    return Err(self.err(ParseErrorKind::ControlCharInString(b as char)));
                }
                _ if b.is_ascii() => {
                    out.push(b as char);
                    self.bump();
                }
                _ => {
                    let c = self.src[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err(ParseErrorKind::InvalidUtf8))?;
                    out.push(c);
                    self.bump_char(c);
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let Some(b) = self.peek() else {
            return Err(self.err(ParseErrorKind::UnexpectedEof));
        };
        let simple = match b {
            b'"' => Some('"'),
            b'\\' => Some('\\'),
            b'/' => Some('/'),
            b'b' => Some('\u{0008}'),
            b'f' => Some('\u{000c}'),
            b'n' => Some('\n'),
            b'r' => Some('\r'),
            b't' => Some('\t'),
            _ => None,
        };
        if let Some(c) = simple {
            out.push(c);
            self.bump();
            return Ok(());
        }
        if b != b'u' {
            return Err(self.err(ParseErrorKind::BadEscape((b as char).to_string())));
        }
        self.bump(); // consume 'u'
        let first = self.parse_hex4()?;
        let c = if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') {
                self.bump();
                if self.peek() != Some(b'u') {
                    return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                        "\\u{first:04X} not followed by low surrogate"
                    ))));
                }
                self.bump();
                let second = self.parse_hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                        "\\u{first:04X}\\u{second:04X} is not a surrogate pair"
                    ))));
                }
                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                char::from_u32(cp).ok_or_else(|| {
                    self.err(ParseErrorKind::BadUnicodeEscape(format!("U+{cp:X}")))
                })?
            } else {
                return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                    "unpaired high surrogate \\u{first:04X}"
                ))));
            }
        } else if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.err(ParseErrorKind::BadUnicodeEscape(format!(
                "unpaired low surrogate \\u{first:04X}"
            ))));
        } else {
            char::from_u32(first)
                .ok_or_else(|| self.err(ParseErrorKind::BadUnicodeEscape(format!("U+{first:X}"))))?
        };
        out.push(c);
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => {
                    return Err(self.err(ParseErrorKind::BadUnicodeEscape((b as char).to_string())))
                }
            };
            v = (v << 4) | d;
            self.bump();
        }
        Ok(v)
    }

    fn lex_number(&mut self) -> Result<u64, ParseError> {
        let start = self.pos;
        let first = self.bytes[self.pos];
        self.bump();
        while let Some(b @ b'0'..=b'9') = self.peek() {
            let _ = b;
            self.bump();
        }
        // The full JSON grammar allows fraction/exponent; the fragment
        // doesn't. Detect and report them specifically.
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err(ParseErrorKind::NonNaturalNumber));
        }
        let text = &self.src[start..self.pos];
        if first == b'0' && text.len() > 1 {
            return Err(self.err(ParseErrorKind::LeadingZero));
        }
        text.parse::<u64>()
            .map_err(|_| self.err(ParseErrorKind::NumberOverflow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind::*;

    fn kind(s: &str) -> ParseErrorKind {
        parse(s).unwrap_err().kind
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("0").unwrap(), Json::Num(0));
        assert_eq!(parse("1234567890").unwrap(), Json::Num(1234567890));
        assert_eq!(parse(r#""x\ny""#).unwrap(), Json::str("x\ny"));
        assert_eq!(parse(r#""""#).unwrap(), Json::str(""));
    }

    #[test]
    fn parses_nested_structures() {
        let j = parse(r#"{"a": [1, {"b": "c"}, []], "d": {}}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().index(1).unwrap().get("b"),
            Some(&Json::str("c"))
        );
        assert_eq!(j.get("d"), Some(&Json::empty_object()));
    }

    #[test]
    fn figure1_document() {
        let j = parse(
            r#"{
                "name": {"first": "John", "last": "Doe"},
                "age": 32,
                "hobbies": ["fishing", "yoga"]
            }"#,
        )
        .unwrap();
        assert_eq!(j.node_count(), 8);
        assert_eq!(j.get("hobbies").unwrap().index(1), Some(&Json::str("yoga")));
    }

    #[test]
    fn rejects_out_of_fragment_literals() {
        assert_eq!(kind("null"), UnsupportedLiteral("null"));
        assert_eq!(kind("true"), UnsupportedLiteral("true"));
        assert_eq!(kind("false"), UnsupportedLiteral("false"));
        assert_eq!(kind("-3"), NegativeNumber);
        assert_eq!(kind("3.5"), NonNaturalNumber);
        assert_eq!(kind("3e2"), NonNaturalNumber);
    }

    #[test]
    fn rejects_leading_zero_and_overflow() {
        assert_eq!(kind("012"), LeadingZero);
        assert_eq!(kind("99999999999999999999999"), NumberOverflow);
    }

    #[test]
    fn rejects_duplicate_keys_with_position() {
        let e = parse(r#"{"a":1, "a":2}"#).unwrap_err();
        assert!(matches!(e.kind, DuplicateKey(ref k) if k == "a"));
        assert_eq!(e.position.line, 1);
    }

    #[test]
    fn wide_object_duplicate_check_is_near_linear() {
        // 50k distinct keys: the per-key duplicate probe must be a hash-set
        // lookup, not a scan of all previous pairs (the old O(n²) check did
        // ~1.25e9 string compares here and took minutes in debug builds).
        let n = 50_000usize;
        let mut src = String::with_capacity(n * 12);
        src.push('{');
        for i in 0..n {
            if i > 0 {
                src.push(',');
            }
            src.push_str(&format!("\"key{i}\":{i}"));
        }
        src.push('}');
        let doc = parse(&src).unwrap();
        assert_eq!(doc.as_object().unwrap().len(), n);
        // The same object with one duplicate appended is still rejected,
        // with the position of the *second* occurrence.
        let dup = format!("{}, \"key0\": 0}}", &src[..src.len() - 1]);
        let e = parse(&dup).unwrap_err();
        assert!(matches!(e.kind, DuplicateKey(ref k) if k == "key0"));
        assert_eq!(e.position.offset, dup.len() - 10);
    }

    #[test]
    fn rejects_trailing_content() {
        assert_eq!(kind("1 2"), TrailingContent);
        assert_eq!(kind("{} {}"), TrailingContent);
    }

    #[test]
    fn rejects_truncated_documents() {
        assert_eq!(kind("{\"a\": "), UnexpectedEof);
        assert_eq!(kind("[1, 2"), UnexpectedEof);
        assert_eq!(kind("\"abc"), UnexpectedEof);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::str("A"));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert_eq!(
            parse(r#""\\\"\/\b\f\n\r\t""#).unwrap(),
            Json::str("\\\"/\u{8}\u{c}\n\r\t")
        );
        assert!(matches!(kind(r#""\ud800""#), BadUnicodeEscape(_)));
        assert!(matches!(kind(r#""\udc00""#), BadUnicodeEscape(_)));
        assert!(matches!(kind(r#""\q""#), BadEscape(_)));
    }

    #[test]
    fn escape_after_clean_prefix_keeps_both_halves() {
        assert_eq!(parse(r#""abc\ndef""#).unwrap(), Json::str("abc\ndef"));
        assert_eq!(parse(r#""čšAž""#).unwrap(), Json::str("čšAž"));
        assert_eq!(parse(r#""😀 ok""#).unwrap(), Json::str("\u{1F600} ok"));
    }

    #[test]
    fn unescaped_control_char_rejected() {
        assert!(matches!(kind("\"a\u{0001}b\""), ControlCharInString(_)));
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"čšž — 中文\"").unwrap(), Json::str("čšž — 中文"));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(matches!(kind(&deep), TooDeep(512)));
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
        let custom = parse_with_limits(&ok, ParseLimits::depth(10));
        assert!(matches!(custom.unwrap_err().kind, TooDeep(10)));
    }

    #[test]
    fn size_limit_enforced_before_parsing() {
        let limits = ParseLimits {
            max_bytes: 16,
            ..ParseLimits::default()
        };
        let small = parse_with_limits("[1, 2, 3]", limits);
        assert!(small.is_ok());
        let big = parse_with_limits(&format!("[{}]", "1,".repeat(100)), limits);
        assert!(matches!(big.unwrap_err().kind, TooLarge(16)));
        // The fused path enforces the same limit with the same error.
        let fused = parse_to_tree_with_limits(&"9".repeat(100), limits);
        assert!(matches!(fused.unwrap_err().kind, TooLarge(16)));
    }

    #[test]
    fn error_positions_track_lines() {
        let e = parse("{\n  \"a\": null\n}").unwrap_err();
        assert_eq!(e.position.line, 2);
        assert_eq!(e.kind, UnsupportedLiteral("null"));
    }

    #[test]
    fn whitespace_everywhere() {
        let j = parse(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    // ---- fused path smoke tests (the differential suite lives in
    // crates/json-foundations/tests/parse_fusion.rs) ----

    #[test]
    fn fused_parse_matches_two_pass_on_figure1() {
        let src = r#"{
            "name": {"first": "John", "last": "Doe"},
            "age": 32,
            "hobbies": ["fishing", "yoga"]
        }"#;
        let fused = parse_to_tree(src).unwrap();
        let two_pass = JsonTree::build(&parse(src).unwrap());
        assert!(fused.identical(&two_pass));
        assert_eq!(fused.to_json(), parse(src).unwrap());
    }

    #[test]
    fn fused_parse_errors_match_value_parse() {
        for bad in [
            "",
            "null",
            "{\"a\":1, \"a\":2}",
            "[1, 2",
            "{} {}",
            "012",
            "\"a\u{0001}\"",
        ] {
            assert_eq!(
                parse(bad).unwrap_err(),
                parse_to_tree(bad).unwrap_err(),
                "input {bad:?}"
            );
        }
    }

    #[test]
    fn fused_depth_limit_matches() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert_eq!(parse(&deep).unwrap_err(), parse_to_tree(&deep).unwrap_err());
        let scalar_at_limit = parse_to_tree_with_limits("7", ParseLimits::depth(0));
        assert!(scalar_at_limit.is_ok());
        let nested = parse_to_tree_with_limits("[7]", ParseLimits::depth(0));
        assert!(matches!(nested.unwrap_err().kind, TooDeep(0)));
    }

    #[test]
    fn shared_interner_keeps_symbols_stable() {
        let mut shared = Interner::new();
        let limits = ParseLimits::default();
        let t1 = parse_to_tree_into(r#"{"k": "v"}"#, limits, &mut shared).unwrap();
        let t2 = parse_to_tree_into(r#"{"v": "k", "w": 1}"#, limits, &mut shared).unwrap();
        assert_eq!(t1.sym("k"), t2.sym("k"));
        assert_eq!(t1.sym("v"), t2.sym("v"));
        assert_eq!(t1.sym("w"), None, "t1 snapshot predates \"w\"");
        assert_eq!(shared.lookup("w"), t2.sym("w"));
    }
}
