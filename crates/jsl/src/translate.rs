//! The Theorem 2 translations between (non-deterministic) JNL without
//! `EQ(α, β)` and (non-deterministic) JSL with `∼(A)` as the only node test.
//!
//! Four translations are provided:
//!
//! * [`jsl_to_jnl`] — polynomial, as the theorem states.
//! * [`jnl_to_jsl_paper`] — a transliteration of the appendix's top-symbol
//!   substitution construction. **Reproduction finding**: contrary to the
//!   paper's remark, the construction as written stays polynomial on the
//!   `⟨[X_{a1}]∨[X_{a2}]⟩ ∘ …` family it cites — every top symbol occurs
//!   exactly once at its substitution site, so nothing duplicates (see
//!   EXPERIMENTS.md E6).
//! * [`jnl_to_jsl_paths`] — the naive *path-expansion* translation the
//!   paper's "keeps track of all the possible paths" remark describes:
//!   disjunctions inside tests are distributed across compositions. This
//!   one is genuinely exponential on the family.
//! * [`jnl_to_jsl_cps`] — a continuation-passing variant, linear on the
//!   family.
//!
//! All are differentially tested for semantic agreement.

use jnl::ast::{Binary, Unary};

use crate::ast::{Jsl, NodeTest};

/// Why a formula cannot be translated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// `EQ(α, β)` is outside Theorem 2's fragment.
    EqPair,
    /// `(α)*` needs recursive JSL (see [`crate::sat`] for the compilation
    /// used by the satisfiability bridge).
    Recursion,
    /// Negative indices (`X_{-1}`) have no JSL counterpart.
    NegativeIndex,
    /// A JSL node test other than `∼(A)` has no JNL counterpart.
    UnsupportedNodeTest(String),
    /// A free formula variable.
    FreeVariable(String),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::EqPair => write!(f, "EQ(α, β) is outside the Theorem 2 fragment"),
            TranslateError::Recursion => write!(f, "(α)* requires recursive JSL"),
            TranslateError::NegativeIndex => {
                write!(f, "negative array indices have no JSL counterpart")
            }
            TranslateError::UnsupportedNodeTest(t) => {
                write!(
                    f,
                    "node test {t} has no JNL counterpart (Theorem 2 allows only ∼(A))"
                )
            }
            TranslateError::FreeVariable(v) => write!(f, "free formula variable ${v}"),
        }
    }
}

impl std::error::Error for TranslateError {}

// ---------------------------------------------------------------------
// JSL → JNL (polynomial)
// ---------------------------------------------------------------------

/// Translates a JSL formula using only the `∼(A)` node test into a unary
/// JNL formula with the same satisfying node sets (Theorem 2, first item).
pub fn jsl_to_jnl(phi: &Jsl) -> Result<Unary, TranslateError> {
    Ok(match phi {
        Jsl::True => Unary::True,
        Jsl::Not(p) => Unary::not(jsl_to_jnl(p)?),
        Jsl::And(ps) => Unary::and(ps.iter().map(jsl_to_jnl).collect::<Result<_, _>>()?),
        Jsl::Or(ps) => Unary::or(ps.iter().map(jsl_to_jnl).collect::<Result<_, _>>()?),
        Jsl::Test(NodeTest::EqDoc(doc)) => Unary::eq_doc(Binary::Epsilon, doc.clone()),
        Jsl::Test(other) => return Err(TranslateError::UnsupportedNodeTest(other.to_string())),
        Jsl::Var(v) => return Err(TranslateError::FreeVariable(v.clone())),
        // ◇_e φ  ⇒  [X_e ∘ ⟨φ'⟩]
        Jsl::DiamondKey(e, p) => Unary::exists(Binary::compose(vec![
            Binary::KeyRegex(e.clone()),
            Binary::test(jsl_to_jnl(p)?),
        ])),
        Jsl::DiamondRange(i, j, p) => Unary::exists(Binary::compose(vec![
            Binary::Range(*i, *j),
            Binary::test(jsl_to_jnl(p)?),
        ])),
        // □_e φ  ⇒  ¬◇_e ¬φ
        Jsl::BoxKey(e, p) => Unary::not(Unary::exists(Binary::compose(vec![
            Binary::KeyRegex(e.clone()),
            Binary::test(Unary::not(jsl_to_jnl(p)?)),
        ]))),
        Jsl::BoxRange(i, j, p) => Unary::not(Unary::exists(Binary::compose(vec![
            Binary::Range(*i, *j),
            Binary::test(Unary::not(jsl_to_jnl(p)?)),
        ]))),
    })
}

// ---------------------------------------------------------------------
// JNL → JSL, continuation-passing (polynomial)
// ---------------------------------------------------------------------

/// Translates an `EQ(α,β)`-free, star-free unary JNL formula into JSL with
/// only `∼(A)` tests. Continuation-passing: `tr(α, k)` is "some `α`-path
/// ends in a node satisfying `k`".
pub fn jnl_to_jsl_cps(phi: &Unary) -> Result<Jsl, TranslateError> {
    Ok(match phi {
        Unary::True => Jsl::True,
        Unary::Not(p) => Jsl::not(jnl_to_jsl_cps(p)?),
        Unary::And(ps) => Jsl::and(ps.iter().map(jnl_to_jsl_cps).collect::<Result<_, _>>()?),
        Unary::Or(ps) => Jsl::or(ps.iter().map(jnl_to_jsl_cps).collect::<Result<_, _>>()?),
        Unary::Exists(alpha) => tr_binary(alpha, Jsl::True)?,
        Unary::EqDoc(alpha, doc) => tr_binary(alpha, Jsl::Test(NodeTest::EqDoc(doc.clone())))?,
        Unary::EqPair(_, _) => return Err(TranslateError::EqPair),
    })
}

fn tr_binary(alpha: &Binary, k: Jsl) -> Result<Jsl, TranslateError> {
    Ok(match alpha {
        Binary::Epsilon => k,
        Binary::Test(phi) => Jsl::and(vec![jnl_to_jsl_cps(phi)?, k]),
        Binary::Key(w) => Jsl::diamond_key(w, k),
        Binary::Index(i) => {
            if *i < 0 {
                return Err(TranslateError::NegativeIndex);
            }
            Jsl::diamond_index(*i as u64, k)
        }
        Binary::KeyRegex(e) => Jsl::DiamondKey(e.clone(), Box::new(k)),
        Binary::Range(i, j) => Jsl::DiamondRange(*i, *j, Box::new(k)),
        Binary::Compose(parts) => {
            let mut acc = k;
            for p in parts.iter().rev() {
                acc = tr_binary(p, acc)?;
            }
            acc
        }
        Binary::Star(_) => return Err(TranslateError::Recursion),
    })
}

// ---------------------------------------------------------------------
// JNL → JSL, the paper's construction (exponential)
// ---------------------------------------------------------------------

/// The paper's Theorem 2 construction, transliterated: each (sub)formula is
/// translated with a designated *top symbol* `⊤_φ`, and composition
/// substitutes the right-hand translation for every occurrence of the
/// left-hand top symbol. Multiple occurrences (from disjunctions of path
/// tests) duplicate the substituted formula — the source of the exponential
/// blowup measured in E6.
pub fn jnl_to_jsl_paper(phi: &Unary) -> Result<Jsl, TranslateError> {
    let mut fresh = 0usize;
    let (mut out, top) = tr_u(phi, &mut fresh)?;
    // ϕ^S = ϕ^SI[{⊤*, ⊤_ϕ} → ⊤]
    substitute(&mut out, &top, &Jsl::True);
    substitute(&mut out, STAR_TOP, &Jsl::True);
    Ok(out)
}

const STAR_TOP: &str = "⊤*";

fn fresh_top(fresh: &mut usize) -> String {
    *fresh += 1;
    format!("⊤{}", *fresh)
}

/// Translates a unary formula; returns `(ϕ^SI, ⊤_ϕ)`.
fn tr_u(phi: &Unary, fresh: &mut usize) -> Result<(Jsl, String), TranslateError> {
    let top = fresh_top(fresh);
    let out = match phi {
        Unary::True => Jsl::Var(top.clone()),
        Unary::Not(p) => {
            let (mut inner, t) = tr_u(p, fresh)?;
            substitute(&mut inner, &t, &Jsl::Var(top.clone()));
            Jsl::not(inner)
        }
        Unary::And(ps) => {
            let mut parts = Vec::new();
            for p in ps {
                let (mut inner, t) = tr_u(p, fresh)?;
                substitute(&mut inner, &t, &Jsl::Var(top.clone()));
                parts.push(inner);
            }
            Jsl::and(parts)
        }
        Unary::Or(ps) => {
            let mut parts = Vec::new();
            for p in ps {
                let (mut inner, t) = tr_u(p, fresh)?;
                substitute(&mut inner, &t, &Jsl::Var(top.clone()));
                parts.push(inner);
            }
            Jsl::or(parts)
        }
        Unary::Exists(alpha) => {
            let (mut inner, t) = tr_b(alpha, fresh)?;
            substitute(&mut inner, &t, &Jsl::Var(top.clone()));
            inner
        }
        Unary::EqDoc(alpha, doc) => {
            // ϕ^SI = α^SI[⊤_α → ∼(A)]; the top of an EqDoc plays no further
            // role but we keep the uniform interface.
            let (mut inner, t) = tr_b(alpha, fresh)?;
            substitute(&mut inner, &t, &Jsl::Test(NodeTest::EqDoc(doc.clone())));
            inner
        }
        Unary::EqPair(_, _) => return Err(TranslateError::EqPair),
    };
    Ok((out, top))
}

/// Translates a binary formula; returns `(α^SI, ⊤_α)`.
fn tr_b(alpha: &Binary, fresh: &mut usize) -> Result<(Jsl, String), TranslateError> {
    let top = fresh_top(fresh);
    let out = match alpha {
        Binary::Epsilon => Jsl::Var(top.clone()),
        Binary::Key(w) => Jsl::diamond_key(w, Jsl::Var(top.clone())),
        Binary::Index(i) => {
            if *i < 0 {
                return Err(TranslateError::NegativeIndex);
            }
            Jsl::diamond_index(*i as u64, Jsl::Var(top.clone()))
        }
        Binary::KeyRegex(e) => Jsl::DiamondKey(e.clone(), Box::new(Jsl::Var(top.clone()))),
        Binary::Range(i, j) => Jsl::DiamondRange(*i, *j, Box::new(Jsl::Var(top.clone()))),
        Binary::Test(phi) => {
            // α = ⟨φ⟩: α^SI = ⊤_α ∧ φ^SI[⊤_φ → ⊤*]
            let (mut inner, t) = tr_u(phi, fresh)?;
            substitute(&mut inner, &t, &Jsl::Var(STAR_TOP.to_owned()));
            Jsl::and(vec![Jsl::Var(top.clone()), inner])
        }
        Binary::Compose(parts) => {
            // α = α₁ ∘ α₂: α^SI = (α₁^SI[⊤_{α₁} → α₂^SI])[⊤_{α₂} → ⊤_α].
            let mut acc = Jsl::Var(top.clone());
            for p in parts.iter().rev() {
                let (mut head, t) = tr_b(p, fresh)?;
                substitute(&mut head, &t, &acc);
                acc = head;
            }
            acc
        }
        Binary::Star(_) => return Err(TranslateError::Recursion),
    };
    Ok((out, top))
}

/// Substitutes `Var(name) → replacement` (textual, duplicating).
fn substitute(phi: &mut Jsl, name: &str, replacement: &Jsl) {
    match phi {
        Jsl::Var(v) if v == name => *phi = replacement.clone(),
        Jsl::Var(_) | Jsl::True | Jsl::Test(_) => {}
        Jsl::Not(p) => substitute(p, name, replacement),
        Jsl::And(ps) | Jsl::Or(ps) => {
            for p in ps {
                substitute(p, name, replacement);
            }
        }
        Jsl::DiamondKey(_, p)
        | Jsl::BoxKey(_, p)
        | Jsl::DiamondRange(_, _, p)
        | Jsl::BoxRange(_, _, p) => substitute(p, name, replacement),
    }
}

// ---------------------------------------------------------------------
// JNL → JSL, naive path expansion (exponential)
// ---------------------------------------------------------------------

/// The naive translation that distributes disjunctions inside tests across
/// compositions, materialising one JSL branch per root-to-target *path* of
/// the JNL formula — exponential on the E6 family.
pub fn jnl_to_jsl_paths(phi: &Unary) -> Result<Jsl, TranslateError> {
    Ok(match phi {
        Unary::True => Jsl::True,
        Unary::Not(p) => Jsl::not(jnl_to_jsl_paths(p)?),
        Unary::And(ps) => Jsl::and(ps.iter().map(jnl_to_jsl_paths).collect::<Result<_, _>>()?),
        Unary::Or(ps) => Jsl::or(ps.iter().map(jnl_to_jsl_paths).collect::<Result<_, _>>()?),
        Unary::Exists(alpha) => Jsl::or(expand(alpha, Jsl::True)?),
        Unary::EqDoc(alpha, doc) => {
            Jsl::or(expand(alpha, Jsl::Test(NodeTest::EqDoc(doc.clone())))?)
        }
        Unary::EqPair(_, _) => return Err(TranslateError::EqPair),
    })
}

/// All translations of `α`-paths ending in `k`, with test-disjunctions
/// split into separate paths (the cross product over a composition is what
/// explodes).
fn expand(alpha: &Binary, k: Jsl) -> Result<Vec<Jsl>, TranslateError> {
    Ok(match alpha {
        Binary::Epsilon => vec![k],
        Binary::Key(w) => vec![Jsl::diamond_key(w, k)],
        Binary::Index(i) => {
            if *i < 0 {
                return Err(TranslateError::NegativeIndex);
            }
            vec![Jsl::diamond_index(*i as u64, k)]
        }
        Binary::KeyRegex(e) => vec![Jsl::DiamondKey(e.clone(), Box::new(k))],
        Binary::Range(i, j) => vec![Jsl::DiamondRange(*i, *j, Box::new(k))],
        Binary::Test(phi) => split_test(phi)?
            .into_iter()
            .map(|branch| Jsl::and(vec![branch, k.clone()]))
            .collect(),
        Binary::Compose(parts) => {
            let mut tails = vec![k];
            for p in parts.iter().rev() {
                let mut next = Vec::new();
                for t in tails {
                    next.extend(expand(p, t)?);
                }
                tails = next;
            }
            tails
        }
        Binary::Star(_) => return Err(TranslateError::Recursion),
    })
}

/// Splits the disjunctive structure of a test into separate branches.
fn split_test(phi: &Unary) -> Result<Vec<Jsl>, TranslateError> {
    Ok(match phi {
        Unary::Or(ps) => {
            let mut out = Vec::new();
            for p in ps {
                out.extend(split_test(p)?);
            }
            out
        }
        Unary::And(ps) => {
            // Cross product of the conjuncts' branches.
            let mut acc: Vec<Vec<Jsl>> = vec![Vec::new()];
            for p in ps {
                let branches = split_test(p)?;
                let mut next = Vec::new();
                for prefix in &acc {
                    for b in &branches {
                        let mut row = prefix.clone();
                        row.push(b.clone());
                        next.push(row);
                    }
                }
                acc = next;
            }
            acc.into_iter().map(Jsl::and).collect()
        }
        other => vec![jnl_to_jsl_paths(other)?],
    })
}

// ---------------------------------------------------------------------
// The E6 blowup family
// ---------------------------------------------------------------------

/// The paper's blowup family:
/// `⟨[X_{a1}] ∨ [X_{a2}]⟩ ∘ ⟨[X_{b1}] ∨ [X_{b2}]⟩ ∘ … ∘ X_z` (k test blocks).
/// The substitution translation tracks all `2^k` paths.
pub fn blowup_family(k: usize) -> Unary {
    let mut parts: Vec<Binary> = Vec::new();
    for i in 0..k {
        parts.push(Binary::test(Unary::or(vec![
            Unary::exists(Binary::key(format!("a{i}"))),
            Unary::exists(Binary::key(format!("b{i}"))),
        ])));
    }
    parts.push(Binary::key("z"));
    Unary::exists(Binary::compose(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::{parse, JsonTree};
    use relex::Regex;

    fn docs() -> Vec<JsonTree> {
        [
            r#"{"name": {"first": "John"}, "aba": [1, 2], "z": 0}"#,
            r#"{"a0": 1, "b0": 2, "z": 3}"#,
            r#"{"a0": 1, "z": {"z": 1}}"#,
            r#"[{"z": 1}, [0, 1], "s"]"#,
            r#"{}"#,
        ]
        .iter()
        .map(|s| JsonTree::build(&parse(s).unwrap()))
        .collect()
    }

    fn assert_equivalent_jnl_jsl(phi_n: &Unary, phi_s: &Jsl) {
        for t in docs() {
            let via_jnl = jnl::eval::evaluate(&t, phi_n);
            let via_jsl = crate::eval::evaluate(&t, phi_s);
            assert_eq!(via_jnl, via_jsl, "formulas {phi_n} vs {phi_s}");
        }
    }

    #[test]
    fn jsl_to_jnl_preserves_semantics() {
        let phis = vec![
            Jsl::DiamondKey(Regex::parse("a(b|c)a").unwrap(), Box::new(Jsl::True)),
            Jsl::BoxKey(
                Regex::sigma_star(),
                Box::new(Jsl::Test(NodeTest::EqDoc(parse("1").unwrap()))),
            ),
            Jsl::and(vec![
                Jsl::DiamondRange(0, None, Box::new(Jsl::True)),
                Jsl::not(Jsl::diamond_key("missing", Jsl::True)),
            ]),
            Jsl::or(vec![
                Jsl::Test(NodeTest::EqDoc(parse(r#"{"z":1}"#).unwrap())),
                Jsl::DiamondRange(1, Some(1), Box::new(Jsl::True)),
            ]),
        ];
        for phi_s in phis {
            let phi_n = jsl_to_jnl(&phi_s).unwrap();
            assert_equivalent_jnl_jsl(&phi_n, &phi_s);
        }
    }

    #[test]
    fn jnl_to_jsl_both_constructions_preserve_semantics() {
        let phis = vec![
            jnl::parse_unary(r#"[@"name" ; @"first"]"#).unwrap(),
            jnl::parse_unary(r#"eqdoc(@"aba" ; @1, 2)"#).unwrap(),
            jnl::parse_unary(r#"![@/a.a/ ; @[0:*]]"#).unwrap(),
            jnl::parse_unary(r#"[<[@"a0"] | [@"b0"]> ; @"z"]"#).unwrap(),
            jnl::parse_unary(r#"eqdoc(@"z" ; <true> ; @"z", 1)"#).unwrap(),
        ];
        for phi_n in phis {
            let cps = jnl_to_jsl_cps(&phi_n).unwrap();
            assert_equivalent_jnl_jsl(&phi_n, &cps);
            let paper = jnl_to_jsl_paper(&phi_n).unwrap();
            assert_equivalent_jnl_jsl(&phi_n, &paper);
        }
    }

    #[test]
    fn round_trip_jsl_jnl_jsl() {
        let phi_s = Jsl::DiamondKey(
            Regex::parse("x+").unwrap(),
            Box::new(Jsl::Test(NodeTest::EqDoc(parse("1").unwrap()))),
        );
        let phi_n = jsl_to_jnl(&phi_s).unwrap();
        let back = jnl_to_jsl_cps(&phi_n).unwrap();
        assert_equivalent_jnl_jsl(&phi_n, &back);
    }

    #[test]
    fn blowup_family_growth_rates() {
        // Sizes on the ⟨[X_{a_i}]∨[X_{b_i}]⟩ chain family (E6).
        let mut paper_sizes = Vec::new();
        let mut paths_sizes = Vec::new();
        let mut cps_sizes = Vec::new();
        for k in 1..=8 {
            let phi = blowup_family(k);
            paper_sizes.push(jnl_to_jsl_paper(&phi).unwrap().size());
            paths_sizes.push(jnl_to_jsl_paths(&phi).unwrap().size());
            cps_sizes.push(jnl_to_jsl_cps(&phi).unwrap().size());
        }
        // The path-expansion translation is genuinely exponential (×2 per
        // chain element).
        let paths_ratio = paths_sizes[7] as f64 / paths_sizes[3] as f64;
        assert!(paths_ratio > 8.0, "paths sizes {paths_sizes:?}");
        // Reproduction finding: the appendix construction transliterated is
        // *linear* on this family (every top symbol occurs exactly once).
        let paper_ratio = paper_sizes[7] as f64 / paper_sizes[3] as f64;
        assert!(paper_ratio < 4.0, "paper sizes {paper_sizes:?}");
        // The CPS variant is linear too.
        let cps_ratio = cps_sizes[7] as f64 / cps_sizes[3] as f64;
        assert!(cps_ratio < 4.0, "cps sizes {cps_sizes:?}");
        // And all three stay semantically equal.
        let phi = blowup_family(4);
        assert_equivalent_jnl_jsl(&phi, &jnl_to_jsl_paper(&phi).unwrap());
        assert_equivalent_jnl_jsl(&phi, &jnl_to_jsl_paths(&phi).unwrap());
        assert_equivalent_jnl_jsl(&phi, &jnl_to_jsl_cps(&phi).unwrap());
    }

    #[test]
    fn paths_translation_agrees_semantically() {
        let phis = vec![
            jnl::parse_unary(r#"[<[@"a0"] | [@"b0"]> ; @"z"]"#).unwrap(),
            jnl::parse_unary(r#"eqdoc(<[@"a0"] & [@"b0"]> ; @"z", 3)"#).unwrap(),
            jnl::parse_unary(r#"![@"name" ; <[@"first"]> ]"#).unwrap(),
        ];
        for phi_n in phis {
            let paths = jnl_to_jsl_paths(&phi_n).unwrap();
            assert_equivalent_jnl_jsl(&phi_n, &paths);
        }
    }

    #[test]
    fn unsupported_constructs_error() {
        use jnl::ast::{Binary as B, Unary as U};
        assert_eq!(
            jnl_to_jsl_cps(&U::eq_pair(B::Epsilon, B::Epsilon)),
            Err(TranslateError::EqPair)
        );
        assert_eq!(
            jnl_to_jsl_cps(&U::exists(B::star(B::any_key()))),
            Err(TranslateError::Recursion)
        );
        assert_eq!(
            jnl_to_jsl_cps(&U::exists(B::index(-1))),
            Err(TranslateError::NegativeIndex)
        );
        assert_eq!(
            jsl_to_jnl(&Jsl::Test(NodeTest::Unique)),
            Err(TranslateError::UnsupportedNodeTest("Unique".into()))
        );
    }
}
