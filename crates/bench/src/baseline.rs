//! Frozen **pre-interning** implementations, kept as the regression
//! baseline for the S2 interning experiment.
//!
//! Before the `Sym` layer landed, every hot path compared and cloned owned
//! `String` keys: `JsonTree` stored one `Vec<(String, NodeId)>` per object
//! node (children sorted lexicographically, key lookup = binary search over
//! string compares), `EvalContext::new` re-owned every edge key into a
//! `Vec<Option<String>>`, and `CanonTable` signatures carried owned string
//! payloads hashed with SipHash. This module re-creates those exact data
//! structures and algorithms so `harness s2` can measure the speedup of the
//! interned implementation **in the same binary** — the honest
//! before/after a past-state git checkout cannot give once the old code is
//! gone.
//!
//! Coverage is deliberately scoped to the E1/E7 workloads (the two
//! experiments the interning PR moves): deterministic JNL over
//! key/index/compose paths with both equality forms, and JSL
//! `Arr ∧ Unique` under the canonical strategy — plus, for the S3
//! DFA-bitset experiment, the frozen **per-node-visit NFA** regex matching
//! ([`exists_regex_edge_strings`], [`jsl_eval_strings`]) that predates both
//! the per-symbol memo and the precomputed bitset tiers.

use std::collections::HashMap;

use jnl::ast::{Binary, Unary};
use jsl::ast::{Jsl, NodeTest};
use jsondata::{Json, JsonTree, NodeId, NodeKind};

/// The pre-interning per-object child storage: children re-owned as
/// `(String, NodeId)` pairs sorted by key, one vector per node — exactly
/// what `JsonTree` stored before the CSR/symbol rework.
pub struct StringChildIndex {
    by_node: Vec<Vec<(String, NodeId)>>,
}

impl StringChildIndex {
    /// Rebuilds the legacy storage from a tree (not part of any timed
    /// region: this corresponds to tree construction, not evaluation).
    pub fn build(tree: &JsonTree) -> StringChildIndex {
        let by_node = tree
            .node_ids()
            .map(|n| {
                let mut cs: Vec<(String, NodeId)> = tree
                    .obj_children(n)
                    .map(|(k, c)| (k.to_owned(), c))
                    .collect();
                cs.sort_by(|a, b| a.0.cmp(&b.0));
                cs
            })
            .collect();
        StringChildIndex { by_node }
    }

    /// The legacy `child_by_key`: binary search over string comparisons.
    pub fn child_by_key(&self, n: NodeId, key: &str) -> Option<NodeId> {
        let cs = &self.by_node[n.index()];
        cs.binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| cs[i].1)
    }
}

/// The pre-interning canonical-label table: signatures carry owned strings
/// and are hashed with `std`'s default SipHash, as the seed did.
pub struct StringCanon {
    class: Vec<u32>,
    interner: HashMap<StrSig, u32>,
}

#[derive(PartialEq, Eq, Hash)]
enum StrSig {
    Int(u64),
    Str(String),
    Arr(Vec<u32>),
    Obj(Vec<(String, u32)>),
}

impl StringCanon {
    /// One bottom-up hash-consing pass (legacy signature layout).
    pub fn build(tree: &JsonTree) -> StringCanon {
        let mut class = vec![0u32; tree.node_count()];
        let mut interner: HashMap<StrSig, u32> = HashMap::new();
        for n in tree.bottom_up() {
            let sig = match tree.kind(n) {
                NodeKind::Int => StrSig::Int(tree.num_value(n).expect("Int value")),
                NodeKind::Str => StrSig::Str(tree.str_value(n).expect("Str value").to_owned()),
                NodeKind::Arr => StrSig::Arr(
                    tree.arr_children(n)
                        .iter()
                        .map(|c| class[c.index()])
                        .collect(),
                ),
                NodeKind::Obj => {
                    let mut pairs: Vec<(String, u32)> = tree
                        .obj_children(n)
                        .map(|(k, c)| (k.to_owned(), class[c.index()]))
                        .collect();
                    pairs.sort_by(|a, b| a.0.cmp(&b.0));
                    StrSig::Obj(pairs)
                }
            };
            let next = interner.len() as u32;
            class[n.index()] = *interner.entry(sig).or_insert(next);
        }
        StringCanon { class, interner }
    }

    /// The class of node `n`.
    pub fn class_of(&self, n: NodeId) -> u32 {
        self.class[n.index()]
    }

    /// The legacy external-document probe (string signatures throughout).
    pub fn class_of_json(&self, value: &Json) -> Option<u32> {
        let sig = match value {
            Json::Num(n) => StrSig::Int(*n),
            Json::Str(s) => StrSig::Str(s.clone()),
            Json::Array(items) => {
                let classes = items
                    .iter()
                    .map(|v| self.class_of_json(v))
                    .collect::<Option<Vec<u32>>>()?;
                StrSig::Arr(classes)
            }
            Json::Object(o) => {
                let mut pairs = o
                    .iter()
                    .map(|(k, v)| self.class_of_json(v).map(|c| (k.to_owned(), c)))
                    .collect::<Option<Vec<(String, u32)>>>()?;
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                StrSig::Obj(pairs)
            }
        };
        self.interner.get(&sig).copied()
    }
}

/// The pre-interning deterministic-JNL evaluation context: canonical labels
/// with string signatures plus the cloned per-node edge-key vector
/// `EvalContext::new` used to materialise.
pub struct StringEvalContext<'t> {
    tree: &'t JsonTree,
    index: &'t StringChildIndex,
    canon: StringCanon,
    /// Rebuilt per evaluation, as the old context did — the clone cost is
    /// part of what interning removed.
    #[allow(dead_code)]
    edge_key: Vec<Option<String>>,
}

enum Step {
    Key(String),
    Index(i64),
    Test(Vec<bool>),
}

/// Evaluates a deterministic JNL formula with the legacy string-comparing
/// engine. Supports the fragment the E1 workloads use (key/index/compose
/// paths, tests, both equality forms); panics on regex or range steps.
pub fn linear_eval_strings(tree: &JsonTree, index: &StringChildIndex, phi: &Unary) -> Vec<bool> {
    let mut edge_key = vec![None; tree.node_count()];
    for n in tree.node_ids() {
        if let Some(jsondata::EdgeLabel::Key(k)) = tree.edge_from_parent(n) {
            edge_key[n.index()] = Some(k.to_owned());
        }
    }
    let mut ctx = StringEvalContext {
        tree,
        index,
        canon: StringCanon::build(tree),
        edge_key,
    };
    eval_unary(&mut ctx, phi)
}

fn eval_unary(ctx: &mut StringEvalContext<'_>, phi: &Unary) -> Vec<bool> {
    let n = ctx.tree.node_count();
    match phi {
        Unary::True => vec![true; n],
        Unary::Not(p) => {
            let mut s = eval_unary(ctx, p);
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Unary::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let s = eval_unary(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a &= b;
                }
            }
            acc
        }
        Unary::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let s = eval_unary(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a |= b;
                }
            }
            acc
        }
        Unary::Exists(alpha) => {
            let steps = compile(ctx, alpha);
            (0..n)
                .map(|i| walk(ctx, &steps, NodeId::from_index(i)).is_some())
                .collect()
        }
        Unary::EqDoc(alpha, doc) => {
            let steps = compile(ctx, alpha);
            match ctx.canon.class_of_json(doc) {
                Some(target) => (0..n)
                    .map(|i| {
                        walk(ctx, &steps, NodeId::from_index(i))
                            .is_some_and(|m| ctx.canon.class_of(m) == target)
                    })
                    .collect(),
                None => vec![false; n],
            }
        }
        Unary::EqPair(alpha, beta) => {
            let sa = compile(ctx, alpha);
            let sb = compile(ctx, beta);
            (0..n)
                .map(|i| {
                    let from = NodeId::from_index(i);
                    match (walk(ctx, &sa, from), walk(ctx, &sb, from)) {
                        (Some(x), Some(y)) => ctx.canon.class_of(x) == ctx.canon.class_of(y),
                        _ => false,
                    }
                })
                .collect()
        }
    }
}

fn compile(ctx: &mut StringEvalContext<'_>, alpha: &Binary) -> Vec<Step> {
    let mut steps = Vec::new();
    flatten(ctx, alpha, &mut steps);
    steps
}

fn flatten(ctx: &mut StringEvalContext<'_>, alpha: &Binary, out: &mut Vec<Step>) {
    match alpha {
        Binary::Epsilon => {}
        Binary::Key(w) => out.push(Step::Key(w.clone())),
        Binary::Index(i) => out.push(Step::Index(*i)),
        Binary::Test(phi) => out.push(Step::Test(eval_unary(ctx, phi))),
        Binary::Compose(parts) => {
            for p in parts {
                flatten(ctx, p, out);
            }
        }
        other => panic!("baseline engine covers the E1 fragment only, got {other:?}"),
    }
}

fn walk(ctx: &StringEvalContext<'_>, steps: &[Step], from: NodeId) -> Option<NodeId> {
    let mut cur = from;
    for s in steps {
        match s {
            Step::Key(w) => cur = ctx.index.child_by_key(cur, w)?,
            Step::Index(i) => cur = ctx.tree.child_by_signed_index(cur, *i)?,
            Step::Test(set) => {
                if !set[cur.index()] {
                    return None;
                }
            }
        }
    }
    Some(cur)
}

/// The pre-interning E7 evaluation: `Arr ∧ Unique` under the canonical
/// strategy, with the canonical table built on string signatures (the cost
/// the interning change moves).
pub fn e7_canonical_strings(tree: &JsonTree) -> Vec<bool> {
    let canon = StringCanon::build(tree);
    tree.node_ids()
        .map(|n| {
            if tree.kind(n) != NodeKind::Arr {
                return false;
            }
            let mut classes: Vec<u32> = tree
                .arr_children(n)
                .iter()
                .map(|c| canon.class_of(*c))
                .collect();
            classes.sort_unstable();
            classes.windows(2).all(|w| w[0] != w[1])
        })
        .collect()
}

/// The frozen pre-interning evaluation of `[X_e]⊤` — the nodes with some
/// outgoing object edge whose key matches `e`. One NFA run per resolved
/// edge key at every node visit: the per-node cost both the per-symbol
/// memo and the precomputed bitset tier removed.
pub fn exists_regex_edge_strings(tree: &JsonTree, e: &relex::Regex) -> Vec<bool> {
    let compiled = e.compile();
    tree.node_ids()
        .map(|n| tree.obj_children(n).any(|(k, _)| compiled.is_match(k)))
        .collect()
}

/// The frozen pre-interning JSL evaluation: each regex is compiled once per
/// formula node and the NFA runs on the **resolved string of every node
/// visit** — no symbol memoisation, no bitsets. Covers the non-recursive
/// fragment the S3 workloads use (kind/number/count tests, `Pattern`, key
/// modalities, ranges); panics on `Unique`, `EqDoc` and free variables.
pub fn jsl_eval_strings(tree: &JsonTree, phi: &Jsl) -> Vec<bool> {
    let n = tree.node_count();
    match phi {
        Jsl::True => vec![true; n],
        Jsl::Not(p) => {
            let mut s = jsl_eval_strings(tree, p);
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Jsl::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                for (a, b) in acc.iter_mut().zip(jsl_eval_strings(tree, p)) {
                    *a &= b;
                }
            }
            acc
        }
        Jsl::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                for (a, b) in acc.iter_mut().zip(jsl_eval_strings(tree, p)) {
                    *a |= b;
                }
            }
            acc
        }
        Jsl::Test(NodeTest::Pattern(e)) => {
            let compiled = e.compile();
            tree.node_ids()
                .map(|nd| tree.str_value(nd).is_some_and(|s| compiled.is_match(s)))
                .collect()
        }
        Jsl::Test(t) => tree.node_ids().map(|nd| plain_test(tree, t, nd)).collect(),
        Jsl::DiamondKey(e, p) => {
            let inner = jsl_eval_strings(tree, p);
            let compiled = e.compile();
            tree.node_ids()
                .map(|nd| {
                    tree.obj_children(nd)
                        .any(|(k, c)| inner[c.index()] && compiled.is_match(k))
                })
                .collect()
        }
        Jsl::BoxKey(e, p) => {
            let inner = jsl_eval_strings(tree, p);
            let compiled = e.compile();
            tree.node_ids()
                .map(|nd| {
                    tree.obj_children(nd)
                        .all(|(k, c)| inner[c.index()] || !compiled.is_match(k))
                })
                .collect()
        }
        Jsl::DiamondRange(i, j, p) => {
            let inner = jsl_eval_strings(tree, p);
            tree.node_ids()
                .map(|nd| {
                    tree.arr_children(nd).iter().enumerate().any(|(pos, c)| {
                        let pos = pos as u64;
                        pos >= *i && j.is_none_or(|j| pos <= j) && inner[c.index()]
                    })
                })
                .collect()
        }
        Jsl::BoxRange(i, j, p) => {
            let inner = jsl_eval_strings(tree, p);
            tree.node_ids()
                .map(|nd| {
                    tree.arr_children(nd).iter().enumerate().all(|(pos, c)| {
                        let pos = pos as u64;
                        !(pos >= *i && j.is_none_or(|j| pos <= j)) || inner[c.index()]
                    })
                })
                .collect()
        }
        Jsl::Var(_) => panic!("baseline JSL engine covers the non-recursive fragment"),
    }
}

fn plain_test(tree: &JsonTree, t: &NodeTest, n: NodeId) -> bool {
    match t {
        NodeTest::Arr => tree.kind(n) == NodeKind::Arr,
        NodeTest::Obj => tree.kind(n) == NodeKind::Obj,
        NodeTest::Str => tree.kind(n) == NodeKind::Str,
        NodeTest::Int => tree.kind(n) == NodeKind::Int,
        NodeTest::Min(i) => tree.num_value(n).is_some_and(|v| v >= *i),
        NodeTest::Max(i) => tree.num_value(n).is_some_and(|v| v <= *i),
        NodeTest::MultOf(i) => {
            tree.num_value(n)
                .is_some_and(|v| if *i == 0 { v == 0 } else { v % i == 0 })
        }
        NodeTest::MinCh(i) => (tree.child_count(n) as u64) >= *i,
        NodeTest::MaxCh(i) => (tree.child_count(n) as u64) <= *i,
        other => panic!("baseline JSL engine does not cover {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{e1_formula, e7_doc, e7_formula, scaling_doc};
    use jsl::{EvalOptions, UniqueStrategy};

    #[test]
    fn legacy_child_by_key_agrees_with_interned() {
        let doc = scaling_doc(2000, 5);
        let tree = JsonTree::build(&doc);
        let index = StringChildIndex::build(&tree);
        for n in tree.node_ids() {
            for key in ["a", "name", "items", "absent-key", ""] {
                assert_eq!(index.child_by_key(n, key), tree.child_by_key(n, key));
            }
        }
    }

    #[test]
    fn legacy_e1_engine_agrees_with_interned() {
        let doc = scaling_doc(3000, 1);
        let tree = JsonTree::build(&doc);
        let index = StringChildIndex::build(&tree);
        let phi = e1_formula();
        assert_eq!(
            linear_eval_strings(&tree, &index, &phi),
            jnl::eval::linear::eval(&tree, &phi).unwrap()
        );
    }

    #[test]
    fn legacy_e7_agrees_with_interned() {
        let doc = e7_doc(512, 100);
        let tree = JsonTree::build(&doc);
        let legacy = e7_canonical_strings(&tree);
        let interned = jsl::eval::evaluate_with(
            &tree,
            &e7_formula(),
            EvalOptions {
                unique: UniqueStrategy::Canonical,
                ..Default::default()
            },
        );
        assert_eq!(legacy, interned);
    }

    #[test]
    fn legacy_regex_baselines_agree_with_engines() {
        // JNL side: [X_e]⊤ over distinct-key objects, string baseline vs
        // both tiers.
        let tree = JsonTree::build(&crate::s3_jnl_doc(64, 8));
        let (e, phi) = crate::s3_jnl_workload();
        let strings = exists_regex_edge_strings(&tree, &e);
        for strategy in [
            relex::EdgeStrategy::DfaBitset,
            relex::EdgeStrategy::LazyMemo,
        ] {
            assert_eq!(
                strings,
                jnl::eval::pdl::eval_with(&tree, &phi, strategy).unwrap(),
                "pdl {strategy:?}"
            );
            assert_eq!(
                strings,
                jnl::eval::cubic::eval_with(&tree, &phi, strategy),
                "cubic {strategy:?}"
            );
        }
        // JSL side: the pattern-properties formula over distinct atoms.
        let tree = JsonTree::build(&crate::s3_doc(300));
        let psi = crate::s3_jsl_formula();
        let strings = jsl_eval_strings(&tree, &psi);
        for edge in [
            relex::EdgeStrategy::DfaBitset,
            relex::EdgeStrategy::LazyMemo,
        ] {
            let opts = jsl::EvalOptions {
                edge,
                ..Default::default()
            };
            assert_eq!(
                strings,
                jsl::eval::evaluate_with(&tree, &psi, opts),
                "jsl {edge:?}"
            );
        }
    }

    #[test]
    fn legacy_canon_classes_characterise_equality() {
        let doc = scaling_doc(1000, 9);
        let tree = JsonTree::build(&doc);
        let legacy = StringCanon::build(&tree);
        let interned = jsondata::CanonTable::build(&tree);
        // Class *ids* may differ (allocation order), but the partition must
        // be identical.
        for a in tree.node_ids() {
            for b in [tree.root(), NodeId::from_index(tree.node_count() / 2)] {
                assert_eq!(
                    legacy.class_of(a) == legacy.class_of(b),
                    interned.class_of(a) == interned.class_of(b),
                    "partition mismatch at {a:?},{b:?}"
                );
            }
        }
    }
}
