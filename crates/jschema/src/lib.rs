//! # jschema — JSON Schema (the paper's Table 1 fragment)
//!
//! The concrete schema language of §5.1, formalised in \[29\] and captured by
//! JSL (Theorems 1 and 3):
//!
//! * [`ir`] — the schema representation with exactly the Table 1 keywords
//!   plus `definitions`/`$ref`, parsed from schema documents with
//!   located errors.
//! * [`mod@validate`] — an independent direct validator (the differential
//!   counterpart for the Theorem 1 experiments).
//! * [`jsl_bridge`] — the Theorem 1/3 translations Schema ⇄ JSL; the
//!   `additionalProperties` case exercises the DFA complement → regex
//!   machinery of `relex`.
//! * [`mod@infer`] — schema inference from examples (the §5.2 future-work item,
//!   implemented as an extension).
//!
//! ```
//! use jschema::{Schema, validate::is_valid};
//! use jsondata::parse;
//!
//! let schema = Schema::parse_str(r#"{
//!     "type": "object",
//!     "required": ["name"],
//!     "properties": {"name": {"type": "string"}}
//! }"#).unwrap();
//! let doc = parse(r#"{"name": "Sue"}"#).unwrap();
//! assert!(is_valid(&schema, &doc).unwrap());
//! ```

pub mod infer;
pub mod ir;
pub mod jsl_bridge;
pub mod validate;

pub use infer::infer;
pub use ir::{Schema, SchemaError, SchemaType};
pub use jsl_bridge::{jsl_to_schema, schema_to_jsl};
pub use validate::{is_valid, validate, Violation};
