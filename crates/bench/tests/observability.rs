//! The observability suite: the `jtrace` determinism contract and the
//! `EXPLAIN` snapshot pins.
//!
//! **Determinism.** The *work* counters — documents scanned, rows
//! emitted, index probes, bitmap intersections, residual evaluations —
//! measure what a query logically did, so their totals must be invariant
//! across thread counts and segment layouts: a query does the same work
//! whether one worker does it or eight, and whether the collection was
//! parsed in one shot, built from per-insert segments, or compacted.
//! (*Schedule* counters — chunks dispatched/stolen, polls — and the
//! per-segment `SegmentsVisited` are execution-shape by definition and
//! carry no such contract.)
//!
//! **Snapshots.** The `EXPLAIN` text and JSON renderings over the S9
//! filter corpus are pinned byte-for-byte: plans are a public, diffable
//! interface, and an accidental rendering change should fail loudly
//! here rather than silently invalidate downstream tooling.

use std::sync::Arc;

use bench::{s10_route_workloads, S6_FIND_FILTER, S9_INDEX_PATHS};
use jguard::QueryCtx;
use jtrace::{Counter, QueryMetrics, Snapshot};
use mongofind::{Collection, Filter};

/// The work-counter set under the determinism contract.
const WORK: [Counter; 5] = [
    Counter::DocsScanned,
    Counter::RowsEmitted,
    Counter::IndexProbes,
    Counter::BitmapIntersections,
    Counter::ResidualEvals,
];

fn corpus() -> Vec<jsondata::Json> {
    let jsondata::Json::Array(docs) = jsondata::gen::person_records(1000, 7) else {
        panic!("person_records returns an array");
    };
    docs
}

/// The three segment layouts of the same logical collection, each with
/// the S9 indexes declared.
fn layouts(docs: &[jsondata::Json]) -> Vec<(&'static str, Collection)> {
    let text = jsondata::serialize::to_string(&jsondata::Json::Array(docs.to_vec()));
    let mut one_parse = Collection::parse_str(&text).expect("corpus parses");
    for p in S9_INDEX_PATHS {
        one_parse.create_index(p);
    }
    let mut fragmented = Collection::parse_str("[]").expect("empty parses");
    for p in S9_INDEX_PATHS {
        fragmented.create_index(p);
    }
    for d in docs {
        fragmented.insert(d);
    }
    let mut compacted = Collection::parse_str("[]").expect("empty parses");
    for p in S9_INDEX_PATHS {
        compacted.create_index(p);
    }
    for d in docs {
        compacted.insert(d);
    }
    compacted.compact();
    vec![
        ("one_parse", one_parse),
        ("fragmented", fragmented),
        ("post_compact", compacted),
    ]
}

/// Runs `f` under a fresh metrics sink and returns the counter snapshot.
fn counters_of(f: impl FnOnce(&QueryCtx)) -> Snapshot {
    let sink = Arc::new(QueryMetrics::new());
    let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
    f(&ctx);
    sink.snapshot()
}

fn work_totals(s: &Snapshot) -> Vec<(&'static str, u64)> {
    WORK.iter().map(|&c| (c.name(), s.get(c))).collect()
}

#[test]
fn work_counters_invariant_across_threads_and_layouts() {
    let docs = corpus();
    let filters: Vec<(&str, Filter)> = s10_route_workloads()
        .into_iter()
        .map(|(label, src, _)| (label, Filter::parse_str(src).expect("filter parses")))
        .chain(std::iter::once((
            "s6_find_scan",
            Filter::parse_str(S6_FIND_FILTER).expect("filter parses"),
        )))
        .collect();
    let pipe = jagg::Pipeline::parse_str(
        r#"[
            {"$match": {"age": {"$gte": 30}}},
            {"$unwind": "$hobbies"},
            {"$group": {"_id": "$hobbies", "n": {"$count": {}}}},
            {"$sort": {"n": 0, "_id": 1}}
        ]"#,
    )
    .expect("pipeline parses");

    let mut labels: Vec<&str> = filters.iter().map(|(l, _)| *l).collect();
    labels.push("aggregate_pipeline");

    // Reference totals come from the first (layout, threads) combination;
    // every other combination must reproduce them exactly.
    let mut reference: Vec<Vec<(&'static str, u64)>> = Vec::new();
    for (layout, mut coll) in layouts(&docs) {
        for threads in [1usize, 2, 8] {
            coll.set_pool(jpar::Pool::with_threads(threads));
            let mut observed = Vec::new();
            for (label, f) in &filters {
                let snap = counters_of(|ctx| {
                    coll.find_refs_routed_with_ctx(f, ctx)
                        .unwrap_or_else(|e| panic!("{label} failed: {e}"));
                });
                observed.push(work_totals(&snap));
            }
            let snap = counters_of(|ctx| {
                jagg::aggregate_with_ctx(&coll, &pipe, ctx).expect("pipeline runs");
            });
            observed.push(work_totals(&snap));
            if reference.is_empty() {
                // The reference run must actually record work, or the
                // invariance below is vacuous.
                let total: u64 = observed.iter().flatten().map(|(_, n)| n).sum();
                assert!(total > 0, "reference run recorded no work at all");
                reference = observed;
                continue;
            }
            for (label, (got, want)) in labels.iter().zip(observed.iter().zip(&reference)) {
                assert_eq!(
                    got, want,
                    "work counters drifted on {label} at {layout}/{threads} threads"
                );
            }
        }
    }
}

#[test]
fn routed_rows_equal_scan_oracle_on_every_layout() {
    let docs = corpus();
    for (layout, coll) in layouts(&docs) {
        for (label, src, expected_route) in s10_route_workloads() {
            let f = Filter::parse_str(src).expect("filter parses");
            assert_eq!(
                coll.explain(&f).route.name(),
                expected_route,
                "{label} on {layout}"
            );
            assert_eq!(
                coll.find_refs_routed(&f),
                coll.find_refs(&f),
                "routed refs != scan refs on {label} ({layout})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// EXPLAIN snapshots: pinned renderings over the S9 filter corpus.
// ---------------------------------------------------------------------

fn snapshot_collection() -> Collection {
    let text = jsondata::serialize::to_string(&jsondata::gen::person_records(100, 7));
    let mut coll = Collection::parse_str(&text).expect("corpus parses");
    for p in S9_INDEX_PATHS {
        coll.create_index(p);
    }
    coll
}

#[test]
fn explain_text_snapshots_for_the_s9_corpus() {
    let coll = snapshot_collection();
    let expected: Vec<(&str, &str)> = vec![
        (
            r#"{"id": 12345}"#,
            "find id = 12345\n\
             \x20 route: index  [docs=100, segments=1]\n\
             \x20 indexes: [id, name.first, age]\n\
             \x20 probe[0] eq: id = 12345\n",
        ),
        (
            r#"{"age": {"$gte": 40, "$lt": 50}}"#,
            "find (age >= 40 && age < 50)\n\
             \x20 route: index  [docs=100, segments=1]\n\
             \x20 indexes: [id, name.first, age]\n\
             \x20 probe[0] range: age < 50\n\
             \x20 probe[1] range: age >= 40\n",
        ),
        (
            r#"{"name.first": {"$in": ["Sue", "Omar", "Ivy"]}}"#,
            "find name.first in [\"Sue\", \"Omar\", \"Ivy\"]\n\
             \x20 route: index  [docs=100, segments=1]\n\
             \x20 indexes: [id, name.first, age]\n\
             \x20 probe[0] in: name.first in [\"Sue\", \"Omar\", \"Ivy\"]\n",
        ),
        (
            r#"{"age": {"$gte": 40, "$lt": 60}, "name.last": "Kim"}"#,
            "find (age >= 40 && age < 60 && name.last = \"Kim\")\n\
             \x20 route: index  [docs=100, segments=1]\n\
             \x20 indexes: [id, name.first, age]\n\
             \x20 probe[0] range: age < 60\n\
             \x20 probe[1] range: age >= 40\n\
             \x20 residual: name.last = \"Kim\"\n",
        ),
        (
            r#"{"name.last": "Kim"}"#,
            "find name.last = \"Kim\"\n\
             \x20 route: jnl  [docs=100, segments=1]\n\
             \x20 indexes: [id, name.first, age]\n",
        ),
        (
            r#"{"name.last": {"$gt": "K"}}"#,
            "find name.last > \"K\"\n\
             \x20 route: scan  [docs=100, segments=1]\n\
             \x20 indexes: [id, name.first, age]\n",
        ),
    ];
    for (src, want) in expected {
        let f = Filter::parse_str(src).expect("filter parses");
        assert_eq!(
            coll.explain(&f).render_text(),
            want,
            "snapshot drift on {src}"
        );
    }
}

#[test]
fn explain_json_snapshots_for_the_s9_corpus() {
    let coll = snapshot_collection();
    let f = Filter::parse_str(r#"{"age": {"$gte": 40, "$lt": 60}, "name.last": "Kim"}"#)
        .expect("filter parses");
    assert_eq!(
        coll.explain(&f).to_json().to_string(),
        "{\"query\":\"find\",\
          \"filter\":\"(age >= 40 && age < 60 && name.last = \\\"Kim\\\")\",\
          \"route\":\"index\",\
          \"docs\":100,\
          \"segments\":1,\
          \"indexes\":[\"id\",\"name.first\",\"age\"],\
          \"probes\":[\
           {\"path\":\"age\",\"kind\":\"range\",\"condition\":\"age < 60\"},\
           {\"path\":\"age\",\"kind\":\"range\",\"condition\":\"age >= 40\"}],\
          \"residual\":\"name.last = \\\"Kim\\\"\"}",
    );
    let f = Filter::parse_str(r#"{"name.last": "Kim"}"#).expect("filter parses");
    assert_eq!(
        coll.explain(&f).to_json().to_string(),
        "{\"query\":\"find\",\
          \"filter\":\"name.last = \\\"Kim\\\"\",\
          \"route\":\"jnl\",\
          \"docs\":100,\
          \"segments\":1,\
          \"indexes\":[\"id\",\"name.first\",\"age\"],\
          \"probes\":[]}",
    );
}

#[test]
fn pipeline_explain_text_snapshot() {
    let coll = snapshot_collection();
    let pipe = jagg::Pipeline::parse_str(
        r#"[
            {"$match": {"age": {"$gte": 30}}},
            {"$sort": {"age": 0}},
            {"$skip": 5},
            {"$limit": 10}
        ]"#,
    )
    .expect("pipeline parses");
    let text = jagg::explain(&coll, &pipe).render_text();
    let want = "aggregate (4 stages)\n\
                \x20 [0] $match: age >= 30\n\
                \x20 [1] $sort: age desc  [fused: top-k]\n\
                \x20 [2] $skip: 5  [fused: top-k]\n\
                \x20 [3] $limit: 10  [fused: top-k]\n\
                \x20 leading $match plan:\n\
                \x20   find age >= 30\n\
                \x20     route: index  [docs=100, segments=1]\n\
                \x20     indexes: [id, name.first, age]\n\
                \x20     probe[0] range: age >= 30\n\
                \x20 note: top-k fusion: $sort+$skip+$limit run as a bounded heap (skip=5, limit=10)\n";
    assert_eq!(text, want, "pipeline explain snapshot drift:\n{text}");
}
