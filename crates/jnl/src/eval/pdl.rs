//! The Proposition 3 engine (equality-free case): non-deterministic,
//! recursive JNL in `O(|J|·|φ|)` via PDL-style model checking.
//!
//! For every `[α]` / `EQ(α, A)` the binary formula is compiled into a path
//! NFA ([`super::pathnfa`]) and the set `pre_α(T)` — the nodes from which
//! some `α`-path reaches the target set `T` — is computed by a *backward*
//! BFS over the product of the tree and the NFA. Each product vertex
//! `(node, state)` is visited at most once, and regex edge labels are
//! pre-resolved to context matchers at NFA compile time (a precomputed
//! symbol bitset on the default tier), so every edge check is `O(1)` — a
//! vector index plus a bit load — and the whole pass is linear in
//! `|J| · |α|`.
//!
//! `EQ(α, β)` is rejected here — the paper shows it forces comparing pairs
//! of nodes ([`super::cubic`] implements that case).

use jsondata::NodeId;

use crate::ast::{Binary, Unary};
use crate::eval::pathnfa::{PathLabel, PathNfa};
use crate::eval::{EvalContext, EvalError, NodeSet};

/// Evaluates an `EQ(α,β)`-free JNL formula (non-determinism and recursion
/// allowed).
pub fn eval(tree: &jsondata::JsonTree, phi: &Unary) -> Result<NodeSet, EvalError> {
    let mut ctx = EvalContext::new(tree);
    eval_unary(&mut ctx, phi)
}

/// [`eval`] with an explicit edge-matching strategy (benchmark ablations).
pub fn eval_with(
    tree: &jsondata::JsonTree,
    phi: &Unary,
    strategy: relex::EdgeStrategy,
) -> Result<NodeSet, EvalError> {
    let mut ctx = EvalContext::with_strategy(tree, strategy);
    eval_unary(&mut ctx, phi)
}

fn eval_unary(ctx: &mut EvalContext<'_>, phi: &Unary) -> Result<NodeSet, EvalError> {
    let n = ctx.tree.node_count();
    Ok(match phi {
        Unary::True => vec![true; n],
        Unary::Not(p) => {
            let mut s = eval_unary(ctx, p)?;
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Unary::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let s = eval_unary(ctx, p)?;
                for (a, b) in acc.iter_mut().zip(s) {
                    *a &= b;
                }
            }
            acc
        }
        Unary::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let s = eval_unary(ctx, p)?;
                for (a, b) in acc.iter_mut().zip(s) {
                    *a |= b;
                }
            }
            acc
        }
        Unary::Exists(alpha) => pre(ctx, alpha, &vec![true; n])?,
        Unary::EqDoc(alpha, doc) => {
            let mut target = vec![false; n];
            if let Some(class) = ctx.class_of_doc(doc) {
                for (i, t) in target.iter_mut().enumerate() {
                    *t = ctx.canon.class_of(NodeId::from_index(i)) == class;
                }
            }
            pre(ctx, alpha, &target)?
        }
        Unary::EqPair(_, _) => return Err(EvalError::EqPairUnsupported),
    })
}

/// `pre_α(T)`: nodes from which some `α`-path ends in `T`.
fn pre(ctx: &mut EvalContext<'_>, alpha: &Binary, target: &NodeSet) -> Result<NodeSet, EvalError> {
    let (nfa, tests) = PathNfa::compile(ctx, alpha, &mut eval_unary)?;
    let tree = ctx.tree;
    let n = tree.node_count();
    let states = nfa.n_states;
    let rev = nfa.reverse_adjacency();

    // visited[(node, state)]: the configuration can reach (m, accept), m∈T.
    let mut visited = vec![false; n * states];
    let mut work: Vec<(u32, u32)> = Vec::new();
    for (i, &t) in target.iter().enumerate() {
        if t {
            visited[i * states + nfa.accept] = true;
            work.push((i as u32, nfa.accept as u32));
        }
    }

    while let Some((node_u, state_u)) = work.pop() {
        let node = NodeId::from_index(node_u as usize);
        for &(from_state, label) in &rev[state_u as usize] {
            // A transition (from_state, label, state_u): find predecessor
            // tree configurations (pred_node, from_state).
            let pred_node = match label {
                PathLabel::Eps => Some(node),
                PathLabel::Test(ti) => tests[*ti][node.index()].then_some(node),
                PathLabel::Word(sym) => match (sym, tree.incoming_key_sym(node)) {
                    (Some(w), Some(k)) if *w == k => tree.parent(node),
                    _ => None,
                },
                PathLabel::Re(id) => match tree.incoming_key_sym(node) {
                    Some(k) => {
                        if ctx.matcher(*id).matches_sym(k.index(), || tree.resolve(k)) {
                            tree.parent(node)
                        } else {
                            None
                        }
                    }
                    None => None,
                },
                PathLabel::Index(i) => match tree.parent(node) {
                    Some(p) if tree.child_by_signed_index(p, *i) == Some(node) => Some(p),
                    _ => None,
                },
                PathLabel::Range(i, j) => match ctx.incoming_index(node) {
                    Some(pos) if pos >= *i && j.is_none_or(|j| pos <= j) => tree.parent(node),
                    _ => None,
                },
            };
            if let Some(p) = pred_node {
                let slot = p.index() * states + from_state;
                if !visited[slot] {
                    visited[slot] = true;
                    work.push((p.index() as u32, from_state as u32));
                }
            }
        }
    }

    Ok((0..n).map(|i| visited[i * states + nfa.start]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Binary as B, Unary as U};
    use jsondata::{parse, JsonTree};
    use relex::Regex;

    fn tree(src: &str) -> JsonTree {
        JsonTree::build(&parse(src).unwrap())
    }

    #[test]
    fn agrees_with_naive_on_nondeterministic_formulas() {
        let docs = [
            r#"{"aba": {"x": 1}, "aca": {"x": 2}, "zzz": {"x": 3}}"#,
            r#"{"a": {"a": {"a": {"leaf": 7}}}, "b": [1, [2, [3, [4]]]]}"#,
            r#"[[0, 1], [2, 3], {"k": [4]}]"#,
            r#"{"deep": {"deep": {"deep": "end"}}}"#,
        ];
        let e = Regex::parse("a(b|c)a").unwrap();
        let phis = vec![
            U::exists(B::key_regex(e.clone())),
            U::exists(B::compose(vec![B::key_regex(e), B::key("x")])),
            U::eq_doc(B::star(B::any_key()), parse("7").unwrap()),
            U::eq_doc(
                B::star(B::compose(vec![B::any_key()])),
                parse(r#"{"leaf": 7}"#).unwrap(),
            ),
            U::exists(B::compose(vec![B::range(1, None), B::range(0, Some(0))])),
            U::not(U::exists(B::star(B::any_index()))),
            U::exists(B::star(B::compose(vec![
                B::any_index(),
                B::test(U::exists(B::any_index())),
            ]))),
            U::or(vec![
                U::eq_doc(B::star(B::any_index()), parse("4").unwrap()),
                U::eq_doc(B::star(B::any_key()), parse("\"end\"").unwrap()),
            ]),
        ];
        for src in docs {
            let t = tree(src);
            for phi in &phis {
                let fast = eval(&t, phi).unwrap();
                let slow = crate::eval::naive::eval(&t, phi);
                assert_eq!(fast, slow, "doc {src}, formula {phi}");
            }
        }
    }

    #[test]
    fn rejects_eq_pair() {
        let t = tree("{}");
        assert_eq!(
            eval(&t, &U::eq_pair(B::Epsilon, B::Epsilon)),
            Err(EvalError::EqPairUnsupported)
        );
    }

    #[test]
    fn descendant_axis() {
        // (X_{Σ*} ∪ X_{0:∞})* expressed as ((X_{Σ*})* ∘ (X_{0:∞})*)* —
        // any-descendant through both objects and arrays.
        let any_child_star = B::star(B::compose(vec![
            B::star(B::any_key()),
            B::star(B::any_index()),
        ]));
        let t = tree(r#"{"a": [{"b": [0, {"c": "needle"}]}]}"#);
        let phi = U::eq_doc(any_child_star, parse("\"needle\"").unwrap());
        let res = eval(&t, &phi).unwrap();
        assert!(res[0], "root reaches the needle");
        let slow = crate::eval::naive::eval(&t, &phi);
        assert_eq!(res, slow);
    }

    #[test]
    fn even_depth_paths() {
        // Nodes from which some path of even length ≥ 2 reaches a leaf 1.
        let two_steps = B::compose(vec![B::any_key(), B::any_key()]);
        let phi = U::eq_doc(B::star(two_steps), parse("1").unwrap());
        let t = tree(r#"{"a": {"b": 1}, "c": 1}"#);
        let res = eval(&t, &phi).unwrap();
        assert!(res[0], "two steps a.b reach 1");
        let slow = crate::eval::naive::eval(&t, &phi);
        assert_eq!(res, slow);
    }
}
