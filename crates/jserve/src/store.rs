//! Snapshot-isolated storage: one writer, many wait-free readers.
//!
//! A [`Store`] wraps a [`Collection`] for concurrent serving. Readers
//! call [`Store::snapshot`] and get an immutable [`Snapshot`] — an
//! `Arc`-shared view of the collection (segment trees, interner view,
//! index set) that stays valid for as long as they hold it, no matter
//! what the writer does meanwhile. The segmented column makes this
//! cheap: a collection clone is a handful of `Arc` bumps plus the
//! interner table, never a copy of document data.
//!
//! ## Write protocol
//!
//! A single writer lock serializes mutation. [`Store::insert_str`]
//! clones the current snapshot's collection (cheap), appends the new
//! document as an insert-segment through the shared interner lineage
//! (indexes maintained incrementally), appends the document text to the
//! **commit log**, and publishes the new snapshot atomically. Readers
//! holding the old snapshot are untouched; the next
//! [`Store::snapshot`] call sees the new epoch.
//!
//! The **epoch** of a snapshot is the number of committed inserts it
//! contains: snapshot at epoch `e` ≡ the seed collection plus the first
//! `e` log entries, replayed in order. That equation is the
//! linearizability oracle the `s11` harness gate replays.
//!
//! ## Background compaction
//!
//! [`Store::compact`] builds the merged single-segment column **off**
//! the writer lock (readers and the writer keep going), then briefly
//! takes the lock to catch up: segments committed while the merge ran
//! are adopted by reference ([`Collection::adopt_segment`] — no
//! re-parse, no copy), and the compacted snapshot is published with the
//! same epoch and a bumped **layout** generation. Two racing
//! compactions are resolved by the layout check: the loser discards its
//! stale merge and reports `false`.

use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use jguard::QueryError;
use jsondata::ParseLimits;
use mongofind::Collection;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Publication is a single pointer swap and the log append happens
    // before it; a poisoned writer lock leaves both structurally sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An immutable, epoch-stamped view of the collection. Cheap to clone
/// (`Arc`); valid for as long as any holder keeps it alive.
pub struct Snapshot {
    epoch: u64,
    layout: u64,
    coll: Collection,
}

impl Snapshot {
    /// Committed inserts this snapshot contains: the seed collection
    /// plus the first `epoch()` commit-log entries, exactly.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compaction generation — bumped by every published [`Store::compact`];
    /// orthogonal to `epoch` (compaction changes layout, never content).
    pub fn layout(&self) -> u64 {
        self.layout
    }

    /// The collection view. Immutable: queries only.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }
}

/// Serialized writer state: the commit log (one entry per insert, in
/// commit order). Guarded by the writer mutex that also serializes
/// publication.
struct Writer {
    log: Vec<Arc<str>>,
}

/// The snapshot-isolated store: one writer, many concurrent readers.
pub struct Store {
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<Writer>,
}

impl Store {
    /// Wraps a seed collection as epoch 0, layout 0, with an empty
    /// commit log.
    pub fn new(coll: Collection) -> Store {
        Store {
            current: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                layout: 0,
                coll,
            })),
            writer: Mutex::new(Writer { log: Vec::new() }),
        }
    }

    /// The current snapshot — a read lock held only for one `Arc` bump.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn publish(&self, snap: Snapshot) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snap);
    }

    /// Appends one document, limit-checked, and publishes the new
    /// snapshot. Returns the new epoch. On rejection
    /// ([`QueryError::ParseLimit`]) nothing is published: the snapshot,
    /// the indexes, and the commit log are exactly as before — readers
    /// cannot observe a failed insert.
    pub fn insert_str(&self, src: &str, limits: ParseLimits) -> Result<u64, QueryError> {
        let mut writer = lock(&self.writer);
        let base = self.snapshot();
        let mut coll = base.coll.clone();
        coll.insert_str_with_limits(src, limits)?;
        writer.log.push(src.into());
        let epoch = base.epoch + 1;
        self.publish(Snapshot {
            epoch,
            layout: base.layout,
            coll,
        });
        Ok(epoch)
    }

    /// Compacts the column in the background of ongoing traffic: the
    /// merge runs off the writer lock against the snapshot current at
    /// call time; under the lock, segments committed meanwhile are
    /// adopted by reference and the result is published at the *current*
    /// epoch with a bumped layout. Returns `false` (publishing nothing)
    /// when a concurrent compaction published first.
    pub fn compact(&self) -> bool {
        let base = self.snapshot();
        let mut coll = base.coll.clone();
        coll.compact();
        // The catch-up runs under the writer lock: no insert can commit
        // while segments are adopted, and the lock is held only for the
        // (bounded) suffix of segments that raced the merge — never for
        // the merge itself.
        let _writer = lock(&self.writer);
        let cur = self.snapshot();
        if cur.layout != base.layout {
            return false;
        }
        for seg in &cur.coll.segments()[base.coll.segments().len()..] {
            coll.adopt_segment(seg);
        }
        self.publish(Snapshot {
            epoch: cur.epoch,
            layout: cur.layout + 1,
            coll,
        });
        true
    }

    /// Committed inserts so far (the commit-log length).
    pub fn log_len(&self) -> usize {
        lock(&self.writer).log.len()
    }

    /// The first `len` commit-log entries — the serial-replay recipe
    /// for a snapshot at epoch `len` (clamped to the log's length).
    pub fn log_prefix(&self, len: usize) -> Vec<Arc<str>> {
        let w = lock(&self.writer);
        w.log[..len.min(w.log.len())].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;
    use mongofind::Filter;

    fn seed() -> Collection {
        Collection::from_array(&parse(r#"[{"id": 1, "age": 30}, {"id": 2, "age": 40}]"#).unwrap())
            .unwrap()
    }

    #[test]
    fn snapshot_is_isolated_from_later_inserts() {
        let store = Store::new(seed());
        let before = store.snapshot();
        assert_eq!(before.epoch(), 0);
        store
            .insert_str(r#"{"id": 3, "age": 50}"#, ParseLimits::default())
            .unwrap();
        // The old snapshot still sees two documents; a fresh one sees three.
        assert_eq!(before.collection().len(), 2);
        let after = store.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.collection().len(), 3);
    }

    #[test]
    fn rejected_insert_changes_nothing() {
        let store = Store::new(seed());
        let before = store.snapshot();
        let err = store
            .insert_str("[[[[[[", ParseLimits::default())
            .unwrap_err();
        assert!(matches!(err, QueryError::ParseLimit(_)));
        let after = store.snapshot();
        assert!(Arc::ptr_eq(&before, &after), "no publication on rejection");
        assert_eq!(store.log_len(), 0);
    }

    #[test]
    fn compact_preserves_epoch_and_results() {
        let mut coll = seed();
        coll.create_index("age");
        let store = Store::new(coll);
        for i in 0..8 {
            store
                .insert_str(
                    &format!(r#"{{"id": {}, "age": {}}}"#, 10 + i, 20 + i),
                    ParseLimits::default(),
                )
                .unwrap();
        }
        let fragmented = store.snapshot();
        let f = Filter::parse_str(r#"{"age": {"$gte": 25}}"#).unwrap();
        let expect = fragmented.collection().find(&f);
        assert!(store.compact());
        let compacted = store.snapshot();
        assert_eq!(compacted.epoch(), fragmented.epoch());
        assert_eq!(compacted.layout(), fragmented.layout() + 1);
        assert_eq!(compacted.collection().segments().len(), 1);
        assert_eq!(compacted.collection().find(&f), expect);
        // The fragmented snapshot is still fully queryable.
        assert_eq!(fragmented.collection().find(&f), expect);
    }

    #[test]
    fn compact_adopts_segments_committed_during_merge() {
        // Simulate "insert raced the merge" deterministically: the race
        // window is between `base` and the writer-lock catch-up, which
        // the concurrent s11 storm exercises for real; here the adopted
        // path is forced by inserting after compact() already ran once
        // (segments > 1 again) and compacting again.
        let store = Store::new(seed());
        store
            .insert_str(r#"{"id": 7, "age": 70}"#, ParseLimits::default())
            .unwrap();
        assert!(store.compact());
        store
            .insert_str(r#"{"id": 8, "age": 80}"#, ParseLimits::default())
            .unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.collection().len(), 4);
        assert_eq!(snap.collection().segments().len(), 2);
        let f = Filter::parse_str(r#"{"age": {"$gte": 70}}"#).unwrap();
        assert_eq!(snap.collection().find(&f).len(), 2);
    }

    #[test]
    fn log_prefix_replays_to_the_snapshot() {
        let store = Store::new(seed());
        for i in 0..5 {
            store
                .insert_str(
                    &format!(r#"{{"id": {}, "age": {}}}"#, 100 + i, 20 + i),
                    ParseLimits::default(),
                )
                .unwrap();
        }
        let snap = store.snapshot();
        let mut replay = seed();
        for entry in store.log_prefix(snap.epoch() as usize) {
            replay.insert_str(&entry).unwrap();
        }
        assert_eq!(replay.len(), snap.collection().len());
        let f = Filter::parse_str(r#"{"id": {"$gte": 0}}"#).unwrap();
        assert_eq!(replay.find(&f), snap.collection().find(&f));
    }
}
