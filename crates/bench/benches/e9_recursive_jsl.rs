//! E9 (Prop 9): recursive JSL evaluation — PTIME bottom-up pass vs the
//! exponential `unfold` semantics baseline.

use bench::{e9_doc, e9_even_depth};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsondata::JsonTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_recursive_jsl");
    g.sample_size(10);
    let delta = e9_even_depth();
    for h in [4usize, 6, 8] {
        let doc = e9_doc(h, 2);
        let tree = JsonTree::build(&doc);
        g.bench_with_input(BenchmarkId::new("ptime_bottom_up", h), &tree, |b, t| {
            b.iter(|| delta.evaluate(t))
        });
        if let Some(unfolded) = delta.unfold(h, 2_000_000) {
            g.bench_with_input(BenchmarkId::new("unfold_baseline", h), &tree, |b, t| {
                b.iter(|| jsl::eval::evaluate(t, &unfolded))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
